"""Section 2.1.1 extension — scan sharing for concurrent queries.

Quantifies the circular-scan optimization the paper cites (Teradata,
RedBrick, SQL Server, QPipe) on the simulated array: N queries scanning
the same table, arriving together or staggered, served by one shared
stream versus one stream each.
"""

from __future__ import annotations

from repro.experiments.config import DEFAULT_EXECUTED_ROWS, ExperimentConfig
from repro.experiments.report import ExperimentOutput, FigureResult
from repro.experiments.workloads import prepare_lineitem
from repro.iosim.sharing import SharedScanQuery, SharedScanSimulator
from repro.iosim.sim import DiskArraySim

QUERY_COUNTS = (1, 2, 4, 8)


def run(
    num_rows: int = DEFAULT_EXECUTED_ROWS,
    config: ExperimentConfig | None = None,
) -> ExperimentOutput:
    """Regenerate the scan-sharing comparison."""
    config = config or ExperimentConfig()
    prepared = prepare_lineitem(num_rows)
    table_bytes = sum(
        prepared.row.file_sizes_for([], cardinality=config.cardinality).values()
    )
    simulator = SharedScanSimulator(
        table_bytes,
        sim=DiskArraySim(config.calibration),
        prefetch_depth=config.effective_prefetch_depth,
    )

    table = FigureResult(
        title="Makespan (s) for N concurrent LINEITEM scans",
        headers=["queries", "independent", "shared", "speedup"],
    )
    series: dict[str, list[float]] = {
        "queries": [],
        "independent": [],
        "shared": [],
        "speedup": [],
    }
    for count in QUERY_COUNTS:
        queries = [SharedScanQuery(name=f"q{i}") for i in range(count)]
        outcome = simulator.compare(queries)
        table.add_row(
            count,
            round(outcome.independent_makespan, 1),
            round(outcome.shared_makespan, 1),
            round(outcome.speedup, 2),
        )
        series["queries"].append(count)
        series["independent"].append(outcome.independent_makespan)
        series["shared"].append(outcome.shared_makespan)
        series["speedup"].append(outcome.speedup)

    # Staggered arrivals: a late query rides the running scan.
    staggered = simulator.compare(
        [SharedScanQuery("first"), SharedScanQuery("late", arrival_time=20.0)]
    )
    stagger_table = FigureResult(
        title="Staggered arrival (second query 20 s late)",
        headers=["policy", "first done (s)", "late done (s)"],
    )
    stagger_table.add_row(
        "independent",
        round(staggered.independent_finish["first"], 1),
        round(staggered.independent_finish["late"], 1),
    )
    stagger_table.add_row(
        "shared",
        round(staggered.shared_finish["first"], 1),
        round(staggered.shared_finish["late"], 1),
    )
    series["staggered_shared_late"] = [staggered.shared_finish["late"]]
    series["staggered_independent_late"] = [staggered.independent_finish["late"]]
    return ExperimentOutput(
        name="Extension: scan sharing",
        tables=[table, stagger_table],
        series=series,
    )
