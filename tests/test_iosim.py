"""Disk-array simulator tests: bandwidth, seeks, prefetch, competition."""

import pytest

from repro.cpusim.calibration import DEFAULT_CALIBRATION
from repro.errors import SimulationError
from repro.iosim.request import FileExtent
from repro.iosim.sim import DiskArraySim
from repro.iosim.streams import ScanStream, SubmissionPolicy
from repro.iosim.traffic import competing_row_scan

GB = 1_000_000_000


def make_stream(name, files, depth=48, policy=SubmissionPolicy.ROW, start=0.0):
    sim = DiskArraySim()
    return ScanStream(
        name=name,
        files=files,
        unit_bytes=sim.unit_bytes,
        prefetch_depth=depth,
        policy=policy,
        start_time=start,
    )


class TestStreams:
    def test_window_round_robin_over_files(self):
        files = [FileExtent(f"c{i}", 10 * 384 * 1024) for i in range(3)]
        stream = make_stream("s", files, depth=5)
        windows = stream.windows()
        # 10 units per file at depth 5 -> 2 windows per file, alternating.
        assert [w.file_name for w in windows] == ["c0", "c1", "c2", "c0", "c1", "c2"]

    def test_total_accounting(self):
        files = [FileExtent("a", 1_000_000), FileExtent("b", 2_000_000)]
        stream = make_stream("s", files)
        assert stream.total_bytes == 3_000_000
        assert stream.total_units == 3 + 6  # ceil per file at 384 KiB units

    def test_empty_file_skipped(self):
        stream = make_stream("s", [FileExtent("a", 0), FileExtent("b", 100)])
        assert all(w.file_name == "b" for w in stream.windows())

    def test_invalid_arguments(self):
        sim = DiskArraySim()
        with pytest.raises(SimulationError):
            ScanStream("s", [], sim.unit_bytes, 48, SubmissionPolicy.ROW)
        with pytest.raises(SimulationError):
            ScanStream(
                "s", [FileExtent("a", 1)], sim.unit_bytes, 0, SubmissionPolicy.ROW
            )
        with pytest.raises(SimulationError):
            FileExtent("a", -1)

    def test_policy_lookahead(self):
        assert SubmissionPolicy.COLUMN_FAST.windows_in_flight == 2
        assert SubmissionPolicy.COLUMN_SLOW.windows_in_flight == 1
        assert SubmissionPolicy.ROW.windows_in_flight == 1


class TestSoloScans:
    def test_row_scan_runs_at_full_bandwidth(self):
        sim = DiskArraySim()
        stream = make_stream("row", [FileExtent("T", GB)])
        elapsed = sim.solo_scan_seconds(stream)
        ideal = GB / DEFAULT_CALIBRATION.total_disk_bandwidth
        assert elapsed == pytest.approx(ideal, rel=0.01)

    def test_multi_file_scan_pays_seeks(self):
        sim = DiskArraySim()
        one = make_stream("one", [FileExtent("T", GB)])
        many = make_stream(
            "many",
            [FileExtent(f"c{i}", GB // 8) for i in range(8)],
            policy=SubmissionPolicy.COLUMN_FAST,
        )
        assert sim.solo_scan_seconds(many) > sim.solo_scan_seconds(one)

    def test_smaller_prefetch_means_more_seeks(self):
        sim = DiskArraySim()
        files = [FileExtent(f"c{i}", GB // 4) for i in range(4)]
        times = [
            sim.solo_scan_seconds(
                make_stream("s", files, depth=d, policy=SubmissionPolicy.COLUMN_FAST)
            )
            for d in (2, 8, 48)
        ]
        assert times[0] > times[1] > times[2]

    def test_prefetch_does_not_affect_single_file(self):
        sim = DiskArraySim()
        times = {
            d: sim.solo_scan_seconds(make_stream("s", [FileExtent("T", GB)], depth=d))
            for d in (2, 48)
        }
        assert times[2] == pytest.approx(times[48], rel=1e-6)

    def test_stats_accounting(self):
        sim = DiskArraySim()
        stream = make_stream("s", [FileExtent("T", 10 * sim.unit_bytes)])
        stats = sim.run([stream])["s"]
        assert stats.bytes_read == 10 * sim.unit_bytes
        assert stats.units == 10
        assert stats.switches == 1  # the initial positioning seek
        assert stats.elapsed > 0


class TestCompetition:
    def _competing(self, depth, policy):
        sim = DiskArraySim()
        victim_files = [FileExtent(f"c{i}", GB // 4) for i in range(4)]
        victim = make_stream("victim", victim_files, depth=depth, policy=policy)
        competitor = competing_row_scan(4 * GB, sim.unit_bytes, depth)
        return sim.run([victim, competitor])["victim"].elapsed

    def test_competition_slows_the_victim(self):
        sim = DiskArraySim()
        files = [FileExtent(f"c{i}", GB // 4) for i in range(4)]
        solo = sim.solo_scan_seconds(
            make_stream("victim", files, policy=SubmissionPolicy.COLUMN_FAST)
        )
        shared = self._competing(48, SubmissionPolicy.COLUMN_FAST)
        assert shared > solo

    def test_fast_column_beats_slow_column_under_competition(self):
        fast = self._competing(16, SubmissionPolicy.COLUMN_FAST)
        slow = self._competing(16, SubmissionPolicy.COLUMN_SLOW)
        assert fast < slow

    def test_duplicate_stream_names_rejected(self):
        sim = DiskArraySim()
        streams = [
            make_stream("x", [FileExtent("a", 100)]),
            make_stream("x", [FileExtent("b", 100)]),
        ]
        with pytest.raises(SimulationError):
            sim.run(streams)

    def test_late_start_time(self):
        sim = DiskArraySim()
        early = make_stream("early", [FileExtent("a", GB)])
        late = make_stream("late", [FileExtent("b", GB)], start=1_000.0)
        stats = sim.run([early, late])
        # The late stream begins after the early one is long done and
        # then runs unimpeded at full bandwidth.
        assert stats["early"].finish_time < 1_000.0
        assert stats["late"].start_time == 1_000.0
        assert stats["late"].finish_time > 1_000.0
        assert stats["late"].elapsed == pytest.approx(
            stats["late"].io_seconds, rel=0.01
        )

    def test_io_seconds_split(self):
        sim = DiskArraySim()
        stream = make_stream("s", [FileExtent("T", 5 * sim.unit_bytes)])
        stats = sim.run([stream])["s"]
        assert stats.io_seconds == pytest.approx(
            stats.seek_seconds + stats.transfer_seconds
        )
        assert stats.transfer_seconds == pytest.approx(
            stats.bytes_read / DEFAULT_CALIBRATION.total_disk_bandwidth
        )
