"""Measurement-runner and config tests."""

import pytest

from repro.engine.query import ScanQuery
from repro.experiments.config import CompetingTraffic, ExperimentConfig
from repro.experiments.report import ExperimentOutput, FigureResult, format_table
from repro.experiments.runner import measure_scan
from repro.experiments.workloads import prepare_orders
from repro.storage.layout import Layout


@pytest.fixture(scope="module")
def prepared():
    return prepare_orders(1_500, seed=33)


def make_query(prepared, k=3, selectivity=0.10):
    predicate = prepared.predicate("O_ORDERDATE", selectivity)
    return ScanQuery(
        "ORDERS", select=prepared.attrs_prefix(k), predicates=(predicate,)
    )


class TestExperimentConfig:
    def test_defaults(self):
        config = ExperimentConfig()
        assert config.cardinality == 60_000_000
        assert config.effective_prefetch_depth == 48

    def test_with_overrides(self):
        config = ExperimentConfig().with_(prefetch_depth=8)
        assert config.effective_prefetch_depth == 8

    def test_competing_validation(self):
        with pytest.raises(Exception):
            CompetingTraffic(file_bytes=0)


class TestMeasureScan:
    def test_row_measurement_matches_paper_io(self, prepared):
        m = measure_scan(prepared.row, make_query(prepared))
        # ORDERS at 60M rows is ~1.9GB over 180MB/s: ~10.8s, I/O-bound.
        assert m.layout is Layout.ROW
        assert m.io_bound
        assert m.elapsed == pytest.approx(10.8, rel=0.05)
        assert m.bytes_read == pytest.approx(1.9e9, rel=0.05)

    def test_column_reads_only_selected_files(self, prepared):
        m = measure_scan(prepared.column, make_query(prepared, k=2))
        # Two four-byte columns out of 32 bytes: ~1/4 GB.
        assert m.bytes_read < 0.6e9
        assert m.elapsed < 5

    def test_events_scaled_to_cardinality(self, prepared):
        config = ExperimentConfig(cardinality=60_000_000)
        m = measure_scan(prepared.row, make_query(prepared), config)
        assert m.events.tuples_examined == 60_000_000

    def test_cardinality_override(self, prepared):
        small = ExperimentConfig(cardinality=6_000_000)
        big = ExperimentConfig(cardinality=60_000_000)
        a = measure_scan(prepared.row, make_query(prepared), small)
        b = measure_scan(prepared.row, make_query(prepared), big)
        assert b.elapsed == pytest.approx(10 * a.elapsed, rel=0.05)

    def test_competing_traffic_slows_scan(self, prepared):
        quiet = measure_scan(prepared.column, make_query(prepared))
        busy = measure_scan(
            prepared.column,
            make_query(prepared),
            ExperimentConfig(competing=CompetingTraffic(file_bytes=10**10)),
        )
        assert busy.io_elapsed > quiet.io_elapsed

    def test_slow_column_variant_is_slower_under_competition(self, prepared):
        config = ExperimentConfig(competing=CompetingTraffic(file_bytes=10**10))
        fast = measure_scan(prepared.column, make_query(prepared, k=7), config)
        slow = measure_scan(
            prepared.column,
            make_query(prepared, k=7),
            config.with_(slow_column_io=True),
        )
        assert slow.elapsed > fast.elapsed

    def test_cpu_bound_detection(self, prepared):
        # Compressed columns at high selectivity turn CPU-bound.
        packed = prepare_orders(1_500, seed=33, compressed=True)
        query = ScanQuery(
            packed.schema.name,
            select=packed.attrs_prefix(7),
            predicates=(packed.predicate("O_ORDERDATE", 0.10),),
        )
        m = measure_scan(packed.column, query)
        assert not m.io_bound
        assert m.elapsed == pytest.approx(m.cpu.total)


class TestReporting:
    def test_format_table_aligns(self):
        text = format_table(["a", "bee"], [[1, 2.5], [300, "x"]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "2.50" in text

    def test_figure_result_validates_row_width(self):
        figure = FigureResult(title="t", headers=["a", "b"])
        with pytest.raises(ValueError):
            figure.add_row(1)

    def test_figure_result_column(self):
        figure = FigureResult(title="t", headers=["a", "b"])
        figure.add_row(1, 2)
        figure.add_row(3, 4)
        assert figure.column("b") == [2, 4]

    def test_experiment_output_lookup(self):
        figure = FigureResult(title="t", headers=["a"])
        output = ExperimentOutput(name="x", tables=[figure])
        assert output.table("t") is figure
        with pytest.raises(KeyError):
            output.table("missing")
        assert "=== x ===" in output.render()
