"""Extension bench — §2.1.1 index-vs-scan breakeven."""

from _common import BENCH_ROWS, publish, run_once

from repro.experiments.figures import index_breakeven


def bench_index_breakeven(benchmark):
    out = run_once(benchmark, lambda: index_breakeven.run(num_rows=BENCH_ROWS))
    publish(out, "ext_index_breakeven.txt")

    sequential = out.series["sequential"]
    index = out.series["index"]
    selectivity = out.series["selectivity"]
    # The index wins only in a narrow low-selectivity band...
    assert index[0] < sequential[0]
    # ...and loses decisively at warehouse selectivities.
    assert index[-1] > sequential[-1]
    # The measured flip sits near the closed-form breakeven.
    flips = [
        s for s, i, q in zip(selectivity, index, sequential) if i > q
    ]
    breakeven = out.series["breakeven"][0]
    assert flips and flips[0] / breakeven < 10
    # The paper's reference configuration evaluates to ~0.008%.
    assert abs(out.series["paper_reference"][0] - 8.5e-5) / 8.5e-5 < 0.05
