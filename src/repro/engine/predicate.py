"""SARGable scan predicates.

Predicates are simple attribute-versus-constant comparisons (what the
paper's scanners can apply).  ``predicate_for_selectivity`` builds the
paper's experimental knob: a predicate on the first selected attribute
whose threshold is chosen from the data's quantiles so that a target
fraction of tuples qualifies.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.errors import PlanError


class ComparisonOp(enum.Enum):
    """Supported comparison operators."""

    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="
    EQ = "="
    NE = "!="


@dataclass(frozen=True)
class Predicate:
    """One ``attribute <op> constant`` condition."""

    attr: str
    op: ComparisonOp
    value: object

    def evaluate(self, values: np.ndarray) -> np.ndarray:
        """Boolean qualification mask for an array of values."""
        op = self.op
        if op is ComparisonOp.LT:
            return values < self.value
        if op is ComparisonOp.LE:
            return values <= self.value
        if op is ComparisonOp.GT:
            return values > self.value
        if op is ComparisonOp.GE:
            return values >= self.value
        if op is ComparisonOp.EQ:
            return values == self.value
        return values != self.value

    def describe(self) -> str:
        return f"{self.attr} {self.op.value} {self.value!r}"


def predicate_for_selectivity(
    attr: str,
    values: np.ndarray,
    selectivity: float,
) -> Predicate:
    """A ``attr <= q`` predicate qualifying about ``selectivity`` of tuples.

    The threshold is the empirical quantile of ``values``; exactness
    depends on ties in the data (integer domains), which is the same
    behaviour one gets picking constants against real TPC-H data.
    """
    if not 0.0 <= selectivity <= 1.0:
        raise PlanError(f"selectivity must be within [0, 1]: {selectivity}")
    values = np.asarray(values)
    if values.size == 0:
        raise PlanError("cannot derive a selectivity threshold from no data")
    if values.dtype.kind not in "iuf":
        raise PlanError(
            f"selectivity predicates need an ordered numeric attribute, "
            f"got dtype {values.dtype}"
        )
    if selectivity >= 1.0:
        return Predicate(attr, ComparisonOp.LE, int(values.max()))
    if selectivity <= 0.0:
        return Predicate(attr, ComparisonOp.LT, int(values.min()))
    threshold = np.quantile(values, selectivity, method="lower")
    return Predicate(attr, ComparisonOp.LE, int(threshold))


def achieved_selectivity(predicate: Predicate, values: np.ndarray) -> float:
    """Fraction of ``values`` the predicate actually qualifies."""
    values = np.asarray(values)
    if values.size == 0:
        return 0.0
    return float(np.count_nonzero(predicate.evaluate(values))) / values.size
