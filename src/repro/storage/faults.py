"""Seeded fault injection for the storage layer.

Two families of faults, both deterministic under a seed:

* **In-memory read faults** — a :class:`FaultPlan` wraps a table's
  :class:`~repro.storage.pagefile.PagedFile` objects in
  :class:`FaultyPagedFile`, which can raise
  :class:`~repro.errors.TransientIOError` for the first *n* reads of a
  page (exercising the retry path) and/or hand back bit-flipped copies
  of specific pages (exercising checksum detection and salvage scans).
  The underlying bytes are never modified, so the same plan replays
  identically.

* **On-disk injectors** — :func:`flip_bit_on_disk`, :func:`tear_file`,
  and :func:`drop_trailing_pages` mutate a persisted table directory the
  way real failures do: a flipped bit anywhere in a file, a write torn
  mid-page, a file truncated at a page boundary.

Nothing in the library imports this module on its hot paths; it exists
for tests, ``make scrub --self-test``, and benchmark harnesses.
"""

from __future__ import annotations

import pathlib
import random
from dataclasses import dataclass, field

from repro.errors import StorageError, TransientIOError
from repro.storage.pagefile import PagedFile
from repro.storage.retry import RetryPolicy, retry_io  # re-exported  # noqa: F401

_ANY = None


@dataclass
class _TransientFault:
    file: str | None
    page: int | None
    remaining: int

    def matches(self, file: str, page: int) -> bool:
        return (self.file is _ANY or self.file == file) and (
            self.page is _ANY or self.page == page
        )


@dataclass
class _BitFlip:
    file: str | None
    page: int
    byte: int | None
    bit: int | None

    def matches(self, file: str, page: int) -> bool:
        return (self.file is _ANY or self.file == file) and self.page == page


@dataclass
class FaultPlan:
    """A seeded, replayable schedule of storage faults."""

    seed: int = 0
    _rng: random.Random = field(init=False, repr=False)
    _transients: list[_TransientFault] = field(init=False, default_factory=list)
    _flips: list[_BitFlip] = field(init=False, default_factory=list)
    #: Observability for tests: how many transient errors were raised.
    transient_raised: int = 0
    #: How many page reads were handed back corrupted.
    pages_corrupted: int = 0

    def __post_init__(self) -> None:
        self._rng = random.Random(self.seed)

    # --- scheduling ---------------------------------------------------------

    def schedule_transient_reads(
        self, failures: int, file: str | None = None, page: int | None = None
    ) -> "FaultPlan":
        """Fail the next ``failures`` matching reads with TransientIOError."""
        if failures < 0:
            raise StorageError(f"negative transient failure count: {failures}")
        self._transients.append(_TransientFault(file, page, failures))
        return self

    def schedule_bit_flip(
        self,
        page: int,
        file: str | None = None,
        byte: int | None = None,
        bit: int | None = None,
    ) -> "FaultPlan":
        """Corrupt every read of one page by flipping one bit.

        ``byte``/``bit`` default to a seeded random position, fixed at
        the first read so repeated reads see identical corruption.
        """
        self._flips.append(_BitFlip(file, page, byte, bit))
        return self

    # --- runtime hooks (called by FaultyPagedFile) ---------------------------

    def before_read(self, file: str, page: int) -> None:
        for fault in self._transients:
            if fault.remaining > 0 and fault.matches(file, page):
                fault.remaining -= 1
                self.transient_raised += 1
                raise TransientIOError(
                    f"injected transient read fault: {file!r} page {page}"
                )

    def corrupt_page(self, file: str, page: int, data: bytes) -> bytes:
        corrupted = None
        for flip in self._flips:
            if not flip.matches(file, page):
                continue
            if flip.byte is None:
                flip.byte = self._rng.randrange(len(data))
            if flip.bit is None:
                flip.bit = self._rng.randrange(8)
            if corrupted is None:
                corrupted = bytearray(data)
            corrupted[flip.byte] ^= 1 << flip.bit
        if corrupted is None:
            return data
        self.pages_corrupted += 1
        return bytes(corrupted)

    # --- wrapping -----------------------------------------------------------

    def wrap(self, file: PagedFile) -> "FaultyPagedFile":
        """A fault-injecting view over ``file`` (bytes are shared)."""
        return FaultyPagedFile(file, self)

    def wrap_table(self, table) -> None:
        """Route every paged file of ``table`` through this plan, in place."""
        from repro.storage.table import ColumnTable

        if isinstance(table, ColumnTable):
            for column_file in table.column_files.values():
                column_file.file = self.wrap(column_file.file)
        else:
            table.file = self.wrap(table.file)


class FaultyPagedFile(PagedFile):
    """A :class:`PagedFile` whose reads pass through a :class:`FaultPlan`.

    Shares the wrapped file's byte buffer, so appends through either
    object stay visible to both; only the read path is intercepted.
    """

    def __init__(self, inner: PagedFile, plan: FaultPlan):
        super().__init__(inner.name, inner.page_size, retry_policy=inner.retry_policy)
        self._data = inner._data
        self.plan = plan

    def _read_page_raw(self, index: int) -> bytes:
        self.plan.before_read(self.name, index)
        return self.plan.corrupt_page(self.name, index, super()._read_page_raw(index))


# --- on-disk injectors ----------------------------------------------------------


def flip_bit_on_disk(
    path: str | pathlib.Path,
    byte: int | None = None,
    bit: int | None = None,
    rng: random.Random | None = None,
) -> tuple[int, int]:
    """Flip one bit of a file in place; returns ``(byte_offset, bit)``."""
    path = pathlib.Path(path)
    data = bytearray(path.read_bytes())
    if not data:
        raise StorageError(f"cannot flip a bit in empty file {path}")
    rng = rng or random.Random(0)
    if byte is None:
        byte = rng.randrange(len(data))
    if bit is None:
        bit = rng.randrange(8)
    data[byte] ^= 1 << bit
    path.write_bytes(bytes(data))
    return byte, bit


def tear_file(path: str | pathlib.Path, page_size: int) -> int:
    """Simulate a torn write: truncate the file mid-page.

    Leaves a trailing partial page (half of the last page), the state a
    crash mid-``write()`` produces.  Returns the new file size.
    """
    path = pathlib.Path(path)
    size = path.stat().st_size
    if size < page_size:
        raise StorageError(f"{path} too small ({size} B) to tear a page")
    torn = size - page_size // 2
    with open(path, "r+b") as handle:
        handle.truncate(torn)
    return torn


def drop_trailing_pages(path: str | pathlib.Path, page_size: int, pages: int = 1) -> int:
    """Truncate whole pages off the end of a file; returns the new size."""
    path = pathlib.Path(path)
    size = path.stat().st_size
    kept = size - pages * page_size
    if kept < 0:
        raise StorageError(f"cannot drop {pages} pages from {size}-byte {path}")
    with open(path, "r+b") as handle:
        handle.truncate(kept)
    return kept
