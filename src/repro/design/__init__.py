"""Physical-design advisors (the Figure 1 advisor boxes)."""

from repro.design.materialize import MaterializedView, ViewRouter, materialize_view
from repro.design.mv_advisor import MaterializedViewAdvisor, ViewCandidate
from repro.design.physical import LayoutAdvisor, LayoutRecommendation

__all__ = [
    "MaterializedViewAdvisor",
    "ViewCandidate",
    "LayoutAdvisor",
    "LayoutRecommendation",
    "MaterializedView",
    "materialize_view",
    "ViewRouter",
]
