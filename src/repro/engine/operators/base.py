"""Pull-based block-iterator operator interface (Section 2.2.3).

Each operator calls ``next()`` on its child and receives a block of
tuples (or ``None`` at end of stream).  Operators are agnostic about
the database schema and work on generic column dictionaries.

When the context carries a :class:`~repro.obs.trace.SpanTracer`, the
public ``open()``/``next()``/``close()`` methods additionally record a
span per call: wall time plus the :class:`~repro.cpusim.events.CostEvents`
delta across the call, attributed exclusively (child-operator work is
subtracted out by the tracer's stack).  With the default
``tracer is None`` the traced branches are skipped entirely.
"""

from __future__ import annotations

import abc
import time

from repro.engine.blocks import Block
from repro.engine.context import ExecutionContext
from repro.errors import CompressionError, EngineError, StorageError
from repro.obs import metrics as obs_metrics
from repro.obs import recorder as flight

#: What salvage mode treats as "this page is corrupt, skip it": checksum
#: mismatches, malformed page bytes, codec failures, missing pages, and
#: transient faults whose retry budget is exhausted.
SALVAGEABLE_ERRORS = (StorageError, CompressionError)


class Operator(abc.ABC):
    """One node of a query plan."""

    def __init__(self, context: ExecutionContext):
        self.context = context
        self._opened = False

    @property
    def events(self):
        return self.context.events

    def describe(self) -> str:
        """One-line span annotation for EXPLAIN/trace output (hook)."""
        return ""

    def _governance_check(self) -> None:
        """One cooperative checkpoint (deadline/cancellation).

        Called per ``next()`` by the base class and again inside the
        scanners' per-page loops, so a cancel or deadline lands within
        one page's worth of work even when a single ``_next()`` decodes
        many pages (or, for the late-materialized architectures, the
        entire column).
        """
        governance = self.context.governance
        if governance is not None:
            governance.check(type(self).__name__)

    def _salvage_decode(self, decode, file_name: str, page_index: int, row_span: int):
        """Run one page read+decode under the integrity policy.

        Strict mode lets any error propagate (a checksum mismatch aborts
        the query).  Salvage mode records the fault — with the page's
        nominal row span as the loss estimate — and returns ``None`` so
        the caller skips the page while keeping position accounting
        consistent.
        """
        try:
            if obs_metrics.enabled():
                started = time.perf_counter()
                result = decode()
                obs_metrics.PAGE_DECODE_SECONDS.observe(time.perf_counter() - started)
            else:
                result = decode()
        except SALVAGEABLE_ERRORS as exc:
            if self.context.strict_integrity:
                raise
            obs_metrics.PAGES_SALVAGED.inc()
            governance = self.context.governance
            flight.record(
                "storage.salvage",
                governance.label if governance is not None else None,
                file=file_name,
                page=page_index,
                error=type(exc).__name__,
            )
            self.context.corruption.record(file_name, page_index, row_span, exc)
            return None
        self.context.corruption.pages_scanned += 1
        return result

    def open(self) -> None:
        """Prepare for iteration; children are opened first."""
        tracer = self.context.tracer
        if tracer is None:
            for child in self.children():
                child.open()
            self._open()
            self._opened = True
            return
        frame = tracer.enter(self, "open")
        try:
            for child in self.children():
                child.open()
            self._open()
            self._opened = True
        finally:
            tracer.exit(frame, self.context.events)

    def next(self) -> Block | None:
        """The next block of tuples, or ``None`` when exhausted."""
        if not self._opened:
            raise EngineError(f"{type(self).__name__}.next() before open()")
        governance = self.context.governance
        if governance is not None:
            governance.check(type(self).__name__)
        tracer = self.context.tracer
        if tracer is None:
            block = self._next()
            if block is not None and len(block):
                self.events.blocks_produced += 1
            return block
        frame = tracer.enter(self, "next")
        rows = 0
        blocks = 0
        try:
            block = self._next()
            if block is not None and len(block):
                self.events.blocks_produced += 1
                rows = len(block)
                blocks = 1
            return block
        finally:
            tracer.exit(frame, self.context.events, rows=rows, blocks=blocks)

    def close(self) -> None:
        """Release state; children are closed last."""
        tracer = self.context.tracer
        if tracer is None:
            self._close()
            for child in self.children():
                child.close()
            self._opened = False
            return
        frame = tracer.enter(self, "close")
        try:
            self._close()
            for child in self.children():
                child.close()
            self._opened = False
        finally:
            tracer.exit(frame, self.context.events)

    def children(self) -> list["Operator"]:
        """Child operators (empty for scanners)."""
        return []

    def _open(self) -> None:
        """Subclass hook."""

    @abc.abstractmethod
    def _next(self) -> Block | None:
        """Subclass hook: produce the next block."""

    def _close(self) -> None:
        """Subclass hook."""

    def drain(self) -> list[Block]:
        """Run the subtree to completion (open/next*/close)."""
        self.open()
        blocks = []
        while True:
            block = self.next()
            if block is None:
                break
            blocks.append(block)
        self.close()
        return blocks
