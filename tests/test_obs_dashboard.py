"""Dashboard rendering: text board, HTML snapshot, demo CLI."""

from __future__ import annotations

import pytest

from repro.data.tpch import generate_orders
from repro.engine.query import ScanQuery
from repro.engine.scheduler import Scheduler
from repro.obs import dashboard
from repro.obs import recorder as flight
from repro.storage.layout import Layout
from repro.storage.loader import load_table


@pytest.fixture(autouse=True)
def clean_recorder():
    flight.enable()
    flight.RECORDER.clear()
    yield
    flight.RECORDER.clear()


def _scheduler(clients: int = 3) -> Scheduler:
    data = generate_orders(1_500, seed=41)
    table = load_table(data, Layout.COLUMN)
    scheduler = Scheduler(max_inflight=2, share_scans=True)
    for index in range(clients):
        scheduler.submit(
            table,
            ScanQuery("ORDERS", select=("O_ORDERKEY",)),
            label=f"dash q{index}",
        )
    return scheduler


class TestRenderBoard:
    def test_metrics_only_view_needs_no_scheduler(self):
        text = dashboard.render_board()
        assert "repro scheduler board" in text
        assert "window(60s):" in text
        assert "flight recorder" in text

    def test_board_shows_queue_running_and_streams(self):
        scheduler = _scheduler()
        assert scheduler.poll()
        text = dashboard.render_board(scheduler)
        assert "3 submitted" in text
        assert "dash q" in text
        assert "shared streams" in text
        scheduler.run()
        done = dashboard.render_board(scheduler)
        assert "3 completed" in done
        assert "(idle)" in done

    def test_board_tails_the_flight_recorder(self):
        scheduler = _scheduler()
        scheduler.run()
        text = dashboard.render_board(scheduler)
        assert "scheduler.done" in text

    def test_breaker_section(self):
        from repro.engine.governance import CircuitBreaker

        breaker = CircuitBreaker(threshold=1)
        breaker.record_failure(("ORDERS", "decode"))
        text = dashboard.render_board(breaker=breaker)
        assert "breaker: 1 open" in text
        assert "OPEN ('ORDERS', 'decode')" in text


class TestRenderHtml:
    def test_snapshot_is_standalone_and_escaped(self):
        flight.record("t.kind", "q<script>")
        scheduler = _scheduler()
        scheduler.run()
        html = dashboard.render_html(scheduler)
        assert html.startswith("<!doctype html>")
        assert "<script>" not in html  # event labels are escaped
        assert "window qps" in html


class TestCli:
    def test_demo_runs_headless_and_writes_html(self, tmp_path, capsys):
        out = tmp_path / "board.html"
        assert (
            dashboard.main(
                [
                    "--clients", "3",
                    "--rows", "1500",
                    "--no-ansi",
                    "--html", str(out),
                ]
            )
            == 0
        )
        printed = capsys.readouterr().out
        assert "demo finished" in printed
        assert "3 completed" in printed
        assert out.exists() and "repro scheduler board" in out.read_text()

    def test_frames_emit_intermediate_boards(self, capsys):
        assert (
            dashboard.main(
                ["--clients", "4", "--rows", "2000", "--frames", "2", "--no-ansi"]
            )
            == 0
        )
        printed = capsys.readouterr().out
        assert printed.count("repro scheduler board") >= 2
