"""Write-path fuzzing: interleaved insert/delete/merge ops plus an oracle.

:class:`WriteModel` is the pure-Python reference implementation of the
write-optimized store's observable semantics: rows live in one flat
list (base snapshot order, then staged rows in insertion order), a
delete marks a row dead in place, and a merge compacts the list to its
live rows (re-clustered on the sort key, stable, when one is declared).
A query against the model is just :func:`~repro.testing.oracle
.oracle_scan` over its :meth:`~WriteModel.snapshot` — no bitmap, no
position remapping, no engine code — so agreement with the hybrid
base+delta scan is meaningful evidence the delete-vector arithmetic is
right.

:func:`generate_write_ops` derives a seed-replayable interleaving for a
generated case.  Ops are built against a scratch model as they are
drawn, so every delete position is valid at the moment it will be
applied no matter how many merges precede it.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

import numpy as np

from repro.data.generator import GeneratedTable
from repro.engine.predicate import ComparisonOp, Predicate
from repro.testing.oracle import _predicate_fn, pyvalue
from repro.types.datatypes import IntType
from repro.types.schema import TableSchema

__all__ = ["WriteOp", "WriteModel", "generate_write_ops"]


@dataclass(frozen=True)
class WriteOp:
    """One step of an interleaved write workload (pure data)."""

    kind: str  #: "insert" | "delete" | "delete_where" | "merge"
    rows: tuple = ()
    positions: tuple = ()
    predicate: Predicate | None = None

    def describe(self) -> str:
        if self.kind == "insert":
            return f"insert {len(self.rows)} row(s)"
        if self.kind == "delete":
            return f"delete positions {list(self.positions)}"
        if self.kind == "delete_where":
            return f"delete where {self.predicate.describe()}"
        return "merge"


class WriteModel:
    """Reference state machine for the hybrid read/write path."""

    def __init__(self, data: GeneratedTable, sort_key: str | None = None):
        self.schema: TableSchema = data.schema
        self.sort_key = sort_key
        names = self.schema.attribute_names
        plain = {name: data.column(name).tolist() for name in names}
        self.rows: list[tuple] = [
            tuple(pyvalue(plain[name][index]) for name in names)
            for index in range(data.num_rows)
        ]
        self.dead: list[bool] = [False] * len(self.rows)

    # --- ops --------------------------------------------------------------

    def apply(self, op: WriteOp) -> None:
        if op.kind == "insert":
            self.rows.extend(op.rows)
            self.dead.extend([False] * len(op.rows))
        elif op.kind == "delete":
            for position in op.positions:
                self.dead[position] = True
        elif op.kind == "delete_where":
            test = _predicate_fn(op.predicate)
            index = self.schema.attribute_names.index(op.predicate.attr)
            for row_index, row in enumerate(self.rows):
                if not self.dead[row_index] and test(row[index]):
                    self.dead[row_index] = True
        elif op.kind == "merge":
            self.merge()
        else:  # pragma: no cover - closed set
            raise ValueError(f"unknown write op {op.kind!r}")

    def merge(self) -> None:
        live = [row for row, dead in zip(self.rows, self.dead) if not dead]
        if self.sort_key is not None:
            index = self.schema.attribute_names.index(self.sort_key)
            live.sort(key=lambda row: row[index])  # list.sort is stable
        self.rows = live
        self.dead = [False] * len(live)

    # --- views ------------------------------------------------------------

    @property
    def num_live(self) -> int:
        return sum(not dead for dead in self.dead)

    def live_rows(self) -> list[tuple]:
        return [row for row, dead in zip(self.rows, self.dead) if not dead]

    def live_positions(self) -> list[int]:
        """Global (un-remapped) positions of the live rows."""
        return [i for i, dead in enumerate(self.dead) if not dead]

    def snapshot(self) -> GeneratedTable:
        """The logical table as a plain GeneratedTable (live rows only).

        Row order matches both the hybrid scan's output order and a
        freshly rebuilt table: base order, then insertion order, with
        deleted rows squeezed out.
        """
        live = self.live_rows()
        columns = {}
        for index, attr in enumerate(self.schema):
            raw = [row[index] for row in live]
            columns[attr.name] = np.asarray(
                raw, dtype=attr.attr_type.numpy_dtype()
            )
        return GeneratedTable(schema=self.schema, columns=columns)


# --- op generation --------------------------------------------------------------


def _insert_rows(
    rng: random.Random, model: WriteModel, count: int
) -> tuple[tuple, ...]:
    """Rows drawn from (and mutated off) the live domain.

    Values mostly repeat existing ones — exercising dictionary/packed
    codec domains — with occasional out-of-domain ints that force the
    merge-time codec refresh to widen or downgrade.
    """
    live = model.live_rows()
    rows = []
    for _ in range(count):
        row = []
        for index, attr in enumerate(model.schema):
            if live and rng.random() < 0.7:
                value = live[rng.randrange(len(live))][index]
            elif isinstance(attr.attr_type, IntType):
                value = rng.randint(-5_000, 1_000_000)
            else:
                width = attr.attr_type.width
                length = rng.randint(0, width)
                value = bytes(
                    rng.choice(b"abcdefghijklmnopqrstuvwxyz")
                    for _ in range(length)
                )
            if isinstance(attr.attr_type, IntType) and rng.random() < 0.1:
                value = value + rng.choice([-1, 1, 1_000])
            row.append(value)
        rows.append(tuple(row))
    return tuple(rows)


def _delete_predicate(rng: random.Random, model: WriteModel) -> Predicate | None:
    live = model.live_rows()
    if not live:
        return None
    attr = rng.choice(model.schema.attributes)
    index = model.schema.attribute_names.index(attr.name)
    value = live[rng.randrange(len(live))][index]
    op = rng.choice((ComparisonOp.EQ, ComparisonOp.LE, ComparisonOp.GT))
    return Predicate(attr.name, op, value)


def generate_write_ops(
    seed: int, data: GeneratedTable, max_ops: int = 8
) -> list[WriteOp]:
    """A seed-replayable interleaving of insert/delete/merge ops.

    Drawn from an rng stream independent of the case generator's, so
    adding writes to a seed never perturbs the case's tables or query.
    Each op is validated against a scratch model *at its position in
    the sequence*: delete positions always address rows that exist when
    the op runs, including rows staged earlier in the same sequence and
    surviving any interleaved merges.
    """
    rng = random.Random((seed << 4) ^ 0x57524954)
    model = WriteModel(data)
    ops: list[WriteOp] = []
    for _ in range(rng.randint(1, max_ops)):
        roll = rng.random()
        total = len(model.rows)
        if roll < 0.45 or total == 0:
            op = WriteOp(
                kind="insert", rows=_insert_rows(rng, model, rng.randint(1, 6))
            )
        elif roll < 0.65:
            count = min(total, rng.randint(1, 4))
            op = WriteOp(
                kind="delete",
                positions=tuple(sorted(rng.sample(range(total), count))),
            )
        elif roll < 0.8:
            predicate = _delete_predicate(rng, model)
            if predicate is None:
                continue
            op = WriteOp(kind="delete_where", predicate=predicate)
        else:
            op = WriteOp(kind="merge")
        model.apply(op)
        ops.append(op)
    return ops
