"""Materializing sort operator.

Used below :class:`~repro.engine.operators.aggregate.SortAggregate` or
:class:`~repro.engine.operators.merge_join.MergeJoin` when an input is
not already clustered on the key.  Charges ``n log2 n`` comparisons.
"""

from __future__ import annotations

import math

import numpy as np

from repro.engine.blocks import Block, split_into_blocks
from repro.engine.context import ExecutionContext
from repro.engine.governance import GovernedAccumulator
from repro.engine.operators.base import Operator
from repro.errors import PlanError


class SortOperator(Operator):
    """Sort the child's entire output on one attribute."""

    def __init__(
        self,
        context: ExecutionContext,
        child: Operator,
        key: str,
        descending: bool = False,
    ):
        super().__init__(context)
        self.child = child
        self.key = key
        self.descending = descending
        self._ready: list[Block] = []
        self._done = False

    def children(self) -> list[Operator]:
        return [self.child]

    def describe(self) -> str:
        return f"key={self.key}" + (" desc" if self.descending else "")

    def _open(self) -> None:
        self._ready = []
        self._done = False

    def _next(self) -> Block | None:
        if not self._done:
            self._ready = self._compute()
            self._done = True
        if not self._ready:
            return None
        return self._ready.pop(0)

    def _compute(self) -> list[Block]:
        # Materialization is charged against the query's memory budget at
        # block granularity (with a reduced-width retry before aborting).
        accumulator = GovernedAccumulator(self.context.governance, "sort")
        while True:
            block = self.child.next()
            if block is None:
                break
            accumulator.add(block)
        data = accumulator.finish()
        if not len(data):
            return []
        if self.key not in data.columns:
            raise PlanError(f"sort key {self.key!r} missing from input")
        n = len(data)
        self.events.sort_comparisons += int(n * max(1.0, math.log2(n)))
        order = np.argsort(data.column(self.key), kind="stable")
        if self.descending:
            order = order[::-1]
        width = sum(int(col.dtype.itemsize) for col in data.columns.values())
        self.events.values_copied += n * len(data.columns)
        self.events.bytes_copied += n * width
        sorted_block = Block(
            columns={name: col[order] for name, col in data.columns.items()},
            positions=data.positions[order],
        )
        return split_into_blocks(sorted_block, self.context.block_size)
