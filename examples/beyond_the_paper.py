#!/usr/bin/env python3
"""Beyond the paper: the extensions, end to end.

The paper states several things in passing that this library turns into
running code.  This example walks through four of them on one dataset:

1. **C-Store projections** — materialize a vertical partition re-sorted
   on a low-cardinality attribute, let run-length encoding (which the
   paper deliberately excluded) collapse the sort column, and route
   queries to the cheapest covering view.
2. **Secondary index vs scan** (§2.1.1) — find the selectivity where an
   unclustered index stops paying off.
3. **Scan sharing** (§2.1.1) — N concurrent scans off one stream.
4. **PAX** (§6) — row-store I/O with column-store cache behaviour.

Run with::

    python examples/beyond_the_paper.py
"""

import numpy as np

from repro import ExperimentConfig, Layout, ScanQuery, generate_lineitem, load_table
from repro.design import ViewRouter, materialize_view
from repro.engine.executor import run_scan
from repro.engine.predicate import predicate_for_selectivity
from repro.index import SecondaryIndex, breakeven_selectivity, compare_access_paths
from repro.iosim import DiskArraySim, SharedScanQuery, SharedScanSimulator


def cstore_projections(data, base_table) -> None:
    print("1. C-Store projections (materialized views + RLE)")
    view = materialize_view(
        data,
        ("L_LINENUMBER", "L_QUANTITY", "L_EXTENDEDPRICE"),
        name="SALES_BY_LINE",
        sort_key="L_LINENUMBER",
        compress=True,
        use_rle=True,
    )
    print(f"   view {view.name}: {view.bytes_per_tuple:.1f} B/tuple vs "
          f"{base_table.total_bytes / base_table.num_rows:.1f} B/tuple base")
    for attr in view.attributes:
        spec = view.table.schema.attribute(attr).spec
        print(f"     {attr:18s} {spec.describe()}")

    router = ViewRouter(base_table)
    router.add_view(view)
    query = ScanQuery("LINEITEM", select=("L_QUANTITY", "L_EXTENDEDPRICE"))
    table, source = router.route(query)
    result = run_scan(table, query)
    print(f"   routed {query.describe()!r} -> {source} "
          f"({result.num_tuples} tuples)\n")


def index_vs_scan(data, base_table) -> None:
    print("2. Secondary index vs sequential scan (§2.1.1)")
    index = SecondaryIndex("L_SUPPKEY", data.column("L_SUPPKEY"))
    breakeven = breakeven_selectivity(base_table.schema.row_stride)
    print(f"   closed-form breakeven on this testbed: {breakeven:.4%}")
    tuples_per_page = base_table.page_codec.tuples_per_page
    for selectivity in (0.00003, 0.0001, 0.01):
        matches = int(selectivity * 60_000_000)
        costs = compare_access_paths(
            matches, 60_000_000, tuples_per_page, base_table.page_size
        )
        print(f"   {selectivity:8.4%}: seq {costs.sequential_seconds:7.1f}s "
              f"vs index {costs.index_seconds:7.1f}s -> {costs.winner}")
    print()


def scan_sharing_demo(base_table) -> None:
    print("3. Scan sharing (§2.1.1)")
    table_bytes = sum(
        base_table.file_sizes_for([], cardinality=60_000_000).values()
    )
    simulator = SharedScanSimulator(table_bytes, sim=DiskArraySim())
    queries = [SharedScanQuery(f"report-{i}") for i in range(4)]
    outcome = simulator.compare(queries)
    print(f"   4 concurrent scans: independent {outcome.independent_makespan:.0f}s, "
          f"shared {outcome.shared_makespan:.0f}s "
          f"({outcome.speedup:.1f}x)\n")


def pax_demo(data) -> None:
    print("4. PAX: row I/O, column caches (§6)")
    pred = predicate_for_selectivity("L_PARTKEY", data.column("L_PARTKEY"), 0.10)
    query = ScanQuery("LINEITEM", select=("L_PARTKEY", "L_QUANTITY"),
                      predicates=(pred,))
    config = ExperimentConfig()
    from repro.experiments.runner import measure_scan

    for layout in (Layout.ROW, Layout.PAX, Layout.COLUMN):
        table = load_table(data, layout)
        m = measure_scan(table, query, config)
        print(f"   {layout.value:6s}: elapsed {m.elapsed:6.1f}s, "
              f"usr-L2 {m.cpu.usr_l2:5.2f}s, reads {m.bytes_read / 1e9:5.2f} GB")


def main() -> None:
    data = generate_lineitem(8_000, seed=99)
    base_table = load_table(data, Layout.ROW)
    cstore_projections(data, base_table)
    index_vs_scan(data, base_table)
    scan_sharing_demo(base_table)
    pax_demo(data)


if __name__ == "__main__":
    main()
