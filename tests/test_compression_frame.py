"""FOR / FOR-delta codec tests."""

import numpy as np
import pytest

from repro.compression.base import CodecKind
from repro.compression.frame import (
    ForCodec,
    ForDeltaCodec,
    zigzag_decode,
    zigzag_encode,
)
from repro.errors import CompressionError
from repro.types.datatypes import FixedTextType, IntType


class TestZigzag:
    def test_mapping(self):
        values = np.array([0, -1, 1, -2, 2, -64, 63])
        encoded = zigzag_encode(values)
        np.testing.assert_array_equal(encoded[:5], [0, 1, 2, 3, 4])
        assert (encoded >= 0).all()
        np.testing.assert_array_equal(zigzag_decode(encoded), values)

    def test_large_magnitudes(self):
        values = np.array([2**31 - 1, -(2**31)])
        np.testing.assert_array_equal(zigzag_decode(zigzag_encode(values)), values)


class TestForCodec:
    def test_paper_example(self):
        # "a sorted ID attribute (100, 101, 102, 103) will be stored as
        #  (0, 1, 2, 3) under plain FOR"
        values = np.array([100, 101, 102, 103])
        spec = ForCodec.spec_for_values(values, page_capacity=1024)
        assert spec.bits == 2  # max delta 3
        codec = ForCodec(spec, IntType())
        payload, state = codec.encode_page(values)
        assert state.base == 100
        np.testing.assert_array_equal(codec.decode_page(payload, 4, state), values)

    def test_selective_decode_is_per_value(self):
        values = np.arange(500, 600)
        spec = ForCodec.spec_for_values(values, page_capacity=128)
        codec = ForCodec(spec, IntType())
        assert not codec.decodes_whole_page
        payload, state = codec.encode_page(values)
        selected, decoded = codec.decode_positions(
            payload, 100, state, np.array([7])
        )
        assert selected[0] == 507
        assert decoded == 1

    def test_non_monotonic_uses_zigzag(self):
        values = np.array([50, 10, 60, 5])
        spec = ForCodec.spec_for_values(values, page_capacity=16)
        assert spec.zigzag
        codec = ForCodec(spec, IntType())
        payload, state = codec.encode_page(values)
        np.testing.assert_array_equal(codec.decode_page(payload, 4, state), values)

    def test_negative_delta_without_zigzag_rejected(self):
        spec = ForCodec.spec_for_values(np.array([1, 2, 3]), page_capacity=16)
        codec = ForCodec(spec, IntType())
        with pytest.raises(CompressionError):
            codec.encode_page(np.array([5, 1]))

    def test_text_type_rejected(self):
        spec = ForCodec.spec_for_values(np.array([1, 2]), page_capacity=16)
        with pytest.raises(CompressionError):
            ForCodec(spec, FixedTextType(4))


class TestForDeltaCodec:
    def test_paper_example(self):
        # "(100, 101, 102, 103) will be stored as (0, 1, 1, 1) under
        #  FOR-delta; the base value for that page will be 100"
        values = np.array([100, 101, 102, 103])
        spec = ForDeltaCodec.spec_for_values(values, page_capacity=1024)
        assert spec.bits == 1  # max step 1
        codec = ForDeltaCodec(spec, IntType())
        payload, state = codec.encode_page(values)
        assert state.base == 100
        np.testing.assert_array_equal(codec.decode_page(payload, 4, state), values)

    def test_delta_narrower_than_for_on_sorted_keys(self):
        keys = np.cumsum(np.ones(5000, dtype=np.int64))
        for_spec = ForCodec.spec_for_values(keys, page_capacity=4096)
        delta_spec = ForDeltaCodec.spec_for_values(keys, page_capacity=4096)
        assert delta_spec.bits < for_spec.bits

    def test_whole_page_decode_flag(self):
        values = np.arange(10)
        spec = ForDeltaCodec.spec_for_values(values, page_capacity=16)
        codec = ForDeltaCodec(spec, IntType())
        assert codec.decodes_whole_page
        payload, state = codec.encode_page(values)
        selected, decoded = codec.decode_positions(
            payload, 10, state, np.array([2])
        )
        assert selected[0] == 2
        # FOR-delta pays for the full page even for one position.
        assert decoded == 10

    def test_roundtrip_random_walk(self):
        rng = np.random.default_rng(11)
        values = np.cumsum(rng.integers(-20, 21, size=777)) + 10_000
        spec = ForDeltaCodec.spec_for_values(values, page_capacity=777)
        codec = ForDeltaCodec(spec, IntType())
        payload, state = codec.encode_page(values)
        np.testing.assert_array_equal(
            codec.decode_page(payload, 777, state), values
        )

    def test_position_out_of_range_rejected(self):
        values = np.arange(10)
        spec = ForDeltaCodec.spec_for_values(values, page_capacity=16)
        codec = ForDeltaCodec(spec, IntType())
        payload, state = codec.encode_page(values)
        with pytest.raises(CompressionError):
            codec.decode_positions(payload, 10, state, np.array([10]))

    def test_empty_page(self):
        spec = ForDeltaCodec.spec_for_values(np.array([1]), page_capacity=4)
        codec = ForDeltaCodec(spec, IntType())
        payload, state = codec.encode_page(np.array([], dtype=np.int64))
        assert codec.decode_page(payload, 0, state).size == 0

    def test_kind_markers(self):
        assert ForCodec.spec_for_values(np.array([1, 2]), 8).kind is CodecKind.FOR
        assert (
            ForDeltaCodec.spec_for_values(np.array([1, 2]), 8).kind
            is CodecKind.FOR_DELTA
        )
