"""Chart-rendering and synthetic-table tests."""

import numpy as np
import pytest

from repro.data.synthetic import synthetic_table, tuple_width_table
from repro.engine.executor import run_scan
from repro.engine.query import ScanQuery
from repro.errors import SchemaError
from repro.experiments.charts import render_bar_chart, render_series_chart
from repro.storage.layout import Layout
from repro.storage.loader import load_table


class TestBarChart:
    def test_peak_fills_width(self):
        text = render_bar_chart(["a", "b"], [10.0, 5.0], width=10)
        lines = text.splitlines()
        assert lines[0].count("█") == 10
        assert 4 <= lines[1].count("█") <= 5

    def test_values_printed(self):
        text = render_bar_chart(["x"], [3.14159], unit="s")
        assert "3.14s" in text

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            render_bar_chart(["a"], [1.0, 2.0])

    def test_empty(self):
        assert render_bar_chart([], []) == "(empty chart)"

    def test_zero_values_safe(self):
        text = render_bar_chart(["a", "b"], [0.0, 0.0])
        assert "0.00" in text


class TestSeriesChart:
    def test_renders_all_series(self):
        x = [1.0, 2.0, 3.0, 4.0]
        text = render_series_chart(
            x, {"row": [5, 5, 5, 5], "col": [1, 2, 3, 4]}, height=8, width=30
        )
        assert "*" in text and "o" in text
        assert "row" in text and "col" in text

    def test_mismatched_series_rejected(self):
        with pytest.raises(ValueError):
            render_series_chart([1.0, 2.0], {"s": [1.0]})

    def test_empty(self):
        assert render_series_chart([], {}) == "(empty chart)"


class TestSyntheticTables:
    def test_shape(self):
        data = synthetic_table("S", 200, int_attrs=3, text_attrs=2, text_width=6)
        assert data.num_rows == 200
        assert len(data.schema) == 5
        assert data.schema.tuple_width == 3 * 4 + 2 * 6

    def test_distinct_cap(self):
        data = synthetic_table("S", 500, int_attrs=2, distinct_values=4)
        for name in ("i0", "i1"):
            assert len(np.unique(data.column(name))) <= 4

    def test_sorted_first(self):
        data = synthetic_table("S", 300, int_attrs=2, sorted_first=True)
        assert (np.diff(data.column("i0")) >= 0).all()
        # Only the first column is sorted.
        assert not (np.diff(data.column("i1")) >= 0).all()

    def test_deterministic(self):
        a = synthetic_table("S", 100, seed=9)
        b = synthetic_table("S", 100, seed=9)
        np.testing.assert_array_equal(a.column("i0"), b.column("i0"))

    def test_validation(self):
        with pytest.raises(SchemaError):
            synthetic_table("S", 0)
        with pytest.raises(SchemaError):
            synthetic_table("S", 10, int_attrs=0, text_attrs=0)

    def test_tuple_width_table(self):
        data = tuple_width_table(16, 100)
        assert data.schema.tuple_width == 16
        assert len(data.schema) == 4
        with pytest.raises(SchemaError):
            tuple_width_table(10, 100)  # not a multiple of 4

    def test_scannable_in_every_layout(self):
        data = synthetic_table("S", 150, int_attrs=2, text_attrs=1)
        query = ScanQuery("S", select=("i0", "t0"))
        results = [
            run_scan(load_table(data, layout), query)
            for layout in (Layout.ROW, Layout.COLUMN, Layout.PAX)
        ]
        for other in results[1:]:
            np.testing.assert_array_equal(
                other.column("i0"), results[0].column("i0")
            )


class TestCliCharts:
    def test_charts_flag(self, capsys):
        from repro.experiments.__main__ import main

        assert main(["--charts", "--rows", "1000", "figure-2"]) == 0
        out = capsys.readouterr().out
        assert "█" in out
