"""Process-wide metrics: counters and log-scale latency histograms.

A deliberately small Prometheus-shaped metrics layer: named counters
and histograms registered in a process-global :data:`REGISTRY`, with
text-format exposition (`the format Prometheus scrapes
<https://prometheus.io/docs/instrumenting/exposition_formats/>`_).

Hooks live at coarse grain only — per query, per page decode, per retry,
per simulated I/O unit — never per tuple, so the always-on cost is a
handful of integer adds per page.  :func:`disable` turns every
``inc``/``observe`` into an early return for true no-op runs (the
overhead gate in CI measures the engine with the whole obs layer
quiescent).

Beyond cumulative counters and histograms, the registry carries two
workload-level shapes added for the scheduler dashboard:
:class:`Gauge` (a settable level: in-flight queries, sharing hit
ratio) and :class:`SlidingWindow` (recent observations pruned to a
time window, exposed as a Prometheus *summary* with windowed
p50/p95/p99 quantiles and an event rate — the "qps over the last
minute" view cumulative histograms cannot give).

**Concurrency note.**  The registry is process-global and the
cooperative scheduler interleaves many queries in one thread, so every
series here is a *workload sum* by construction — counters from
co-running queries merge, which is the intent.  Per-query attribution
never goes through the registry: it lives on each query's own
``ExecutionContext.events`` and per-query ``SpanTracer`` (see
:mod:`repro.obs.trace`), so interleaving cannot cross-attribute.

Exposition::

    python -m repro.obs.metrics                 # demo workload, print text
    python -m repro.obs.metrics --serve 9100    # serve /metrics over HTTP
    python -m repro.obs.metrics --serve 0 --once   # one scrape, then exit
"""

from __future__ import annotations

import bisect
import math
import time
from collections import deque

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
    "SlidingWindow",
    "enabled",
    "enable",
    "disable",
    "exponential_buckets",
    "render_prometheus",
    "main",
]

#: Module-global switch; checked by every mutation, so a disabled
#: registry costs one attribute load + branch per hook site.
_enabled = True


def enabled() -> bool:
    """Whether metric mutations are currently recorded."""
    return _enabled


def enable() -> None:
    global _enabled
    _enabled = True


def disable() -> None:
    """No-op mode: every ``inc``/``observe`` returns immediately."""
    global _enabled
    _enabled = False


_NAME_OK = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_:")


def _check_name(name: str) -> str:
    if not name or name[0].isdigit() or not set(name) <= _NAME_OK:
        raise ValueError(f"invalid Prometheus metric name: {name!r}")
    return name


def exponential_buckets(start: float, factor: float, count: int) -> list[float]:
    """``count`` log-scale bucket bounds: start, start*factor, ..."""
    if start <= 0 or factor <= 1 or count < 1:
        raise ValueError(
            f"need start > 0, factor > 1, count >= 1: {start}, {factor}, {count}"
        )
    return [start * factor**i for i in range(count)]


#: Default latency buckets: 1 µs → ~67 s in ×2 steps.
LATENCY_BUCKETS = exponential_buckets(1e-6, 2.0, 27)


def _fmt(value: float) -> str:
    """A float in Prometheus sample syntax (integers without the dot)."""
    if isinstance(value, float) and math.isnan(value):
        return "NaN"
    if isinstance(value, int) or (isinstance(value, float) and value.is_integer()):
        return str(int(value))
    return repr(float(value))


class Counter:
    """A monotonically increasing value."""

    __slots__ = ("name", "help", "_value")

    def __init__(self, name: str, help: str):
        self.name = _check_name(name)
        self.help = help
        self._value = 0.0

    @property
    def value(self) -> float:
        return self._value

    def inc(self, amount: float = 1.0) -> None:
        if not _enabled:
            return
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease: {amount}")
        self._value += amount

    def reset(self) -> None:
        self._value = 0.0

    def render(self) -> list[str]:
        return [
            f"# HELP {self.name} {self.help}",
            f"# TYPE {self.name} counter",
            f"{self.name} {_fmt(self._value)}",
        ]


class Histogram:
    """A cumulative histogram over fixed (log-scale) bucket bounds."""

    __slots__ = ("name", "help", "bounds", "_counts", "_sum", "_count")

    def __init__(self, name: str, help: str, buckets: list[float] | None = None):
        self.name = _check_name(name)
        self.help = help
        self.bounds = sorted(buckets if buckets is not None else LATENCY_BUCKETS)
        if not self.bounds:
            raise ValueError(f"histogram {name} needs at least one bucket")
        # One slot per finite bound plus the implicit +Inf overflow slot.
        self._counts = [0] * (len(self.bounds) + 1)
        self._sum = 0.0
        self._count = 0

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    def observe(self, value: float) -> None:
        if not _enabled:
            return
        # `le` semantics: the first bound >= value owns the observation.
        self._counts[bisect.bisect_left(self.bounds, value)] += 1
        self._sum += value
        self._count += 1

    def reset(self) -> None:
        self._counts = [0] * (len(self.bounds) + 1)
        self._sum = 0.0
        self._count = 0

    def bucket_counts(self) -> list[tuple[float, int]]:
        """Cumulative ``(le, count)`` pairs, ending with ``(inf, count)``."""
        out = []
        running = 0
        for bound, count in zip(self.bounds, self._counts):
            running += count
            out.append((bound, running))
        out.append((float("inf"), self._count))
        return out

    def render(self) -> list[str]:
        lines = [
            f"# HELP {self.name} {self.help}",
            f"# TYPE {self.name} histogram",
        ]
        for bound, running in self.bucket_counts():
            le = "+Inf" if bound == float("inf") else _fmt(bound)
            lines.append(f'{self.name}_bucket{{le="{le}"}} {running}')
        lines.append(f"{self.name}_sum {_fmt(self._sum)}")
        lines.append(f"{self.name}_count {self._count}")
        return lines


class Gauge:
    """A level that can go up and down (in-flight queries, hit ratio)."""

    __slots__ = ("name", "help", "_value")

    def __init__(self, name: str, help: str):
        self.name = _check_name(name)
        self.help = help
        self._value = 0.0

    @property
    def value(self) -> float:
        return self._value

    def set(self, value: float) -> None:
        if not _enabled:
            return
        self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        if not _enabled:
            return
        self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    def reset(self) -> None:
        self._value = 0.0

    def render(self) -> list[str]:
        return [
            f"# HELP {self.name} {self.help}",
            f"# TYPE {self.name} gauge",
            f"{self.name} {_fmt(self._value)}",
        ]


class SlidingWindow:
    """Observations kept for ``window_s`` seconds, then pruned.

    Where :class:`Histogram` accumulates forever (the right shape for
    cumulative scrape-and-diff monitoring), a sliding window answers
    "what are latency percentiles and qps *right now*" for the live
    dashboard.  Rendered as a Prometheus summary: windowed
    p50/p95/p99 ``quantile`` samples plus ``_sum``/``_count`` over the
    window (``NaN`` quantiles while empty, per the exposition spec).

    ``clock`` is injectable for deterministic tests; memory is bounded
    by ``max_samples`` (oldest evicted first) regardless of rate.
    """

    __slots__ = ("name", "help", "window_s", "quantiles", "_samples", "_clock")

    def __init__(
        self,
        name: str,
        help: str,
        window_s: float = 60.0,
        quantiles: tuple[float, ...] = (0.5, 0.95, 0.99),
        max_samples: int = 8192,
        clock=time.monotonic,
    ):
        if window_s <= 0:
            raise ValueError(f"window_s must be > 0: {window_s}")
        self.name = _check_name(name)
        self.help = help
        self.window_s = window_s
        self.quantiles = quantiles
        self._samples: deque[tuple[float, float]] = deque(maxlen=max_samples)
        self._clock = clock

    def observe(self, value: float) -> None:
        if not _enabled:
            return
        self._samples.append((self._clock(), float(value)))

    def _prune(self) -> None:
        horizon = self._clock() - self.window_s
        while self._samples and self._samples[0][0] < horizon:
            self._samples.popleft()

    def values(self) -> list[float]:
        """In-window observations, oldest first."""
        self._prune()
        return [value for _, value in self._samples]

    @property
    def count(self) -> int:
        self._prune()
        return len(self._samples)

    def rate(self) -> float:
        """Events per second over the window (qps when fed completions)."""
        self._prune()
        return len(self._samples) / self.window_s

    def percentile(self, q: float) -> float:
        """Nearest-rank percentile of in-window values; NaN when empty.

        ``q`` in [0, 1].
        """
        values = sorted(self.values())
        if not values:
            return math.nan
        rank = max(0, min(len(values) - 1, math.ceil(q * len(values)) - 1))
        return values[rank]

    def reset(self) -> None:
        self._samples.clear()

    def render(self) -> list[str]:
        values = self.values()
        lines = [
            f"# HELP {self.name} {self.help}",
            f"# TYPE {self.name} summary",
        ]
        for q in self.quantiles:
            lines.append(
                f'{self.name}{{quantile="{_fmt(q)}"}} {_fmt(self.percentile(q))}'
            )
        lines.append(f"{self.name}_sum {_fmt(sum(values))}")
        lines.append(f"{self.name}_count {len(values)}")
        return lines


class MetricsRegistry:
    """Named metrics plus their text-format exposition."""

    def __init__(self):
        self._metrics: dict[str, Counter | Gauge | Histogram | SlidingWindow] = {}

    def counter(self, name: str, help: str) -> Counter:
        """Get or create a counter (idempotent per name)."""
        return self._register(name, lambda: Counter(name, help), Counter)

    def gauge(self, name: str, help: str) -> Gauge:
        """Get or create a gauge (idempotent per name)."""
        return self._register(name, lambda: Gauge(name, help), Gauge)

    def histogram(
        self, name: str, help: str, buckets: list[float] | None = None
    ) -> Histogram:
        """Get or create a histogram (idempotent per name)."""
        return self._register(name, lambda: Histogram(name, help, buckets), Histogram)

    def window(
        self, name: str, help: str, window_s: float = 60.0
    ) -> SlidingWindow:
        """Get or create a sliding-window summary (idempotent per name)."""
        return self._register(
            name, lambda: SlidingWindow(name, help, window_s), SlidingWindow
        )

    def _register(self, name, build, expected):
        metric = self._metrics.get(name)
        if metric is None:
            metric = self._metrics[name] = build()
        elif not isinstance(metric, expected):
            raise ValueError(
                f"metric {name!r} already registered as {type(metric).__name__}"
            )
        return metric

    def get(self, name: str) -> Counter | Gauge | Histogram | SlidingWindow:
        return self._metrics[name]

    def names(self) -> list[str]:
        return sorted(self._metrics)

    def reset_values(self) -> None:
        """Zero every metric (tests); registrations are kept."""
        for metric in self._metrics.values():
            metric.reset()

    def render(self) -> str:
        """Prometheus text exposition format, newline-terminated."""
        lines: list[str] = []
        for name in self.names():
            lines.extend(self._metrics[name].render())
        return "\n".join(lines) + "\n"


#: The process-wide registry every instrumented subsystem writes to.
REGISTRY = MetricsRegistry()


def render_prometheus() -> str:
    """Exposition text for the global registry."""
    return REGISTRY.render()


# --- the engine's standard metrics ---------------------------------------
# Registered at import so exposition always shows the full set (a scrape
# before the first query still sees the series at zero).

QUERIES = REGISTRY.counter(
    "repro_queries_total", "Scan queries executed by the engine."
)
QUERY_SECONDS = REGISTRY.histogram(
    "repro_query_seconds", "Wall-clock latency of one query execution."
)
PAGE_DECODE_SECONDS = REGISTRY.histogram(
    "repro_page_decode_seconds", "Wall-clock time to read+decode one page."
)
PAGES_SALVAGED = REGISTRY.counter(
    "repro_pages_salvaged_total",
    "Corrupt pages skipped by salvage-mode scans instead of aborting.",
)
RETRY_ATTEMPTS = REGISTRY.counter(
    "repro_io_retry_attempts_total",
    "Transient-read retries issued by the storage retry policy.",
)
RETRY_BACKOFF_SECONDS = REGISTRY.counter(
    "repro_io_retry_backoff_seconds_total",
    "Total backoff delay scheduled before storage retries.",
)
RETRY_EXHAUSTED = REGISTRY.counter(
    "repro_io_retry_exhausted_total",
    "Reads that failed even after exhausting the retry budget.",
)
IO_UNITS = REGISTRY.counter(
    "repro_iosim_units_total", "I/O units served by the disk-array simulator."
)
IO_BYTES = REGISTRY.counter(
    "repro_iosim_bytes_total", "Bytes transferred by the disk-array simulator."
)
IO_SEEKS = REGISTRY.counter(
    "repro_iosim_seeks_total",
    "Simulated head repositionings (non-contiguous I/O units).",
)
GOVERNANCE_TIMEOUTS = REGISTRY.counter(
    "repro_governance_timeouts_total",
    "Queries aborted because their wall-clock deadline passed.",
)
GOVERNANCE_CANCELLATIONS = REGISTRY.counter(
    "repro_governance_cancellations_total",
    "Queries aborted by a tripped cancellation token.",
)
GOVERNANCE_BUDGET_ABORTS = REGISTRY.counter(
    "repro_governance_budget_aborts_total",
    "Spill-free aborts after a memory budget was exceeded.",
)
GOVERNANCE_NARROW_RETRIES = REGISTRY.counter(
    "repro_governance_narrow_retries_total",
    "Reduced-width retries that kept a working set inside its budget.",
)
GOVERNANCE_BREAKER_TRIPS = REGISTRY.counter(
    "repro_governance_breaker_trips_total",
    "Circuit-breaker openings for repeatedly failing partitions.",
)
GOVERNANCE_PARTITION_RETRIES = REGISTRY.counter(
    "repro_governance_partition_retries_total",
    "Single-partition kill-and-retry recoveries by the supervisor.",
)
GOVERNANCE_DEGRADATIONS = REGISTRY.counter(
    "repro_governance_degradations_total",
    "Worker-count degradation steps taken by the supervision ladder.",
)
GOVERNANCE_STALLS = REGISTRY.counter(
    "repro_governance_stalls_total",
    "Workers declared stalled after missing their heartbeat window.",
)
SCHEDULER_SUBMITTED = REGISTRY.counter(
    "repro_scheduler_submitted_total",
    "Queries submitted to the concurrent scheduler.",
)
SCHEDULER_COMPLETED = REGISTRY.counter(
    "repro_scheduler_completed_total",
    "Scheduled queries that completed with a result.",
)
SCHEDULER_FAILED = REGISTRY.counter(
    "repro_scheduler_failed_total",
    "Scheduled queries that finished with a typed error.",
)
SCHEDULER_QUEUE_DEPTH = REGISTRY.histogram(
    "repro_scheduler_queue_depth",
    "Admission-queue depth observed at each submit.",
    buckets=exponential_buckets(1, 2.0, 11),
)
SCHEDULER_ADMISSION_WAIT = REGISTRY.histogram(
    "repro_scheduler_admission_wait_seconds",
    "Queue time between submit and admission (counted in the deadline).",
)
SCHEDULER_SHARE_HITS = REGISTRY.counter(
    "repro_scheduler_share_hits_total",
    "Queries that attached to an in-progress shared scan.",
)
SCHEDULER_SHARE_MISSES = REGISTRY.counter(
    "repro_scheduler_share_misses_total",
    "Queries that had to start a fresh scan stream.",
)
SCHEDULER_SHARED_PAGES = REGISTRY.counter(
    "repro_scheduler_shared_pages_total",
    "Pages read by shared scan streams (each counted once per pass).",
)
SCHEDULER_INFLIGHT = REGISTRY.gauge(
    "repro_scheduler_inflight",
    "Queries currently admitted and running in the scheduler.",
)
SHARE_HIT_RATIO = REGISTRY.gauge(
    "repro_scheduler_share_hit_ratio",
    "Fraction of scheduled scans that attached to an in-progress stream.",
)
WINDOW_QUERY_LATENCY = REGISTRY.window(
    "repro_window_query_latency_seconds",
    "Per-query latency over the trailing 60 s window (summary quantiles).",
    window_s=60.0,
)
WINDOW_QPS = REGISTRY.gauge(
    "repro_window_qps",
    "Query completions per second over the trailing 60 s window.",
)
WRITE_STAGED_ROWS = REGISTRY.counter(
    "repro_write_staged_rows_total",
    "Rows staged into write-optimized stores via insert.",
)
WRITE_DELETED_ROWS = REGISTRY.counter(
    "repro_write_deleted_rows_total",
    "Rows newly marked in delete vectors (idempotent re-deletes excluded).",
)
WRITE_STAGED_BYTES = REGISTRY.gauge(
    "repro_write_staged_bytes",
    "Uncompressed bytes currently staged across all write stores.",
)
WRITE_HYBRID_QUERIES = REGISTRY.counter(
    "repro_write_hybrid_queries_total",
    "Queries answered through the hybrid base+delta overlay.",
)
WRITE_MERGES = REGISTRY.counter(
    "repro_write_merges_total",
    "Write-store merges committed into the read store.",
)
WRITE_MERGE_ABORTS = REGISTRY.counter(
    "repro_write_merge_aborts_total",
    "Merges aborted (crash injection, governance, or I/O failure).",
)
WRITE_MERGE_SECONDS = REGISTRY.histogram(
    "repro_write_merge_seconds",
    "Wall-clock time of one write-store merge (rebuild through commit).",
)
WRITE_MERGED_ROWS = REGISTRY.counter(
    "repro_write_merged_rows_total",
    "Staged rows drained into the read store by committed merges.",
)
WRITE_RECLAIMED_ROWS = REGISTRY.counter(
    "repro_write_reclaimed_rows_total",
    "Deleted rows physically reclaimed by committed merges.",
)


# --- exposition CLI -------------------------------------------------------


def _demo_workload(rows: int) -> None:
    """A few queries so the exposition shows live numbers."""
    from repro.data.tpch import generate_orders
    from repro.database import Database

    db = Database()
    db.create_table(generate_orders(rows, seed=11))
    predicate = db.predicate("ORDERS", "O_TOTALPRICE", 0.25)
    db.query("ORDERS", select=("O_ORDERKEY", "O_TOTALPRICE"))
    db.query(
        "ORDERS",
        select=("O_ORDERDATE", "O_TOTALPRICE"),
        predicates=(predicate,),
    )


def _serve(port: int, once: bool = False) -> int:
    """Serve the exposition until SIGINT/SIGTERM (or one scrape).

    Shutdown is cooperative: the signal handlers only set a flag, and
    the accept loop polls it every ``server.timeout`` seconds, so a
    ctrl-C mid-scrape finishes the response, closes the listening
    socket (released immediately — no ``Address already in use`` on
    restart), and exits 0 with no traceback.  ``port`` 0 binds an
    OS-assigned port, printed before the first scrape.  With ``once``
    the server answers exactly one request and exits (for scripts that
    want a real HTTP scrape without managing a daemon).
    """
    import http.server
    import signal

    stop = {"flag": False}

    class Handler(http.server.BaseHTTPRequestHandler):
        def do_GET(self):
            body = render_prometheus().encode()
            self.send_response(200)
            self.send_header("Content-Type", "text/plain; version=0.0.4")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)
            if once:
                stop["flag"] = True

        def log_message(self, *args):
            pass

    server = http.server.HTTPServer(("", port), Handler)
    server.timeout = 0.2

    def _on_signal(signum, frame):
        stop["flag"] = True

    previous = {
        sig: signal.signal(sig, _on_signal)
        for sig in (signal.SIGINT, signal.SIGTERM)
    }
    bound = server.server_address[1]
    print(
        f"serving Prometheus metrics on :{bound}/metrics "
        f"({'one scrape' if once else 'SIGINT/SIGTERM to stop'})",
        flush=True,
    )
    try:
        while not stop["flag"]:
            # handle_request honours server.timeout, so the stop flag
            # is observed within 200 ms of the signal.
            server.handle_request()
    finally:
        server.server_close()
        for sig, handler in previous.items():
            signal.signal(sig, handler)
    print("metrics server stopped", flush=True)
    return 0


def main(argv: list[str] | None = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.metrics",
        description="Prometheus text-format exposition of the engine metrics.",
    )
    parser.add_argument(
        "--rows",
        type=int,
        default=2_000,
        help="rows of the demo workload run before exposition (0 to skip)",
    )
    parser.add_argument(
        "--serve",
        type=int,
        metavar="PORT",
        default=None,
        help="serve the exposition over HTTP instead of printing once "
        "(0 binds an OS-assigned port, printed at startup)",
    )
    parser.add_argument(
        "--once",
        action="store_true",
        help="with --serve: answer exactly one scrape, then exit",
    )
    args = parser.parse_args(argv)
    if args.once and args.serve is None:
        parser.error("--once requires --serve")
    if args.rows:
        _demo_workload(args.rows)
    if args.serve is not None:
        return _serve(args.serve, once=args.once)
    print(render_prometheus(), end="")
    return 0


if __name__ == "__main__":  # pragma: no cover
    # Under ``python -m repro.obs.metrics`` runpy executes this file as a
    # *second* module instance (``__main__``) with its own REGISTRY; the
    # engine's hooks write to the instance imported via ``repro.obs``.
    # Delegate to that canonical instance so the exposition shows the
    # demo workload's live numbers instead of a parallel zeroed registry.
    from repro.obs import metrics as _canonical

    raise SystemExit(_canonical.main())
