"""The paper's two tables: LINEITEM (150 B) and ORDERS (32 B).

Schemas follow Figure 5 exactly, including the paper's modifications to
the TPC-H spec: all decimals stored as four-byte integers, ``L_COMMENT``
as fixed 69-byte text (bringing LINEITEM to 150 bytes), and ORDERS
stripped of two text fields (32 bytes).  The compressed variants
LINEITEM-Z and ORDERS-Z pin the per-attribute schemes of Figure 5's
right-hand column.
"""

from __future__ import annotations

import numpy as np

from repro.compression.base import CodecKind, CodecSpec
from repro.compression.dictionary import DictionaryCodec
from repro.compression.frame import ForCodec, ForDeltaCodec
from repro.data import distributions as dist
from repro.data.generator import GeneratedTable
from repro.errors import SchemaError
from repro.types.datatypes import FixedTextType, IntType
from repro.types.schema import Attribute, TableSchema

#: Epoch shift between ORDERS dates (days since 1970) and LINEITEM dates
#: (days since 1900); see :mod:`repro.data.distributions`.
_EPOCH_SHIFT = dist.DAYS_1900_TO_1992 - dist.DAYS_1970_TO_1992


def lineitem_schema() -> TableSchema:
    """The 16-attribute, 150-byte LINEITEM table of Figure 5 (left)."""
    integer = IntType()
    return TableSchema(
        name="LINEITEM",
        attributes=(
            Attribute("L_PARTKEY", integer),
            Attribute("L_ORDERKEY", integer),
            Attribute("L_SUPPKEY", integer),
            Attribute("L_LINENUMBER", integer),
            Attribute("L_QUANTITY", integer),
            Attribute("L_EXTENDEDPRICE", integer),
            Attribute("L_RETURNFLAG", FixedTextType(1)),
            Attribute("L_LINESTATUS", FixedTextType(1)),
            Attribute("L_SHIPINSTRUCT", FixedTextType(25)),
            Attribute("L_SHIPMODE", FixedTextType(10)),
            Attribute("L_COMMENT", FixedTextType(69)),
            Attribute("L_DISCOUNT", integer),
            Attribute("L_TAX", integer),
            Attribute("L_SHIPDATE", integer),
            Attribute("L_COMMITDATE", integer),
            Attribute("L_RECEIPTDATE", integer),
        ),
    )


def orders_schema() -> TableSchema:
    """The 7-attribute, 32-byte ORDERS table of Figure 5 (left)."""
    integer = IntType()
    return TableSchema(
        name="ORDERS",
        attributes=(
            Attribute("O_ORDERDATE", integer),
            Attribute("O_ORDERKEY", integer),
            Attribute("O_CUSTKEY", integer),
            Attribute("O_ORDERSTATUS", FixedTextType(1)),
            Attribute("O_ORDERPRIORITY", FixedTextType(11)),
            Attribute("O_TOTALPRICE", integer),
            Attribute("O_SHIPPRIORITY", integer),
        ),
    )


# --- Figure 5 compressed variants ----------------------------------------

#: Scheme per attribute for LINEITEM-Z (Figure 5, right).  ``None``
#: leaves the attribute uncompressed; an ``(kind, bits)`` pair pins the
#: packed width; a bare kind lets the loader size the codec from data.
FIG5_LINEITEM_SCHEMES: dict[str, object] = {
    "L_PARTKEY": None,
    "L_ORDERKEY": (CodecKind.FOR_DELTA, 8),
    "L_SUPPKEY": None,
    "L_LINENUMBER": (CodecKind.PACK, 3),
    "L_QUANTITY": (CodecKind.PACK, 6),
    "L_EXTENDEDPRICE": None,
    "L_RETURNFLAG": (CodecKind.DICT, 2),
    "L_LINESTATUS": None,
    "L_SHIPINSTRUCT": (CodecKind.DICT, 2),
    "L_SHIPMODE": (CodecKind.DICT, 3),
    "L_COMMENT": (CodecKind.PACK, 28 * 8),
    "L_DISCOUNT": (CodecKind.DICT, 4),
    "L_TAX": (CodecKind.DICT, 4),
    "L_SHIPDATE": (CodecKind.PACK, 16),
    "L_COMMITDATE": (CodecKind.PACK, 16),
    "L_RECEIPTDATE": (CodecKind.PACK, 16),
}

#: Scheme per attribute for ORDERS-Z (Figure 5, right).
FIG5_ORDERS_SCHEMES: dict[str, object] = {
    "O_ORDERDATE": (CodecKind.PACK, 14),
    "O_ORDERKEY": (CodecKind.FOR_DELTA, 8),
    "O_CUSTKEY": None,
    "O_ORDERSTATUS": (CodecKind.DICT, 2),
    "O_ORDERPRIORITY": (CodecKind.DICT, 3),
    "O_TOTALPRICE": None,
    "O_SHIPPRIORITY": (CodecKind.PACK, 1),
}


def _build_spec(
    scheme: object,
    attr_type,
    values: np.ndarray,
    page_capacity_hint: int,
) -> CodecSpec | None:
    """Materialize one Figure 5 scheme entry into a codec spec."""
    if scheme is None:
        return None
    if isinstance(scheme, CodecKind):
        kind, bits = scheme, None
    else:
        kind, bits = scheme  # type: ignore[misc]
    if kind is CodecKind.DICT:
        spec = DictionaryCodec.spec_for_values(values)
        if bits is not None and spec.bits > bits:
            raise SchemaError(
                f"data needs {spec.bits}-bit dictionary codes, "
                f"Figure 5 allows {bits}"
            )
        return spec
    if kind is CodecKind.FOR:
        spec = ForCodec.spec_for_values(values, page_capacity_hint)
    elif kind is CodecKind.FOR_DELTA:
        spec = ForDeltaCodec.spec_for_values(values, page_capacity_hint)
    elif kind is CodecKind.PACK:
        if bits is None:
            raise SchemaError("PACK scheme entries must pin a width")
        return CodecSpec(kind=kind, bits=bits)
    else:
        raise SchemaError(f"unsupported scheme kind: {kind}")
    if bits is not None:
        if spec.bits > bits:
            raise SchemaError(
                f"data needs {spec.bits}-bit deltas, Figure 5 allows {bits}"
            )
        spec = CodecSpec(kind=spec.kind, bits=bits, zigzag=spec.zigzag)
    return spec


def apply_fig5_compression(
    table: GeneratedTable, page_capacity_hint: int = 4096
) -> GeneratedTable:
    """Return the table bound to its Figure 5 compressed schema (…-Z)."""
    schema = table.schema
    if schema.name.startswith("LINEITEM"):
        schemes = FIG5_LINEITEM_SCHEMES
        new_name = "LINEITEM-Z"
    elif schema.name.startswith("ORDERS"):
        schemes = FIG5_ORDERS_SCHEMES
        new_name = "ORDERS-Z"
    else:
        raise SchemaError(f"no Figure 5 schemes for table {schema.name!r}")
    new_attrs = []
    for attr in schema:
        spec = _build_spec(
            schemes[attr.name],
            attr.attr_type,
            table.columns[attr.name],
            page_capacity_hint,
        )
        new_attrs.append(
            Attribute(attr.name, attr.attr_type, codec_spec=spec)
        )
    compressed = TableSchema(name=new_name, attributes=tuple(new_attrs))
    return table.with_schema(compressed)


# --- Row generation --------------------------------------------------------


def _order_keys(rng: np.random.Generator, num_orders: int) -> np.ndarray:
    """Sorted, sparse order keys with small consecutive steps.

    TPC-H order keys are sparse; steps of 1-4 keep the FOR-delta width
    within Figure 5's 8 bits.
    """
    steps = rng.integers(1, 5, size=num_orders)
    return np.cumsum(steps)


def generate_orders(num_rows: int, seed: int = 1) -> GeneratedTable:
    """Generate an ORDERS table (sorted by O_ORDERKEY)."""
    if num_rows <= 0:
        raise SchemaError(f"num_rows must be positive: {num_rows}")
    rng = np.random.default_rng(np.random.PCG64(seed))
    keys = _order_keys(rng, num_rows)
    columns = {
        "O_ORDERDATE": dist.order_date_for_keys(keys),
        "O_ORDERKEY": keys,
        "O_CUSTKEY": rng.integers(1, 150_000, size=num_rows),
        "O_ORDERSTATUS": dist.sample_categorical(
            rng, dist.ORDER_STATUSES, num_rows, width=1
        ),
        "O_ORDERPRIORITY": dist.sample_categorical(
            rng, dist.ORDER_PRIORITIES, num_rows, width=11
        ),
        "O_TOTALPRICE": rng.integers(90_000, 40_000_000, size=num_rows),
        "O_SHIPPRIORITY": np.zeros(num_rows, dtype=np.int64),
    }
    return GeneratedTable(schema=orders_schema(), columns=columns)


def generate_lineitem(
    num_rows: int | None, seed: int = 1, order_keys: np.ndarray | None = None
) -> GeneratedTable:
    """Generate a LINEITEM table (sorted by L_ORDERKEY, then line number).

    When ``order_keys`` is given (from a generated ORDERS table), line
    items reference those orders so the two tables merge-join correctly;
    otherwise a fresh key sequence is generated.  ``num_rows=None``
    takes every line item the 1-7-per-order draw produces (only valid
    with ``order_keys``).
    """
    if num_rows is not None and num_rows <= 0:
        raise SchemaError(f"num_rows must be positive: {num_rows}")
    rng = np.random.default_rng(np.random.PCG64(seed + 7))
    if order_keys is None:
        if num_rows is None:
            raise SchemaError("num_rows=None requires explicit order_keys")
        # TPC-H: on average four line items per order; generate enough
        # orders that the 1-7 line-count draw cannot undershoot.
        order_keys = _order_keys(rng, max(1, num_rows // 2 + 8))
    order_keys = np.asarray(order_keys, dtype=np.int64)

    # Each order gets 1-7 line items; take the first num_rows of them.
    per_order = rng.integers(1, 8, size=order_keys.size)
    all_line_keys = np.repeat(order_keys, per_order)
    if num_rows is None:
        num_rows = int(all_line_keys.size)
    line_orderkeys = all_line_keys[:num_rows]
    if line_orderkeys.size < num_rows:
        raise SchemaError(
            f"only {line_orderkeys.size} line items possible from "
            f"{order_keys.size} orders, need {num_rows}"
        )
    # Line numbers restart at 1 for every order.
    starts = np.flatnonzero(np.diff(line_orderkeys, prepend=-1))
    counts = np.arange(num_rows) - np.repeat(starts, np.diff(np.append(starts, num_rows)))
    line_numbers = counts + 1

    order_dates = dist.order_date_for_keys(line_orderkeys) + _EPOCH_SHIFT
    quantity = rng.integers(1, 51, size=num_rows)
    part_price = rng.integers(90_000, 200_001, size=num_rows)
    ship_dates = order_dates + rng.integers(1, 122, size=num_rows)
    columns = {
        "L_PARTKEY": rng.integers(1, 2_000_000, size=num_rows),
        "L_ORDERKEY": line_orderkeys,
        "L_SUPPKEY": rng.integers(1, 100_000, size=num_rows),
        "L_LINENUMBER": line_numbers,
        "L_QUANTITY": quantity,
        "L_EXTENDEDPRICE": quantity * part_price,
        "L_RETURNFLAG": dist.sample_categorical(
            rng, dist.RETURN_FLAGS, num_rows, width=1
        ),
        "L_LINESTATUS": dist.sample_categorical(
            rng, dist.LINE_STATUSES, num_rows, width=1
        ),
        "L_SHIPINSTRUCT": dist.sample_categorical(
            rng, dist.SHIP_INSTRUCTIONS, num_rows, width=25
        ),
        "L_SHIPMODE": dist.sample_categorical(
            rng, dist.SHIP_MODES, num_rows, width=10
        ),
        "L_COMMENT": dist.sample_comments(
            rng, num_rows, max_length=28, field_width=69
        ),
        "L_DISCOUNT": rng.integers(0, 11, size=num_rows),
        "L_TAX": rng.integers(0, 9, size=num_rows),
        "L_SHIPDATE": ship_dates,
        "L_COMMITDATE": order_dates + rng.integers(30, 91, size=num_rows),
        "L_RECEIPTDATE": ship_dates + rng.integers(1, 31, size=num_rows),
    }
    return GeneratedTable(schema=lineitem_schema(), columns=columns)


def generate_tpch_pair(
    num_orders: int, seed: int = 1
) -> tuple[GeneratedTable, GeneratedTable]:
    """Generate a consistent (ORDERS, LINEITEM) pair for join queries.

    Every order receives its natural 1-7 line items (about four per
    order on average, the TPC-H ratio).
    """
    orders = generate_orders(num_orders, seed=seed)
    lineitem = generate_lineitem(
        None, seed=seed, order_keys=orders.column("O_ORDERKEY")
    )
    return orders, lineitem
