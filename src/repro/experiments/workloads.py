"""Prepared experiment workloads: generated tables loaded in both layouts.

Tables are cached per (kind, rows, seed, compressed) because every
figure sweeps many queries over the same data.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.compression.base import CodecKind, CodecSpec
from repro.compression.frame import ForCodec
from repro.data.generator import GeneratedTable
from repro.data.tpch import (
    apply_fig5_compression,
    generate_lineitem,
    generate_orders,
)
from repro.engine.predicate import Predicate, predicate_for_selectivity
from repro.errors import SchemaError
from repro.storage.layout import Layout
from repro.storage.loader import load_table
from repro.storage.table import ColumnTable, RowTable
from repro.types.schema import TableSchema


@dataclass(frozen=True)
class PreparedTable:
    """One generated table materialized in both physical layouts."""

    data: GeneratedTable
    row: RowTable
    column: ColumnTable

    @property
    def schema(self) -> TableSchema:
        return self.data.schema

    def predicate(self, attr: str, selectivity: float) -> Predicate:
        """A selectivity-calibrated predicate on one attribute."""
        return predicate_for_selectivity(
            attr, self.data.column(attr), selectivity
        )

    def attrs_prefix(self, count: int) -> tuple[str, ...]:
        """The first ``count`` attributes in schema order (Figure 5)."""
        names = self.schema.attribute_names
        if not 1 <= count <= len(names):
            raise SchemaError(f"cannot select {count} of {len(names)} attributes")
        return names[:count]


_CACHE: dict[tuple, PreparedTable] = {}


def _prepare(data: GeneratedTable, key: tuple) -> PreparedTable:
    if key not in _CACHE:
        _CACHE[key] = PreparedTable(
            data=data,
            row=load_table(data, Layout.ROW),
            column=load_table(data, Layout.COLUMN),
        )
    return _CACHE[key]


def prepare_lineitem(
    num_rows: int, seed: int = 1, compressed: bool = False
) -> PreparedTable:
    """LINEITEM (or LINEITEM-Z) in both layouts."""
    key = ("lineitem", num_rows, seed, compressed)
    if key in _CACHE:
        return _CACHE[key]
    data = generate_lineitem(num_rows, seed=seed)
    if compressed:
        data = apply_fig5_compression(data)
    return _prepare(data, key)


def prepare_orders(
    num_rows: int,
    seed: int = 1,
    compressed: bool = False,
    orderkey_plain_for: bool = False,
) -> PreparedTable:
    """ORDERS (or ORDERS-Z) in both layouts.

    ``orderkey_plain_for`` switches ``O_ORDERKEY`` from Figure 5's
    FOR-delta to plain FOR — the Figure 9 comparison.  Plain FOR needs
    more bits (differences from the page base instead of the previous
    value: 16 instead of 8 for sorted keys) but decodes values
    individually.
    """
    key = ("orders", num_rows, seed, compressed, orderkey_plain_for)
    if key in _CACHE:
        return _CACHE[key]
    data = generate_orders(num_rows, seed=seed)
    if compressed:
        data = apply_fig5_compression(data)
        if orderkey_plain_for:
            spec = ForCodec.spec_for_values(data.column("O_ORDERKEY"), 4096)
            # The paper stores plain-FOR order keys in 16 bits.
            spec = CodecSpec(
                kind=CodecKind.FOR, bits=max(spec.bits, 16), zigzag=spec.zigzag
            )
            schema = data.schema.with_codecs({"O_ORDERKEY": spec})
            data = data.with_schema(
                TableSchema(name="ORDERS-Z-FOR", attributes=schema.attributes)
            )
    elif orderkey_plain_for:
        raise SchemaError("orderkey_plain_for requires compressed=True")
    return _prepare(data, key)


def clear_cache() -> None:
    """Drop all prepared tables (tests that care about memory)."""
    _CACHE.clear()
