"""PAX layout tests (the Section 6 extension)."""

import numpy as np
import pytest

from repro.data.tpch import apply_fig5_compression, generate_orders
from repro.engine.executor import run_scan
from repro.engine.context import ExecutionContext
from repro.engine.query import ScanQuery
from repro.errors import PageFormatError
from repro.storage.layout import Layout
from repro.storage.loader import load_table
from repro.storage.pax import PaxPageCodec


@pytest.fixture(scope="module")
def pax_orders(orders_data):
    return load_table(orders_data, Layout.PAX)


class TestPaxPageCodec:
    def test_capacity_close_to_row_pages(self, orders_data, orders_row):
        codec = PaxPageCodec(orders_data.schema)
        # Same content per page modulo alignment slack: within a few
        # tuples of the row-page capacity.
        assert abs(codec.tuples_per_page - orders_row.page_codec.tuples_per_page) <= 8

    def test_roundtrip_all_columns(self, orders_data):
        codec = PaxPageCodec(orders_data.schema)
        n = codec.tuples_per_page
        slices = {k: v[:n] for k, v in orders_data.columns.items()}
        page = codec.encode(3, slices)
        page_id, count, columns = codec.decode_columns(page)
        assert (page_id, count) == (3, n)
        for name, expected in slices.items():
            np.testing.assert_array_equal(columns[name], expected)

    def test_decode_single_attribute(self, orders_data):
        codec = PaxPageCodec(orders_data.schema)
        n = 50
        slices = {k: v[:n] for k, v in orders_data.columns.items()}
        page = codec.encode(0, slices)
        _pid, count, values = codec.decode_attribute(page, "O_CUSTKEY")
        assert count == n
        np.testing.assert_array_equal(values, slices["O_CUSTKEY"])

    def test_minipages_are_disjoint(self, orders_data):
        codec = PaxPageCodec(orders_data.schema)
        extents = [
            codec.minipage_extent(i) for i in range(len(orders_data.schema))
        ]
        end = 0
        for offset, length in extents:
            assert offset == end
            end = offset + length

    def test_overflow_rejected(self, orders_data):
        codec = PaxPageCodec(orders_data.schema)
        n = codec.tuples_per_page + 1
        slices = {k: v[:n] for k, v in orders_data.columns.items()}
        with pytest.raises(PageFormatError):
            codec.encode(0, slices)

    def test_compressed_minipages(self, orders_z_data):
        codec = PaxPageCodec(orders_z_data.schema)
        # 92-bit packed tuples: far more per page than the 32-byte rows.
        assert codec.tuples_per_page > 300
        n = codec.tuples_per_page
        slices = {k: v[:n] for k, v in orders_z_data.columns.items()}
        page = codec.encode(0, slices)
        _pid, _count, columns = codec.decode_columns(page)
        for name, expected in slices.items():
            np.testing.assert_array_equal(columns[name], expected)


class TestPaxTable:
    def test_layout_marker(self, pax_orders):
        assert pax_orders.layout is Layout.PAX

    def test_read_column_roundtrip(self, orders_data, pax_orders):
        for name in orders_data.schema.attribute_names:
            np.testing.assert_array_equal(
                pax_orders.read_column(name), orders_data.column(name)
            )

    def test_io_matches_row_store(self, orders_row, pax_orders):
        """PAX does not change page contents: projection-independent I/O."""
        narrow = pax_orders.file_sizes_for(["O_ORDERKEY"], cardinality=1_000_000)
        wide = pax_orders.file_sizes_for(
            list(pax_orders.schema.attribute_names), cardinality=1_000_000
        )
        assert narrow == wide
        row_bytes = sum(orders_row.file_sizes_for([], 1_000_000).values())
        pax_bytes = sum(wide.values())
        assert abs(pax_bytes - row_bytes) / row_bytes < 0.10


class TestPaxScanner:
    def test_results_match_row_scanner(self, orders_data, orders_row, pax_orders):
        predicate = __import__(
            "repro.engine.predicate", fromlist=["predicate_for_selectivity"]
        ).predicate_for_selectivity(
            "O_ORDERDATE", orders_data.column("O_ORDERDATE"), 0.10
        )
        query = ScanQuery(
            "ORDERS",
            select=("O_ORDERDATE", "O_CUSTKEY", "O_ORDERPRIORITY"),
            predicates=(predicate,),
        )
        a = run_scan(orders_row, query)
        b = run_scan(pax_orders, query)
        np.testing.assert_array_equal(a.positions, b.positions)
        for name in query.select:
            np.testing.assert_array_equal(a.column(name), b.column(name))

    def test_memory_traffic_scales_with_projection(self, orders_data, pax_orders):
        from repro.engine.predicate import predicate_for_selectivity

        predicate = predicate_for_selectivity(
            "O_ORDERDATE", orders_data.column("O_ORDERDATE"), 0.10
        )
        few = ExecutionContext()
        run_scan(
            pax_orders,
            ScanQuery("ORDERS", select=("O_ORDERDATE",), predicates=(predicate,)),
            few,
        )
        many = ExecutionContext()
        run_scan(
            pax_orders,
            ScanQuery(
                "ORDERS",
                select=tuple(orders_data.schema.attribute_names),
                predicates=(predicate,),
            ),
            many,
        )
        # Unlike a row scan, PAX touches fewer lines for fewer attrs.
        assert few.events.mem_seq_lines < many.events.mem_seq_lines / 3

    def test_empty_result_keeps_schema(self, orders_data, pax_orders):
        from repro.engine.predicate import ComparisonOp, Predicate

        query = ScanQuery(
            "ORDERS",
            select=("O_CUSTKEY",),
            predicates=(Predicate("O_ORDERDATE", ComparisonOp.LT, -1),),
        )
        result = run_scan(pax_orders, query)
        assert result.num_tuples == 0
        assert result.column("O_CUSTKEY").size == 0
