"""Figure 11 — competing disk traffic (prefetch 48 / 8 / 2).

The ORDERS selection query with a concurrent row-system scan over a
different file (LINEITEM-sized), the competitor's prefetch matched to
the measured system's.  The pipelined column scanner keeps a request
for the next column outstanding while the current column is served
("one step ahead") and is favored by the FIFO controller; the "slow"
variant that waits for each column's request before submitting the next
falls back to a fair share and behaves like the initial expectation.
"""

from __future__ import annotations

from repro.engine.query import ScanQuery
from repro.experiments.config import (
    DEFAULT_EXECUTED_ROWS,
    CompetingTraffic,
    ExperimentConfig,
)
from repro.experiments.report import ExperimentOutput, FigureResult
from repro.experiments.runner import measure_scan
from repro.experiments.workloads import prepare_lineitem, prepare_orders

SELECTIVITY = 0.10
PREDICATE_ATTR = "O_ORDERDATE"
PREFETCH_DEPTHS = (48, 8, 2)


def run(
    num_rows: int = DEFAULT_EXECUTED_ROWS,
    config: ExperimentConfig | None = None,
    depths: tuple[int, ...] = PREFETCH_DEPTHS,
) -> ExperimentOutput:
    """Regenerate Figure 11."""
    base = config or ExperimentConfig()
    prepared = prepare_orders(num_rows)
    predicate = prepared.predicate(PREDICATE_ATTR, SELECTIVITY)

    # The competing scan reads a LINEITEM-sized row file.
    lineitem = prepare_lineitem(num_rows)
    competitor_bytes = sum(
        lineitem.row.file_sizes_for([], cardinality=base.cardinality).values()
    )

    tables = []
    series: dict[str, list[float]] = {"selected_bytes": []}
    for depth in depths:
        config_d = base.with_(
            prefetch_depth=depth,
            competing=CompetingTraffic(file_bytes=competitor_bytes),
        )
        table = FigureResult(
            title=f"Elapsed time (s) with competing scan, prefetch depth {depth}",
            headers=["attrs", "sel bytes", "row", "column", "column slow"],
        )
        for key in (f"row_{depth}", f"col_{depth}", f"col_slow_{depth}"):
            series[key] = []
        for k in range(1, len(prepared.schema) + 1):
            query = ScanQuery(
                prepared.schema.name,
                select=prepared.attrs_prefix(k),
                predicates=(predicate,),
            )
            row = measure_scan(prepared.row, query, config_d)
            fast = measure_scan(prepared.column, query, config_d)
            slow = measure_scan(
                prepared.column, query, config_d.with_(slow_column_io=True)
            )
            table.add_row(
                k,
                row.selected_bytes,
                round(row.elapsed, 2),
                round(fast.elapsed, 2),
                round(slow.elapsed, 2),
            )
            if depth == depths[0]:
                series["selected_bytes"].append(row.selected_bytes)
            series[f"row_{depth}"].append(row.elapsed)
            series[f"col_{depth}"].append(fast.elapsed)
            series[f"col_slow_{depth}"].append(slow.elapsed)
        tables.append(table)

    return ExperimentOutput(
        name="Figure 11: competing traffic (ORDERS vs concurrent row scan)",
        tables=tables,
        series=series,
    )
