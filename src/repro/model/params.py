"""Model parameters (the paper's Table 2)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.cpusim.calibration import Calibration, DEFAULT_CALIBRATION
from repro.errors import CalibrationError


@dataclass(frozen=True)
class HardwareParams:
    """The configuration knobs of Table 2.

    ``cpdb`` folds CPUs, disks, and competing traffic into one number:
    aggregate CPU cycles that elapse while the disks sequentially
    deliver one byte.  The paper's machine (one 3.2 GHz CPU over three
    60 MB/s disks) is rated at 18; one disk gives 54; 1995-2005 trends
    move a single-CPU/single-disk ratio from 10 to 30.
    """

    cpdb: float
    #: Bytes the memory bus delivers to L2 per CPU cycle (Pentium 4:
    #: one 128-byte line per 128 cycles = 1.0).
    mem_bytes_per_cycle: float = 1.0
    #: Clock only matters for absolute (not relative) rates.
    clock_hz: float = 3.2e9

    def __post_init__(self) -> None:
        if self.cpdb <= 0:
            raise CalibrationError(f"cpdb must be positive: {self.cpdb}")
        if self.mem_bytes_per_cycle <= 0:
            raise CalibrationError(
                f"memory bandwidth must be positive: {self.mem_bytes_per_cycle}"
            )

    @property
    def disk_bandwidth(self) -> float:
        """Implied aggregate disk bandwidth, bytes/sec."""
        return self.clock_hz / self.cpdb

    @classmethod
    def from_calibration(
        cls, calibration: Calibration = DEFAULT_CALIBRATION
    ) -> "HardwareParams":
        """The paper testbed's parameters."""
        return cls(
            cpdb=calibration.cpdb,
            mem_bytes_per_cycle=calibration.l2_line_bytes / calibration.seq_line_cycles,
            clock_hz=calibration.clock_hz,
        )


@dataclass(frozen=True)
class ScannerParams:
    """Per-tuple scanner costs (the ``I`` entries of Table 2).

    ``i_user``/``i_system`` are instructions (≈ cycles, per eq. 7) per
    input tuple; ``mem_bytes_per_tuple`` is how many bytes stream
    through the memory bus per tuple (full width for a row scan, the
    selected widths for a column scan).
    """

    i_user: float
    i_system: float
    mem_bytes_per_tuple: float

    def __post_init__(self) -> None:
        if self.i_user < 0 or self.i_system < 0 or self.mem_bytes_per_tuple < 0:
            raise CalibrationError(f"negative scanner cost: {self}")


@dataclass(frozen=True)
class QueryShape:
    """The workload knobs of the speedup formula for one table."""

    tuple_width: float          #: stored row-tuple width, bytes
    selected_bytes: float       #: bytes per tuple the column scan reads
    selectivity: float          #: fraction of qualifying tuples
    num_attributes: int         #: attributes in the relation
    selected_attributes: int    #: attributes the query accesses

    def __post_init__(self) -> None:
        if not 0 < self.selected_bytes <= self.tuple_width:
            raise CalibrationError(
                f"selected bytes {self.selected_bytes} outside "
                f"(0, {self.tuple_width}]"
            )
        if not 0.0 <= self.selectivity <= 1.0:
            raise CalibrationError(f"bad selectivity: {self.selectivity}")
        if not 1 <= self.selected_attributes <= self.num_attributes:
            raise CalibrationError(
                f"selected {self.selected_attributes} of {self.num_attributes} attrs"
            )

    @property
    def projection_factor(self) -> float:
        """The paper's ``f``: row width over bytes the query needs."""
        return self.tuple_width / self.selected_bytes
