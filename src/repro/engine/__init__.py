"""Block-iterator relational query engine (Section 2.2).

Operators pull blocks of ~100 tuples (sized to fit L1) from their
children; row and column scanners produce identical output formats and
are interchangeable under the same plan.  While executing on real data,
every operator accumulates :class:`~repro.cpusim.events.CostEvents`
through the shared :class:`~repro.engine.context.ExecutionContext`.
"""

from repro.engine.blocks import Block
from repro.engine.compressed_exec import CodePredicate, rewrite_all, rewrite_predicate
from repro.engine.context import ExecutionContext
from repro.engine.executor import QueryResult, execute_plan, run_scan
from repro.engine.governance import (
    CancellationToken,
    CircuitBreaker,
    QueryContext,
    SupervisionPolicy,
)
from repro.engine.plan import aggregate_plan, scan_plan
from repro.engine.predicate import (
    ComparisonOp,
    Predicate,
    predicate_for_selectivity,
)
from repro.engine.query import AggregateSpec, ScanQuery
from repro.engine.scheduler import (
    QueryHandle,
    QueryState,
    Scheduler,
    WorkloadQuery,
)
from repro.engine.sharing import (
    ScanShareManager,
    SharedScanConsumer,
    SharedScanStream,
)

__all__ = [
    "Block",
    "CodePredicate",
    "rewrite_predicate",
    "rewrite_all",
    "ExecutionContext",
    "CancellationToken",
    "CircuitBreaker",
    "QueryContext",
    "SupervisionPolicy",
    "Predicate",
    "ComparisonOp",
    "predicate_for_selectivity",
    "ScanQuery",
    "AggregateSpec",
    "scan_plan",
    "aggregate_plan",
    "execute_plan",
    "run_scan",
    "QueryResult",
    "QueryHandle",
    "QueryState",
    "Scheduler",
    "WorkloadQuery",
    "ScanShareManager",
    "SharedScanConsumer",
    "SharedScanStream",
]
