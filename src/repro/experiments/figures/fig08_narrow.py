"""Figure 8 — effect of narrow tuples (ORDERS, 32 bytes).

Same cardinality as LINEITEM but less I/O per tuple: system time
shrinks, and memory-related delays vanish in both layouts because the
memory bus outruns the CPU's processing rate on narrow tuples.  In a
memory-resident setting the column store would lose on this table at
10 % selectivity no matter how many attributes it selects.
"""

from __future__ import annotations

from repro.experiments.config import DEFAULT_EXECUTED_ROWS, ExperimentConfig
from repro.experiments.figures.fig06_baseline import build_output, sweep
from repro.experiments.report import ExperimentOutput
from repro.experiments.workloads import prepare_orders

SELECTIVITY = 0.10
PREDICATE_ATTR = "O_ORDERDATE"


def run(
    num_rows: int = DEFAULT_EXECUTED_ROWS,
    config: ExperimentConfig | None = None,
    selectivity: float = SELECTIVITY,
) -> ExperimentOutput:
    """Regenerate Figure 8."""
    config = config or ExperimentConfig()
    prepared = prepare_orders(num_rows)
    points = sweep(
        prepared, config, selectivity=selectivity, predicate_attr=PREDICATE_ATTR
    )
    return build_output(
        f"Figure 8: narrow tuples (ORDERS, {selectivity:.0%} selectivity)", points
    )
