"""repro — a reproduction of *Performance Tradeoffs in Read-Optimized
Databases* (Harizopoulos, Liang, Abadi, Madden; VLDB 2006).

The package implements the paper's read-optimized storage manager and
query engine for both row- and column-oriented data — dense-packed
pages, light-weight compression, pipelined column scanners, a
block-iterator operator layer — together with the hardware substrate
the paper measures on: a discrete-event disk-array simulator and a
Pentium 4-class CPU/memory cost model, plus the Section 5 analytical
model.

Quick start::

    from repro import (
        generate_lineitem, load_table, Layout, ScanQuery,
        predicate_for_selectivity, run_scan,
    )

    data = generate_lineitem(10_000, seed=1)
    table = load_table(data, Layout.COLUMN)
    pred = predicate_for_selectivity(
        "L_PARTKEY", data.column("L_PARTKEY"), 0.10)
    query = ScanQuery("LINEITEM",
                      select=("L_PARTKEY", "L_QUANTITY"),
                      predicates=(pred,))
    result = run_scan(table, query)
"""

from repro.compression import (
    Codec,
    CodecKind,
    CodecSpec,
    CompressionAdvisor,
    build_codec,
    choose_spec,
)
from repro.cpusim import Calibration, CostEvents, CpuBreakdown, CpuModel
from repro.database import Database
from repro.data import (
    GeneratedTable,
    apply_fig5_compression,
    generate_lineitem,
    generate_orders,
    generate_tpch_pair,
    lineitem_schema,
    orders_schema,
)
from repro.engine import (
    CancellationToken,
    ExecutionContext,
    Predicate,
    QueryContext,
    QueryHandle,
    QueryResult,
    ScanQuery,
    Scheduler,
    WorkloadQuery,
    predicate_for_selectivity,
    run_scan,
)
from repro.errors import (
    GovernanceError,
    MemoryBudgetExceeded,
    QueryCancelled,
    QueryTimeout,
    ReproError,
)
from repro.experiments import (
    CompetingTraffic,
    ExperimentConfig,
    ScanMeasurement,
    measure_scan,
)
from repro.iosim import DiskArraySim, FileExtent, ScanStream, SubmissionPolicy
from repro.model import HardwareParams, QueryShape, SpeedupModel
from repro.obs import (
    QueryProfile,
    SpanTracer,
    chrome_trace,
    flat_profile,
    provenance,
    render_explain,
)
from repro.storage import (
    BulkLoader,
    Catalog,
    ColumnTable,
    Layout,
    RowTable,
    Table,
    WriteOptimizedStore,
    load_table,
    open_table,
    save_table,
)
from repro.types import Attribute, FixedTextType, IntType, TableSchema

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "ReproError",
    "Database",
    # governance
    "CancellationToken",
    "QueryContext",
    "GovernanceError",
    "QueryTimeout",
    "QueryCancelled",
    "MemoryBudgetExceeded",
    # types
    "IntType",
    "FixedTextType",
    "Attribute",
    "TableSchema",
    # data
    "GeneratedTable",
    "generate_lineitem",
    "generate_orders",
    "generate_tpch_pair",
    "lineitem_schema",
    "orders_schema",
    "apply_fig5_compression",
    # compression
    "Codec",
    "CodecKind",
    "CodecSpec",
    "CompressionAdvisor",
    "build_codec",
    "choose_spec",
    # storage
    "Layout",
    "Table",
    "RowTable",
    "ColumnTable",
    "BulkLoader",
    "load_table",
    "save_table",
    "open_table",
    "Catalog",
    "WriteOptimizedStore",
    # engine
    "ScanQuery",
    "Predicate",
    "predicate_for_selectivity",
    "ExecutionContext",
    "run_scan",
    "QueryResult",
    # concurrent workloads
    "Scheduler",
    "WorkloadQuery",
    "QueryHandle",
    # simulators
    "CostEvents",
    "CpuBreakdown",
    "CpuModel",
    "Calibration",
    "DiskArraySim",
    "ScanStream",
    "SubmissionPolicy",
    "FileExtent",
    # observability
    "SpanTracer",
    "QueryProfile",
    "render_explain",
    "chrome_trace",
    "flat_profile",
    "provenance",
    # model
    "SpeedupModel",
    "QueryShape",
    "HardwareParams",
    # experiments
    "ExperimentConfig",
    "CompetingTraffic",
    "measure_scan",
    "ScanMeasurement",
]
