"""Save/load round-trip tests for on-disk persistence."""

import json

import numpy as np
import pytest

from repro.compression.rle import RleCodec
from repro.engine.executor import run_scan
from repro.engine.predicate import predicate_for_selectivity
from repro.engine.query import ScanQuery
from repro.errors import StorageError
from repro.storage.layout import Layout
from repro.storage.loader import load_table
from repro.storage.persist import open_table, save_table


@pytest.mark.parametrize("layout", [Layout.ROW, Layout.COLUMN, Layout.PAX])
def test_roundtrip_uncompressed(layout, orders_data, tmp_path):
    table = load_table(orders_data, layout)
    save_table(table, tmp_path / "orders")
    loaded = open_table(tmp_path / "orders")
    assert loaded.layout is layout
    assert loaded.num_rows == table.num_rows
    for name in orders_data.schema.attribute_names:
        np.testing.assert_array_equal(
            loaded.read_column(name), orders_data.column(name)
        )


@pytest.mark.parametrize("layout", [Layout.ROW, Layout.COLUMN, Layout.PAX])
def test_roundtrip_compressed(layout, orders_z_data, tmp_path):
    table = load_table(orders_z_data, layout)
    save_table(table, tmp_path / "orders_z")
    loaded = open_table(tmp_path / "orders_z")
    # Dictionary specs survive, including byte values.
    spec = loaded.schema.attribute("O_ORDERPRIORITY").spec
    assert spec.dictionary
    assert all(isinstance(v, bytes) for v in spec.dictionary)
    for name in orders_z_data.schema.attribute_names:
        np.testing.assert_array_equal(
            loaded.read_column(name), orders_z_data.column(name)
        )


def test_roundtrip_rle_page_directory(lineitem_data, tmp_path):
    spec = RleCodec.spec_for_values(lineitem_data.column("L_ORDERKEY"))
    packed = lineitem_data.with_schema(
        lineitem_data.schema.with_codecs({"L_ORDERKEY": spec})
    )
    table = load_table(packed, Layout.COLUMN)
    save_table(table, tmp_path / "li")
    loaded = open_table(tmp_path / "li")
    column_file = loaded.column_file("L_ORDERKEY")
    assert column_file.first_rows is not None
    assert column_file.effective_bits is not None
    np.testing.assert_array_equal(
        loaded.read_column("L_ORDERKEY"), lineitem_data.column("L_ORDERKEY")
    )


def test_queries_work_on_reloaded_table(orders_data, tmp_path):
    table = load_table(orders_data, Layout.COLUMN)
    predicate = predicate_for_selectivity(
        "O_ORDERDATE", orders_data.column("O_ORDERDATE"), 0.10
    )
    query = ScanQuery(
        "ORDERS", select=("O_ORDERDATE", "O_CUSTKEY"), predicates=(predicate,)
    )
    before = run_scan(table, query)
    save_table(table, tmp_path / "t")
    after = run_scan(open_table(tmp_path / "t"), query)
    np.testing.assert_array_equal(before.positions, after.positions)
    np.testing.assert_array_equal(
        before.column("O_CUSTKEY"), after.column("O_CUSTKEY")
    )


def test_missing_metadata_rejected(tmp_path):
    with pytest.raises(StorageError):
        open_table(tmp_path)


def test_bad_version_rejected(orders_data, tmp_path):
    table = load_table(orders_data, Layout.ROW)
    save_table(table, tmp_path / "t")
    meta_path = tmp_path / "t" / "meta.json"
    meta = json.loads(meta_path.read_text())
    meta["format_version"] = 999
    meta_path.write_text(json.dumps(meta))
    with pytest.raises(StorageError):
        open_table(tmp_path / "t")


def test_truncated_pages_rejected(orders_data, tmp_path):
    table = load_table(orders_data, Layout.ROW)
    save_table(table, tmp_path / "t")
    pages = tmp_path / "t" / "table.pages"
    pages.write_bytes(pages.read_bytes()[:-100])
    with pytest.raises(StorageError):
        open_table(tmp_path / "t")


def test_directory_listing(orders_data, tmp_path):
    table = load_table(orders_data, Layout.COLUMN)
    save_table(table, tmp_path / "t")
    names = {p.name for p in (tmp_path / "t").iterdir()}
    assert "meta.json" in names
    assert "O_ORDERKEY.pages" in names
    assert len(names) == 1 + len(orders_data.schema)
