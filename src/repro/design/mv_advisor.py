"""Materialized-view (vertical-partitioning) advisor.

The Figure 1 architecture includes an *MV advisor* that chooses
appropriate vertical partitioning from the workload.  This
implementation uses the classic attribute-affinity approach ([9] in
the paper): attributes that co-occur in queries are grouped into
projection candidates, each scored by the disk bytes it saves versus
scanning the base table.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.engine.query import ScanQuery
from repro.errors import PlanError
from repro.types.schema import TableSchema


@dataclass(frozen=True)
class ViewCandidate:
    """One proposed vertical partition (projection) of a table."""

    table: str
    attributes: tuple[str, ...]
    #: Fraction of the workload's scans this view can answer.
    coverage: float
    #: Bytes per tuple the view stores vs. the full tuple.
    view_width: int
    base_width: int

    @property
    def bytes_saved_fraction(self) -> float:
        """Per-tuple I/O saving when the view answers a query."""
        if self.base_width == 0:
            return 0.0
        return 1.0 - self.view_width / self.base_width


class MaterializedViewAdvisor:
    """Proposes vertical partitions from a scan workload."""

    def __init__(self, schema: TableSchema):
        self.schema = schema

    def _query_attrs(self, query: ScanQuery) -> frozenset[str]:
        if query.table != self.schema.name:
            raise PlanError(
                f"query targets {query.table!r}, advisor is for "
                f"{self.schema.name!r}"
            )
        return frozenset(query.scan_attributes())

    def affinity(self, workload: list[ScanQuery]) -> dict[tuple[str, str], int]:
        """Pairwise co-occurrence counts of attributes across the workload."""
        counts: dict[tuple[str, str], int] = {}
        for query in workload:
            attrs = sorted(self._query_attrs(query))
            for i, a in enumerate(attrs):
                for b in attrs[i + 1 :]:
                    counts[(a, b)] = counts.get((a, b), 0) + 1
        return counts

    def advise(
        self,
        workload: list[ScanQuery],
        max_views: int = 3,
    ) -> list[ViewCandidate]:
        """Rank attribute groups by coverage × bytes saved.

        Candidate groups are the distinct attribute sets of the
        workload's queries plus their unions when one subsumes another;
        each is scored by (queries it covers) × (fraction of tuple
        bytes it avoids reading).
        """
        if not workload:
            return []
        attr_sets = [self._query_attrs(q) for q in workload]
        candidates: set[frozenset[str]] = set(attr_sets)
        for first in attr_sets:
            for second in attr_sets:
                union = first | second
                if union != first and union != second:
                    candidates.add(union)

        base_width = self.schema.tuple_width
        scored: list[tuple[float, ViewCandidate]] = []
        for candidate in candidates:
            covered = sum(1 for s in attr_sets if s <= candidate)
            coverage = covered / len(attr_sets)
            view_width = sum(
                self.schema.attribute(name).width for name in candidate
            )
            view = ViewCandidate(
                table=self.schema.name,
                attributes=tuple(
                    name
                    for name in self.schema.attribute_names
                    if name in candidate
                ),
                coverage=coverage,
                view_width=view_width,
                base_width=base_width,
            )
            score = coverage * view.bytes_saved_fraction
            if score > 0:
                scored.append((score, view))
        scored.sort(key=lambda pair: (-pair[0], pair[1].attributes))
        return [view for _score, view in scored[:max_views]]
