#!/usr/bin/env python3
"""Warehouse reporting: aggregates and a fact-dimension merge join.

The workload the paper's introduction motivates: long read-only
analytic queries over a bulk-loaded star schema.  This example builds a
consistent ORDERS / LINEITEM pair, then runs

1. a grouped aggregate over the fact table (pricing summary by return
   flag, TPC-H Q1 flavour), and
2. a merge join of the fact table with its dimension (revenue per
   order priority, TPC-H Q4 flavour),

on both physical layouts, verifying the answers agree and reporting
where the time goes.

Run with::

    python examples/warehouse_reports.py
"""

import numpy as np

from repro import (
    ExecutionContext,
    Layout,
    ScanQuery,
    generate_tpch_pair,
    load_table,
    predicate_for_selectivity,
)
from repro.cpusim.costmodel import CpuModel
from repro.engine.executor import execute_plan
from repro.engine.plan import aggregate_plan, merge_join_plan
from repro.engine.query import AggregateFunction, AggregateSpec


def pricing_summary(tables, data) -> None:
    """sum(L_EXTENDEDPRICE) group by L_RETURNFLAG, recent lines only."""
    predicate = predicate_for_selectivity(
        "L_SHIPDATE", data.column("L_SHIPDATE"), selectivity=0.25
    )
    query = ScanQuery(
        "LINEITEM",
        select=("L_SHIPDATE", "L_RETURNFLAG", "L_EXTENDEDPRICE"),
        predicates=(predicate,),
    )
    spec = AggregateSpec(
        group_by=("L_RETURNFLAG",),
        function=AggregateFunction.SUM,
        argument="L_EXTENDEDPRICE",
    )
    print("pricing summary (sum of extended price by return flag):")
    results = {}
    for layout, table in tables.items():
        context = ExecutionContext()
        result = execute_plan(aggregate_plan(context, table, query, spec))
        results[layout] = dict(
            zip(result.column("L_RETURNFLAG"), result.column("sum_L_EXTENDEDPRICE"))
        )
        cpu = CpuModel().breakdown(context.events)
        print(f"  {layout.value:6s} store: {results[layout]}  "
              f"(engine CPU model: {cpu.user * 1e3:.2f} ms at this scale)")
    assert results[Layout.ROW] == results[Layout.COLUMN]
    print("  layouts agree\n")


def revenue_by_priority(order_tables, line_tables, orders) -> None:
    """Join ORDERS with LINEITEM, sum revenue per order priority."""
    orders_query = ScanQuery(
        "ORDERS", select=("O_ORDERKEY", "O_ORDERPRIORITY")
    )
    lineitem_query = ScanQuery(
        "LINEITEM", select=("L_ORDERKEY", "L_EXTENDEDPRICE")
    )
    print("revenue by order priority (merge join + aggregate):")
    results = {}
    for layout in (Layout.ROW, Layout.COLUMN):
        context = ExecutionContext()
        join = merge_join_plan(
            context,
            order_tables[layout],
            orders_query,
            line_tables[layout],
            lineitem_query,
            left_key="O_ORDERKEY",
            right_key="L_ORDERKEY",
        )
        joined = execute_plan(join)
        revenue = {}
        for priority, price in zip(
            joined.column("O_ORDERPRIORITY"), joined.column("L_EXTENDEDPRICE")
        ):
            revenue[priority] = revenue.get(priority, 0) + int(price)
        results[layout] = revenue
        print(f"  {layout.value:6s} store: "
              f"{ {k.decode(): v for k, v in sorted(revenue.items())} }")
    assert results[Layout.ROW] == results[Layout.COLUMN]
    print("  layouts agree\n")


def main() -> None:
    orders, lineitem = generate_tpch_pair(num_orders=2_500, seed=7)
    print(
        f"warehouse: {orders.num_rows} orders, {lineitem.num_rows} line items\n"
    )
    line_tables = {
        Layout.ROW: load_table(lineitem, Layout.ROW),
        Layout.COLUMN: load_table(lineitem, Layout.COLUMN),
    }
    order_tables = {
        Layout.ROW: load_table(orders, Layout.ROW),
        Layout.COLUMN: load_table(orders, Layout.COLUMN),
    }
    pricing_summary(line_tables, lineitem)
    revenue_by_priority(order_tables, line_tables, orders)


if __name__ == "__main__":
    main()
