"""Metrics registry, Prometheus exposition, and run provenance."""

from __future__ import annotations

import importlib.util
import json
import pathlib
import re

import pytest

from repro.cpusim.calibration import Calibration
from repro.data.tpch import generate_orders
from repro.engine.predicate import predicate_for_selectivity
from repro.engine.query import ScanQuery
from repro.engine.executor import run_scan
from repro.errors import TransientIOError
from repro.obs import metrics
from repro.obs.metrics import (
    Counter,
    Histogram,
    MetricsRegistry,
    exponential_buckets,
)
from repro.obs.provenance import git_sha, provenance
from repro.storage.layout import Layout
from repro.storage.loader import load_table
from repro.storage.retry import RetryPolicy, retry_io


@pytest.fixture(autouse=True)
def metrics_enabled():
    """Each test starts enabled with zeroed values, and leaves no residue."""
    metrics.enable()
    metrics.REGISTRY.reset_values()
    yield
    metrics.enable()
    metrics.REGISTRY.reset_values()


class TestCounter:
    def test_inc_accumulates(self):
        counter = Counter("t_total", "help")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_negative_increment_rejected(self):
        with pytest.raises(ValueError):
            Counter("t_total", "help").inc(-1)

    def test_invalid_names_rejected(self):
        for bad in ("", "9lives", "has-dash", "has space"):
            with pytest.raises(ValueError):
                Counter(bad, "help")


class TestHistogram:
    def test_le_bucket_semantics(self):
        hist = Histogram("t_seconds", "help", buckets=[1.0, 10.0])
        hist.observe(0.5)    # le=1
        hist.observe(1.0)    # boundary: still le=1
        hist.observe(5.0)    # le=10
        hist.observe(100.0)  # +Inf overflow
        assert hist.bucket_counts() == [(1.0, 2), (10.0, 3), (float("inf"), 4)]
        assert hist.count == 4
        assert hist.sum == pytest.approx(106.5)

    def test_render_is_cumulative_and_inf_terminated(self):
        hist = Histogram("t_seconds", "help", buckets=[1.0, 10.0])
        hist.observe(0.5)
        lines = hist.render()
        assert 't_seconds_bucket{le="1"} 1' in lines
        assert 't_seconds_bucket{le="10"} 1' in lines
        assert 't_seconds_bucket{le="+Inf"} 1' in lines
        assert "t_seconds_count 1" in lines

    def test_exponential_buckets(self):
        assert exponential_buckets(1.0, 2.0, 4) == [1.0, 2.0, 4.0, 8.0]
        with pytest.raises(ValueError):
            exponential_buckets(0.0, 2.0, 4)
        with pytest.raises(ValueError):
            exponential_buckets(1.0, 1.0, 4)


class TestRegistry:
    def test_get_or_create_is_idempotent(self):
        registry = MetricsRegistry()
        a = registry.counter("x_total", "help")
        assert registry.counter("x_total", "other help") is a

    def test_kind_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x_total", "help")
        with pytest.raises(ValueError):
            registry.histogram("x_total", "help")

    def test_exposition_format_is_valid(self):
        """Every non-comment line must parse as `name{labels}? value`."""
        metrics.QUERIES.inc(3)
        metrics.QUERY_SECONDS.observe(0.25)
        text = metrics.render_prometheus()
        assert text.endswith("\n")
        sample = re.compile(
            r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{le=\"[^\"]+\"\})? "
            r"(-?\d+(\.\d+)?([eE][+-]?\d+)?|\+Inf|NaN)$"
        )
        seen_types = {}
        for line in text.rstrip("\n").split("\n"):
            if line.startswith("# HELP "):
                continue
            if line.startswith("# TYPE "):
                _, _, name, kind = line.split(" ", 3)
                assert kind in ("counter", "histogram")
                seen_types[name] = kind
            else:
                assert sample.match(line), f"bad exposition line: {line!r}"
        assert seen_types["repro_queries_total"] == "counter"
        assert seen_types["repro_query_seconds"] == "histogram"
        assert "repro_queries_total 3" in text

    def test_standard_metrics_present_before_any_query(self):
        text = metrics.render_prometheus()
        for name in (
            "repro_queries_total",
            "repro_query_seconds",
            "repro_page_decode_seconds",
            "repro_pages_salvaged_total",
            "repro_io_retry_attempts_total",
            "repro_iosim_units_total",
        ):
            assert name in text


class TestEnableDisable:
    def test_disabled_mutations_are_dropped(self):
        metrics.disable()
        assert not metrics.enabled()
        metrics.QUERIES.inc()
        metrics.QUERY_SECONDS.observe(1.0)
        metrics.enable()
        assert metrics.QUERIES.value == 0
        assert metrics.QUERY_SECONDS.count == 0

    def test_query_path_records_only_when_enabled(self):
        data = generate_orders(400, seed=3)
        table = load_table(data, Layout.COLUMN)
        query = ScanQuery("ORDERS", select=("O_ORDERKEY",))

        metrics.disable()
        run_scan(table, query)
        metrics.enable()
        assert metrics.QUERIES.value == 0

        run_scan(table, query)
        assert metrics.QUERIES.value == 1
        assert metrics.QUERY_SECONDS.count == 1
        assert metrics.PAGE_DECODE_SECONDS.count > 0


class TestRetryMetrics:
    def test_transient_retries_are_counted(self):
        failures = [TransientIOError("flaky"), TransientIOError("flaky")]

        def flaky():
            if failures:
                raise failures.pop()
            return "ok"

        policy = RetryPolicy(max_attempts=4, sleep=lambda _s: None, seed=1)
        assert retry_io(flaky, policy) == "ok"
        assert metrics.RETRY_ATTEMPTS.value == 2
        assert metrics.RETRY_BACKOFF_SECONDS.value > 0
        assert metrics.RETRY_EXHAUSTED.value == 0

    def test_exhausted_retries_are_counted(self):
        def always_fails():
            raise TransientIOError("dead")

        policy = RetryPolicy(max_attempts=3, sleep=lambda _s: None, seed=1)
        with pytest.raises(TransientIOError):
            retry_io(always_fails, policy)
        assert metrics.RETRY_ATTEMPTS.value == 2
        assert metrics.RETRY_EXHAUSTED.value == 1


class TestExpositionCli:
    def test_main_prints_live_exposition(self, capsys):
        assert metrics.main(["--rows", "300"]) == 0
        out = capsys.readouterr().out
        assert "# TYPE repro_queries_total counter" in out
        match = re.search(r"^repro_queries_total (\d+)$", out, re.MULTILINE)
        assert match and int(match.group(1)) >= 2  # demo runs two queries

    def test_main_rows_zero_skips_workload(self, capsys):
        assert metrics.main(["--rows", "0"]) == 0
        out = capsys.readouterr().out
        assert "repro_queries_total 0" in out


class TestProvenance:
    def test_stamp_has_the_comparability_keys(self):
        stamp = provenance()
        for key in (
            "git_sha",
            "timestamp_utc",
            "python",
            "numpy",
            "platform",
            "calibration_fingerprint",
        ):
            assert stamp[key], key
        assert re.match(r"^[0-9a-f]{12}$", stamp["calibration_fingerprint"])

    def test_git_sha_resolves_in_this_repo(self):
        sha = git_sha()
        assert sha == "unknown" or re.match(r"^[0-9a-f]{40}$", sha)

    def test_fingerprint_is_stable_and_sensitive(self):
        base = Calibration()
        assert base.fingerprint() == Calibration().fingerprint()
        tweaked = base.with_overrides(num_disks=base.num_disks + 1)
        assert tweaked.fingerprint() != base.fingerprint()

    def test_stamp_uses_the_given_calibration(self):
        tweaked = Calibration().with_overrides(num_disks=7)
        assert (
            provenance(tweaked)["calibration_fingerprint"]
            == tweaked.fingerprint()
        )


class TestBenchmarkPublishing:
    def test_publish_writes_provenance_stamped_json(self, tmp_path, capsys):
        spec = importlib.util.spec_from_file_location(
            "bench_common",
            pathlib.Path(__file__).resolve().parent.parent
            / "benchmarks"
            / "_common.py",
        )
        common = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(common)
        common.RESULTS_DIR = tmp_path

        from repro.experiments.report import ExperimentOutput, FigureResult

        output = ExperimentOutput(
            name="Demo figure",
            tables=[
                FigureResult(
                    title="t", headers=["a", "b"], rows=[["x", 1], ["y", 2]]
                )
            ],
            series={"speedup": [1.0, 2.0]},
        )
        common.publish(output, "demo.txt")
        capsys.readouterr()

        assert (tmp_path / "demo.txt").exists()
        payload = json.loads((tmp_path / "demo.json").read_text())
        assert payload["name"] == "Demo figure"
        assert payload["tables"][0]["rows"] == [["x", 1], ["y", 2]]
        assert payload["series"]["speedup"] == [1.0, 2.0]
        # provenance() may append "-dirty" to the commit of record
        assert payload["provenance"]["git_sha"].startswith(git_sha())
        assert payload["provenance"]["calibration_fingerprint"]
