"""Database facade and Limit/TopN operator tests."""

import numpy as np
import pytest

from repro.data.tpch import generate_orders
from repro.database import Database
from repro.engine.context import ExecutionContext
from repro.engine.executor import execute_plan
from repro.engine.operators.limit import Limit, TopN
from repro.engine.plan import scan_plan
from repro.engine.query import ScanQuery
from repro.errors import PlanError, StorageError
from repro.storage.layout import Layout


@pytest.fixture(scope="module")
def db():
    database = Database()
    database.create_table(generate_orders(2_000, seed=17))
    return database


class TestDatabase:
    def test_create_and_list(self, db):
        assert db.tables() == ["ORDERS"]
        assert db.table("ORDERS", Layout.ROW).layout is Layout.ROW
        assert db.table("ORDERS", Layout.COLUMN).layout is Layout.COLUMN

    def test_duplicate_table_rejected(self, db):
        with pytest.raises(StorageError):
            db.create_table(generate_orders(10, seed=17))

    def test_unknown_table_rejected(self, db):
        with pytest.raises(StorageError):
            db.table("NOPE")

    def test_query_matches_direct_scan(self, db):
        from repro.engine.executor import run_scan

        pred = db.predicate("ORDERS", "O_ORDERDATE", 0.25)
        select = ("O_ORDERDATE", "O_CUSTKEY")
        via_db = db.query("ORDERS", select=select, predicates=(pred,))
        direct = run_scan(
            db.table("ORDERS", Layout.ROW),
            ScanQuery("ORDERS", select=select, predicates=(pred,)),
        )
        np.testing.assert_array_equal(via_db.positions, direct.positions)

    def test_view_routing(self, db):
        db.create_view(
            "ORDERS", ("O_ORDERKEY", "O_TOTALPRICE"), name="PRICES"
        )
        result = db.query("ORDERS", select=("O_TOTALPRICE",))
        assert result.num_tuples == 2_000
        # Bypassing views still works.
        direct = db.query("ORDERS", select=("O_TOTALPRICE",), use_views=False)
        np.testing.assert_array_equal(
            np.sort(result.column("O_TOTALPRICE")),
            np.sort(direct.column("O_TOTALPRICE")),
        )

    def test_compressed_table(self):
        database = Database()
        database.create_table(generate_orders(1_000, seed=3), compress=True)
        table = database.table("ORDERS", Layout.COLUMN)
        assert table.schema.packed_tuple_bits < 32 * 8
        result = database.query("ORDERS", select=("O_CUSTKEY",), use_views=False)
        assert result.num_tuples == 1_000

    def test_estimate_and_compare(self, db):
        pred = db.predicate("ORDERS", "O_ORDERDATE", 0.10)
        estimates = db.compare_layouts(
            "ORDERS", select=("O_ORDERDATE", "O_CUSTKEY"), predicates=(pred,)
        )
        assert set(estimates) == {Layout.ROW, Layout.COLUMN}
        assert estimates[Layout.COLUMN].elapsed < estimates[Layout.ROW].elapsed

    def test_estimate_unmaterialized_layout_rejected(self, db):
        with pytest.raises(PlanError):
            db.estimate("ORDERS", select=("O_CUSTKEY",), layout=Layout.PAX)

    def test_no_layouts_rejected(self):
        with pytest.raises(StorageError):
            Database(layouts=())


class TestLimitTopN:
    def _scan(self, db, select=("O_TOTALPRICE", "O_CUSTKEY")):
        context = ExecutionContext()
        plan = scan_plan(
            context,
            db.table("ORDERS", Layout.COLUMN),
            ScanQuery("ORDERS", select=select),
        )
        return context, plan

    def test_limit_truncates(self, db):
        context, scan = self._scan(db)
        result = execute_plan(Limit(context, scan, 250))
        assert result.num_tuples == 250

    def test_limit_zero(self, db):
        context, scan = self._scan(db)
        result = execute_plan(Limit(context, scan, 0))
        assert result.num_tuples == 0

    def test_limit_larger_than_input(self, db):
        context, scan = self._scan(db)
        result = execute_plan(Limit(context, scan, 10**6))
        assert result.num_tuples == 2_000

    def test_negative_limit_rejected(self, db):
        context, scan = self._scan(db)
        with pytest.raises(PlanError):
            Limit(context, scan, -1)

    def test_topn_matches_full_sort(self, db):
        context, scan = self._scan(db)
        result = execute_plan(TopN(context, scan, key="O_TOTALPRICE", count=25))
        prices = db.table("ORDERS", Layout.ROW).read_column("O_TOTALPRICE")
        expected = np.sort(prices)[:25]
        np.testing.assert_array_equal(result.column("O_TOTALPRICE"), expected)

    def test_topn_descending(self, db):
        context, scan = self._scan(db)
        result = execute_plan(
            TopN(context, scan, key="O_TOTALPRICE", count=10, descending=True)
        )
        prices = db.table("ORDERS", Layout.ROW).read_column("O_TOTALPRICE")
        expected = np.sort(prices)[::-1][:10]
        np.testing.assert_array_equal(result.column("O_TOTALPRICE"), expected)

    def test_topn_cheaper_than_sort(self, db):
        from repro.engine.operators.sort import SortOperator

        context_top, scan_top = self._scan(db)
        execute_plan(TopN(context_top, scan_top, key="O_TOTALPRICE", count=10))
        context_sort, scan_sort = self._scan(db)
        execute_plan(SortOperator(context_sort, scan_sort, key="O_TOTALPRICE"))
        assert (
            context_top.events.sort_comparisons
            < context_sort.events.sort_comparisons
        )

    def test_topn_missing_key_rejected(self, db):
        context, scan = self._scan(db, select=("O_CUSTKEY",))
        with pytest.raises(PlanError):
            execute_plan(TopN(context, scan, key="O_TOTALPRICE", count=5))

    def test_topn_positive_count_required(self, db):
        context, scan = self._scan(db)
        with pytest.raises(PlanError):
            TopN(context, scan, key="O_TOTALPRICE", count=0)
