"""Schema tests, including the paper's Figure 5 widths."""

import pytest

from repro.compression.base import CodecKind, CodecSpec
from repro.data.tpch import lineitem_schema, orders_schema
from repro.errors import SchemaError
from repro.types.datatypes import FixedTextType, IntType
from repro.types.schema import Attribute, TableSchema


def make_schema():
    return TableSchema(
        name="T",
        attributes=(
            Attribute("a", IntType()),
            Attribute("b", FixedTextType(10)),
            Attribute("c", IntType()),
        ),
    )


class TestTableSchema:
    def test_tuple_width_sums_attributes(self):
        assert make_schema().tuple_width == 18

    def test_row_stride_pads_to_alignment(self):
        assert make_schema().row_stride == 24  # 18 -> 24

    def test_lineitem_is_150_bytes_padded_to_152(self):
        schema = lineitem_schema()
        assert schema.tuple_width == 150
        assert schema.row_stride == 152
        assert len(schema) == 16

    def test_orders_is_32_bytes_unpadded(self):
        schema = orders_schema()
        assert schema.tuple_width == 32
        assert schema.row_stride == 32
        assert len(schema) == 7

    def test_attribute_lookup(self):
        schema = make_schema()
        assert schema.attribute("b").width == 10
        assert schema.index_of("c") == 2
        with pytest.raises(SchemaError):
            schema.attribute("missing")
        with pytest.raises(SchemaError):
            schema.index_of("missing")

    def test_attribute_offset(self):
        schema = make_schema()
        assert schema.attribute_offset("a") == 0
        assert schema.attribute_offset("b") == 4
        assert schema.attribute_offset("c") == 14

    def test_duplicate_names_rejected(self):
        with pytest.raises(SchemaError):
            TableSchema(
                name="T",
                attributes=(
                    Attribute("a", IntType()),
                    Attribute("a", IntType()),
                ),
            )

    def test_empty_schema_rejected(self):
        with pytest.raises(SchemaError):
            TableSchema(name="T", attributes=())

    def test_invalid_attribute_name_rejected(self):
        with pytest.raises(SchemaError):
            Attribute("not valid", IntType())

    def test_with_codecs(self):
        schema = make_schema()
        spec = CodecSpec(kind=CodecKind.PACK, bits=6)
        updated = schema.with_codecs({"a": spec})
        assert updated.attribute("a").spec == spec
        assert not updated.attribute("c").spec.is_compressed
        # original untouched
        assert schema.attribute("a").codec_spec is None

    def test_with_codecs_unknown_attribute(self):
        with pytest.raises(SchemaError):
            make_schema().with_codecs({"zz": CodecSpec(kind=CodecKind.PACK, bits=2)})

    def test_packed_width_defaults_to_uncompressed(self):
        schema = make_schema()
        assert schema.packed_tuple_bits == 18 * 8

    def test_project_preserves_order(self):
        schema = make_schema().project(["c", "a"])
        assert schema.attribute_names == ("c", "a")
        assert schema.tuple_width == 8

    def test_describe_mentions_every_attribute(self):
        text = make_schema().describe()
        for name in ("a", "b", "c"):
            assert name in text
