"""Synthetic tables with configurable shapes.

The TPC-H substitute (:mod:`repro.data.tpch`) fixes the paper's two
schemas; this module generates arbitrary ones, useful for exploring the
tradeoff space beyond LINEITEM/ORDERS — e.g. the lean-tuple corner of
Figure 2 — and for randomized testing.
"""

from __future__ import annotations

import numpy as np

from repro.data.generator import GeneratedTable
from repro.errors import SchemaError
from repro.types.datatypes import FixedTextType, IntType
from repro.types.schema import Attribute, TableSchema


def synthetic_table(
    name: str,
    num_rows: int,
    int_attrs: int = 4,
    text_attrs: int = 0,
    text_width: int = 10,
    distinct_values: int | None = None,
    sorted_first: bool = False,
    seed: int = 1,
) -> GeneratedTable:
    """Generate a table with the requested shape.

    ``distinct_values`` caps the integer domains (low values make the
    dictionary/RLE codecs interesting); ``sorted_first`` sorts the first
    attribute ascending so the frame-of-reference schemes apply.
    """
    if num_rows <= 0:
        raise SchemaError(f"num_rows must be positive: {num_rows}")
    if int_attrs + text_attrs < 1:
        raise SchemaError("a table needs at least one attribute")
    rng = np.random.default_rng(np.random.PCG64(seed))
    attributes: list[Attribute] = []
    columns: dict[str, np.ndarray] = {}
    domain = distinct_values if distinct_values is not None else 2**30
    for index in range(int_attrs):
        attr_name = f"i{index}"
        attributes.append(Attribute(attr_name, IntType()))
        values = rng.integers(0, domain, size=num_rows)
        if index == 0 and sorted_first:
            values = np.sort(values)
        columns[attr_name] = values
    pool_size = min(domain, 64)
    pool = np.array(
        [f"v{j:04d}"[:text_width].encode() for j in range(pool_size)],
        dtype=f"S{text_width}",
    )
    for index in range(text_attrs):
        attr_name = f"t{index}"
        attributes.append(Attribute(attr_name, FixedTextType(text_width)))
        columns[attr_name] = pool[rng.integers(0, pool_size, size=num_rows)]
    schema = TableSchema(name=name, attributes=tuple(attributes))
    return GeneratedTable(schema=schema, columns=columns)


def tuple_width_table(
    width_bytes: int,
    num_rows: int,
    name: str = "SYN",
    seed: int = 1,
) -> GeneratedTable:
    """A table of exactly ``width_bytes`` per tuple (4-byte int columns).

    The knob the Figure 2 axis sweeps; width must be a positive multiple
    of four.
    """
    if width_bytes <= 0 or width_bytes % 4 != 0:
        raise SchemaError(
            f"tuple width must be a positive multiple of 4: {width_bytes}"
        )
    return synthetic_table(
        name=name,
        num_rows=num_rows,
        int_attrs=width_bytes // 4,
        text_attrs=0,
        seed=seed,
    )
