"""Command-line experiment runner.

Usage::

    python -m repro.experiments               # run everything
    python -m repro.experiments figure-6      # run one experiment
    python -m repro.experiments --rows 8000 figure-10 figure-11
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments.config import DEFAULT_EXECUTED_ROWS
from repro.experiments.figures import ALL_EXPERIMENTS


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        choices=list(ALL_EXPERIMENTS) + [[]],
        help="experiments to run (default: all)",
    )
    parser.add_argument(
        "--charts",
        action="store_true",
        help="also render text charts of each experiment's main series",
    )
    parser.add_argument(
        "--rows",
        type=int,
        default=DEFAULT_EXECUTED_ROWS,
        help="materialized rows the engine executes on",
    )
    parser.add_argument(
        "--json",
        metavar="DIR",
        default=None,
        help="also write each experiment's tables and series to DIR as "
        "provenance-stamped JSON (git SHA, calibration fingerprint, ...)",
    )
    args = parser.parse_args(argv)
    names = args.experiments or list(ALL_EXPERIMENTS)
    json_dir = None
    stamp = None
    if args.json is not None:
        import pathlib

        from repro.obs.provenance import provenance

        json_dir = pathlib.Path(args.json)
        json_dir.mkdir(parents=True, exist_ok=True)
        stamp = provenance()
    for name in names:
        started = time.time()
        output = ALL_EXPERIMENTS[name](num_rows=args.rows)
        print(output.render())
        if json_dir is not None:
            import json as json_mod

            payload = {
                "name": output.name,
                "experiment": name,
                "rows": args.rows,
                "tables": [
                    {"title": t.title, "headers": t.headers, "rows": t.rows}
                    for t in output.tables
                ],
                "series": output.series,
                "provenance": stamp,
            }
            (json_dir / f"{name}.json").write_text(
                json_mod.dumps(payload, indent=2, default=str) + "\n",
                encoding="utf-8",
            )
        if args.charts and output.series:
            from repro.experiments.charts import render_bar_chart

            numeric = {
                key: values
                for key, values in output.series.items()
                if values and all(isinstance(v, (int, float)) for v in values)
            }
            for key, values in list(numeric.items())[:4]:
                print()
                print(f"[{key}]")
                print(
                    render_bar_chart(
                        [str(i) for i in range(len(values))], list(values)
                    )
                )
        print(f"[{name} regenerated in {time.time() - started:.1f}s]")
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
