"""Run-length codec tests (the refrained-from extension)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression.base import CodecKind, CodecSpec
from repro.compression.rle import MAX_RUN_LENGTH, RleCodec, find_runs
from repro.errors import CompressionError
from repro.types.datatypes import FixedTextType, IntType


def make_codec(values):
    return RleCodec(RleCodec.spec_for_values(values), IntType())


class TestFindRuns:
    def test_basic_runs(self):
        values = np.array([5, 5, 5, 2, 2, 9])
        run_values, run_lengths = find_runs(values)
        np.testing.assert_array_equal(run_values, [5, 2, 9])
        np.testing.assert_array_equal(run_lengths, [3, 2, 1])

    def test_all_distinct(self):
        values = np.arange(10)
        run_values, run_lengths = find_runs(values)
        assert run_values.size == 10
        assert (run_lengths == 1).all()

    def test_single_run(self):
        run_values, run_lengths = find_runs(np.full(100, 7))
        assert run_values.size == 1
        assert run_lengths[0] == 100

    def test_long_runs_split(self):
        values = np.full(MAX_RUN_LENGTH + 5, 1)
        _run_values, run_lengths = find_runs(values)
        assert run_lengths.max() <= MAX_RUN_LENGTH
        assert run_lengths.sum() == values.size

    def test_empty(self):
        run_values, run_lengths = find_runs(np.array([], dtype=np.int64))
        assert run_values.size == 0


class TestRleCodec:
    def test_roundtrip(self):
        values = np.repeat([1, -4, 1000, 0], [7, 1, 30, 3])
        codec = make_codec(values)
        payload, state = codec.encode_page(values)
        np.testing.assert_array_equal(
            codec.decode_page(payload, values.size, state), values
        )

    def test_markers(self):
        codec = make_codec(np.array([1, 1, 2]))
        assert codec.is_variable
        assert codec.decodes_whole_page

    def test_sorted_low_cardinality_compresses_hard(self):
        values = np.sort(np.random.default_rng(1).integers(0, 3, size=10_000))
        effective = RleCodec.effective_bits_per_value(values)
        assert effective < 0.05  # 3 runs over 10 000 values

    def test_unsorted_data_compresses_poorly(self):
        rng = np.random.default_rng(2)
        values = rng.integers(0, 2**20, size=2_000)
        effective = RleCodec.effective_bits_per_value(values)
        assert effective > 20  # runs of one: pair width per value

    def test_encode_prefix_respects_budget(self):
        values = np.arange(100_000)  # worst case: all runs of 1
        codec = make_codec(values)
        payload, _state, consumed = codec.encode_prefix(values, 512)
        assert consumed < values.size
        assert len(payload) <= 512
        np.testing.assert_array_equal(
            codec.decode_page(payload, consumed, _state), values[:consumed]
        )

    def test_text_rejected(self):
        spec = CodecSpec(kind=CodecKind.RLE, bits=4, run_bits=4)
        with pytest.raises(CompressionError):
            RleCodec(spec, FixedTextType(4))

    def test_spec_validation(self):
        with pytest.raises(CompressionError):
            CodecSpec(kind=CodecKind.RLE, bits=4)  # missing run_bits
        with pytest.raises(CompressionError):
            CodecSpec(kind=CodecKind.PACK, bits=4, run_bits=2)

    def test_value_overflow_rejected(self):
        spec = CodecSpec(kind=CodecKind.RLE, bits=2, run_bits=4)
        codec = RleCodec(spec, IntType())
        with pytest.raises(CompressionError):
            codec.encode_page(np.array([100, 100]))

    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(
            st.integers(min_value=-(2**30), max_value=2**30),
            min_size=1,
            max_size=300,
        )
    )
    def test_property_roundtrip(self, raw):
        values = np.repeat(
            np.array(raw, dtype=np.int64),
            np.random.default_rng(0).integers(1, 5, size=len(raw)),
        )
        codec = make_codec(values)
        payload, state = codec.encode_page(values)
        np.testing.assert_array_equal(
            codec.decode_page(payload, values.size, state), values
        )


class TestRleThroughStorage:
    @pytest.fixture(scope="class")
    def rle_table(self, lineitem_data):
        from repro.storage.layout import Layout
        from repro.storage.loader import load_table

        spec = RleCodec.spec_for_values(lineitem_data.column("L_ORDERKEY"))
        packed = lineitem_data.with_schema(
            lineitem_data.schema.with_codecs({"L_ORDERKEY": spec})
        )
        return load_table(packed, Layout.COLUMN), lineitem_data

    def test_column_roundtrip(self, rle_table):
        table, data = rle_table
        np.testing.assert_array_equal(
            table.read_column("L_ORDERKEY"), data.column("L_ORDERKEY")
        )

    def test_page_directory_built(self, rle_table):
        table, data = rle_table
        column_file = table.column_file("L_ORDERKEY")
        assert column_file.is_variable
        assert column_file.first_rows is not None
        assert column_file.first_rows[0] == 0
        assert column_file.effective_bits is not None
        # Directory maps every row to the right page.
        positions = np.arange(data.num_rows)
        pages = column_file.page_of_positions(positions)
        assert (np.diff(pages) >= 0).all()
        assert pages[0] == 0
        assert pages[-1] == column_file.file.num_pages - 1

    def test_paper_scale_size_uses_effective_bits(self, rle_table):
        table, data = rle_table
        column_file = table.column_file("L_ORDERKEY")
        size = table.file_sizes_for(["L_ORDERKEY"], cardinality=60_000_000)
        expected_bits = 60_000_000 * column_file.effective_bits
        assert size["L_ORDERKEY"] * 8 == pytest.approx(expected_bits, rel=0.02)

    def test_scan_identical_to_plain(self, rle_table, lineitem_row):
        from repro.engine.executor import run_scan
        from repro.engine.predicate import predicate_for_selectivity
        from repro.engine.query import ScanQuery

        table, data = rle_table
        predicate = predicate_for_selectivity(
            "L_SUPPKEY", data.column("L_SUPPKEY"), 0.10
        )
        select = ("L_SUPPKEY", "L_ORDERKEY")
        query = ScanQuery(
            table.schema.name, select=select, predicates=(predicate,)
        )
        reference = run_scan(
            lineitem_row,
            ScanQuery("LINEITEM", select=select, predicates=(predicate,)),
        )
        result = run_scan(table, query)
        np.testing.assert_array_equal(result.positions, reference.positions)
        np.testing.assert_array_equal(
            result.column("L_ORDERKEY"), reference.column("L_ORDERKEY")
        )
