"""Figure 2, measured — the contour re-derived from simulation.

Figure 2 comes from the Section 5 formula; this experiment rebuilds a
coarse version of the same grid by *measuring* (on the simulated
substrate) synthetic tables of each tuple width under hardware
configurations matching each cpdb row, then compares against the
model's prediction cell by cell.
"""

from __future__ import annotations

from repro.data.synthetic import tuple_width_table
from repro.engine.predicate import predicate_for_selectivity
from repro.engine.query import ScanQuery
from repro.experiments.config import DEFAULT_EXECUTED_ROWS, ExperimentConfig
from repro.experiments.report import ExperimentOutput, FigureResult
from repro.experiments.runner import measure_scan
from repro.model.params import QueryShape
from repro.model.speedup import SpeedupModel
from repro.storage.layout import Layout
from repro.storage.loader import load_table

SELECTIVITY = 0.10
WIDTHS = (8, 16, 32)
#: Hardware points and the cpdb they produce (3.2 GHz base clock).
HARDWARE = (
    ("6 disks", {"num_disks": 6}),          # ~8.9 cpdb
    ("3 disks", {"num_disks": 3}),          # ~17.8
    ("1 disk", {"num_disks": 1}),           # ~53.3
    ("1 disk, 3 CPUs", {"num_disks": 1, "num_cpus": 3}),  # ~160
)


def run(
    num_rows: int = DEFAULT_EXECUTED_ROWS,
    config: ExperimentConfig | None = None,
) -> ExperimentOutput:
    """Measure the 50%-projection grid and compare with the model."""
    base = config or ExperimentConfig()
    table = FigureResult(
        title="Measured vs modeled speedup, 50% projection, 10% selectivity",
        headers=["hardware", "cpdb", "width", "measured", "model", "rel err"],
    )
    series: dict[str, list[float]] = {"measured": [], "predicted": []}
    for width in WIDTHS:
        data = tuple_width_table(width, num_rows, seed=3)
        row_table = load_table(data, Layout.ROW)
        column_table = load_table(data, Layout.COLUMN)
        num_attrs = len(data.schema)
        select = data.schema.attribute_names[: num_attrs // 2]
        predicate = predicate_for_selectivity(
            select[0], data.column(select[0]), SELECTIVITY
        )
        query = ScanQuery(
            data.schema.name, select=tuple(select), predicates=(predicate,)
        )
        for label, overrides in HARDWARE:
            calibration = base.calibration.with_overrides(**overrides)
            config_hw = base.with_(calibration=calibration)
            row = measure_scan(row_table, query, config_hw)
            column = measure_scan(column_table, query, config_hw)
            measured = row.elapsed / column.elapsed
            model = SpeedupModel(calibration=calibration)
            shape = QueryShape(
                tuple_width=float(data.schema.row_stride),
                selected_bytes=float(query.selected_width(data.schema)),
                selectivity=SELECTIVITY,
                num_attributes=num_attrs,
                selected_attributes=len(select),
            )
            predicted = model.predict(shape)
            rel_err = abs(predicted - measured) / measured
            table.add_row(
                label,
                round(calibration.cpdb, 1),
                width,
                round(measured, 2),
                round(predicted, 2),
                f"{rel_err:.0%}",
            )
            series["measured"].append(measured)
            series["predicted"].append(predicted)
    return ExperimentOutput(
        name="Figure 2, measured on the simulator",
        tables=[table],
        series=series,
    )
