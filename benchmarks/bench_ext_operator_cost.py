"""Extension bench — §5: expensive operators close the layout gap."""

import numpy as np
from _common import BENCH_ROWS, publish, run_once

from repro.experiments.figures import operator_cost


def bench_operator_cost(benchmark):
    out = run_once(benchmark, lambda: operator_cost.run(num_rows=BENCH_ROWS))
    publish(out, "ext_operator_cost.txt")

    speedups = np.asarray(out.series["speedup"])
    # In this CPU-bound configuration the row store wins the bare scan...
    assert speedups[0] < 1.0
    # ...and every added operator pulls the ratio toward 1.
    gaps = np.abs(speedups - 1.0)
    assert all(b <= a + 1e-9 for a, b in zip(gaps, gaps[1:]))
    assert gaps[-1] < gaps[0]
