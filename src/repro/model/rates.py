"""Rate equations 1-8 of Section 5.

All rates are tuples/sec.  A query's rate is
``R = MIN(R_DISK, R_CPU)`` (eq. 1); disk rates come from file sizes and
bandwidth (eqs. 2-4); CPU rates compose like parallel resistors
(eqs. 5-6) from per-operator rates (eq. 7), with scanners adding a
memory-bandwidth bound (eq. 8).
"""

from __future__ import annotations

import math

from repro.errors import CalibrationError
from repro.model.params import HardwareParams, ScannerParams


def parallel_rate(*rates: float) -> float:
    """Equations 5-6: cascaded operators behave like parallel resistors."""
    if not rates:
        raise CalibrationError("parallel_rate needs at least one rate")
    inverse = 0.0
    for rate in rates:
        if rate <= 0:
            return 0.0
        if math.isinf(rate):
            continue
        inverse += 1.0 / rate
    if inverse == 0.0:
        return math.inf
    return 1.0 / inverse


def operator_rate(clock_hz: float, instructions_per_tuple: float) -> float:
    """Equation 7: ``Op = clock / I_op`` (≈ one cycle per instruction)."""
    if instructions_per_tuple <= 0:
        return math.inf
    return clock_hz / instructions_per_tuple


def scanner_rate(hardware: HardwareParams, scanner: ScannerParams) -> float:
    """Equation 8: system ∥ MIN(user compute, memory delivery)."""
    sys_rate = operator_rate(hardware.clock_hz, scanner.i_system)
    user_rate = operator_rate(hardware.clock_hz, scanner.i_user)
    if scanner.mem_bytes_per_tuple > 0:
        mem_rate = (
            hardware.clock_hz
            * hardware.mem_bytes_per_cycle
            / scanner.mem_bytes_per_tuple
        )
        user_rate = min(user_rate, mem_rate)
    return parallel_rate(sys_rate, user_rate)


def cpu_rate(
    hardware: HardwareParams,
    scanners: list[ScannerParams],
    operator_instructions: list[float] = (),
) -> float:
    """Equation 6: all scanners and relational operators composed."""
    rates = [scanner_rate(hardware, scanner) for scanner in scanners]
    rates += [
        operator_rate(hardware.clock_hz, instructions)
        for instructions in operator_instructions
    ]
    return parallel_rate(*rates)


def disk_rate_row(
    hardware: HardwareParams,
    files: list[tuple[int, float]],
) -> float:
    """Equations 2-3 for row files: ``(N, tuple_width)`` per file."""
    total_bytes = sum(n * width for n, width in files)
    if total_bytes <= 0:
        raise CalibrationError("disk rate of an empty file set")
    total_tuples = sum(n for n, _width in files)
    return hardware.disk_bandwidth * total_tuples / total_bytes


def disk_rate_column(
    hardware: HardwareParams,
    files: list[tuple[int, float, float]],
) -> float:
    """Equation 4: ``(N, tuple_width, f)`` per file, ``f`` = width over
    the bytes the query needs from that relation."""
    total_bytes = sum(n * width for n, width, _f in files)
    if total_bytes <= 0:
        raise CalibrationError("disk rate of an empty file set")
    weighted = sum(n * f for n, _width, f in files)
    return hardware.disk_bandwidth * weighted / total_bytes


def query_rate(disk: float, cpu: float) -> float:
    """Equation 1."""
    return min(disk, cpu)
