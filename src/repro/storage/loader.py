"""Bulk loader: in-memory columns → dense row or column files.

The paper's systems are bulk-loaded (warehouse style); the loader packs
pages to capacity with no free space, assigning sequential page ids per
file (the Record ID of a value is its page id plus its position on the
page).
"""

from __future__ import annotations

import numpy as np

from repro.data.generator import GeneratedTable
from repro.errors import StorageError
from repro.storage.layout import Layout
from repro.storage.page import DEFAULT_PAGE_SIZE
from repro.storage.pagefile import PagedFile
from repro.storage.table import (
    ColumnTable,
    RowTable,
    Table,
    build_column_file,
    make_row_page_codec,
)


class BulkLoader:
    """Loads generated tables into either physical layout.

    With ``verify=True`` every load ends with an integrity sweep
    (:func:`repro.storage.scrub.verify_table`): each page written is
    read back and decoded, so a bad page never leaves the loader.
    """

    def __init__(self, page_size: int = DEFAULT_PAGE_SIZE, verify: bool = False):
        if page_size <= 0:
            raise StorageError(f"page size must be positive: {page_size}")
        self.page_size = page_size
        self.verify = verify

    def load(self, data: GeneratedTable, layout: Layout) -> Table:
        """Load ``data`` under the requested layout."""
        if layout is Layout.ROW:
            table = self.load_row(data)
        elif layout is Layout.PAX:
            table = self.load_pax(data)
        else:
            table = self.load_column(data)
        if self.verify:
            from repro.storage.scrub import verify_table

            verify_table(table)
        return table

    def load_pax(self, data: GeneratedTable) -> "PaxTable":
        """Pack tuples into PAX pages (per-attribute minipages)."""
        from repro.storage.pax import PaxPageCodec
        from repro.storage.table import PaxTable

        schema = data.schema
        page_codec = PaxPageCodec(schema, self.page_size)
        file = PagedFile(schema.name, page_size=self.page_size)
        capacity = page_codec.tuples_per_page
        for start in range(0, data.num_rows, capacity):
            end = min(start + capacity, data.num_rows)
            page_slices = {
                name: col[start:end] for name, col in data.columns.items()
            }
            file.append_page(page_codec.encode(file.num_pages, page_slices))
        return PaxTable(schema, file, data.num_rows, page_size=self.page_size)

    def load_row(self, data: GeneratedTable) -> RowTable:
        """Pack whole tuples into one file of row pages."""
        schema = data.schema
        page_codec = make_row_page_codec(schema, self.page_size)
        file = PagedFile(schema.name, page_size=self.page_size)
        capacity = page_codec.tuples_per_page
        num_rows = data.num_rows
        # Convert once to the disk-facing dtypes for speed.
        columns = {
            attr.name: np.asarray(data.columns[attr.name])
            for attr in schema
        }
        for start in range(0, num_rows, capacity):
            end = min(start + capacity, num_rows)
            page_slices = {name: col[start:end] for name, col in columns.items()}
            page = page_codec.encode(file.num_pages, page_slices)
            file.append_page(page)
        return RowTable(schema, file, num_rows, page_size=self.page_size)

    def load_column(self, data: GeneratedTable) -> ColumnTable:
        """Pack each attribute into its own file of column pages."""
        schema = data.schema
        column_files = {}
        for attr in schema:
            column_file = build_column_file(schema, attr.name, self.page_size)
            values = data.columns[attr.name]
            if column_file.is_variable:
                self._load_variable_column(column_file, values)
            else:
                capacity = column_file.values_per_page
                for start in range(0, data.num_rows, capacity):
                    chunk = values[start : start + capacity]
                    page = column_file.page_codec.encode(
                        column_file.file.num_pages, chunk
                    )
                    column_file.file.append_page(page)
            column_files[attr.name] = column_file
        return ColumnTable(schema, column_files, data.num_rows, page_size=self.page_size)

    @staticmethod
    def _load_variable_column(column_file, values: np.ndarray) -> None:
        """Variable-capacity codec: fill pages greedily, build the
        page directory."""
        first_rows = []
        position = 0
        while position < len(values):
            first_rows.append(position)
            page, consumed = column_file.page_codec.encode_prefix(
                column_file.file.num_pages, values[position:]
            )
            column_file.file.append_page(page)
            position += consumed
        column_file.first_rows = np.asarray(first_rows, dtype=np.int64)
        column_file.effective_bits = column_file.page_codec.codec.effective_bits(
            values
        )


def load_table(
    data: GeneratedTable,
    layout: Layout,
    page_size: int = DEFAULT_PAGE_SIZE,
    verify: bool = False,
) -> Table:
    """Convenience wrapper around :class:`BulkLoader`."""
    return BulkLoader(page_size=page_size, verify=verify).load(data, layout)
