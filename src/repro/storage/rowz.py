"""Compressed row pages.

The paper's three schemes "yield the same compression ratio for both row
and column data": a compressed *row* tuple is the concatenation of each
attribute's fixed-width packed value, padded to a whole byte per tuple
(ORDERS-Z: 92 bits → 12 bytes).  This codec lays tuples out exactly so.

Per-page codec state (the FOR base value of each frame-coded attribute)
is stored in the page-info area: eight bytes per frame attribute at the
tail of the payload region, in schema order.
"""

from __future__ import annotations

import struct

import numpy as np

from repro.compression.base import Codec, CodecKind, PageCodecState
from repro.compression.registry import build_codec
from repro.errors import PageFormatError, StorageError
from repro.storage.page import (
    DEFAULT_PAGE_SIZE,
    PAGE_TRAILER_BYTES,
    _assemble,
    _disassemble,
    page_payload_bytes,
)
from repro.types.schema import TableSchema

_BASE_SLOT = struct.Struct("<q")

_FRAME_KINDS = (CodecKind.FOR, CodecKind.FOR_DELTA)


def schema_is_compressed(schema: TableSchema) -> bool:
    """True when any attribute carries a non-identity codec spec."""
    return any(attr.spec.is_compressed for attr in schema)


class CompressedRowPageCodec:
    """Row pages whose tuples are bit-packed per Figure 5 widths."""

    def __init__(self, schema: TableSchema, page_size: int = DEFAULT_PAGE_SIZE):
        self.schema = schema
        self.page_size = page_size
        self._codecs: list[Codec] = [
            build_codec(attr.spec, attr.attr_type) for attr in schema
        ]
        self._bits = [codec.bits_per_value for codec in self._codecs]
        self._bit_offsets = np.cumsum([0] + self._bits).tolist()
        self.row_bits = sum(self._bits)
        # One tuple occupies a whole number of bytes (ORDERS-Z: 12).
        self._stride = (self.row_bits + 7) // 8
        self._frame_attrs = [
            index
            for index, attr in enumerate(schema)
            if attr.spec.kind in _FRAME_KINDS
        ]
        base_area = _BASE_SLOT.size * len(self._frame_attrs)
        payload = page_payload_bytes(page_size) - base_area
        if payload <= 0:
            raise StorageError(
                f"page size {page_size} cannot hold {len(self._frame_attrs)} "
                "frame base slots"
            )
        self._payload_bytes = payload
        self.tuples_per_page = payload // self._stride
        if self.tuples_per_page <= 0:
            raise StorageError(
                f"compressed row stride {self._stride} exceeds page payload"
            )

    @property
    def stride(self) -> int:
        """On-disk bytes per compressed tuple."""
        return self._stride

    def encode(self, page_id: int, columns: dict[str, np.ndarray]) -> bytes:
        """Build one page from column slices (all the same length)."""
        counts = {len(col) for col in columns.values()}
        if len(counts) != 1:
            raise PageFormatError(f"ragged column slices: {sorted(counts)}")
        count = counts.pop()
        if count > self.tuples_per_page:
            raise PageFormatError(
                f"{count} tuples exceed page capacity {self.tuples_per_page}"
            )
        bit_matrix = np.zeros((count, self._stride * 8), dtype=np.uint8)
        bases = []
        for index, attr in enumerate(self.schema):
            codec = self._codecs[index]
            payload, state = codec.encode_page(columns[attr.name])
            if index in self._frame_attrs:
                bases.append(state.base)
            bits = codec.bits_per_value
            attr_bits = np.unpackbits(
                np.frombuffer(payload, dtype=np.uint8),
                bitorder="little",
                count=count * bits,
            ).reshape(count, bits)
            start = self._bit_offsets[index]
            bit_matrix[:, start : start + bits] = attr_bits
        packed = np.packbits(bit_matrix.reshape(-1), bitorder="little").tobytes()
        base_area = b"".join(_BASE_SLOT.pack(base) for base in bases)
        payload_area = packed.ljust(self._payload_bytes, b"\x00") + base_area
        return _assemble(self.page_size, count, payload_area, page_id, 0)

    def _split(self, page: bytes) -> tuple[int, int, np.ndarray, list[int]]:
        count, payload, page_id, _base = _disassemble(page, self.page_size)
        if count > self.tuples_per_page:
            raise PageFormatError(
                f"page claims {count} tuples, capacity is {self.tuples_per_page}"
            )
        base_area = payload[self._payload_bytes :]
        bases = [
            _BASE_SLOT.unpack_from(base_area, i * _BASE_SLOT.size)[0]
            for i in range(len(self._frame_attrs))
        ]
        total_bits = count * self._stride * 8
        bit_matrix = np.unpackbits(
            np.frombuffer(payload[: self._payload_bytes], dtype=np.uint8),
            bitorder="little",
            count=total_bits,
        ).reshape(count, self._stride * 8)
        return page_id, count, bit_matrix, bases

    def decode_columns(self, page: bytes) -> tuple[int, int, dict[str, np.ndarray]]:
        """Parse a page into ``(page_id, count, columns dict)``."""
        page_id, count, bit_matrix, bases = self._split(page)
        columns = {}
        base_iter = iter(bases)
        for index, attr in enumerate(self.schema):
            codec = self._codecs[index]
            bits = codec.bits_per_value
            start = self._bit_offsets[index]
            attr_bits = bit_matrix[:, start : start + bits]
            attr_payload = np.packbits(
                attr_bits.reshape(-1), bitorder="little"
            ).tobytes()
            state = PageCodecState(
                base=next(base_iter) if index in self._frame_attrs else 0
            )
            columns[attr.name] = codec.decode_page(attr_payload, count, state)
        return page_id, count, columns
