"""Workload-preparation and figure-plumbing tests."""

import pytest

from repro.compression.base import CodecKind
from repro.errors import SchemaError
from repro.experiments.workloads import (
    clear_cache,
    prepare_lineitem,
    prepare_orders,
)
from repro.storage.layout import Layout


class TestPreparedTables:
    def test_both_layouts_materialized(self):
        prepared = prepare_orders(400, seed=5)
        assert prepared.row.layout is Layout.ROW
        assert prepared.column.layout is Layout.COLUMN
        assert prepared.row.num_rows == 400

    def test_caching_returns_same_object(self):
        a = prepare_orders(400, seed=5)
        b = prepare_orders(400, seed=5)
        assert a is b
        c = prepare_orders(400, seed=6)
        assert c is not a

    def test_clear_cache(self):
        a = prepare_orders(444, seed=5)
        clear_cache()
        b = prepare_orders(444, seed=5)
        assert a is not b

    def test_compressed_variant(self):
        packed = prepare_orders(400, seed=5, compressed=True)
        assert packed.schema.name == "ORDERS-Z"
        assert packed.schema.packed_tuple_bits == 92

    def test_orderkey_plain_for_variant(self):
        plain = prepare_orders(400, seed=5, compressed=True, orderkey_plain_for=True)
        spec = plain.schema.attribute("O_ORDERKEY").spec
        assert spec.kind is CodecKind.FOR
        assert spec.bits >= 16  # the paper's 16-bit plain FOR
        delta = prepare_orders(400, seed=5, compressed=True)
        assert delta.schema.attribute("O_ORDERKEY").spec.kind is CodecKind.FOR_DELTA

    def test_plain_for_requires_compressed(self):
        with pytest.raises(SchemaError):
            prepare_orders(400, seed=5, orderkey_plain_for=True)

    def test_predicate_helper(self):
        prepared = prepare_orders(2_000, seed=5)
        predicate = prepared.predicate("O_ORDERDATE", 0.10)
        from repro.engine.predicate import achieved_selectivity

        achieved = achieved_selectivity(
            predicate, prepared.data.column("O_ORDERDATE")
        )
        assert achieved == pytest.approx(0.10, abs=0.03)

    def test_attrs_prefix(self):
        prepared = prepare_lineitem(300, seed=5)
        assert prepared.attrs_prefix(3) == (
            "L_PARTKEY",
            "L_ORDERKEY",
            "L_SUPPKEY",
        )
        with pytest.raises(SchemaError):
            prepared.attrs_prefix(0)
        with pytest.raises(SchemaError):
            prepared.attrs_prefix(17)


class TestExperimentRegistry:
    def test_every_experiment_registered(self):
        from repro.experiments.figures import (
            ALL_EXPERIMENTS,
            EXTENSION_EXPERIMENTS,
            PAPER_EXPERIMENTS,
        )

        assert set(PAPER_EXPERIMENTS) == {
            "figure-2",
            "figure-2-measured",
            "figure-6",
            "figure-7",
            "figure-8",
            "figure-9",
            "figure-10",
            "figure-11",
            "table-1",
            "model-validation",
        }
        assert set(EXTENSION_EXPERIMENTS) == {
            "index-breakeven",
            "scan-sharing",
            "pax-comparison",
            "compressed-execution",
            "rle-projection",
            "join-analysis",
            "capacity-sweep",
            "sensitivity",
            "operator-cost",
        }
        assert set(ALL_EXPERIMENTS) == set(PAPER_EXPERIMENTS) | set(
            EXTENSION_EXPERIMENTS
        )

    def test_cli_runs_one_experiment(self, capsys):
        from repro.experiments.__main__ import main

        assert main(["figure-2"]) == 0
        out = capsys.readouterr().out
        assert "Figure 2" in out
        assert "regenerated" in out

    def test_cli_row_override(self, capsys):
        from repro.experiments.__main__ import main

        assert main(["--rows", "1000", "index-breakeven"]) == 0
        assert "index vs sequential scan" in capsys.readouterr().out
