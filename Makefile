# Convenience targets.  `pip install -e .` needs the `wheel` package for
# PEP 660 editable builds; in offline environments without it, the
# legacy `setup.py develop` path below installs identically.

.PHONY: install test bench scrub experiments experiments-md all

install:
	pip install -e . 2>/dev/null || python setup.py develop

test:
	pytest tests/

bench:
	pytest benchmarks/ --benchmark-only

# Integrity self-test: inject seeded faults into a scratch table and
# require the scrubber to pinpoint every one.
scrub:
	python -m repro.storage.scrub --self-test

experiments:
	python -m repro.experiments

experiments-md:
	python benchmarks/generate_experiments_md.py

all: install test bench
