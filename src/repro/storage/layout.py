"""Physical layout choices."""

from __future__ import annotations

import enum


class Layout(enum.Enum):
    """How a table's tuples are laid out on disk.

    ``ROW`` and ``COLUMN`` are the paper's two contenders (Figure 3);
    ``PAX`` is the Section 6 hybrid — row-store I/O with column-grouped
    pages — implemented as an extension for the ablation benches.
    """

    ROW = "row"
    COLUMN = "column"
    PAX = "pax"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value
