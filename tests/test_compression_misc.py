"""Identity, text-pack, registry, and spec tests."""

import numpy as np
import pytest

from repro.compression.base import CodecKind, CodecSpec
from repro.compression.identity import IdentityCodec
from repro.compression.registry import build_codec, build_codec_for_values
from repro.compression.textpack import TextPackCodec
from repro.errors import CompressionError
from repro.types.datatypes import FixedTextType, IntType


class TestCodecSpec:
    def test_describe_formats(self):
        assert CodecSpec(kind=CodecKind.PACK, bits=6).describe() == "pack, 6 bits"
        assert (
            CodecSpec(kind=CodecKind.PACK, bits=16).describe() == "pack, 2 bytes"
        )
        assert CodecSpec(kind=CodecKind.NONE, bits=32).describe() == "non-compressed"

    def test_zero_bits_rejected(self):
        with pytest.raises(CompressionError):
            CodecSpec(kind=CodecKind.PACK, bits=0)

    def test_dictionary_only_for_dict_kind(self):
        with pytest.raises(CompressionError):
            CodecSpec(kind=CodecKind.PACK, bits=2, dictionary=(1, 2))

    def test_is_compressed(self):
        assert CodecSpec(kind=CodecKind.PACK, bits=2).is_compressed
        assert not CodecSpec(kind=CodecKind.NONE, bits=32).is_compressed


class TestIdentityCodec:
    def test_roundtrip_int(self):
        codec = IdentityCodec(IdentityCodec.spec_for_type(IntType()), IntType())
        values = np.array([1, -5, 2**30])
        payload, state = codec.encode_page(values)
        np.testing.assert_array_equal(codec.decode_page(payload, 3, state), values)

    def test_bits_match_type_width(self):
        assert IdentityCodec.spec_for_type(IntType()).bits == 32
        assert IdentityCodec.spec_for_type(FixedTextType(25)).bits == 200

    def test_mismatched_width_rejected(self):
        with pytest.raises(CompressionError):
            IdentityCodec(CodecSpec(kind=CodecKind.NONE, bits=8), IntType())

    def test_values_per_page(self):
        codec = IdentityCodec(IdentityCodec.spec_for_type(IntType()), IntType())
        assert codec.values_per_page(4076) == 1019


class TestTextPackCodec:
    def test_suppresses_padding(self):
        values = np.array([b"hi", b"there"], dtype="S69")
        spec = TextPackCodec.spec_for_values(values)
        assert spec.bits == 5 * 8
        codec = TextPackCodec(spec, FixedTextType(69))
        payload, state = codec.encode_page(values)
        assert len(payload) == 10
        np.testing.assert_array_equal(codec.decode_page(payload, 2, state), values)

    def test_overlong_value_rejected_at_encode(self):
        spec = CodecSpec(kind=CodecKind.PACK, bits=3 * 8)
        codec = TextPackCodec(spec, FixedTextType(10))
        with pytest.raises(CompressionError):
            codec.encode_page(np.array([b"toolong"], dtype="S10"))

    def test_packed_wider_than_field_rejected(self):
        with pytest.raises(CompressionError):
            TextPackCodec(CodecSpec(kind=CodecKind.PACK, bits=88), FixedTextType(10))

    def test_non_byte_width_rejected(self):
        with pytest.raises(CompressionError):
            TextPackCodec(CodecSpec(kind=CodecKind.PACK, bits=12), FixedTextType(10))


class TestRegistry:
    def test_builds_every_kind_for_ints(self):
        values = np.array([10, 11, 12, 13] * 50)
        for kind in CodecKind:
            codec = build_codec_for_values(kind, IntType(), values)
            payload, state = codec.encode_page(values)
            np.testing.assert_array_equal(
                codec.decode_page(payload, len(values), state), values
            )

    def test_pack_dispatches_on_type(self):
        ints = build_codec_for_values(CodecKind.PACK, IntType(), np.array([1, 2]))
        texts = build_codec_for_values(
            CodecKind.PACK, FixedTextType(8), np.array([b"ab"], dtype="S8")
        )
        assert type(ints).__name__ == "BitPackCodec"
        assert isinstance(texts, TextPackCodec)

    def test_build_codec_from_spec(self):
        spec = CodecSpec(kind=CodecKind.PACK, bits=6)
        codec = build_codec(spec, IntType())
        assert codec.bits_per_value == 6

    def test_values_per_page_errors_on_tiny_payload(self):
        codec = build_codec(CodecSpec(kind=CodecKind.PACK, bits=64 * 8), IntType())
        # 512-bit values cannot fit in a 4-byte payload.
        with pytest.raises(CompressionError):
            codec.values_per_page(4)
