"""Section 5 validation — analytical model vs simulator measurement.

The paper derives its speedup formula from the measured experiments;
here we close the loop: for a range of query shapes, compare the
speedup the formula predicts against the ratio of measured (simulated)
elapsed times.
"""

from __future__ import annotations

from repro.engine.query import ScanQuery
from repro.experiments.config import DEFAULT_EXECUTED_ROWS, ExperimentConfig
from repro.experiments.report import ExperimentOutput, FigureResult
from repro.experiments.runner import measure_scan
from repro.experiments.workloads import PreparedTable, prepare_lineitem, prepare_orders
from repro.model.params import QueryShape
from repro.model.speedup import SpeedupModel

SELECTIVITY = 0.10

_CASES = (
    ("ORDERS", "O_ORDERDATE", (1, 2, 4, 7)),
    ("LINEITEM", "L_PARTKEY", (1, 4, 8, 16)),
)


def _shape(prepared: PreparedTable, k: int, selectivity: float) -> QueryShape:
    schema = prepared.schema
    selected = sum(attr.width for attr in schema.attributes[:k])
    return QueryShape(
        tuple_width=float(schema.row_stride),
        selected_bytes=float(selected),
        selectivity=selectivity,
        num_attributes=len(schema),
        selected_attributes=k,
    )


def run(
    num_rows: int = DEFAULT_EXECUTED_ROWS,
    config: ExperimentConfig | None = None,
    selectivity: float = SELECTIVITY,
) -> ExperimentOutput:
    """Compare predicted and measured column-over-row speedups."""
    config = config or ExperimentConfig()
    model = SpeedupModel(calibration=config.calibration)
    table = FigureResult(
        title="Predicted vs measured speedup (columns over rows)",
        headers=[
            "table",
            "attrs",
            "sel bytes",
            "measured",
            "predicted",
            "rel err",
        ],
    )
    series: dict[str, list[float]] = {"measured": [], "predicted": []}
    prepared_by_name = {
        "ORDERS": prepare_orders(num_rows),
        "LINEITEM": prepare_lineitem(num_rows),
    }
    for table_name, pred_attr, ks in _CASES:
        prepared = prepared_by_name[table_name]
        predicate = prepared.predicate(pred_attr, selectivity)
        for k in ks:
            query = ScanQuery(
                table_name,
                select=prepared.attrs_prefix(k),
                predicates=(predicate,),
            )
            row = measure_scan(prepared.row, query, config)
            column = measure_scan(prepared.column, query, config)
            measured = row.elapsed / column.elapsed
            predicted = model.predict(_shape(prepared, k, selectivity))
            rel_err = abs(predicted - measured) / measured
            table.add_row(
                table_name,
                k,
                column.selected_bytes,
                round(measured, 2),
                round(predicted, 2),
                f"{rel_err:.0%}",
            )
            series["measured"].append(measured)
            series["predicted"].append(predicted)
    return ExperimentOutput(
        name="Section 5: analytical-model validation",
        tables=[table],
        series=series,
    )
