"""Materialized-view materialization and routing tests."""

import numpy as np
import pytest

from repro.design.materialize import ViewRouter, materialize_view
from repro.engine.executor import run_scan
from repro.engine.predicate import predicate_for_selectivity
from repro.engine.query import ScanQuery
from repro.errors import PlanError, SchemaError
from repro.storage.layout import Layout


class TestMaterializeView:
    def test_view_holds_projected_columns(self, orders_data):
        view = materialize_view(orders_data, ("O_ORDERDATE", "O_TOTALPRICE"))
        assert view.table.num_rows == orders_data.num_rows
        assert view.table.schema.attribute_names == (
            "O_ORDERDATE",
            "O_TOTALPRICE",
        )
        np.testing.assert_array_equal(
            np.sort(view.table.read_column("O_TOTALPRICE")),
            np.sort(orders_data.column("O_TOTALPRICE")),
        )

    def test_sort_key_reclusters(self, orders_data):
        view = materialize_view(
            orders_data,
            ("O_ORDERSTATUS", "O_TOTALPRICE"),
            sort_key="O_ORDERSTATUS",
        )
        statuses = view.table.read_column("O_ORDERSTATUS")
        assert (statuses[1:] >= statuses[:-1]).all()
        # Rows keep their pairing after the re-sort.
        prices = view.table.read_column("O_TOTALPRICE")
        base = dict()
        for status, price in zip(
            orders_data.column("O_ORDERSTATUS"), orders_data.column("O_TOTALPRICE")
        ):
            base.setdefault(status, []).append(int(price))
        for status in np.unique(statuses):
            got = sorted(int(p) for p in prices[statuses == status])
            assert got == sorted(base[status])

    def test_sort_key_must_be_view_attribute(self, orders_data):
        with pytest.raises(PlanError):
            materialize_view(
                orders_data, ("O_TOTALPRICE",), sort_key="O_ORDERDATE"
            )

    def test_compressed_view_is_smaller(self, orders_data):
        plain = materialize_view(orders_data, ("O_ORDERSTATUS", "O_SHIPPRIORITY"))
        packed = materialize_view(
            orders_data, ("O_ORDERSTATUS", "O_SHIPPRIORITY"), compress=True
        )
        attrs = ["O_ORDERSTATUS", "O_SHIPPRIORITY"]
        # Compare at a scale where page quantization is negligible.
        plain_bytes = sum(
            plain.table.file_sizes_for(attrs, cardinality=1_000_000).values()
        )
        packed_bytes = sum(
            packed.table.file_sizes_for(attrs, cardinality=1_000_000).values()
        )
        assert packed_bytes < plain_bytes / 4

    def test_rle_on_sorted_view(self, orders_data):
        from repro.compression.base import CodecKind

        view = materialize_view(
            orders_data,
            ("O_SHIPPRIORITY", "O_TOTALPRICE"),
            sort_key="O_SHIPPRIORITY",
            compress=True,
            use_rle=True,
        )
        spec = view.table.schema.attribute("O_SHIPPRIORITY").spec
        assert spec.kind is CodecKind.RLE
        np.testing.assert_array_equal(
            view.table.read_column("O_SHIPPRIORITY"),
            np.zeros(orders_data.num_rows, dtype=np.int64),
        )

    def test_covers(self, orders_data):
        view = materialize_view(orders_data, ("O_ORDERDATE", "O_TOTALPRICE"))
        assert view.covers(ScanQuery("ORDERS", select=("O_TOTALPRICE",)))
        assert not view.covers(ScanQuery("ORDERS", select=("O_CUSTKEY",)))


class TestViewRouter:
    @pytest.fixture
    def router(self, orders_data, orders_column):
        router = ViewRouter(orders_column)
        router.add_view(
            materialize_view(
                orders_data, ("O_ORDERDATE", "O_TOTALPRICE"), compress=True
            )
        )
        router.add_view(
            materialize_view(orders_data, ("O_CUSTKEY", "O_ORDERKEY"))
        )
        return router

    def test_routes_to_covering_view(self, router):
        table, source = router.route(ScanQuery("ORDERS", select=("O_TOTALPRICE",)))
        assert source != "ORDERS"
        assert "O_TOTALPRICE" in table.schema.attribute_names

    def test_falls_back_to_base(self, router):
        table, source = router.route(
            ScanQuery("ORDERS", select=("O_ORDERPRIORITY",))
        )
        assert source == "ORDERS"

    def test_prefers_smallest_view(self, router, orders_data):
        router.add_view(
            materialize_view(orders_data, ("O_TOTALPRICE",), name="TINY", compress=True)
        )
        _table, source = router.route(ScanQuery("ORDERS", select=("O_TOTALPRICE",)))
        assert source == "TINY"

    def test_routed_answers_match_base(self, router, orders_data, orders_column):
        predicate = predicate_for_selectivity(
            "O_ORDERDATE", orders_data.column("O_ORDERDATE"), 0.20
        )
        query = ScanQuery(
            "ORDERS",
            select=("O_ORDERDATE", "O_TOTALPRICE"),
            predicates=(predicate,),
        )
        base_result = run_scan(orders_column, query)
        table, _source = router.route(query)
        routed = run_scan(table, query)
        # Same bag of tuples (view row order may differ).
        assert routed.num_tuples == base_result.num_tuples
        got = sorted(zip(routed.column("O_ORDERDATE"), routed.column("O_TOTALPRICE")))
        want = sorted(
            zip(base_result.column("O_ORDERDATE"), base_result.column("O_TOTALPRICE"))
        )
        assert got == want

    def test_foreign_view_rejected(self, orders_column, lineitem_data):
        router = ViewRouter(orders_column)
        view = materialize_view(lineitem_data, ("L_PARTKEY",))
        with pytest.raises(SchemaError):
            router.add_view(view)
