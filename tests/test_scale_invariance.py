"""Methodology invariant: results must not depend on the sample size.

The engine executes on a small materialized table and scales event
counts to paper cardinality.  If the methodology is sound, measuring
with 2 000 or 6 000 materialized rows must produce (nearly) the same
paper-scale numbers — differences come only from quantile-predicate
granularity and last-page effects.
"""

import pytest

from repro.engine.query import ScanQuery
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import measure_scan
from repro.experiments.workloads import prepare_lineitem, prepare_orders

SIZES = (2_000, 6_000)


def measure_at(num_rows, table_kind, k, selectivity, layout):
    if table_kind == "lineitem":
        prepared = prepare_lineitem(num_rows, seed=55)
        pred_attr = "L_PARTKEY"
        name = "LINEITEM"
    else:
        prepared = prepare_orders(num_rows, seed=55)
        pred_attr = "O_ORDERDATE"
        name = "ORDERS"
    predicate = prepared.predicate(pred_attr, selectivity)
    query = ScanQuery(
        name, select=prepared.attrs_prefix(k), predicates=(predicate,)
    )
    table = prepared.row if layout == "row" else prepared.column
    return measure_scan(table, query, ExperimentConfig())


class TestScaleInvariance:
    @pytest.mark.parametrize("layout", ["row", "column"])
    @pytest.mark.parametrize("table_kind,k", [("lineitem", 8), ("orders", 4)])
    def test_elapsed_independent_of_sample_size(self, table_kind, k, layout):
        values = [
            measure_at(size, table_kind, k, 0.10, layout).elapsed
            for size in SIZES
        ]
        assert values[1] == pytest.approx(values[0], rel=0.05)

    @pytest.mark.parametrize("layout", ["row", "column"])
    def test_cpu_breakdown_independent_of_sample_size(self, layout):
        breakdowns = [
            measure_at(size, "lineitem", 8, 0.10, layout).cpu.as_dict()
            for size in SIZES
        ]
        for key in breakdowns[0]:
            assert breakdowns[1][key] == pytest.approx(
                breakdowns[0][key], rel=0.10, abs=0.05
            ), key

    def test_io_bytes_exactly_scale(self):
        values = [
            measure_at(size, "orders", 4, 0.10, "column").bytes_read
            for size in SIZES
        ]
        assert values[1] == pytest.approx(values[0], rel=0.01)

    def test_speedup_stable(self):
        speedups = []
        for size in SIZES:
            row = measure_at(size, "lineitem", 8, 0.10, "row")
            col = measure_at(size, "lineitem", 8, 0.10, "column")
            speedups.append(row.elapsed / col.elapsed)
        assert speedups[1] == pytest.approx(speedups[0], rel=0.05)
