"""Block and predicate tests."""

import numpy as np
import pytest

from repro.engine.blocks import Block, concat_blocks, split_into_blocks
from repro.engine.predicate import (
    ComparisonOp,
    Predicate,
    achieved_selectivity,
    predicate_for_selectivity,
)
from repro.errors import EngineError, PlanError


def block(n=10):
    return Block(
        columns={"a": np.arange(n), "b": np.arange(n) * 2},
        positions=np.arange(n, dtype=np.int64),
    )


class TestBlock:
    def test_length_and_columns(self):
        b = block(5)
        assert len(b) == 5
        assert b.attribute_names == ["a", "b"]
        np.testing.assert_array_equal(b.column("b"), [0, 2, 4, 6, 8])

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(EngineError):
            Block(columns={"a": np.arange(3)}, positions=np.arange(4))

    def test_missing_column_rejected(self):
        with pytest.raises(EngineError):
            block().column("zz")

    def test_with_column(self):
        extended = block(4).with_column("c", np.ones(4))
        assert extended.attribute_names == ["a", "b", "c"]
        with pytest.raises(EngineError):
            block(4).with_column("c", np.ones(3))

    def test_take(self):
        mask = np.array([True, False] * 5)
        taken = block(10).take(mask)
        assert len(taken) == 5
        np.testing.assert_array_equal(taken.column("a"), [0, 2, 4, 6, 8])
        np.testing.assert_array_equal(taken.positions, [0, 2, 4, 6, 8])

    def test_rows(self):
        rows = block(3).rows()
        assert rows == [(0, 0), (1, 2), (2, 4)]


class TestSplitConcat:
    def test_split_sizes(self):
        parts = split_into_blocks(block(250), 100)
        assert [len(p) for p in parts] == [100, 100, 50]

    def test_split_roundtrips_through_concat(self):
        original = block(321)
        rebuilt = concat_blocks(split_into_blocks(original, 64))
        np.testing.assert_array_equal(rebuilt.column("a"), original.column("a"))
        np.testing.assert_array_equal(rebuilt.positions, original.positions)

    def test_concat_empty(self):
        empty = concat_blocks([])
        assert len(empty) == 0

    def test_concat_mismatched_schemas_rejected(self):
        other = Block(columns={"x": np.arange(2)}, positions=np.arange(2))
        with pytest.raises(EngineError):
            concat_blocks([block(2), other])

    def test_bad_block_size_rejected(self):
        with pytest.raises(EngineError):
            split_into_blocks(block(5), 0)


class TestPredicate:
    def test_all_operators(self):
        values = np.array([1, 2, 3, 4])
        cases = {
            ComparisonOp.LT: [True, False, False, False],
            ComparisonOp.LE: [True, True, False, False],
            ComparisonOp.GT: [False, False, True, True],
            ComparisonOp.GE: [False, True, True, True],
            ComparisonOp.EQ: [False, True, False, False],
            ComparisonOp.NE: [True, False, True, True],
        }
        for op, expected in cases.items():
            mask = Predicate("a", op, 2).evaluate(values)
            np.testing.assert_array_equal(mask, expected)

    def test_describe(self):
        assert Predicate("a", ComparisonOp.LE, 5).describe() == "a <= 5"


class TestSelectivityPredicate:
    def test_hits_target_on_uniform_data(self, rng):
        values = rng.integers(0, 1_000_000, size=20_000)
        for target in (0.001, 0.01, 0.10, 0.5):
            predicate = predicate_for_selectivity("a", values, target)
            achieved = achieved_selectivity(predicate, values)
            assert abs(achieved - target) < max(0.01, target * 0.2)

    def test_extremes(self, rng):
        values = rng.integers(0, 100, size=1000)
        everything = predicate_for_selectivity("a", values, 1.0)
        assert achieved_selectivity(everything, values) == 1.0
        nothing = predicate_for_selectivity("a", values, 0.0)
        assert achieved_selectivity(nothing, values) == 0.0

    def test_bad_inputs(self):
        with pytest.raises(PlanError):
            predicate_for_selectivity("a", np.array([1, 2]), 1.5)
        with pytest.raises(PlanError):
            predicate_for_selectivity("a", np.array([], dtype=np.int64), 0.5)
        with pytest.raises(PlanError):
            predicate_for_selectivity("a", np.array([b"x"], dtype="S4"), 0.5)

    def test_empty_selectivity_helper(self):
        predicate = Predicate("a", ComparisonOp.LE, 5)
        assert achieved_selectivity(predicate, np.array([], dtype=np.int64)) == 0.0
