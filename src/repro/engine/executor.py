"""Plan execution and result collection."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.cpusim.events import CostEvents
from repro.engine.blocks import Block, concat_blocks
from repro.engine.context import ExecutionContext
from repro.engine.operators.base import Operator
from repro.engine.plan import ColumnScannerKind, scan_plan
from repro.engine.query import ScanQuery
from repro.storage.scrub import CorruptionReport
from repro.storage.table import Table


@dataclass
class QueryResult:
    """Materialized output of one plan execution plus its cost events."""

    columns: dict[str, np.ndarray]
    positions: np.ndarray
    events: CostEvents
    #: Pages skipped while producing this result (salvage-mode scans);
    #: empty/clean under strict integrity, where corruption aborts.
    corruption: CorruptionReport = field(default_factory=CorruptionReport)

    @property
    def num_tuples(self) -> int:
        return len(self.positions)

    @property
    def is_complete(self) -> bool:
        """True when no page was skipped to produce this result."""
        return self.corruption.is_clean

    def column(self, name: str) -> np.ndarray:
        return self.columns[name]

    def rows(self) -> list[tuple]:
        """Tuples in column order (testing convenience)."""
        names = list(self.columns)
        return [
            tuple(self.columns[name][i] for name in names)
            for i in range(self.num_tuples)
        ]

    def as_block(self) -> Block:
        return Block(columns=self.columns, positions=self.positions)


def execute_plan(plan: Operator) -> QueryResult:
    """Drain a plan and return its materialized output."""
    blocks = plan.drain()
    merged = concat_blocks(blocks)
    return QueryResult(
        columns=merged.columns,
        positions=merged.positions,
        events=plan.context.events,
        corruption=plan.context.corruption,
    )


def run_scan(
    table: Table,
    query: ScanQuery,
    context: ExecutionContext | None = None,
    column_scanner: ColumnScannerKind = ColumnScannerKind.PIPELINED,
    salvage: bool = False,
) -> QueryResult:
    """Plan and execute one scan query against a table.

    With ``salvage=True`` the scan degrades instead of aborting on
    corrupt pages: their rows are skipped consistently across scan
    nodes and tallied in :attr:`QueryResult.corruption`.
    """
    context = context or ExecutionContext()
    if salvage:
        context.strict_integrity = False
    plan = scan_plan(context, table, query, column_scanner)
    return execute_plan(plan)
