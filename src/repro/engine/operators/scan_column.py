"""Pipelined column scanner (Section 2.2.2, Figure 4).

One scan node per accessed column.  The deepest node reads its whole
column, applies the query's predicates for that attribute, and produces
``{position, value}`` pairs for qualifying tuples.  Each later node is
*driven by the position list*: it only examines the values at incoming
positions, evaluates its own predicates (if any), and either rewrites
the resulting tuples (predicate nodes) or merely attaches its values
(predicate-free nodes).  Blocks are exchanged between nodes in the same
block-iterator format the rest of the engine uses.

The cost consequences the paper measures all live here:

* later nodes do work proportional to the *qualifying* tuples, so at
  0.1 % selectivity extra columns are nearly free (Figure 7);
* at high selectivity every extra node adds per-position bookkeeping
  and copying, which is the column store's CPU overhead (Figure 6);
* a sparse position list turns a column's memory traffic from
  prefetched-sequential into random misses, while FOR-delta columns
  must decode whole pages no matter how few positions arrive
  (Figure 9).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.compression.base import CodecKind
from repro.cpusim.cache import classify_page_access, page_lines
from repro.engine.blocks import Block, split_into_blocks
from repro.engine.context import ExecutionContext
from repro.engine.operators.base import Operator
from repro.engine.operators.scan_row import normalize_row_range
from repro.engine.predicate import Predicate
from repro.errors import PlanError
from repro.storage.table import ColumnFile, ColumnTable

#: Bytes to charge for the position (Record ID) in a {position, value} pair.
_POSITION_BYTES = 4


@dataclass
class _ScanNode:
    """One column's scan node: its file, predicates, and role."""

    attr: str
    column_file: ColumnFile
    predicates: tuple[Predicate, ...]
    selected: bool
    width: int


class ColumnScanner(Operator):
    """Scan a :class:`ColumnTable` through a pipeline of scan nodes."""

    def __init__(
        self,
        context: ExecutionContext,
        table: ColumnTable,
        select: tuple[str, ...],
        predicates: tuple[Predicate, ...] = (),
        row_range: tuple[int, int] | None = None,
    ):
        super().__init__(context)
        if not select:
            raise PlanError("column scanner needs a non-empty select list")
        self.table = table
        self.select = tuple(select)
        self.predicates = tuple(predicates)
        self.row_range = normalize_row_range(row_range, table.num_rows)
        self._nodes = self._build_nodes()
        self._ready: deque[Block] = deque()
        self._done = False

    # --- node construction ---------------------------------------------------

    def _build_nodes(self) -> list[_ScanNode]:
        """Scan nodes in pipeline order: predicate attributes deepest."""
        schema = self.table.schema
        order: list[str] = []
        for predicate in self.predicates:
            if predicate.attr not in order:
                order.append(predicate.attr)
        for name in self.select:
            if name not in order:
                order.append(name)
        nodes = []
        for name in order:
            attr = schema.attribute(name)
            nodes.append(
                _ScanNode(
                    attr=name,
                    column_file=self.table.column_file(name),
                    predicates=tuple(p for p in self.predicates if p.attr == name),
                    selected=name in self.select,
                    width=attr.width,
                )
            )
        return nodes

    def scan_attribute_order(self) -> list[str]:
        """The columns read, deepest node first."""
        return [node.attr for node in self._nodes]

    # --- execution -------------------------------------------------------------

    def describe(self) -> str:
        detail = f"{self.table.schema.name}: {', '.join(self.select)}"
        if self.predicates:
            detail += f" | {len(self.predicates)} predicate(s)"
        lo, hi = self.row_range
        if (lo, hi) != (0, self.table.num_rows):
            detail += f" | rows [{lo}, {hi})"
        return f"{detail} | {len(self._nodes)} scan node(s)"

    def _open(self) -> None:
        self._ready.clear()
        self._done = False

    def _next(self) -> Block | None:
        if not self._ready and not self._done:
            self._execute()
            self._done = True
        if not self._ready:
            return None
        return self._ready.popleft()

    def _execute(self) -> None:
        """Run the node pipeline over the whole table.

        Nodes logically exchange 100-tuple blocks; the work and the
        block handoffs are accounted per node, while the computation is
        vectorized page-at-a-time for speed.
        """
        first, rest = self._nodes[0], self._nodes[1:]
        positions, collected = self._run_first_node(first)
        for node in rest:
            positions, collected = self._run_inner_node(node, positions, collected)
        # The final node's output blocks are the scanner's own output,
        # which the base class already counts on emission.
        self.events.blocks_produced -= self._block_count(positions.size)
        self._emit(positions, collected)

    def _run_first_node(self, node: _ScanNode) -> tuple[np.ndarray, dict]:
        """Dense scan of the deepest column."""
        events = self.events
        calibration = self.context.calibration
        spec = self.table.schema.attribute(node.attr).spec
        page_codec = node.column_file.page_codec
        codec = page_codec.codec
        bits = codec.bits_per_value
        code_predicates = self._code_predicates(node, codec)
        lo, hi = self.row_range
        qualified_positions = []
        qualified_values = []
        row_base = 0
        file = node.column_file.file
        for page_index in range(file.num_pages):
            self._governance_check()
            span = node.column_file.row_span_of_page(page_index, self.table.num_rows)
            if row_base >= hi:
                break
            if row_base + span <= lo:
                # Page entirely before the row window: skip without I/O.
                row_base += span
                continue

            def decode(page_index=page_index):
                _pid, count, payload, state = page_codec.decode_raw(
                    file.read_page(page_index)
                )
                if code_predicates is not None:
                    return count, codec.decode_codes(payload, count)
                return count, codec.decode_page(payload, count, state)

            decoded = self._salvage_decode(decode, file.name, page_index, span)
            if decoded is None:
                # Salvage: the page's rows vanish from the position
                # list; advancing by the nominal span keeps every later
                # node's position→page mapping aligned.
                row_base += span
                continue
            count, data = decoded

            # Restrict to the scanner's row window: the page is decoded
            # (and charged) whole, but out-of-window values are never
            # compared or copied.
            start = max(0, lo - row_base)
            stop = max(start, min(count, hi - row_base))
            in_range = stop - start

            events.pages_touched += 1
            events.values_examined += count
            events.mem_seq_lines += page_lines(count, bits, calibration.l2_line_bytes)
            events.l1_lines += page_lines(count, bits, calibration.l1_line_bytes)

            if in_range == count:
                mask = np.ones(count, dtype=bool)
            else:
                mask = np.zeros(count, dtype=bool)
                mask[start:stop] = True
            if code_predicates is not None:
                # Compressed execution: compare the packed codes; the
                # only work per value is the bit extraction, and the
                # comparison operand is the narrow code, not the value.
                codes = data
                events.count_decode(CodecKind.PACK, count)
                code_bytes = max(1, codec.bits_per_value // 8)
                for index, code_predicate in enumerate(code_predicates):
                    candidates = in_range if index == 0 else int(np.count_nonzero(mask))
                    events.predicate_evals += candidates
                    events.predicate_eval_bytes += candidates * code_bytes
                    mask &= code_predicate.evaluate(codes)
                qualified = int(np.count_nonzero(mask))
                if node.selected:
                    # Only qualifying values are ever looked up.
                    values = codec.dictionary[codes[mask]]
                    events.count_decode(spec.kind, qualified)
                else:
                    values = np.zeros(0, dtype=codec.attr_type.numpy_dtype())
            else:
                values = data
                events.count_decode(spec.kind, count)
                for index, predicate in enumerate(node.predicates):
                    candidates = in_range if index == 0 else int(np.count_nonzero(mask))
                    events.predicate_evals += candidates
                    events.predicate_eval_bytes += candidates * node.width
                    mask &= predicate.evaluate(values)
                qualified = int(np.count_nonzero(mask))
                values = values[mask]
            if qualified:
                events.values_copied += qualified
                events.bytes_copied += qualified * (node.width + _POSITION_BYTES)
                qualified_positions.append(row_base + np.flatnonzero(mask))
                qualified_values.append(values)
            row_base += count

        if qualified_positions:
            positions = np.concatenate(qualified_positions)
            values = np.concatenate(qualified_values)
        else:
            positions = np.zeros(0, dtype=np.int64)
            values = np.zeros(0, dtype=codec.attr_type.numpy_dtype())
        events.blocks_produced += self._block_count(positions.size)
        collected = {node.attr: values} if node.selected else {}
        return positions, collected

    def _code_predicates(self, node: _ScanNode, codec):
        """Rewritten code predicates when compressed execution applies."""
        if not self.context.compressed_execution or not node.predicates:
            return None
        from repro.compression.dictionary import DictionaryCodec
        from repro.engine.compressed_exec import rewrite_all

        if not isinstance(codec, DictionaryCodec):
            return None
        return rewrite_all(node.predicates, codec)

    def _run_inner_node(
        self,
        node: _ScanNode,
        positions: np.ndarray,
        collected: dict,
    ) -> tuple[np.ndarray, dict]:
        """Position-driven scan of one later column."""
        events = self.events
        calibration = self.context.calibration
        spec = self.table.schema.attribute(node.attr).spec
        codec = node.column_file.page_codec.codec
        bits = codec.bits_per_value

        events.positions_processed += positions.size

        values = np.zeros(0, dtype=codec.attr_type.numpy_dtype())
        if positions.size:
            page_ids = node.column_file.page_of_positions(positions)
            keep = np.ones(positions.size, dtype=bool)
            chunks = []
            for page_id in np.unique(page_ids):
                self._governance_check()
                selector = page_ids == page_id
                in_page = positions[selector] - node.column_file.first_row_of_page(
                    int(page_id)
                )

                def decode(page_id=page_id, in_page=in_page):
                    page = node.column_file.file.read_page(int(page_id))
                    _pid, count, payload, state = (
                        node.column_file.page_codec.decode_raw(page)
                    )
                    page_values, decoded = codec.decode_positions(
                        payload, count, state, in_page
                    )
                    return count, page_values, decoded

                result = self._salvage_decode(
                    decode, node.column_file.file.name, int(page_id), int(in_page.size)
                )
                if result is None:
                    # Salvage: this column cannot supply these rows, so
                    # they are dropped from the pipeline — the position
                    # list and every already-collected column shrink in
                    # lockstep below.
                    keep &= ~selector
                    continue
                count, page_values, decoded = result
                chunks.append(page_values)

                events.pages_touched += 1
                events.count_decode(spec.kind, decoded)
                seq, rand = classify_page_access(
                    in_page, count, bits, calibration.l2_line_bytes
                )
                events.mem_seq_lines += seq
                events.mem_rand_lines += rand
                l1_seq, l1_rand = classify_page_access(
                    in_page, count, bits, calibration.l1_line_bytes
                )
                events.l1_lines += l1_seq + l1_rand
            if not keep.all():
                positions = positions[keep]
                collected = {name: col[keep] for name, col in collected.items()}
            if chunks:
                values = np.concatenate(chunks)

        mask = np.ones(positions.size, dtype=bool)
        for index, predicate in enumerate(node.predicates):
            candidates = positions.size if index == 0 else int(np.count_nonzero(mask))
            events.predicate_evals += candidates
            events.predicate_eval_bytes += candidates * node.width
            mask &= predicate.evaluate(values)

        if node.predicates:
            # Rewrite: qualifying tuples are copied whole to new blocks.
            qualified = int(np.count_nonzero(mask))
            positions = positions[mask]
            values = values[mask]
            collected = {name: col[mask] for name, col in collected.items()}
            carried_bytes = sum(
                self.table.schema.attribute(name).width for name in collected
            )
            events.values_copied += qualified * (len(collected) + 2)
            events.bytes_copied += qualified * (
                carried_bytes + node.width + _POSITION_BYTES
            )
        else:
            # Attach: values are appended without rewriting the tuples.
            events.values_copied += positions.size
            events.bytes_copied += positions.size * node.width

        if node.selected:
            collected = dict(collected)
            collected[node.attr] = values
        events.blocks_produced += self._block_count(positions.size)
        return positions, collected

    def _emit(self, positions: np.ndarray, collected: dict) -> None:
        block = Block(
            columns={name: collected[name] for name in self.select},
            positions=positions,
        )
        self._ready.extend(split_into_blocks(block, self.context.block_size))

    def _block_count(self, tuples: int) -> int:
        if tuples <= 0:
            return 0
        block_size = self.context.block_size
        return (tuples + block_size - 1) // block_size
