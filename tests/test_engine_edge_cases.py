"""Operator edge cases: empty inputs, error paths, odd shapes."""

import numpy as np
import pytest

from repro.data.generator import GeneratedTable
from repro.engine.context import ExecutionContext
from repro.engine.executor import execute_plan, run_scan
from repro.engine.operators.merge_join import MergeJoin
from repro.engine.operators.scan_column import ColumnScanner
from repro.engine.operators.sort import SortOperator
from repro.engine.plan import ColumnScannerKind, merge_join_plan, scan_plan
from repro.engine.predicate import ComparisonOp, Predicate
from repro.engine.query import ScanQuery
from repro.errors import PlanError
from repro.storage.layout import Layout
from repro.storage.loader import load_table
from repro.types.datatypes import IntType
from repro.types.schema import Attribute, TableSchema


def tiny_table(values_a, values_b, layout=Layout.COLUMN, name="T"):
    schema = TableSchema(
        name=name,
        attributes=(Attribute("a", IntType()), Attribute("b", IntType())),
    )
    data = GeneratedTable(
        schema=schema,
        columns={
            "a": np.asarray(values_a, dtype=np.int64),
            "b": np.asarray(values_b, dtype=np.int64),
        },
    )
    return load_table(data, layout)


class TestSingleRowTables:
    @pytest.mark.parametrize("layout", [Layout.ROW, Layout.COLUMN, Layout.PAX])
    def test_one_row_scan(self, layout):
        table = tiny_table([7], [9], layout)
        result = run_scan(table, ScanQuery("T", select=("a", "b")))
        assert result.rows() == [(7, 9)]

    def test_one_row_filtered_out(self):
        table = tiny_table([7], [9])
        query = ScanQuery(
            "T", select=("a",), predicates=(Predicate("a", ComparisonOp.GT, 7),)
        )
        result = run_scan(table, query)
        assert result.num_tuples == 0


class TestBlockBoundaries:
    @pytest.mark.parametrize("n", [99, 100, 101, 200, 201])
    def test_counts_across_block_edges(self, n):
        table = tiny_table(np.arange(n), np.arange(n) * 2)
        result = run_scan(table, ScanQuery("T", select=("a", "b")))
        assert result.num_tuples == n
        np.testing.assert_array_equal(result.column("a"), np.arange(n))

    def test_tiny_block_size(self):
        table = tiny_table(np.arange(57), np.arange(57))
        context = ExecutionContext(block_size=1)
        result = run_scan(table, ScanQuery("T", select=("a",)), context)
        assert result.num_tuples == 57
        assert context.events.blocks_produced >= 57


class TestMergeJoinErrors:
    def test_unsorted_right_rejected(self):
        left = tiny_table([1, 2, 3], [0, 0, 0], name="L")
        right = tiny_table([3, 1, 2], [0, 0, 0], name="R")
        context = ExecutionContext()
        plan = merge_join_plan(
            context,
            left,
            ScanQuery("L", select=("a",)),
            right,
            ScanQuery("R", select=("a",)),
            left_key="a",
            right_key="a",
        )
        with pytest.raises(PlanError):
            execute_plan(plan)

    def test_duplicate_left_keys_rejected(self):
        left = tiny_table([1, 1, 2], [0, 0, 0], name="L")
        right = tiny_table([1, 2], [0, 0], name="R")
        plan = merge_join_plan(
            ExecutionContext(),
            left,
            ScanQuery("L", select=("a",)),
            right,
            ScanQuery("R", select=("a",)),
            left_key="a",
            right_key="a",
        )
        with pytest.raises(PlanError):
            execute_plan(plan)

    def test_unmatched_right_rows_dropped(self):
        left = tiny_table([2, 4], [20, 40], name="L")
        right = tiny_table([1, 2, 3, 4, 5], [0, 0, 0, 0, 0], name="R")
        plan = merge_join_plan(
            ExecutionContext(),
            left,
            ScanQuery("L", select=("a", "b")),
            right,
            ScanQuery("R", select=("a",)),
            left_key="a",
            right_key="a",
        )
        # Output attribute collision on "a" is allowed for the join key
        # (identical values); here left selects a+b, right selects a.
        result = execute_plan(plan)
        np.testing.assert_array_equal(np.sort(result.column("a")), [2, 4])

    def test_empty_side_yields_empty_join(self):
        left = tiny_table([1], [0], name="L")
        right = tiny_table([5], [0], name="R")
        plan = merge_join_plan(
            ExecutionContext(),
            left,
            ScanQuery(
                "L",
                select=("a",),
                predicates=(Predicate("a", ComparisonOp.GT, 100),),
            ),
            right,
            ScanQuery("R", select=("a",)),
            left_key="a",
            right_key="a",
        )
        result = execute_plan(plan)
        assert result.num_tuples == 0


class TestSortEdges:
    def test_sort_empty_input(self):
        table = tiny_table([1], [1])
        context = ExecutionContext()
        scan = scan_plan(
            context,
            table,
            ScanQuery(
                "T",
                select=("a",),
                predicates=(Predicate("a", ComparisonOp.GT, 100),),
            ),
        )
        plan = SortOperator(context, scan, key="a")
        result = execute_plan(plan)
        assert result.num_tuples == 0

    def test_sort_missing_key_rejected(self):
        table = tiny_table([3, 1], [0, 0])
        context = ExecutionContext()
        scan = scan_plan(context, table, ScanQuery("T", select=("a",)))
        plan = SortOperator(context, scan, key="b")
        with pytest.raises(PlanError):
            execute_plan(plan)

    def test_sort_is_stable(self):
        table = tiny_table([2, 1, 2, 1], [10, 20, 30, 40])
        context = ExecutionContext()
        scan = scan_plan(context, table, ScanQuery("T", select=("a", "b")))
        result = execute_plan(SortOperator(context, scan, key="a"))
        np.testing.assert_array_equal(result.column("b"), [20, 40, 10, 30])


class TestScannerConstruction:
    def test_column_scanner_empty_select_rejected(self, orders_column):
        with pytest.raises(PlanError):
            ColumnScanner(ExecutionContext(), orders_column, select=())

    def test_reopen_after_close(self):
        table = tiny_table(np.arange(30), np.arange(30))
        context = ExecutionContext()
        plan = scan_plan(context, table, ScanQuery("T", select=("a",)))
        first = sum(len(b) for b in plan.drain())
        second = sum(len(b) for b in plan.drain())
        assert first == second == 30

    def test_fused_scanner_predicate_not_selected(self):
        table = tiny_table(np.arange(50), np.arange(50) * 3)
        query = ScanQuery(
            "T",
            select=("b",),
            predicates=(Predicate("a", ComparisonOp.LT, 10),),
        )
        result = run_scan(table, query, column_scanner=ColumnScannerKind.FUSED)
        np.testing.assert_array_equal(result.column("b"), np.arange(10) * 3)
