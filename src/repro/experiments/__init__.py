"""The paper's performance study, experiment by experiment.

Each module under :mod:`repro.experiments.figures` regenerates one
table or figure of the paper's evaluation; the shared
:mod:`repro.experiments.runner` executes a query on the engine, scales
its event counts to paper cardinality, runs the disk simulation at
paper-scale file sizes, and combines both into elapsed time exactly as
the paper's overlapped AIO design does.
"""

from repro.experiments.config import CompetingTraffic, ExperimentConfig
from repro.experiments.runner import ScanMeasurement, measure_scan
from repro.experiments.report import format_table

__all__ = [
    "ExperimentConfig",
    "CompetingTraffic",
    "ScanMeasurement",
    "measure_scan",
    "format_table",
]
