"""Ablations — block size and page size (Section 2.2 design choices).

The paper fixes blocks at 100 tuples (fits the 16 KB L1) and pages at
4 KB, claiming page size "has no visible effect on performance" for
sequential scans.  These benches check both choices.
"""

from _common import publish, run_once

from repro.data.tpch import generate_orders
from repro.engine.query import ScanQuery
from repro.experiments.config import ExperimentConfig
from repro.experiments.report import ExperimentOutput, FigureResult
from repro.experiments.runner import measure_scan
from repro.experiments.workloads import prepare_orders
from repro.storage.layout import Layout
from repro.storage.loader import load_table

ROWS = 3_000


def run_block_size_sweep() -> ExperimentOutput:
    prepared = prepare_orders(ROWS)
    predicate = prepared.predicate("O_ORDERDATE", 0.10)
    query = ScanQuery(
        "ORDERS", select=prepared.attrs_prefix(4), predicates=(predicate,)
    )
    table = FigureResult(
        title="Column-scan CPU (s) vs block size",
        headers=["block tuples", "cpu (s)", "fits 16KB L1"],
    )
    series = {"block": [], "cpu": []}
    width = query.selected_width(prepared.schema)
    for block_size in (10, 50, 100, 400, 1600):
        config = ExperimentConfig(block_size=block_size)
        m = measure_scan(prepared.column, query, config)
        fits = "yes" if block_size * width <= 16 * 1024 else "no"
        table.add_row(block_size, round(m.cpu.total, 3), fits)
        series["block"].append(block_size)
        series["cpu"].append(m.cpu.total)
    return ExperimentOutput(
        name="Ablation: block size", tables=[table], series=series
    )


def run_page_size_sweep() -> ExperimentOutput:
    data = generate_orders(ROWS, seed=1)
    predicate_source = data.column("O_ORDERDATE")
    from repro.engine.predicate import predicate_for_selectivity

    predicate = predicate_for_selectivity("O_ORDERDATE", predicate_source, 0.10)
    query = ScanQuery(
        "ORDERS",
        select=("O_ORDERDATE", "O_ORDERKEY", "O_CUSTKEY"),
        predicates=(predicate,),
    )
    table = FigureResult(
        title="Elapsed (s) vs page size, both layouts",
        headers=["page bytes", "row", "column"],
    )
    series = {"page": [], "row": [], "column": []}
    config = ExperimentConfig()
    for page_size in (2_048, 4_096, 8_192, 16_384):
        row = load_table(data, Layout.ROW, page_size=page_size)
        column = load_table(data, Layout.COLUMN, page_size=page_size)
        m_row = measure_scan(row, query, config)
        m_col = measure_scan(column, query, config)
        table.add_row(page_size, round(m_row.elapsed, 2), round(m_col.elapsed, 2))
        series["page"].append(page_size)
        series["row"].append(m_row.elapsed)
        series["column"].append(m_col.elapsed)
    return ExperimentOutput(
        name="Ablation: page size", tables=[table], series=series
    )


def bench_ablation_block_size(benchmark):
    out = run_once(benchmark, run_block_size_sweep)
    publish(out, "ablation_block_size.txt")
    cpu = out.series["cpu"]
    # Bigger blocks amortize the block-iterator overhead monotonically.
    assert all(b <= a + 1e-9 for a, b in zip(cpu, cpu[1:]))
    # But the gain from the paper's 100 to 16x larger blocks is small —
    # the choice is about L1 residency, not iterator overhead.
    assert cpu[2] - cpu[-1] < 0.25 * cpu[2]


def bench_ablation_page_size(benchmark):
    out = run_once(benchmark, run_page_size_sweep)
    publish(out, "ablation_page_size.txt")
    # The paper: page size has no visible effect on sequential scans.
    for key in ("row", "column"):
        values = out.series[key]
        assert max(values) - min(values) < 0.05 * max(values)
