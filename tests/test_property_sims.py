"""Property-based simulator tests: conservation laws and bounds."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cpusim.calibration import DEFAULT_CALIBRATION
from repro.iosim.request import FileExtent
from repro.iosim.sharing import SharedScanQuery, SharedScanSimulator
from repro.iosim.sim import DiskArraySim
from repro.iosim.streams import ScanStream, SubmissionPolicy
from repro.model.rates import parallel_rate

MB = 1_000_000

stream_specs = st.lists(
    st.tuples(
        st.integers(min_value=1, max_value=4),      # number of files
        st.integers(min_value=1, max_value=400),    # MB per file
        st.integers(min_value=1, max_value=48),     # prefetch depth
        st.sampled_from(list(SubmissionPolicy)),
        st.floats(min_value=0.0, max_value=60.0),   # start time
    ),
    min_size=1,
    max_size=4,
)


def build_streams(specs):
    sim = DiskArraySim()
    streams = []
    for index, (nfiles, mb, depth, policy, start) in enumerate(specs):
        files = [
            FileExtent(f"s{index}.f{j}", mb * MB // nfiles) for j in range(nfiles)
        ]
        streams.append(
            ScanStream(
                name=f"s{index}",
                files=files,
                unit_bytes=sim.unit_bytes,
                prefetch_depth=depth,
                policy=policy,
                start_time=start,
            )
        )
    return sim, streams


@settings(max_examples=40, deadline=None)
@given(stream_specs)
def test_disk_sim_conserves_bytes(specs):
    sim, streams = build_streams(specs)
    stats = sim.run(streams)
    for stream in streams:
        assert stats[stream.name].bytes_read == stream.total_bytes
        assert stats[stream.name].units == stream.total_units


@settings(max_examples=40, deadline=None)
@given(stream_specs)
def test_disk_sim_elapsed_bounds(specs):
    """No stream beats raw bandwidth; total busy time is consistent."""
    sim, streams = build_streams(specs)
    stats = sim.run(streams)
    bandwidth = DEFAULT_CALIBRATION.total_disk_bandwidth
    for stream in streams:
        s = stats[stream.name]
        # Lower bound: its own transfer time.
        assert s.elapsed >= s.bytes_read / bandwidth - 1e-9
        # Completion never precedes its start.
        assert s.finish_time >= s.start_time
    # The array serves one request at a time: total busy time fits
    # between the earliest start and the latest finish.
    busy = sum(stats[s.name].io_seconds for s in streams)
    start = min(stats[s.name].start_time for s in streams)
    finish = max(stats[s.name].finish_time for s in streams)
    assert busy <= (finish - start) + 1e-9


@settings(max_examples=40, deadline=None)
@given(stream_specs)
def test_disk_sim_deterministic(specs):
    sim, streams_a = build_streams(specs)
    _sim, streams_b = build_streams(specs)
    stats_a = sim.run(streams_a)
    stats_b = DiskArraySim().run(streams_b)
    for name in stats_a:
        assert stats_a[name].finish_time == stats_b[name].finish_time
        assert stats_a[name].switches == stats_b[name].switches


@settings(max_examples=30, deadline=None)
@given(
    st.integers(min_value=1, max_value=8),
    st.integers(min_value=10, max_value=2_000),
)
def test_scan_sharing_speedup_bounded_by_n(count, mb):
    simulator = SharedScanSimulator(mb * MB)
    queries = [SharedScanQuery(f"q{i}") for i in range(count)]
    outcome = simulator.compare(queries)
    # Sharing can't beat N concurrent-arrival queries by more than ~N
    # (the independent runs pay extra seeks, hence the slack).
    assert outcome.speedup <= count * 1.5 + 1e-9
    assert outcome.speedup >= 1.0 - 1e-9


@settings(max_examples=50, deadline=None)
@given(
    st.lists(
        st.floats(min_value=0.01, max_value=1e9),
        min_size=1,
        max_size=6,
    )
)
def test_parallel_rate_properties(rates):
    combined = parallel_rate(*rates)
    # Never faster than the slowest stage...
    assert combined <= min(rates) + 1e-6
    # ...and symmetric in its arguments.
    assert parallel_rate(*reversed(rates)) == pytest.approx(combined)
    # Adding a stage can only slow the pipeline down.
    assert parallel_rate(*rates, 1e6) <= combined + 1e-6
