"""PagedFile, tables, loader, compressed rows, catalog tests."""

import math

import numpy as np
import pytest

from repro.data.tpch import apply_fig5_compression, generate_orders
from repro.errors import SchemaError, StorageError
from repro.storage.catalog import Catalog
from repro.storage.layout import Layout
from repro.storage.loader import BulkLoader, load_table
from repro.storage.pagefile import PagedFile
from repro.storage.rowz import CompressedRowPageCodec, schema_is_compressed
from repro.storage.table import make_row_page_codec


class TestPagedFile:
    def test_append_and_read(self):
        file = PagedFile("t", page_size=64)
        index = file.append_page(b"a" * 64)
        assert index == 0
        assert file.read_page(0) == b"a" * 64
        assert file.num_pages == 1
        assert file.size_bytes == 64

    def test_wrong_size_rejected(self):
        file = PagedFile("t", page_size=64)
        with pytest.raises(StorageError):
            file.append_page(b"short")

    def test_out_of_range_rejected(self):
        file = PagedFile("t", page_size=64)
        with pytest.raises(StorageError):
            file.read_page(0)

    def test_iter_pages_order(self):
        file = PagedFile("t", page_size=8)
        for i in range(5):
            file.append_page(bytes([i]) * 8)
        pages = list(file.iter_pages())
        assert len(pages) == 5
        assert pages[3] == b"\x03" * 8
        assert list(file.iter_pages(start=4)) == [b"\x04" * 8]


class TestLoaderAndTables:
    def test_row_column_equivalence(self, orders_data, orders_row, orders_column):
        for name in orders_data.schema.attribute_names:
            np.testing.assert_array_equal(
                orders_row.read_column(name), orders_data.column(name)
            )
            np.testing.assert_array_equal(
                orders_column.read_column(name), orders_data.column(name)
            )

    def test_pages_are_dense_packed(self, orders_row):
        # All pages except the last must be full.
        capacity = orders_row.page_codec.tuples_per_page
        expected_pages = math.ceil(orders_row.num_rows / capacity)
        assert orders_row.file.num_pages == expected_pages

    def test_file_sizes_at_paper_scale(self, orders_row, orders_column):
        row_bytes = sum(
            orders_row.file_sizes_for([], cardinality=60_000_000).values()
        )
        assert abs(row_bytes - 1.9e9) / 1.9e9 < 0.05  # paper: 1.9 GB
        col_bytes = sum(
            orders_column.file_sizes_for(
                list(orders_column.schema.attribute_names), 60_000_000
            ).values()
        )
        assert col_bytes < row_bytes

    def test_column_subset_sizes(self, orders_column):
        sizes = orders_column.file_sizes_for(["O_ORDERKEY"], cardinality=1_000_000)
        assert set(sizes) == {"O_ORDERKEY"}
        assert sizes["O_ORDERKEY"] == orders_column.pages_for_rows(
            "O_ORDERKEY", 1_000_000
        ) * orders_column.page_size

    def test_unknown_attribute_rejected(self, orders_column, orders_row):
        with pytest.raises(SchemaError):
            orders_column.column_file("nope")
        with pytest.raises(SchemaError):
            orders_row.file_sizes_for(["nope"])

    def test_bad_page_size_rejected(self):
        with pytest.raises(StorageError):
            BulkLoader(page_size=0)

    def test_total_bytes(self, orders_row, orders_column):
        assert orders_row.total_bytes == orders_row.file.size_bytes
        assert orders_column.total_bytes == sum(
            cf.file.size_bytes for cf in orders_column.column_files.values()
        )


class TestCompressedRows:
    def test_codec_selection(self, orders_data, orders_z_data):
        assert not schema_is_compressed(orders_data.schema)
        assert schema_is_compressed(orders_z_data.schema)
        assert isinstance(
            make_row_page_codec(orders_z_data.schema), CompressedRowPageCodec
        )

    def test_stride_matches_fig5(self, orders_z_data):
        codec = CompressedRowPageCodec(orders_z_data.schema)
        assert codec.stride == 12  # ORDERS-Z

    def test_roundtrip_all_columns(self, orders_z_data, orders_z_row):
        for name in orders_z_data.schema.attribute_names:
            np.testing.assert_array_equal(
                orders_z_row.read_column(name), orders_z_data.column(name)
            )

    def test_compressed_row_table_smaller(self, orders_row, orders_z_row):
        assert orders_z_row.total_bytes < orders_row.total_bytes / 2

    def test_lineitem_z_stride(self, lineitem_z_data):
        codec = CompressedRowPageCodec(lineitem_z_data.schema)
        assert codec.stride == 51  # paper reports 52 (408 bits exactly)


class TestCatalog:
    def test_register_and_get(self, orders_row, orders_column):
        catalog = Catalog()
        catalog.register(orders_row)
        catalog.register(orders_column)
        assert catalog.get("ORDERS", Layout.ROW) is orders_row
        assert catalog.get("ORDERS", Layout.COLUMN) is orders_column
        assert catalog.names() == ["ORDERS"]
        assert len(catalog) == 2

    def test_duplicate_rejected(self, orders_row):
        catalog = Catalog()
        catalog.register(orders_row)
        with pytest.raises(StorageError):
            catalog.register(orders_row)
        catalog.replace(orders_row)  # replace is allowed

    def test_missing_lookup(self):
        catalog = Catalog()
        with pytest.raises(StorageError):
            catalog.get("ORDERS", Layout.ROW)
        assert not catalog.has("ORDERS", Layout.ROW)


class TestWriteStore:
    def test_merge_appends_and_sorts(self, orders_data):
        from repro.storage.write_store import WriteOptimizedStore

        table = load_table(orders_data, Layout.COLUMN)
        store = WriteOptimizedStore(orders_data.schema, sort_key="O_ORDERKEY")
        store.insert((1, 1, 42, b"O", b"5-LOW", 777, 0))
        store.insert((2, 2, 43, b"F", b"1-URGENT", 888, 0))
        assert len(store) == 2
        merged = store.merge_into(table)
        assert merged.num_rows == orders_data.num_rows + 2
        keys = merged.read_column("O_ORDERKEY")
        assert (np.diff(keys) >= 0).all()
        assert store.is_empty

    def test_wrong_arity_rejected(self, orders_data):
        from repro.storage.write_store import WriteOptimizedStore

        store = WriteOptimizedStore(orders_data.schema)
        with pytest.raises(SchemaError):
            store.insert((1, 2, 3))

    def test_merge_without_staged_rows_is_identity(self, orders_data):
        from repro.storage.write_store import WriteOptimizedStore

        table = load_table(orders_data, Layout.ROW)
        store = WriteOptimizedStore(orders_data.schema)
        merged = store.merge_into(table)
        assert merged.num_rows == table.num_rows
        np.testing.assert_array_equal(
            merged.read_column("O_CUSTKEY"), table.read_column("O_CUSTKEY")
        )

    def test_layout_preserved(self, orders_data):
        from repro.storage.write_store import WriteOptimizedStore

        for layout in (Layout.ROW, Layout.COLUMN):
            table = load_table(orders_data, layout)
            store = WriteOptimizedStore(orders_data.schema)
            store.insert((9, 9, 9, b"P", b"5-LOW", 1, 0))
            merged = store.merge_into(table)
            assert merged.layout is layout
