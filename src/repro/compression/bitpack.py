"""Bit packing (null suppression).

Stores each attribute using as many bits as are required to represent the
maximum value in the domain (Section 2.2.1).  Values are packed LSB-first
into a contiguous bit stream; the paper uses bit-shifting instructions for
exactly this layout.
"""

from __future__ import annotations

import numpy as np

from repro.compression.base import Codec, CodecKind, CodecSpec, PageCodecState, require_int_array
from repro.errors import CompressionError
from repro.types.datatypes import AttributeType, IntType

_MAX_BITS = 63


def bits_needed(max_value: int) -> int:
    """Bits required to represent non-negative values up to ``max_value``."""
    if max_value < 0:
        raise CompressionError(f"bit packing requires non-negative values: {max_value}")
    return max(1, int(max_value).bit_length())


def pack_bits(values: np.ndarray, bits: int) -> bytes:
    """Pack non-negative integers into a LSB-first bit stream."""
    if not 1 <= bits <= _MAX_BITS:
        raise CompressionError(f"packed width must be in [1, {_MAX_BITS}]: {bits}")
    values = require_int_array(values, "pack_bits")
    if values.size == 0:
        return b""
    lo = int(values.min())
    hi = int(values.max())
    if lo < 0:
        raise CompressionError(f"pack_bits got negative value {lo}")
    if hi >= (1 << bits):
        raise CompressionError(f"value {hi} does not fit in {bits} bits")
    # (n, bits) matrix of bits, LSB first, then serialized little-endian.
    shifts = np.arange(bits, dtype=np.uint64)
    bit_matrix = ((values.astype(np.uint64)[:, None] >> shifts) & np.uint64(1))
    flat = bit_matrix.astype(np.uint8).reshape(-1)
    return np.packbits(flat, bitorder="little").tobytes()


def unpack_bits(data: bytes, bits: int, count: int) -> np.ndarray:
    """Inverse of :func:`pack_bits` for ``count`` values."""
    if not 1 <= bits <= _MAX_BITS:
        raise CompressionError(f"packed width must be in [1, {_MAX_BITS}]: {bits}")
    if count == 0:
        return np.zeros(0, dtype=np.int64)
    total_bits = count * bits
    if len(data) * 8 < total_bits:
        raise CompressionError(
            f"bit stream of {len(data)} bytes too short for {count} x {bits} bits"
        )
    flat = np.unpackbits(
        np.frombuffer(data, dtype=np.uint8), bitorder="little", count=total_bits
    )
    bit_matrix = flat.reshape(count, bits).astype(np.uint64)
    weights = np.left_shift(np.uint64(1), np.arange(bits, dtype=np.uint64))
    return (bit_matrix * weights).sum(axis=1).astype(np.int64)


class BitPackCodec(Codec):
    """Null-suppression codec for non-negative integer attributes."""

    def __init__(self, spec: CodecSpec, attr_type: AttributeType):
        if spec.kind is not CodecKind.PACK:
            raise CompressionError(f"BitPackCodec got spec kind {spec.kind}")
        if not isinstance(attr_type, IntType):
            raise CompressionError("bit packing applies to integer attributes only")
        super().__init__(spec, attr_type)

    def encode_page(self, values: np.ndarray) -> tuple[bytes, PageCodecState]:
        return pack_bits(values, self.spec.bits), PageCodecState()

    def decode_page(self, payload: bytes, count: int, state: PageCodecState) -> np.ndarray:
        return unpack_bits(payload, self.spec.bits, count)

    @staticmethod
    def spec_for_values(values: np.ndarray) -> CodecSpec:
        """Choose the packed width from the observed domain."""
        values = require_int_array(values, "bit packing")
        if values.size == 0:
            raise CompressionError("cannot size bit packing from an empty column")
        if int(values.min()) < 0:
            raise CompressionError("bit packing requires a non-negative domain")
        return CodecSpec(kind=CodecKind.PACK, bits=bits_needed(int(values.max())))
