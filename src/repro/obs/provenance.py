"""Run provenance: where a measurement came from.

A benchmark number without its git SHA and calibration constants is not
comparable to anything; :func:`provenance` builds the stamp every
results JSON carries — git SHA, UTC timestamp, interpreter and numpy
versions, platform, and the :meth:`Calibration.fingerprint
<repro.cpusim.calibration.Calibration.fingerprint>` of the cost-model
constants the run used.  Two results files with the same fingerprint
were produced by the same simulated hardware; a drifted fingerprint
explains a drifted trajectory.
"""

from __future__ import annotations

import functools
import pathlib
import platform
import subprocess
from datetime import datetime, timezone

__all__ = ["git_sha", "provenance"]


@functools.lru_cache(maxsize=1)
def git_sha() -> str:
    """HEAD commit of the repo holding this source tree, or ``unknown``."""
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=pathlib.Path(__file__).resolve().parent,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    sha = proc.stdout.strip()
    return sha if proc.returncode == 0 and sha else "unknown"


@functools.lru_cache(maxsize=1)
def _git_dirty() -> bool:
    """Whether the working tree differs from HEAD (stamps are suffixed)."""
    try:
        proc = subprocess.run(
            ["git", "status", "--porcelain"],
            cwd=pathlib.Path(__file__).resolve().parent,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.SubprocessError):
        return False
    return proc.returncode == 0 and bool(proc.stdout.strip())


def provenance(calibration=None) -> dict:
    """The stamp attached to every results artifact.

    ``calibration`` defaults to the module default; pass the run's own
    :class:`~repro.cpusim.calibration.Calibration` when it was
    overridden.
    """
    import numpy

    from repro.cpusim.calibration import DEFAULT_CALIBRATION

    calibration = calibration or DEFAULT_CALIBRATION
    sha = git_sha()
    if sha != "unknown" and _git_dirty():
        sha += "-dirty"
    return {
        "git_sha": sha,
        "timestamp_utc": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "python": platform.python_version(),
        "numpy": numpy.__version__,
        "platform": platform.platform(),
        "calibration_fingerprint": calibration.fingerprint(),
    }
