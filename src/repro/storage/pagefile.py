"""A file of adjacent pages.

Pages are stored back to back; the storage layer holds the real bytes
in memory (the I/O *timing* is the job of :mod:`repro.iosim`, which only
needs sizes and access patterns, never the bytes themselves).

Reads go through :func:`repro.storage.retry.retry_io`: a subclass (see
:class:`repro.storage.faults.FaultyPagedFile`) may raise
:class:`~repro.errors.TransientIOError` from :meth:`_read_page_raw`, and
``read_page`` retries it with bounded exponential backoff before
surfacing the failure.
"""

from __future__ import annotations

from repro.errors import StorageError
from repro.storage.page import DEFAULT_PAGE_SIZE
from repro.storage.retry import RetryPolicy, retry_io


class PagedFile:
    """An append-only sequence of fixed-size pages."""

    def __init__(
        self,
        name: str,
        page_size: int = DEFAULT_PAGE_SIZE,
        retry_policy: RetryPolicy | None = None,
    ):
        if page_size <= 0:
            raise StorageError(f"page size must be positive: {page_size}")
        self.name = name
        self.page_size = page_size
        #: Backoff for transient read faults (``None`` → module default).
        self.retry_policy = retry_policy
        self._data = bytearray()

    @classmethod
    def from_bytes(
        cls,
        name: str,
        data: bytes,
        page_size: int = DEFAULT_PAGE_SIZE,
        retry_policy: RetryPolicy | None = None,
    ) -> "PagedFile":
        """Build a file from raw bytes, rejecting trailing partial pages.

        A byte count that is not a multiple of the page size means the
        tail page was torn mid-write (or the file was truncated); the
        floor division in :attr:`num_pages` would silently drop those
        bytes, so they are rejected here instead.
        """
        if len(data) % page_size != 0:
            raise StorageError(
                f"file {name!r} has {len(data)} bytes, not a multiple of page "
                f"size {page_size}: trailing partial page (torn write or "
                f"truncation)"
            )
        file = cls(name, page_size=page_size, retry_policy=retry_policy)
        file._data.extend(data)
        return file

    @property
    def num_pages(self) -> int:
        return len(self._data) // self.page_size

    @property
    def size_bytes(self) -> int:
        """Total file size in bytes."""
        return len(self._data)

    def append_page(self, page: bytes) -> int:
        """Append one page; returns its page index."""
        if len(page) != self.page_size:
            raise StorageError(
                f"page of {len(page)} bytes does not match page size "
                f"{self.page_size} for file {self.name!r}"
            )
        index = self.num_pages
        self._data.extend(page)
        return index

    def read_page(self, index: int) -> bytes:
        """Read one page by index, retrying transient faults."""
        return retry_io(lambda: self._read_page_raw(index), self.retry_policy)

    def _read_page_raw(self, index: int) -> bytes:
        """One read attempt (fault-injection subclasses override this)."""
        if not 0 <= index < self.num_pages:
            raise StorageError(
                f"page {index} out of range [0, {self.num_pages}) in {self.name!r}"
            )
        start = index * self.page_size
        return bytes(self._data[start : start + self.page_size])

    def iter_pages(self, start: int = 0):
        """Yield pages in file order, from ``start``."""
        for index in range(start, self.num_pages):
            yield self.read_page(index)

    def __len__(self) -> int:
        return self.num_pages

    def __repr__(self) -> str:
        return (
            f"PagedFile({self.name!r}, pages={self.num_pages}, "
            f"bytes={self.size_bytes})"
        )
