"""Figure 10 — prefetch-depth sweep on ORDERS."""

from _common import BENCH_ROWS, publish, run_once

from repro.experiments.figures import fig10_prefetch


def bench_figure10_prefetch(benchmark):
    out = run_once(benchmark, lambda: fig10_prefetch.run(num_rows=BENCH_ROWS))
    publish(out, "figure_10_prefetch.txt")

    # The column store degrades monotonically as prefetch shrinks...
    at_full_projectivity = [
        out.series[f"col_depth_{d}"][-1] for d in (48, 16, 8, 4, 2)
    ]
    assert all(
        b > a for a, b in zip(at_full_projectivity, at_full_projectivity[1:])
    )
    # ...while a single row scan is untouched by prefetch depth.
    row = out.series["row_elapsed"]
    assert max(row) - min(row) < 1e-6
    # Depth 2 costs the column store at least 2x over depth 48.
    assert at_full_projectivity[-1] > 2 * at_full_projectivity[0]
