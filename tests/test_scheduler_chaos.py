"""Chaos under concurrency: faults hit single queries in a live batch.

Seeded :func:`~repro.testing.chaos.generate_workload_chaos_case` batches
run kills, cancellations, tight deadlines, and stalls against individual
queries of a concurrent workload (sharing on and off, all four scanner
architectures).  The invariant, checked per query:

* every query ends in *correct result XOR typed error* (a
  :class:`~repro.errors.GovernanceError` subclass or
  :class:`~repro.testing.chaos.ChaosKill`);
* a query with no injection of its own completes byte-identically to
  its serial run — one victim's fault never corrupts or cancels its
  scan-share peers.

The 40-seed smoke sweep runs in tier-1; the 300-seed deep sweep runs
under ``pytest --run-chaos`` (or ``make chaos-deep``).
"""

from __future__ import annotations

import pytest

from repro.data.tpch import generate_orders
from repro.engine.query import ScanQuery
from repro.engine.scheduler import QueryState, Scheduler
from repro.errors import QueryCancelled, QueryTimeout
from repro.obs import recorder as flight
from repro.storage.layout import Layout
from repro.storage.loader import load_table
from repro.testing.chaos import (
    ChaosKill,
    generate_workload_chaos_case,
    run_workload_chaos_case,
)

SMOKE_SEEDS = 40
DEEP_SEEDS = 300


def _sweep(start: int, count: int) -> None:
    failures = []
    for seed in range(start, start + count):
        outcome = run_workload_chaos_case(generate_workload_chaos_case(seed))
        if not outcome.ok:
            case = generate_workload_chaos_case(seed)
            failures.append(
                case.describe() + "\n    " + "\n    ".join(outcome.violations)
            )
    assert not failures, "\n".join(failures)


def test_workload_chaos_smoke():
    _sweep(0, SMOKE_SEEDS)


@pytest.mark.chaos
def test_workload_chaos_deep():
    _sweep(0, DEEP_SEEDS)


def test_generation_is_pure():
    a = generate_workload_chaos_case(11).describe()
    b = generate_workload_chaos_case(11).describe()
    assert a == b


def test_generation_covers_every_injection_and_config():
    cases = [generate_workload_chaos_case(seed) for seed in range(SMOKE_SEEDS)]
    injections = {
        query.injection
        for case in cases
        for query in case.queries
        if query.injection
    }
    assert injections == {"kill", "cancel", "deadline", "stall"}
    assert {case.layout_name for case in cases} == {"row", "pax", "column", "fused"}
    assert any(case.share_scans for case in cases)
    assert any(not case.share_scans for case in cases)
    # Every case keeps at least one healthy peer to assert isolation on.
    assert all(
        any(query.injection is None for query in case.queries) for case in cases
    )


def test_outcome_states_name_the_typed_errors():
    for seed in range(SMOKE_SEEDS):
        case = generate_workload_chaos_case(seed)
        if not any(q.injection == "kill" for q in case.queries):
            continue
        outcome = run_workload_chaos_case(case)
        assert "ChaosKill" in outcome.states
        return
    pytest.fail("no kill case in the smoke range")


class TestPeerIsolation:
    """Deterministic versions of the sweep's isolation invariant."""

    QUERY = ScanQuery("ORDERS", select=("O_ORDERKEY", "O_TOTALPRICE"))

    @pytest.fixture(scope="class")
    def table(self):
        return load_table(generate_orders(500, seed=21), Layout.COLUMN)

    def test_killed_rider_leaves_sharing_peers_intact(self, table):
        scheduler = Scheduler(max_inflight=4, share_scans=True)

        def kill(context):
            if context.ticks > 2:
                raise ChaosKill("injected kill")

        victim = scheduler.submit(table, self.QUERY, on_tick=kill)
        peers = [scheduler.submit(table, self.QUERY) for _ in range(2)]
        scheduler.run()
        assert victim.state is QueryState.FAILED
        assert isinstance(victim.error, ChaosKill)
        want = scheduler.handles()[1].result
        for peer in peers:
            assert peer.state is QueryState.DONE, peer.error
            assert peer.result.num_tuples == 500
            assert peer.result.positions.tolist() == want.positions.tolist()

    def test_cancelled_rider_leaves_peers_intact(self, table):
        scheduler = Scheduler(max_inflight=4, share_scans=True)

        def cancel(context):
            if context.ticks > 2:
                context.token.cancel("operator fatigue")

        victim = scheduler.submit(table, self.QUERY, on_tick=cancel)
        peer = scheduler.submit(table, self.QUERY)
        scheduler.run()
        assert isinstance(victim.error, QueryCancelled)
        assert peer.state is QueryState.DONE, peer.error

    def test_expired_deadline_in_queue_fails_fast_without_running(self, table):
        scheduler = Scheduler(max_inflight=1, share_scans=True)
        slow = scheduler.submit(table, self.QUERY)
        doomed = scheduler.submit(table, self.QUERY, timeout=0.0)
        scheduler.run()
        assert slow.state is QueryState.DONE
        assert doomed.state is QueryState.FAILED
        assert isinstance(doomed.error, QueryTimeout)
        # It never got a plan: no pages were read on its behalf.
        assert doomed.result is None

    def test_failure_then_new_arrivals_get_a_fresh_stream(self, table):
        scheduler = Scheduler(max_inflight=4, share_scans=True)

        def kill(context):
            raise ChaosKill("immediate")

        victim = scheduler.submit(table, self.QUERY, on_tick=kill)
        scheduler.run()
        assert victim.state is QueryState.FAILED
        late = scheduler.submit(table, self.QUERY)
        scheduler.run()
        assert late.state is QueryState.DONE, late.error
        assert late.result.num_tuples == 500


class TestChaosBlackboxes:
    """Every chaos-injected failure leaves exactly one replayable black box.

    The flight recorder promises one provenance-stamped black box per
    failed query — no more (a double dump would double-count failures
    in post-mortems), no fewer (a silent failure is the worst outcome
    for a black box to miss) — whose event slice names only the failing
    query and whose replay command re-runs the seeded case.
    """

    BLACKBOX_SEEDS = 12

    @staticmethod
    def _deterministic(case) -> bool:
        # Kill/cancel fire on tick counts and an already-expired
        # deadline fails at the first checkpoint; 1 ms deadlines and
        # stalls race the wall clock, so replays may legitimately
        # differ on them.
        return all(
            query.injection in (None, "kill", "cancel")
            or (query.injection == "deadline" and query.timeout == 0.0)
            for query in case.queries
        )

    def test_every_failure_yields_exactly_one_replayable_blackbox(self):
        seeds_with_failures = 0
        for seed in range(self.BLACKBOX_SEEDS):
            case = generate_workload_chaos_case(seed)
            flight.RECORDER.clear()
            outcome = run_workload_chaos_case(case)
            assert outcome.ok, outcome.violations
            failed = {
                f"workload-chaos seed {seed} q{index}": state
                for index, state in enumerate(outcome.states)
                if state != "completed"
            }
            boxes = {box["query"]: box for box in flight.RECORDER.blackboxes}
            assert len(flight.RECORDER.blackboxes) == len(failed), (
                f"seed {seed}: {len(failed)} failures but "
                f"{len(flight.RECORDER.blackboxes)} black boxes"
            )
            assert set(boxes) == set(failed)
            for label, state in failed.items():
                box = boxes[label]
                assert box["error"]["type"] == state
                assert box["replay"] == (
                    f"python -m repro.testing.chaos --workload-seed {seed}"
                )
                assert box["events"], f"{label}: empty event slice"
                assert all(e["query"] == label for e in box["events"])
                assert "ticks" in box["governance"]
                assert box["provenance"]["calibration_fingerprint"]
            seeds_with_failures += bool(failed)
        flight.RECORDER.clear()
        assert seeds_with_failures >= 3, "sweep lost its failure coverage"

    def test_fixed_seed_replays_to_the_same_typed_errors(self):
        def boxed_errors(seed: int) -> list[tuple[str, str]]:
            flight.RECORDER.clear()
            outcome = run_workload_chaos_case(generate_workload_chaos_case(seed))
            assert outcome.ok, outcome.violations
            return sorted(
                (box["query"], box["error"]["type"])
                for box in flight.RECORDER.blackboxes
            )

        replayed = 0
        for seed in range(2 * self.BLACKBOX_SEEDS):
            if replayed >= 4:
                break
            case = generate_workload_chaos_case(seed)
            if not self._deterministic(case):
                continue
            first = boxed_errors(seed)
            if not first:
                continue
            assert boxed_errors(seed) == first, (
                f"seed {seed}: replay produced different black boxes"
            )
            replayed += 1
        flight.RECORDER.clear()
        assert replayed >= 2, "not enough deterministic failing seeds"
