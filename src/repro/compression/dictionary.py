"""Dictionary compression.

At load time an array of all distinct values of an attribute is built;
each value is then stored as a bit-packed index into that array
(Section 2.2.1: Bit packing is applied on top of Dictionary).  At read
time the index is retrieved through bit-shifting and then looked up.

Works for both integer and fixed-text attributes — the paper's example is
the two-valued ``MALE`` / ``FEMALE`` column stored as a single bit.
"""

from __future__ import annotations

import numpy as np

from repro.compression.base import Codec, CodecKind, CodecSpec, PageCodecState
from repro.compression.bitpack import bits_needed, pack_bits, unpack_bits
from repro.errors import CompressionError
from repro.types.datatypes import AttributeType


class DictionaryCodec(Codec):
    """Maps values to bit-packed indexes into a load-time dictionary."""

    def __init__(self, spec: CodecSpec, attr_type: AttributeType):
        if spec.kind is not CodecKind.DICT:
            raise CompressionError(f"DictionaryCodec got spec kind {spec.kind}")
        super().__init__(spec, attr_type)
        self._values = np.asarray(spec.dictionary, dtype=attr_type.numpy_dtype())
        if self._values.size == 0:
            raise CompressionError("dictionary must not be empty")
        expected_bits = bits_needed(self._values.size - 1)
        if spec.bits < expected_bits:
            raise CompressionError(
                f"{self._values.size}-entry dictionary needs {expected_bits} bits, "
                f"spec allows {spec.bits}"
            )
        self._code_of = {value: code for code, value in enumerate(self._values.tolist())}
        if len(self._code_of) != self._values.size:
            raise CompressionError("dictionary contains duplicate values")

    @property
    def dictionary(self) -> np.ndarray:
        """The ordered array of distinct values (codes are indexes)."""
        return self._values

    def encode_codes(self, values: np.ndarray) -> np.ndarray:
        """Translate raw values into dictionary codes."""
        values = np.asarray(values, dtype=self.attr_type.numpy_dtype())
        try:
            codes = np.fromiter(
                (self._code_of[value] for value in values.tolist()),
                dtype=np.int64,
                count=values.size,
            )
        except KeyError as exc:
            raise CompressionError(f"value not in dictionary: {exc.args[0]!r}") from exc
        return codes

    def encode_page(self, values: np.ndarray) -> tuple[bytes, PageCodecState]:
        codes = self.encode_codes(values)
        return pack_bits(codes, self.spec.bits), PageCodecState()

    def decode_codes(self, payload: bytes, count: int) -> np.ndarray:
        """Unpack the raw dictionary codes without the value lookup.

        Used by compressed execution, which evaluates predicates on the
        codes directly and only looks up qualifying values.
        """
        return unpack_bits(payload, self.spec.bits, count)

    def decode_page(self, payload: bytes, count: int, state: PageCodecState) -> np.ndarray:
        codes = unpack_bits(payload, self.spec.bits, count)
        if codes.size and int(codes.max()) >= self._values.size:
            raise CompressionError(
                f"decoded code {int(codes.max())} outside {self._values.size}-entry dictionary"
            )
        return self._values[codes]

    @staticmethod
    def spec_for_values(values: np.ndarray) -> CodecSpec:
        """Build a dictionary spec from the observed distinct values."""
        values = np.asarray(values)
        if values.size == 0:
            raise CompressionError("cannot build a dictionary from an empty column")
        distinct = np.unique(values)
        return CodecSpec(
            kind=CodecKind.DICT,
            bits=bits_needed(distinct.size - 1),
            dictionary=tuple(distinct.tolist()),
        )
