"""Metrics registry, Prometheus exposition, and run provenance."""

from __future__ import annotations

import importlib.util
import json
import pathlib
import re

import pytest

from repro.cpusim.calibration import Calibration
from repro.data.tpch import generate_orders
from repro.engine.predicate import predicate_for_selectivity
from repro.engine.query import ScanQuery
from repro.engine.executor import run_scan
from repro.errors import TransientIOError
from repro.obs import metrics
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    SlidingWindow,
    exponential_buckets,
)
from repro.obs.provenance import git_sha, provenance
from repro.storage.layout import Layout
from repro.storage.loader import load_table
from repro.storage.retry import RetryPolicy, retry_io


@pytest.fixture(autouse=True)
def metrics_enabled():
    """Each test starts enabled with zeroed values, and leaves no residue."""
    metrics.enable()
    metrics.REGISTRY.reset_values()
    yield
    metrics.enable()
    metrics.REGISTRY.reset_values()


class TestCounter:
    def test_inc_accumulates(self):
        counter = Counter("t_total", "help")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_negative_increment_rejected(self):
        with pytest.raises(ValueError):
            Counter("t_total", "help").inc(-1)

    def test_invalid_names_rejected(self):
        for bad in ("", "9lives", "has-dash", "has space"):
            with pytest.raises(ValueError):
                Counter(bad, "help")


class TestHistogram:
    def test_le_bucket_semantics(self):
        hist = Histogram("t_seconds", "help", buckets=[1.0, 10.0])
        hist.observe(0.5)    # le=1
        hist.observe(1.0)    # boundary: still le=1
        hist.observe(5.0)    # le=10
        hist.observe(100.0)  # +Inf overflow
        assert hist.bucket_counts() == [(1.0, 2), (10.0, 3), (float("inf"), 4)]
        assert hist.count == 4
        assert hist.sum == pytest.approx(106.5)

    def test_render_is_cumulative_and_inf_terminated(self):
        hist = Histogram("t_seconds", "help", buckets=[1.0, 10.0])
        hist.observe(0.5)
        lines = hist.render()
        assert 't_seconds_bucket{le="1"} 1' in lines
        assert 't_seconds_bucket{le="10"} 1' in lines
        assert 't_seconds_bucket{le="+Inf"} 1' in lines
        assert "t_seconds_count 1" in lines

    def test_exponential_buckets(self):
        assert exponential_buckets(1.0, 2.0, 4) == [1.0, 2.0, 4.0, 8.0]
        with pytest.raises(ValueError):
            exponential_buckets(0.0, 2.0, 4)
        with pytest.raises(ValueError):
            exponential_buckets(1.0, 1.0, 4)


class TestGauge:
    def test_set_inc_dec(self):
        gauge = Gauge("t_gauge", "help")
        gauge.set(5)
        gauge.inc(2)
        gauge.dec(3)
        assert gauge.value == 4.0

    def test_disabled_mutations_dropped(self):
        gauge = Gauge("t_gauge", "help")
        metrics.disable()
        gauge.set(9)
        gauge.inc()
        metrics.enable()
        assert gauge.value == 0.0

    def test_render_is_a_gauge(self):
        gauge = Gauge("t_gauge", "help")
        gauge.set(1.5)
        lines = gauge.render()
        assert "# TYPE t_gauge gauge" in lines
        assert "t_gauge 1.5" in lines


class TestSlidingWindow:
    def _window(self, clock, window_s=10.0):
        return SlidingWindow("t_seconds", "help", window_s=window_s, clock=clock)

    def test_observations_expire_past_the_window(self):
        now = {"t": 0.0}
        window = self._window(lambda: now["t"])
        window.observe(1.0)
        now["t"] = 5.0
        window.observe(2.0)
        assert window.values() == [1.0, 2.0]
        now["t"] = 10.5  # first sample (t=0) is now past the 10 s horizon
        assert window.values() == [2.0]
        assert window.count == 1

    def test_rate_is_count_over_window(self):
        now = {"t": 0.0}
        window = self._window(lambda: now["t"])
        for _ in range(5):
            window.observe(1.0)
        assert window.rate() == pytest.approx(0.5)

    def test_nearest_rank_percentiles(self):
        now = {"t": 0.0}
        window = self._window(lambda: now["t"])
        for value in (10.0, 20.0, 30.0, 40.0):
            window.observe(value)
        assert window.percentile(0.5) == 20.0
        assert window.percentile(0.99) == 40.0
        assert window.percentile(0.0) == 10.0

    def test_empty_window_is_nan(self):
        import math

        window = self._window(lambda: 0.0)
        assert math.isnan(window.percentile(0.95))
        assert 'quantile="0.95"} NaN' in "\n".join(window.render())

    def test_memory_is_bounded(self):
        window = SlidingWindow(
            "t_seconds", "help", window_s=1e9, max_samples=4, clock=lambda: 0.0
        )
        for value in range(10):
            window.observe(float(value))
        assert window.values() == [6.0, 7.0, 8.0, 9.0]

    def test_render_is_a_summary(self):
        now = {"t": 0.0}
        window = self._window(lambda: now["t"])
        window.observe(0.25)
        text = "\n".join(window.render())
        assert "# TYPE t_seconds summary" in text
        assert 'quantile="0.5"} 0.25' in text
        assert "t_seconds_count 1" in text


class TestRegistry:
    def test_get_or_create_is_idempotent(self):
        registry = MetricsRegistry()
        a = registry.counter("x_total", "help")
        assert registry.counter("x_total", "other help") is a

    def test_kind_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x_total", "help")
        with pytest.raises(ValueError):
            registry.histogram("x_total", "help")

    def test_exposition_format_is_valid(self):
        """Every non-comment line must parse as `name{labels}? value`."""
        metrics.QUERIES.inc(3)
        metrics.QUERY_SECONDS.observe(0.25)
        metrics.SCHEDULER_INFLIGHT.set(2)
        metrics.WINDOW_QUERY_LATENCY.observe(0.01)
        text = metrics.render_prometheus()
        assert text.endswith("\n")
        sample = re.compile(
            r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{(le|quantile)=\"[^\"]+\"\})? "
            r"(-?\d+(\.\d+)?([eE][+-]?\d+)?|\+Inf|NaN)$"
        )
        seen_types = {}
        for line in text.rstrip("\n").split("\n"):
            if line.startswith("# HELP "):
                continue
            if line.startswith("# TYPE "):
                _, _, name, kind = line.split(" ", 3)
                assert kind in ("counter", "histogram", "gauge", "summary")
                seen_types[name] = kind
            else:
                assert sample.match(line), f"bad exposition line: {line!r}"
        assert seen_types["repro_queries_total"] == "counter"
        assert seen_types["repro_query_seconds"] == "histogram"
        assert seen_types["repro_scheduler_inflight"] == "gauge"
        assert seen_types["repro_window_query_latency_seconds"] == "summary"
        assert "repro_queries_total 3" in text
        assert "repro_scheduler_inflight 2" in text

    def test_standard_metrics_present_before_any_query(self):
        text = metrics.render_prometheus()
        for name in (
            "repro_queries_total",
            "repro_query_seconds",
            "repro_page_decode_seconds",
            "repro_pages_salvaged_total",
            "repro_io_retry_attempts_total",
            "repro_iosim_units_total",
        ):
            assert name in text


class TestEnableDisable:
    def test_disabled_mutations_are_dropped(self):
        metrics.disable()
        assert not metrics.enabled()
        metrics.QUERIES.inc()
        metrics.QUERY_SECONDS.observe(1.0)
        metrics.enable()
        assert metrics.QUERIES.value == 0
        assert metrics.QUERY_SECONDS.count == 0

    def test_query_path_records_only_when_enabled(self):
        data = generate_orders(400, seed=3)
        table = load_table(data, Layout.COLUMN)
        query = ScanQuery("ORDERS", select=("O_ORDERKEY",))

        metrics.disable()
        run_scan(table, query)
        metrics.enable()
        assert metrics.QUERIES.value == 0

        run_scan(table, query)
        assert metrics.QUERIES.value == 1
        assert metrics.QUERY_SECONDS.count == 1
        assert metrics.PAGE_DECODE_SECONDS.count > 0


class TestRetryMetrics:
    def test_transient_retries_are_counted(self):
        failures = [TransientIOError("flaky"), TransientIOError("flaky")]

        def flaky():
            if failures:
                raise failures.pop()
            return "ok"

        policy = RetryPolicy(max_attempts=4, sleep=lambda _s: None, seed=1)
        assert retry_io(flaky, policy) == "ok"
        assert metrics.RETRY_ATTEMPTS.value == 2
        assert metrics.RETRY_BACKOFF_SECONDS.value > 0
        assert metrics.RETRY_EXHAUSTED.value == 0

    def test_exhausted_retries_are_counted(self):
        def always_fails():
            raise TransientIOError("dead")

        policy = RetryPolicy(max_attempts=3, sleep=lambda _s: None, seed=1)
        with pytest.raises(TransientIOError):
            retry_io(always_fails, policy)
        assert metrics.RETRY_ATTEMPTS.value == 2
        assert metrics.RETRY_EXHAUSTED.value == 1


class TestExpositionCli:
    def test_main_prints_live_exposition(self, capsys):
        assert metrics.main(["--rows", "300"]) == 0
        out = capsys.readouterr().out
        assert "# TYPE repro_queries_total counter" in out
        match = re.search(r"^repro_queries_total (\d+)$", out, re.MULTILINE)
        assert match and int(match.group(1)) >= 2  # demo runs two queries

    def test_main_rows_zero_skips_workload(self, capsys):
        assert metrics.main(["--rows", "0"]) == 0
        out = capsys.readouterr().out
        assert "repro_queries_total 0" in out

    def test_once_without_serve_is_a_usage_error(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            metrics.main(["--rows", "0", "--once"])
        assert excinfo.value.code == 2
        capsys.readouterr()


class TestServe:
    """The --serve endpoint must shut down cleanly (no traceback, exit 0)."""

    def _spawn(self, *extra):
        import os
        import subprocess
        import sys

        env = dict(os.environ)
        root = pathlib.Path(__file__).resolve().parent.parent
        env["PYTHONPATH"] = str(root / "src")
        return subprocess.Popen(
            [sys.executable, "-m", "repro.obs.metrics", "--rows", "0",
             "--serve", "0", *extra],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
            env=env,
            cwd=root,
        )

    def _wait_for_port(self, process) -> int:
        # The banner is printed with flush=True right after binding.
        line = process.stdout.readline()
        match = re.search(r"on :(\d+)/metrics", line)
        assert match, f"no listening banner, got {line!r}"
        return int(match.group(1))

    def test_sigint_exits_zero_without_traceback(self):
        import signal

        process = self._spawn()
        try:
            self._wait_for_port(process)
            process.send_signal(signal.SIGINT)
            out, err = process.communicate(timeout=30)
        finally:
            process.kill()
        assert process.returncode == 0, err
        assert "Traceback" not in err
        assert "metrics server stopped" in out

    def test_once_serves_one_scrape_and_exits(self):
        import urllib.request

        process = self._spawn("--once")
        try:
            port = self._wait_for_port(process)
            with urllib.request.urlopen(
                f"http://127.0.0.1:{port}/metrics", timeout=10
            ) as response:
                body = response.read().decode()
            out, err = process.communicate(timeout=30)
        finally:
            process.kill()
        assert process.returncode == 0, err
        assert "# TYPE repro_queries_total counter" in body
        assert "metrics server stopped" in out


class TestProvenance:
    def test_stamp_has_the_comparability_keys(self):
        stamp = provenance()
        for key in (
            "git_sha",
            "timestamp_utc",
            "python",
            "numpy",
            "platform",
            "calibration_fingerprint",
        ):
            assert stamp[key], key
        assert re.match(r"^[0-9a-f]{12}$", stamp["calibration_fingerprint"])

    def test_git_sha_resolves_in_this_repo(self):
        sha = git_sha()
        assert sha == "unknown" or re.match(r"^[0-9a-f]{40}$", sha)

    def test_fingerprint_is_stable_and_sensitive(self):
        base = Calibration()
        assert base.fingerprint() == Calibration().fingerprint()
        tweaked = base.with_overrides(num_disks=base.num_disks + 1)
        assert tweaked.fingerprint() != base.fingerprint()

    def test_stamp_uses_the_given_calibration(self):
        tweaked = Calibration().with_overrides(num_disks=7)
        assert (
            provenance(tweaked)["calibration_fingerprint"]
            == tweaked.fingerprint()
        )


class TestBenchmarkPublishing:
    def test_publish_writes_provenance_stamped_json(self, tmp_path, capsys):
        spec = importlib.util.spec_from_file_location(
            "bench_common",
            pathlib.Path(__file__).resolve().parent.parent
            / "benchmarks"
            / "_common.py",
        )
        common = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(common)
        common.RESULTS_DIR = tmp_path

        from repro.experiments.report import ExperimentOutput, FigureResult

        output = ExperimentOutput(
            name="Demo figure",
            tables=[
                FigureResult(
                    title="t", headers=["a", "b"], rows=[["x", 1], ["y", 2]]
                )
            ],
            series={"speedup": [1.0, 2.0]},
        )
        common.publish(output, "demo.txt")
        capsys.readouterr()

        assert (tmp_path / "demo.txt").exists()
        payload = json.loads((tmp_path / "demo.json").read_text())
        assert payload["name"] == "Demo figure"
        assert payload["tables"][0]["rows"] == [["x", 1], ["y", 2]]
        assert payload["series"]["speedup"] == [1.0, 2.0]
        # provenance() may append "-dirty" to the commit of record
        assert payload["provenance"]["git_sha"].startswith(git_sha())
        assert payload["provenance"]["calibration_fingerprint"]
