"""Pull-based block-iterator operator interface (Section 2.2.3).

Each operator calls ``next()`` on its child and receives a block of
tuples (or ``None`` at end of stream).  Operators are agnostic about
the database schema and work on generic column dictionaries.
"""

from __future__ import annotations

import abc

from repro.engine.blocks import Block
from repro.engine.context import ExecutionContext
from repro.errors import EngineError


class Operator(abc.ABC):
    """One node of a query plan."""

    def __init__(self, context: ExecutionContext):
        self.context = context
        self._opened = False

    @property
    def events(self):
        return self.context.events

    def open(self) -> None:
        """Prepare for iteration; children are opened first."""
        for child in self.children():
            child.open()
        self._open()
        self._opened = True

    def next(self) -> Block | None:
        """The next block of tuples, or ``None`` when exhausted."""
        if not self._opened:
            raise EngineError(f"{type(self).__name__}.next() before open()")
        block = self._next()
        if block is not None and len(block):
            self.events.blocks_produced += 1
        return block

    def close(self) -> None:
        """Release state; children are closed last."""
        self._close()
        for child in self.children():
            child.close()
        self._opened = False

    def children(self) -> list["Operator"]:
        """Child operators (empty for scanners)."""
        return []

    def _open(self) -> None:
        """Subclass hook."""

    @abc.abstractmethod
    def _next(self) -> Block | None:
        """Subclass hook: produce the next block."""

    def _close(self) -> None:
        """Subclass hook."""

    def drain(self) -> list[Block]:
        """Run the subtree to completion (open/next*/close)."""
        self.open()
        blocks = []
        while True:
            block = self.next()
            if block is None:
                break
            blocks.append(block)
        self.close()
        return blocks
