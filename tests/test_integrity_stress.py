"""Seeded fault-injection stress sweep (fast: runs in well under 5 s).

Each iteration picks a layout and a fault kind from a seeded RNG,
damages a fresh copy of a persisted table, and checks the two integrity
invariants: strict mode always raises, and salvage mode returns only
rows that match the pristine table, with the loss covered by the
corruption accounting.
"""

import shutil

import numpy as np
import pytest

from repro.data.tpch import generate_orders
from repro.engine.executor import run_scan
from repro.engine.query import ScanQuery
from repro.errors import StorageError
from repro.storage.faults import drop_trailing_pages, flip_bit_on_disk, tear_file
from repro.storage.layout import Layout
from repro.storage.loader import load_table
from repro.storage.persist import open_table, save_table
from repro.storage.scrub import CorruptionReport

LAYOUTS = (Layout.ROW, Layout.COLUMN, Layout.PAX)
ROWS = 400
ITERATIONS = 24
PAGE_SIZE = 4096


@pytest.fixture(scope="module")
def pristine(tmp_path_factory):
    root = tmp_path_factory.mktemp("stress")
    data = generate_orders(ROWS, seed=97)
    select = tuple(data.schema.attribute_names)
    clean = {}
    for layout in LAYOUTS:
        table = load_table(data, layout)
        save_table(table, root / layout.value)
        clean[layout] = run_scan(table, ScanQuery("ORDERS", select=select))
    return root, select, clean


def inject(rng, directory) -> str:
    """Apply one random fault to one random page file; returns its kind."""
    files = sorted(directory.glob("*.pages"))
    target = files[int(rng.integers(len(files)))]
    kind = ("flip", "tear", "drop")[int(rng.integers(3))]
    if kind == "flip":
        flip_bit_on_disk(
            target,
            byte=int(rng.integers(target.stat().st_size)),
            bit=int(rng.integers(8)),
        )
    elif kind == "tear":
        tear_file(target, PAGE_SIZE)
    else:
        pages = max(1, target.stat().st_size // PAGE_SIZE - 1)
        drop_trailing_pages(target, PAGE_SIZE, pages=int(rng.integers(1, pages + 1)))
    return kind


def test_stress_sweep(pristine, tmp_path):
    root, select, clean = pristine
    rng = np.random.default_rng(2026)
    query = ScanQuery("ORDERS", select=select)
    for iteration in range(ITERATIONS):
        layout = LAYOUTS[iteration % len(LAYOUTS)]
        directory = tmp_path / f"case-{iteration}"
        shutil.copytree(root / layout.value, directory)
        kind = inject(rng, directory)

        # Invariant 1: strict mode raises somewhere — open or scan.
        with pytest.raises(StorageError):
            run_scan(open_table(directory), query)

        # Invariant 2: salvage returns a subset of the pristine rows and
        # the report accounts for at least the rows that went missing.
        report = CorruptionReport()
        table = open_table(directory, salvage=report)
        result = run_scan(table, query, salvage=True)
        report.merge(result.corruption)
        assert not report.is_clean, f"case {iteration} ({layout}, {kind}): no fault"

        clean_result = clean[layout]
        surviving = np.isin(clean_result.positions, result.positions)
        assert surviving.sum() == result.num_tuples
        for name in select:
            np.testing.assert_array_equal(
                result.column(name),
                clean_result.column(name)[surviving],
                err_msg=f"case {iteration} ({layout}, {kind}): wrong rows survived",
            )
        lost = clean_result.num_tuples - result.num_tuples
        assert lost <= report.estimated_rows_lost
