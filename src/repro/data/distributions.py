"""Value domains and deterministic sampling helpers for the generator.

Domains mirror the TPC-H specification closely enough that the distinct
counts (and hence Figure 5's dictionary widths) match: three return
flags, two line statuses, four ship instructions, seven ship modes, five
order priorities, three order statuses.
"""

from __future__ import annotations

import numpy as np

# --- TPC-H categorical domains ------------------------------------------

RETURN_FLAGS = (b"R", b"A", b"N")
LINE_STATUSES = (b"O", b"F")
SHIP_INSTRUCTIONS = (
    b"DELIVER IN PERSON",
    b"COLLECT COD",
    b"NONE",
    b"TAKE BACK RETURN",
)
SHIP_MODES = (b"REG AIR", b"AIR", b"RAIL", b"SHIP", b"TRUCK", b"MAIL", b"FOB")
ORDER_STATUSES = (b"F", b"O", b"P")
ORDER_PRIORITIES = (
    b"1-URGENT",
    b"2-HIGH",
    b"3-MEDIUM",
    b"4-NOT SPECI",  # truncated to the paper's 11-byte field
    b"5-LOW",
)

#: Word list for synthetic comments (TPC-H grammar nouns/verbs).
COMMENT_WORDS = (
    "foxes", "deposits", "requests", "accounts", "pinto", "beans",
    "packages", "ideas", "theodolites", "dependencies", "instructions",
    "platelets", "sleep", "wake", "haggle", "nag", "cajole", "detect",
    "final", "bold", "quick", "silent", "ironic", "regular", "express",
)

#: Dates are stored as integer day counts since 1900-01-01, so the
#: TPC-H range 1992-01-01 .. 1998-12-31 needs 16 bits — matching
#: Figure 5's "pack, 2 bytes" for the LINEITEM dates.
DAYS_1900_TO_1992 = 33603
DAYS_1900_TO_1998_END = 36159

#: ORDERS dates are instead stored as days since 1970-01-01 (8035 ..
#: ~10592), which packs to 14 bits — Figure 5's O_ORDERDATE width.
DAYS_1970_TO_1992 = 8035
DAYS_1970_TO_1998_END = 10591


def sample_categorical(
    rng: np.random.Generator,
    domain: tuple[bytes, ...],
    size: int,
    width: int,
) -> np.ndarray:
    """Uniformly sample a categorical column as fixed-width bytes."""
    values = np.array(domain, dtype=f"S{width}")
    codes = rng.integers(0, len(domain), size=size)
    return values[codes]


def sample_order_dates(rng: np.random.Generator, size: int) -> np.ndarray:
    """Order dates as days since 1970 (14-bit domain)."""
    # Orders may not be placed in the last ~121 days of the range
    # (TPC-H leaves room for shipping).
    return rng.integers(DAYS_1970_TO_1992, DAYS_1970_TO_1998_END - 151, size=size)


def order_date_for_keys(order_keys: np.ndarray) -> np.ndarray:
    """Deterministic order date per order key (days since 1970).

    Both LINEITEM and ORDERS derive the date of an order from its key
    through this hash, so ship/commit/receipt dates stay consistent with
    the parent order no matter which table is generated first.
    """
    keys = np.asarray(order_keys, dtype=np.uint64)
    mixed = keys * np.uint64(0x9E3779B97F4A7C15)
    mixed ^= mixed >> np.uint64(29)
    mixed *= np.uint64(0xBF58476D1CE4E5B9)
    mixed ^= mixed >> np.uint64(32)
    span = np.uint64(DAYS_1970_TO_1998_END - 151 - DAYS_1970_TO_1992)
    return (mixed % span).astype(np.int64) + DAYS_1970_TO_1992


def sample_comments(
    rng: np.random.Generator,
    size: int,
    max_length: int,
    field_width: int,
) -> np.ndarray:
    """Short word-salad comments, at most ``max_length`` bytes.

    The longest generated value is forced to exactly ``max_length`` so
    that pack-width selection is deterministic (Figure 5: 28 bytes).
    """
    if max_length > field_width:
        raise ValueError(
            f"max comment length {max_length} exceeds field width {field_width}"
        )
    words = list(COMMENT_WORDS)
    out = np.empty(size, dtype=f"S{field_width}")
    word_picks = rng.integers(0, len(words), size=(size, 4))
    for i in range(size):
        text = " ".join(words[j] for j in word_picks[i])
        out[i] = text[:max_length].encode("ascii")
    if size > 0:
        filler = ("x" * max_length).encode("ascii")
        out[0] = filler
    return out
