"""Ablation — CRC32 page verification on vs off, measured scan time.

Every page decode verifies the trailer CRC (the integrity default).
This bench measures what that verification costs per layout by timing
real full-table scans with verification enabled and disabled
(:func:`repro.storage.page.set_checksum_verification`), reporting
throughput and the relative overhead.  Unlike the paper-figure benches
this measures wall-clock time of this implementation, not the paper's
cost model — the question is about our own read path.
"""

import time

from _common import BENCH_ROWS, publish, run_once

from repro.data.tpch import generate_orders
from repro.engine.executor import run_scan
from repro.engine.query import ScanQuery
from repro.experiments.report import ExperimentOutput, FigureResult
from repro.storage.layout import Layout
from repro.storage.loader import load_table
from repro.storage.page import set_checksum_verification

LAYOUTS = (Layout.ROW, Layout.COLUMN, Layout.PAX)
REPEATS = 5


def _time_scan(table, query) -> tuple[float, int]:
    """Best-of-N wall time for one full scan, plus the rows returned."""
    best = float("inf")
    tuples = 0
    for _ in range(REPEATS):
        start = time.perf_counter()
        result = run_scan(table, query)
        best = min(best, time.perf_counter() - start)
        tuples = result.num_tuples
    return best, tuples


def run_ablation(num_rows: int) -> ExperimentOutput:
    data = generate_orders(num_rows, seed=17)
    select = tuple(data.schema.attribute_names)
    query = ScanQuery("ORDERS", select=select)
    table_out = FigureResult(
        title=f"Full scan of {num_rows} rows: CRC verification on vs off",
        headers=["layout", "verify on (ms)", "verify off (ms)", "overhead"],
    )
    series = {"on": [], "off": []}
    for layout in LAYOUTS:
        table = load_table(data, layout)
        on_time, on_tuples = _time_scan(table, query)
        previous = set_checksum_verification(False)
        try:
            off_time, off_tuples = _time_scan(table, query)
        finally:
            set_checksum_verification(previous)
        assert on_tuples == off_tuples == num_rows
        overhead = on_time / off_time - 1.0
        table_out.add_row(
            layout.value,
            round(on_time * 1e3, 2),
            round(off_time * 1e3, 2),
            f"{overhead:+.1%}",
        )
        series["on"].append(on_time)
        series["off"].append(off_time)
    return ExperimentOutput(
        name="Ablation: page checksum verification cost",
        tables=[table_out],
        series=series,
    )


def bench_ablation_checksum(benchmark):
    out = run_once(benchmark, lambda: run_ablation(BENCH_ROWS))
    publish(out, "ablation_checksum.txt")
    # Verification must never be catastrophically expensive: CRC32 over
    # a 4 KB page is memory-bandwidth-bound, so a full scan should stay
    # within a small multiple of the unverified scan on every layout.
    for on_time, off_time in zip(out.series["on"], out.series["off"]):
        assert on_time < off_time * 5
