"""Naive pure-Python reference executor (the differential-testing oracle).

Everything here is deliberately the *simplest possible* implementation:
columns are decoded to plain Python lists up front, predicates and
aggregates are evaluated tuple-at-a-time with ``operator``/``itertools``
level code, and no blocks, pages, or codecs appear anywhere in the
result path.  The engine under test shares **no code** with this module
below the query-spec layer, so agreement between the two is meaningful
evidence of correctness.

The oracle mirrors the engine's *observable* semantics exactly:

* scans emit qualifying tuples in Record-ID (row) order;
* aggregate group keys follow ``np.unique`` ordering only up to
  multiset equality (the harness compares sorted rows);
* ``TopN`` keeps ties by input order ascending and by *reverse* input
  order when descending, matching the engine's reversed stable argsort;
* ``AVG`` is the only float-producing function (sum/count division).
"""

from __future__ import annotations

import itertools
import operator
from dataclasses import dataclass, field

import numpy as np

from repro.data.generator import GeneratedTable
from repro.engine.predicate import ComparisonOp, Predicate
from repro.engine.query import AggregateFunction, AggregateSpec, ScanQuery
from repro.errors import ReproError

_OPS = {
    ComparisonOp.LT: operator.lt,
    ComparisonOp.LE: operator.le,
    ComparisonOp.GT: operator.gt,
    ComparisonOp.GE: operator.ge,
    ComparisonOp.EQ: operator.eq,
    ComparisonOp.NE: operator.ne,
}

#: Complement of each comparison operator (used by the metamorphic
#: predicate-partition check: P and not-P partition the input).
COMPLEMENT_OP = {
    ComparisonOp.LT: ComparisonOp.GE,
    ComparisonOp.GE: ComparisonOp.LT,
    ComparisonOp.LE: ComparisonOp.GT,
    ComparisonOp.GT: ComparisonOp.LE,
    ComparisonOp.EQ: ComparisonOp.NE,
    ComparisonOp.NE: ComparisonOp.EQ,
}


def complement_predicate(predicate: Predicate) -> Predicate:
    """The predicate qualifying exactly the tuples ``predicate`` rejects."""
    return Predicate(predicate.attr, COMPLEMENT_OP[predicate.op], predicate.value)


def pyvalue(value):
    """Normalize a numpy scalar to its plain Python equivalent.

    Fixed text comes back as ``bytes`` with the trailing NUL padding
    stripped — the same view numpy's own comparisons take.
    """
    if isinstance(value, np.generic):
        return value.item()
    return value


@dataclass
class OracleResult:
    """Ground-truth answer: plain tuples, no numpy anywhere."""

    names: list[str]
    positions: list[int]
    rows: list[tuple] = field(default_factory=list)

    @property
    def num_tuples(self) -> int:
        return len(self.rows)

    def column(self, name: str) -> list:
        index = self.names.index(name)
        return [row[index] for row in self.rows]


def _plain_columns(data: GeneratedTable, names: list[str]) -> dict[str, list]:
    """Decode the referenced columns to plain Python lists."""
    return {name: [pyvalue(v) for v in data.column(name).tolist()] for name in names}


def _predicate_fn(predicate: Predicate):
    compare = _OPS[predicate.op]
    constant = pyvalue(predicate.value)
    return lambda value: compare(value, constant)


def oracle_scan(data: GeneratedTable, query: ScanQuery) -> OracleResult:
    """Reference answer for a projection + conjunctive selection."""
    query.validate_against(data.schema)
    needed = list(dict.fromkeys(list(query.select) + [p.attr for p in query.predicates]))
    columns = _plain_columns(data, needed)
    tests = [(_predicate_fn(p), columns[p.attr]) for p in query.predicates]
    positions: list[int] = []
    rows: list[tuple] = []
    selected = [columns[name] for name in query.select]
    for index in range(data.num_rows):
        if all(test(col[index]) for test, col in tests):
            positions.append(index)
            rows.append(tuple(col[index] for col in selected))
    return OracleResult(names=list(query.select), positions=positions, rows=rows)


def _reduce(function: AggregateFunction, values: list):
    if function is AggregateFunction.COUNT:
        return len(values)
    if function is AggregateFunction.SUM:
        return sum(values)
    if function is AggregateFunction.MIN:
        return min(values)
    if function is AggregateFunction.MAX:
        return max(values)
    if function is AggregateFunction.AVG:
        return float(sum(values)) / len(values)
    raise ReproError(f"oracle cannot evaluate {function}")


def aggregate_output_name(spec: AggregateSpec) -> str:
    """The engine's output attribute name for one aggregate."""
    if spec.function is AggregateFunction.COUNT:
        return "count"
    return f"{spec.function.value}_{spec.argument}"


def oracle_aggregate(
    data: GeneratedTable, query: ScanQuery, spec: AggregateSpec
) -> OracleResult:
    """Reference answer for a (possibly grouped) aggregation over a scan.

    Rows come out sorted by group key; the harness compares aggregate
    results as sorted multisets, so engine group ordering is free.
    """
    scanned = oracle_scan(data, query)
    key_indexes = [scanned.names.index(name) for name in spec.group_by]
    if spec.argument is not None:
        arg_index = scanned.names.index(spec.argument)
    groups: dict[tuple, list] = {}
    for row in scanned.rows:
        key = tuple(row[i] for i in key_indexes)
        value = row[arg_index] if spec.argument is not None else None
        groups.setdefault(key, []).append(value)
    names = list(spec.group_by) + [aggregate_output_name(spec)]
    if not scanned.rows and spec.group_by:
        return OracleResult(names=names, positions=[], rows=[])
    if not scanned.rows:
        # A global aggregate over zero tuples produces zero groups in
        # the engine (HashAggregate emits nothing on empty input).
        return OracleResult(names=names, positions=[], rows=[])
    rows = [
        key + (_reduce(spec.function, values),)
        for key, values in sorted(groups.items())
    ]
    return OracleResult(
        names=names, positions=list(range(len(rows))), rows=rows
    )


def oracle_merge_join(
    left_data: GeneratedTable,
    left_query: ScanQuery,
    right_data: GeneratedTable,
    right_query: ScanQuery,
    left_key: str,
    right_key: str,
) -> OracleResult:
    """Reference answer for the one-to-many merge join.

    Left keys must be unique (the engine enforces this); output columns
    are the left scan's attributes followed by the right scan's
    remaining ones, rows in right-input order — exactly the engine's
    materialization.
    """
    left = oracle_scan(left_data, left_query)
    right = oracle_scan(right_data, right_query)
    left_key_index = left.names.index(left_key)
    right_key_index = right.names.index(right_key)
    by_key: dict = {}
    for row in left.rows:
        key = row[left_key_index]
        if key in by_key:
            raise ReproError(f"oracle merge join saw duplicate left key {key!r}")
        by_key[key] = row
    names = list(left.names) + [n for n in right.names if n not in left.names]
    carried = [i for i, n in enumerate(right.names) if n not in left.names]
    positions: list[int] = []
    rows: list[tuple] = []
    for position, row in zip(right.positions, right.rows):
        match = by_key.get(row[right_key_index])
        if match is None:
            continue
        positions.append(position)
        rows.append(match + tuple(row[i] for i in carried))
    return OracleResult(names=names, positions=positions, rows=rows)


def oracle_limit(scanned: OracleResult, count: int) -> OracleResult:
    """First ``count`` tuples in input order (the engine's Limit)."""
    return OracleResult(
        names=list(scanned.names),
        positions=list(itertools.islice(scanned.positions, count)),
        rows=list(itertools.islice(scanned.rows, count)),
    )


def oracle_topn(
    scanned: OracleResult, key: str, count: int, descending: bool = False
) -> OracleResult:
    """The engine's TopN: reversed stable argsort, k best, re-sorted.

    Ascending keeps ties in input order; descending — because the
    engine reverses a stable ascending argsort — keeps ties in
    *reverse* input order.  The iterative block-at-a-time selection the
    engine performs is equivalent to this global selection because
    top-k under a total order is associative over merges.
    """
    key_index = scanned.names.index(key)
    order = sorted(range(len(scanned.rows)), key=lambda i: scanned.rows[i][key_index])
    if descending:
        order = order[::-1]
    kept = sorted(order[:count])  # the retained set, back in input order
    retained_rows = [scanned.rows[i] for i in kept]
    retained_positions = [scanned.positions[i] for i in kept]
    final = sorted(range(len(kept)), key=lambda i: retained_rows[i][key_index])
    if descending:
        final = final[::-1]
    return OracleResult(
        names=list(scanned.names),
        positions=[retained_positions[i] for i in final],
        rows=[retained_rows[i] for i in final],
    )
