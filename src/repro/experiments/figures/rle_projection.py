"""Extension — the bias of refraining from RLE (§2.2.1).

The paper excludes run-length encoding "to keep our performance study
unbiased" because it is better suited to column data.  This experiment
measures the excluded benefit: the LINEITEM sort key under FOR-delta
(Figure 5's choice) vs RLE, and a C-Store-style projection re-sorted on
the three-valued ``L_RETURNFLAG``, where RLE collapses whole columns to
a handful of runs.
"""

from __future__ import annotations

from repro.compression.rle import RleCodec
from repro.design.materialize import materialize_view
from repro.engine.query import ScanQuery
from repro.experiments.config import DEFAULT_EXECUTED_ROWS, ExperimentConfig
from repro.experiments.report import ExperimentOutput, FigureResult
from repro.experiments.runner import measure_scan
from repro.experiments.workloads import prepare_lineitem
from repro.storage.layout import Layout
from repro.storage.loader import load_table


def run(
    num_rows: int = DEFAULT_EXECUTED_ROWS,
    config: ExperimentConfig | None = None,
) -> ExperimentOutput:
    """Measure what the paper's RLE exclusion left on the table."""
    config = config or ExperimentConfig()
    prepared = prepare_lineitem(num_rows)
    data = prepared.data

    # --- sort-key column: FOR-delta (Figure 5) vs RLE -----------------------
    from repro.data.tpch import apply_fig5_compression

    fig5 = apply_fig5_compression(data)
    rle_spec = RleCodec.spec_for_values(data.column("L_ORDERKEY"))
    rle_schema = fig5.schema.with_codecs({"L_ORDERKEY": rle_spec})
    rle_data = fig5.with_schema(
        type(rle_schema)(name="LINEITEM-RLE", attributes=rle_schema.attributes)
    )
    fig5_table = load_table(fig5, Layout.COLUMN)
    rle_table = load_table(rle_data, Layout.COLUMN)

    key_bytes_fig5 = fig5_table.file_sizes_for(
        ["L_ORDERKEY"], cardinality=config.cardinality
    )["L_ORDERKEY"]
    key_bytes_rle = rle_table.file_sizes_for(
        ["L_ORDERKEY"], cardinality=config.cardinality
    )["L_ORDERKEY"]

    key_table = FigureResult(
        title="L_ORDERKEY column at 60M rows (sorted key)",
        headers=["scheme", "bits/value", "column bytes (MB)"],
    )
    delta_spec = fig5.schema.attribute("L_ORDERKEY").spec
    key_table.add_row(
        f"FOR-delta ({delta_spec.describe()})",
        delta_spec.bits,
        round(key_bytes_fig5 / 1e6, 1),
    )
    key_table.add_row(
        f"RLE ({rle_spec.describe()}, runs of 1-7)",
        round(RleCodec.effective_bits_per_value(data.column("L_ORDERKEY")), 1),
        round(key_bytes_rle / 1e6, 1),
    )

    # --- C-Store projection: re-sorted on L_LINENUMBER -----------------------
    # Sorting the projection on a low-cardinality attribute turns that
    # column into a handful of runs — the case the paper excluded.
    attrs = ("L_LINENUMBER", "L_QUANTITY", "L_EXTENDEDPRICE")
    sort_key = "L_LINENUMBER"
    plain_view = materialize_view(
        data, attrs, name="V_PLAIN", sort_key=sort_key, compress=True
    )
    rle_view = materialize_view(
        data, attrs, name="V_RLE", sort_key=sort_key, compress=True, use_rle=True
    )
    view_table = FigureResult(
        title=f"Projection sorted on {sort_key}: per-column bytes at 60M rows",
        headers=["column", "no-RLE scheme", "MB", "RLE scheme", "MB (RLE)"],
    )
    series_bytes = {"plain": [], "rle": []}
    for attr in attrs:
        plain_bytes = plain_view.table.file_sizes_for(
            [attr], cardinality=config.cardinality
        )[attr]
        rle_bytes = rle_view.table.file_sizes_for(
            [attr], cardinality=config.cardinality
        )[attr]
        view_table.add_row(
            attr,
            plain_view.table.schema.attribute(attr).spec.describe(),
            round(plain_bytes / 1e6, 2),
            rle_view.table.schema.attribute(attr).spec.describe(),
            round(rle_bytes / 1e6, 2),
        )
        series_bytes["plain"].append(float(plain_bytes))
        series_bytes["rle"].append(float(rle_bytes))

    # Scanning the sorted column end to end.
    query = ScanQuery("V", select=(sort_key,))
    m_plain = measure_scan(plain_view.table, query, config)
    m_rle = measure_scan(rle_view.table, query, config)
    scan_table = FigureResult(
        title=f"Full scan of the sorted {sort_key} column",
        headers=["view", "bytes read (MB)", "elapsed (s)"],
    )
    scan_table.add_row(
        "no RLE", round(m_plain.bytes_read / 1e6, 2), round(m_plain.elapsed, 3)
    )
    scan_table.add_row(
        "RLE", round(m_rle.bytes_read / 1e6, 2), round(m_rle.elapsed, 3)
    )

    return ExperimentOutput(
        name="Extension: the refrained-from RLE",
        tables=[key_table, view_table, scan_table],
        series={
            "key_bytes": [float(key_bytes_fig5), float(key_bytes_rle)],
            "sorted_column_plain": [series_bytes["plain"][0]],
            "sorted_column_rle": [series_bytes["rle"][0]],
            "scan_elapsed": [m_plain.elapsed, m_rle.elapsed],
        },
    )
