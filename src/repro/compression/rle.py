"""Run-length encoding (the scheme the paper refrained from).

Section 2.2.1: "We refrain from using techniques that are better suited
for column data (such as run length encoding) to keep our performance
study unbiased."  This extension implements it so the size of that bias
can be measured: a column page stores ``(value, run_length)`` pairs,
value and run length both bit-packed at fixed widths, values zig-zag
encoded so any integer domain is accepted.

RLE is *variable capacity*: how many logical values fit on a page
depends on the data, so RLE columns are loaded through
:meth:`encode_prefix` and scanned through the column file's page
directory.  Like FOR-delta, any access decodes the whole page.
"""

from __future__ import annotations

import numpy as np

from repro.compression.base import (
    Codec,
    CodecKind,
    CodecSpec,
    PageCodecState,
    require_int_array,
)
from repro.compression.bitpack import bits_needed, pack_bits, unpack_bits
from repro.compression.frame import zigzag_decode, zigzag_encode
from repro.errors import CompressionError
from repro.types.datatypes import AttributeType, IntType

#: Runs longer than this are split (keeps run_bits bounded).
MAX_RUN_LENGTH = 1 << 16


def find_runs(values: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """``(run_values, run_lengths)`` for one array, runs capped."""
    values = require_int_array(values, "RLE")
    if values.size == 0:
        return values, np.zeros(0, dtype=np.int64)
    change = np.flatnonzero(np.diff(values)) + 1
    starts = np.concatenate([[0], change])
    ends = np.concatenate([change, [values.size]])
    run_values = values[starts]
    run_lengths = ends - starts
    if int(run_lengths.max()) > MAX_RUN_LENGTH:
        split_values = []
        split_lengths = []
        for value, length in zip(run_values.tolist(), run_lengths.tolist()):
            while length > MAX_RUN_LENGTH:
                split_values.append(value)
                split_lengths.append(MAX_RUN_LENGTH)
                length -= MAX_RUN_LENGTH
            split_values.append(value)
            split_lengths.append(length)
        run_values = np.array(split_values, dtype=np.int64)
        run_lengths = np.array(split_lengths, dtype=np.int64)
    return run_values, run_lengths


class RleCodec(Codec):
    """Run-length codec for integer columns."""

    def __init__(self, spec: CodecSpec, attr_type: AttributeType):
        if spec.kind is not CodecKind.RLE:
            raise CompressionError(f"RleCodec got spec kind {spec.kind}")
        if not isinstance(attr_type, IntType):
            raise CompressionError("RLE applies to integer attributes only")
        super().__init__(spec, attr_type)

    @property
    def decodes_whole_page(self) -> bool:
        return True

    @property
    def is_variable(self) -> bool:
        return True

    @property
    def pair_bits(self) -> int:
        """Packed width of one (value, run length) pair."""
        return self.spec.bits + self.spec.run_bits

    def values_per_page(self, payload_bytes: int) -> int:
        """Upper bound: every pair could be a run of one."""
        pairs = (payload_bytes * 8 - 32) // self.pair_bits
        if pairs <= 0:
            raise CompressionError(
                f"page payload of {payload_bytes} bytes cannot hold one RLE pair"
            )
        return pairs

    def _pack_pairs(
        self, run_values: np.ndarray, run_lengths: np.ndarray
    ) -> bytes:
        encoded_values = zigzag_encode(run_values)
        if encoded_values.size and int(encoded_values.max()) >= (1 << self.spec.bits):
            raise CompressionError(
                f"run value needs more than {self.spec.bits} bits"
            )
        value_stream = pack_bits(encoded_values, self.spec.bits)
        length_stream = pack_bits(run_lengths - 1, self.spec.run_bits)
        header = np.uint32(run_values.size).tobytes()
        return header + value_stream + length_stream

    def encode_page(self, values: np.ndarray) -> tuple[bytes, PageCodecState]:
        run_values, run_lengths = find_runs(values)
        return self._pack_pairs(run_values, run_lengths), PageCodecState()

    def encode_prefix(
        self, values: np.ndarray, payload_bytes: int
    ) -> tuple[bytes, PageCodecState, int]:
        """Fill one page with as many whole runs as fit."""
        run_values, run_lengths = find_runs(values)
        if run_values.size == 0:
            raise CompressionError("cannot encode an empty prefix")
        budget_bits = payload_bytes * 8 - 32  # pair-count header
        max_pairs = budget_bits // self.pair_bits
        if max_pairs <= 0:
            raise CompressionError("page cannot hold a single RLE pair")
        take = min(run_values.size, int(max_pairs))
        consumed = int(run_lengths[:take].sum())
        payload = self._pack_pairs(run_values[:take], run_lengths[:take])
        return payload, PageCodecState(), consumed

    def decode_page(self, payload: bytes, count: int, state: PageCodecState) -> np.ndarray:
        if len(payload) < 4:
            raise CompressionError("RLE payload missing its pair-count header")
        pairs = int(np.frombuffer(payload[:4], dtype=np.uint32)[0])
        body = payload[4:]
        value_bytes = (pairs * self.spec.bits + 7) // 8
        encoded_values = unpack_bits(body[:value_bytes], self.spec.bits, pairs)
        run_values = zigzag_decode(encoded_values)
        run_lengths = (
            unpack_bits(body[value_bytes:], self.spec.run_bits, pairs) + 1
        )
        values = np.repeat(run_values, run_lengths)
        if values.size < count:
            raise CompressionError(
                f"RLE page expands to {values.size} values, header says {count}"
            )
        return values[:count]

    def effective_bits(self, values: np.ndarray) -> float:
        values = require_int_array(values, "RLE")
        if values.size == 0:
            return float(self.pair_bits)
        run_values, _lengths = find_runs(values)
        return run_values.size * self.pair_bits / values.size

    @staticmethod
    def spec_for_values(values: np.ndarray) -> CodecSpec:
        """Size value and run-length widths from the data."""
        values = require_int_array(values, "RLE")
        if values.size == 0:
            raise CompressionError("cannot size RLE from an empty column")
        run_values, run_lengths = find_runs(values)
        value_bits = bits_needed(int(zigzag_encode(run_values).max()))
        run_bits = bits_needed(int(run_lengths.max()) - 1)
        return CodecSpec(kind=CodecKind.RLE, bits=value_bits, run_bits=run_bits)

    @staticmethod
    def effective_bits_per_value(values: np.ndarray) -> float:
        """Average stored bits per logical value (for the advisor)."""
        spec = RleCodec.spec_for_values(values)
        run_values, _lengths = find_runs(values)
        total_bits = run_values.size * (spec.bits + spec.run_bits)
        return total_bits / len(values)
