"""Table 1's last row — more CPUs / more disks (Section 5).

Different CPU-to-disk ratios move a configuration along the cpdb axis:
more disks lower cpdb (the query turns CPU-bound sooner), more CPUs
raise it (columns get more attractive).  This experiment sweeps the
hardware on both the simulator and the analytical model and checks they
move together.
"""

from __future__ import annotations

from repro.engine.query import ScanQuery
from repro.experiments.config import DEFAULT_EXECUTED_ROWS, ExperimentConfig
from repro.experiments.report import ExperimentOutput, FigureResult
from repro.experiments.runner import measure_scan
from repro.experiments.workloads import prepare_orders
from repro.model.params import QueryShape
from repro.model.speedup import SpeedupModel

SELECTIVITY = 0.10
SELECTED_ATTRS = 4
HARDWARE = (
    # (cpus, disks)
    (1, 6),
    (1, 3),
    (1, 1),
    (2, 1),
    (4, 1),
)


def run(
    num_rows: int = DEFAULT_EXECUTED_ROWS,
    config: ExperimentConfig | None = None,
) -> ExperimentOutput:
    """Sweep CPU/disk counts on simulator and model."""
    base = config or ExperimentConfig()
    # The compressed table is CPU-bound on the paper testbed, so the
    # CPU/disk ratio actually moves the answer.
    prepared = prepare_orders(num_rows, compressed=True)
    predicate = prepared.predicate("O_ORDERDATE", SELECTIVITY)
    query = ScanQuery(
        prepared.schema.name,
        select=prepared.attrs_prefix(SELECTED_ATTRS),
        predicates=(predicate,),
    )
    selected_bytes = query.selected_width(prepared.schema)

    table = FigureResult(
        title=(
            f"ORDERS-Z scan ({SELECTED_ATTRS} of 7 attrs, 10% sel) across "
            "hardware configurations"
        ),
        headers=[
            "cpus",
            "disks",
            "cpdb",
            "row elapsed (s)",
            "col elapsed (s)",
            "measured speedup",
            "model speedup",
        ],
    )
    series: dict[str, list[float]] = {
        "cpdb": [],
        "measured": [],
        "predicted": [],
    }
    for cpus, disks in HARDWARE:
        calibration = base.calibration.with_overrides(
            num_cpus=cpus, num_disks=disks
        )
        config_hw = base.with_(calibration=calibration)
        row = measure_scan(prepared.row, query, config_hw)
        col = measure_scan(prepared.column, query, config_hw)
        measured = row.elapsed / col.elapsed
        model = SpeedupModel(calibration=calibration)
        # Model the *stored* (packed) widths; the analytic scanner
        # costs do not include decode work, so the prediction is an
        # optimistic bound in the CPU-bound region — the directional
        # agreement is what Section 5 claims.
        packed_selected = (
            sum(
                prepared.schema.attribute(name).packed_bits
                for name in query.select
            )
            / 8.0
        )
        shape = QueryShape(
            tuple_width=float(prepared.row.page_codec.stride),
            selected_bytes=packed_selected,
            selectivity=SELECTIVITY,
            num_attributes=len(prepared.schema),
            selected_attributes=SELECTED_ATTRS,
        )
        predicted = model.predict(shape)
        table.add_row(
            cpus,
            disks,
            round(calibration.cpdb, 1),
            round(row.elapsed, 2),
            round(col.elapsed, 2),
            round(measured, 2),
            round(predicted, 2),
        )
        series["cpdb"].append(calibration.cpdb)
        series["measured"].append(measured)
        series["predicted"].append(predicted)
    return ExperimentOutput(
        name="Section 5: more CPUs / more disks",
        tables=[table],
        series=series,
    )
