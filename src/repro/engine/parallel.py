"""Multi-core parallel query execution over horizontal partitions.

The engine stays single-threaded *per plan* (the paper's Section 4
design); parallelism comes from running one plan per row-range
partition in a ``multiprocessing`` worker pool and merging the
materialized partials in the parent:

* plain selections: concatenate worker blocks in partition order
  (already global Record-ID order), fixing up positions of physically
  partitioned shards by their ``row_start``;
* aggregates: each worker computes decomposed partials
  (count/sum/min/max, sum+count for AVG — see
  :func:`repro.engine.plan.decompose_aggregate`) and
  :class:`~repro.engine.operators.gather.MergePartials` reduces them
  with the serial ``HashAggregate``'s arithmetic;
* sorted output: per-partition sorted runs, k-way merged by
  :class:`~repro.engine.operators.gather.MergeSortedRuns`;
* LIMIT / top-N: each worker keeps its first/best ``k``, the parent
  applies the same operator over the recombined candidates (for top-N,
  candidates are re-ordered by global position first so tie-breaking
  matches the serial stable sort).

Cost accounting is exactly-once: each worker runs under a fresh
:class:`~repro.engine.context.ExecutionContext` and its
:class:`~repro.cpusim.events.CostEvents` /
:class:`~repro.storage.scrub.CorruptionReport` are merged into the
parent context one time, before the (traced) merge plan runs.
Boundary pages decoded by two adjacent workers are deduplicated by
``(file, page)`` so a salvage scan's fault list matches the serial
scan's.  Worker span trees are stitched into the parent trace under
the gather node (per-worker Perfetto tracks); the tracer invariant
``total_events() == plan total`` survives stitching.

Failure policy: if the pool errors, times out, or a worker crashes,
all worker results are discarded and the whole query re-runs
in-process over the same partitions — the parent context never
double-counts, and a crash degrades to a serial retry instead of
hanging the pool.
"""

from __future__ import annotations

import atexit
import multiprocessing
import multiprocessing.pool
from dataclasses import dataclass, field, replace

import numpy as np

from repro.cpusim.calibration import Calibration, DEFAULT_CALIBRATION
from repro.cpusim.events import CostEvents
from repro.engine.blocks import Block, concat_blocks
from repro.engine.context import ExecutionContext
from repro.engine.executor import QueryResult, execute_plan
from repro.engine.operators.base import Operator
from repro.engine.operators.gather import (
    GatherOperator,
    MergePartials,
    MergeSortedRuns,
)
from repro.engine.operators.limit import Limit, TopN
from repro.engine.operators.sort import SortOperator
from repro.engine.plan import (
    ColumnScannerKind,
    aggregate_plan,
    decompose_aggregate,
    scan_plan,
)
from repro.engine.query import AggregateSpec, ScanQuery
from repro.errors import PlanError
from repro.obs.trace import SpanTracer
from repro.storage.partition import PartitionedTable, partition_ranges
from repro.storage.scrub import CorruptionReport
from repro.storage.table import Table

__all__ = [
    "WorkerCrash",
    "parallel_query",
    "shutdown_pools",
]

#: Seconds a pool map may take before the query falls back to in-process.
_WORKER_TIMEOUT = 120.0

#: Logical-partition queries over tables at least this large share the
#: table with fork-inherited memory instead of pickling it per task.
_FORK_SHARE_ROWS = 100_000


class WorkerCrash(RuntimeError):
    """Injected worker failure (test hook for the degradation path)."""


@dataclass(frozen=True)
class WorkerTask:
    """Everything one worker needs to run its partition's plan."""

    index: int
    table: Table | None          #: ``None``: use the fork-inherited table
    query: ScanQuery
    row_range: tuple[int, int] | None
    position_offset: int
    column_scanner: ColumnScannerKind
    calibration: Calibration
    block_size: int
    compressed_execution: bool
    strict_integrity: bool
    trace: bool
    aggregate: AggregateSpec | None = None
    sort_based: bool = False
    order_by: tuple[str, ...] = ()
    limit: int | None = None
    topn: tuple[str, int, bool] | None = None
    crash: bool = False          #: test hook: raise instead of executing


@dataclass
class WorkerOutput:
    """One worker's materialized partial result plus its accounting."""

    index: int
    columns: dict[str, np.ndarray]
    positions: np.ndarray
    events: CostEvents
    corruption: CorruptionReport
    span_roots: list = field(default_factory=list)
    slices: list = field(default_factory=list)
    epoch_ns: int = 0


#: Fork-share slot: set in the parent right before forking a dedicated
#: pool, inherited by the children, consulted when ``task.table is None``.
_FORK_TABLE: Table | None = None


def _execute_task(task: WorkerTask) -> WorkerOutput:
    """Run one partition's plan (in a worker process or inline)."""
    if task.crash:
        raise WorkerCrash(f"injected crash in worker {task.index}")
    table = task.table if task.table is not None else _FORK_TABLE
    if table is None:
        raise PlanError("worker has neither a pickled nor a fork-shared table")
    tracer = SpanTracer() if task.trace else None
    context = ExecutionContext(
        calibration=task.calibration,
        block_size=task.block_size,
        compressed_execution=task.compressed_execution,
        strict_integrity=task.strict_integrity,
        tracer=tracer,
    )
    if task.aggregate is not None:
        partial_results = [
            execute_plan(
                aggregate_plan(
                    context,
                    table,
                    task.query,
                    partial_spec,
                    sort_based=task.sort_based,
                    column_scanner=task.column_scanner,
                    row_range=task.row_range,
                )
            )
            for partial_spec in decompose_aggregate(task.aggregate)
        ]
        columns = dict(partial_results[0].columns)
        for extra in partial_results[1:]:
            for name, values in extra.columns.items():
                columns.setdefault(name, values)
        positions = partial_results[0].positions
    else:
        plan: Operator = scan_plan(
            context, table, task.query, task.column_scanner, row_range=task.row_range
        )
        for key in reversed(task.order_by):
            plan = SortOperator(context, plan, key=key)
        if task.topn is not None:
            key, count, descending = task.topn
            plan = TopN(context, plan, key=key, count=count, descending=descending)
        elif task.limit is not None:
            plan = Limit(context, plan, task.limit)
        result = execute_plan(plan)
        columns = result.columns
        positions = result.positions
        if task.position_offset:
            positions = positions + task.position_offset
    return WorkerOutput(
        index=task.index,
        columns=columns,
        positions=positions,
        events=context.events,
        corruption=context.corruption,
        span_roots=tracer.roots if tracer else [],
        slices=tracer.slices if tracer else [],
        epoch_ns=tracer.epoch_ns if tracer else 0,
    )


# --- worker pools ----------------------------------------------------------------


_POOLS: dict[int, multiprocessing.pool.Pool] = {}


def _mp_context():
    if "fork" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


def _cached_pool(workers: int) -> multiprocessing.pool.Pool:
    pool = _POOLS.get(workers)
    if pool is None:
        pool = _mp_context().Pool(processes=workers)
        _POOLS[workers] = pool
    return pool


def _evict_pool(workers: int) -> None:
    pool = _POOLS.pop(workers, None)
    if pool is not None:
        pool.terminate()
        pool.join()


def shutdown_pools() -> None:
    """Terminate every cached worker pool (atexit / test teardown)."""
    for workers in list(_POOLS):
        _evict_pool(workers)


atexit.register(shutdown_pools)


def _run_in_pool(
    tasks: list[WorkerTask],
    workers: int,
    fork_table: Table | None,
    timeout: float,
) -> list[WorkerOutput]:
    if fork_table is not None:
        # Dedicated pool forked with the table already in memory: the
        # children inherit it copy-on-write instead of unpickling it.
        global _FORK_TABLE
        _FORK_TABLE = fork_table
        try:
            with _mp_context().Pool(processes=workers) as pool:
                return pool.map_async(_execute_task, tasks, chunksize=1).get(timeout)
        finally:
            _FORK_TABLE = None
    pool = _cached_pool(workers)
    try:
        return pool.map_async(_execute_task, tasks, chunksize=1).get(timeout)
    except multiprocessing.TimeoutError:
        # The pool may be wedged; replace it wholesale.
        _evict_pool(workers)
        raise


# --- merging ---------------------------------------------------------------------


def _merge_accounting(context: ExecutionContext, outputs: list[WorkerOutput]) -> None:
    """Fold worker events and corruption into the parent, exactly once.

    Adjacent workers both decode the pages straddling their boundary,
    so a corrupt boundary page would be reported twice; deduplicating
    by ``(file, page)`` keeps the merged fault list identical to a
    serial salvage scan's.
    """
    seen = {(fault.file, fault.page) for fault in context.corruption.faults}
    for out in outputs:
        context.events.merge(out.events)
        context.corruption.pages_scanned += out.corruption.pages_scanned
        for fault in out.corruption.faults:
            key = (fault.file, fault.page)
            if key in seen:
                continue
            seen.add(key)
            context.corruption.faults.append(fault)


def _merge_plan(
    context: ExecutionContext,
    outputs: list[WorkerOutput],
    aggregate: AggregateSpec | None,
    order_by: tuple[str, ...],
    limit: int | None,
    topn: tuple[str, int, bool] | None,
) -> tuple[Operator, Operator]:
    """The parent-side merge plan; returns ``(plan root, gather anchor)``.

    The anchor is the node worker span trees are attached under.
    """
    blocks = [
        Block(columns=out.columns, positions=out.positions) for out in outputs
    ]
    detail = f"{len(blocks)} partition output(s)"
    if aggregate is not None:
        gather = GatherOperator(context, blocks, detail=detail)
        return MergePartials(context, gather, aggregate), gather
    if order_by:
        merge: Operator = MergeSortedRuns(context, blocks, order_by, detail=detail)
        anchor = merge
        if limit is not None:
            merge = Limit(context, merge, limit)
        return merge, anchor
    if topn is not None:
        key, count, descending = topn
        merged = concat_blocks([block for block in blocks if len(block)] or blocks)
        # Candidates arrive in per-worker key order; re-ordering by
        # global position makes the parent's stable tie-breaking see
        # the same input order the serial TopN did.
        order = np.argsort(merged.positions)
        candidates = Block(
            columns={name: col[order] for name, col in merged.columns.items()},
            positions=merged.positions[order],
        )
        gather = GatherOperator(context, [candidates], detail=detail)
        return TopN(context, gather, key=key, count=count, descending=descending), gather
    gather = GatherOperator(context, blocks, detail=detail)
    if limit is not None:
        return Limit(context, gather, limit), gather
    return gather, gather


# --- public API ------------------------------------------------------------------


def parallel_query(
    table: Table | PartitionedTable,
    query: ScanQuery,
    *,
    workers: int = 2,
    partitions: int | None = None,
    context: ExecutionContext | None = None,
    column_scanner: ColumnScannerKind = ColumnScannerKind.PIPELINED,
    salvage: bool = False,
    aggregate: AggregateSpec | None = None,
    sort_based: bool = False,
    order_by: tuple[str, ...] = (),
    limit: int | None = None,
    topn: tuple[str, int, bool] | None = None,
    share: str = "auto",
    inject_crash: int | None = None,
    info: dict | None = None,
) -> QueryResult:
    """Execute one decomposable query across row-range partitions.

    ``table`` may be a plain table (split logically into ``partitions``
    contiguous row ranges, default one per worker) or a
    :class:`~repro.storage.partition.PartitionedTable` (its physical
    shards are used as-is).  ``workers <= 1`` runs the same
    partition-and-merge machinery in-process, which keeps the merge
    path — and its cost accounting — testable without a pool.

    Exactly one result shape may be requested: a plain selection,
    ``aggregate``, ``order_by`` (optionally with ``limit``), plain
    ``limit``, or ``topn``.  Non-decomposable shapes raise
    :class:`~repro.errors.PlanError`; callers (``Database.query``)
    fall back to the serial engine instead.

    ``share`` controls how workers see the table: ``"pickle"`` ships it
    with each task, ``"fork"`` forks a dedicated pool that inherits it,
    ``"auto"`` picks by table size.  ``info``, when given a dict, is
    filled with execution diagnostics (``mode``, ``partitions``,
    ``workers``, ``fallback_reason``).
    """
    if workers < 1:
        raise PlanError(f"worker count must be positive: {workers}")
    if share not in ("auto", "pickle", "fork"):
        raise PlanError(f"unknown share mode: {share!r}")
    shapes = sum(
        [aggregate is not None, bool(order_by), topn is not None]
    )
    if shapes > 1:
        raise PlanError(
            "parallel query supports one result shape at a time "
            "(aggregate | order_by | topn)"
        )
    if limit is not None and (aggregate is not None or topn is not None):
        raise PlanError("parallel limit composes only with plain or sorted scans")

    context = context or ExecutionContext()
    if salvage:
        context.strict_integrity = False
    trace = context.tracer is not None

    # Partition list: (table, row_range, position_offset) per task.
    if isinstance(table, PartitionedTable):
        shards = [
            (partition.table, None, partition.row_start)
            for partition in table.partitions
        ]
        schema_table: Table = table.partitions[0].table
        fork_candidate = None
    else:
        count = partitions if partitions is not None else workers
        shards = [
            (table, (lo, hi), 0)
            for lo, hi in partition_ranges(table.num_rows, count)
        ]
        schema_table = table
        fork_candidate = table
    query.validate_against(schema_table.schema)

    tasks = [
        WorkerTask(
            index=index,
            table=shard_table,
            query=query,
            row_range=row_range,
            position_offset=offset,
            column_scanner=column_scanner,
            calibration=context.calibration,
            block_size=context.block_size,
            compressed_execution=context.compressed_execution,
            strict_integrity=context.strict_integrity,
            trace=trace,
            aggregate=aggregate,
            sort_based=sort_based,
            order_by=order_by,
            limit=limit,
            topn=topn,
        )
        for index, (shard_table, row_range, offset) in enumerate(shards)
    ]

    mode = "inline"
    fallback_reason = None
    if workers > 1 and len(tasks) > 1:
        use_fork = share == "fork" or (
            share == "auto"
            and fork_candidate is not None
            and fork_candidate.num_rows >= _FORK_SHARE_ROWS
            and "fork" in multiprocessing.get_all_start_methods()
        )
        dispatch = tasks
        if inject_crash is not None:
            dispatch = [
                replace(task, crash=task.index == inject_crash) for task in tasks
            ]
        if use_fork:
            dispatch = [replace(task, table=None) for task in dispatch]
        try:
            outputs = _run_in_pool(
                dispatch,
                min(workers, len(tasks)),
                fork_candidate if use_fork else None,
                _WORKER_TIMEOUT,
            )
            mode = "parallel"
        except (WorkerCrash, multiprocessing.TimeoutError, OSError) as exc:
            # Degrade to an in-process retry over the same partitions.
            # No worker result has been merged yet, so the parent
            # context stays exactly-once.
            fallback_reason = f"{type(exc).__name__}: {exc}"
            outputs = [_execute_task(task) for task in tasks]
            mode = "fallback-serial"
    else:
        outputs = [_execute_task(task) for task in tasks]

    outputs.sort(key=lambda out: out.index)
    _merge_accounting(context, outputs)

    plan, anchor = _merge_plan(context, outputs, aggregate, order_by, limit, topn)
    result = execute_plan(plan)

    if trace:
        tracer = context.tracer
        anchor_span = tracer.span_for(anchor)
        for out in outputs:
            tracer.attach_subtree(
                out.span_roots,
                out.slices,
                track=out.index + 1,
                under=anchor_span,
                epoch_ns=out.epoch_ns or None,
            )

    if info is not None:
        info["mode"] = mode
        info["workers"] = workers
        info["partitions"] = len(tasks)
        info["fallback_reason"] = fallback_reason
    return result
