"""Chaos-harness quotas and unit checks.

The 200-case seeded sweep always runs in tier-1 and asserts the
governance invariant — *correct result XOR typed error, within
deadline x slack* — across serial and parallel injections.  The deep
2,000-case sweep carries the ``chaos`` marker and runs only under
``pytest --run-chaos`` (or ``make chaos-deep``).
"""

from __future__ import annotations

import pytest

from repro.storage.layout import Layout
from repro.storage.loader import load_table
from repro.testing.chaos import (
    SlowPagedFile,
    generate_chaos_case,
    main,
    run_chaos_case,
    run_chaos_suite,
    slow_down_table,
)
from repro.testing.genquery import generate_case

SMOKE_CASES = 200
DEEP_CASES = 2_000


def _assert_clean(report) -> None:
    assert report.ok, "\n" + report.format()
    # Both arms of the XOR must be exercised: some queries complete
    # (oracle-equal), some abort with typed governance errors.
    assert report.completed > 0
    assert report.typed_errors, "no typed aborts: injections never fired"


def test_chaos_smoke_quota():
    _assert_clean(run_chaos_suite(SMOKE_CASES, start_seed=0))


@pytest.mark.chaos
def test_chaos_deep_sweep():
    _assert_clean(run_chaos_suite(DEEP_CASES, start_seed=0))


def test_generation_is_pure():
    assert generate_chaos_case(7).describe() == generate_chaos_case(7).describe()


def test_generation_covers_every_injection():
    cases = [generate_chaos_case(seed) for seed in range(SMOKE_CASES)]
    assert any(case.mode == "serial" for case in cases)
    assert any(case.mode == "parallel" for case in cases)
    assert any(case.inject_kill is not None for case in cases)
    assert any(case.inject_stall is not None for case in cases)
    assert any(case.slow_decode_s for case in cases)
    assert any(case.alloc_spike for case in cases)
    assert any(case.cancel_after_ticks is not None for case in cases)
    assert any(case.deadline == 0.0 for case in cases)
    assert all(case.case.kind != "join" for case in cases)


def test_slow_paged_file_preserves_bytes():
    case = generate_case(1)
    table = load_table(case.tables["T"], Layout.ROW, page_size=case.page_size)
    before = table.file.read_page(0) if table.file.num_pages else b""
    slow_down_table(table, delay_s=0.0)
    assert isinstance(table.file, SlowPagedFile)
    after = table.file.read_page(0) if table.file.num_pages else b""
    assert before == after


def test_outcome_records_governance_notes():
    # A stall case must surface its degradation in the outcome notes.
    for seed in range(SMOKE_CASES):
        chaos = generate_chaos_case(seed)
        if chaos.inject_stall is None or chaos.deadline != 15.0:
            continue
        outcome = run_chaos_case(chaos)
        assert outcome.ok, outcome.violations
        if outcome.completed and outcome.outcomes:
            assert any(
                "stalled" in note or "degraded" in note for note in outcome.outcomes
            )
            return
    pytest.skip("no completing stall case in the smoke range")


def test_cli_replay_single_seed(capsys):
    assert main(["--seed", "3"]) == 0
    out = capsys.readouterr().out
    assert "chaos seed=3" in out
    assert "seed 3:" in out
