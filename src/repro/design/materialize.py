"""Materializing and routing to vertical-partition views.

Completes the Figure 1 MV-advisor loop: the advisor proposes attribute
groups (:mod:`repro.design.mv_advisor`), this module materializes them
as real tables — optionally re-sorted on a leading attribute, the
C-Store projection idea — and routes queries to the cheapest view that
covers them.

A view sorted on a low-cardinality attribute is where run-length
encoding shines; combined with :class:`repro.compression.rle.RleCodec`
this reproduces the design point the paper's related work attributes to
C-Store.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.compression.advisor import CompressionAdvisor
from repro.compression.base import CodecKind
from repro.compression.rle import RleCodec
from repro.data.generator import GeneratedTable
from repro.engine.query import ScanQuery
from repro.errors import PlanError, SchemaError
from repro.storage.layout import Layout
from repro.storage.loader import load_table
from repro.storage.table import Table
from repro.types.datatypes import IntType
from repro.types.schema import TableSchema


@dataclass(frozen=True)
class MaterializedView:
    """One materialized vertical partition."""

    name: str
    base_table: str
    attributes: tuple[str, ...]
    sort_key: str | None
    table: Table

    def covers(self, query: ScanQuery) -> bool:
        """Can this view answer the query's scan?"""
        return set(query.scan_attributes()) <= set(self.attributes)

    @property
    def bytes_per_tuple(self) -> float:
        if self.table.num_rows == 0:
            return 0.0
        return self.table.total_bytes / self.table.num_rows


def materialize_view(
    data: GeneratedTable,
    attributes: tuple[str, ...],
    name: str | None = None,
    sort_key: str | None = None,
    layout: Layout = Layout.COLUMN,
    compress: bool = False,
    use_rle: bool = False,
    page_size: int = 4096,
) -> MaterializedView:
    """Build one view table from base data.

    ``sort_key`` re-clusters the view (C-Store projections); with
    ``compress`` the advisor picks per-column schemes, and ``use_rle``
    additionally lets sorted integer columns use run-length encoding.
    """
    for attr in attributes:
        data.schema.attribute(attr)
    if sort_key is not None and sort_key not in attributes:
        raise PlanError(f"sort key {sort_key!r} must be a view attribute")

    columns = {attr: data.columns[attr] for attr in attributes}
    if sort_key is not None:
        order = np.argsort(columns[sort_key], kind="stable")
        columns = {attr: col[order] for attr, col in columns.items()}

    view_name = name or f"{data.schema.name}__{'_'.join(attributes)}"
    schema = TableSchema(
        name=view_name,
        attributes=tuple(data.schema.attribute(attr) for attr in attributes),
    )
    if compress:
        advisor = CompressionAdvisor()
        attr_types = {a.name: a.attr_type for a in schema}
        specs = advisor.advise(attr_types, columns)
        if use_rle:
            for attr_name, values in columns.items():
                attr = schema.attribute(attr_name)
                if not isinstance(attr.attr_type, IntType):
                    continue
                rle_bits = RleCodec.effective_bits_per_value(values)
                if rle_bits < specs[attr_name].bits:
                    specs[attr_name] = RleCodec.spec_for_values(values)
        schema = schema.with_codecs(specs)
    view_data = GeneratedTable(schema=schema, columns=dict(columns))
    table = load_table(view_data, layout, page_size=page_size)
    return MaterializedView(
        name=view_name,
        base_table=data.schema.name,
        attributes=tuple(attributes),
        sort_key=sort_key,
        table=table,
    )


class ViewRouter:
    """Routes a scan query to the cheapest covering view."""

    def __init__(self, base_table: Table):
        self.base_table = base_table
        self._views: list[MaterializedView] = []

    def add_view(self, view: MaterializedView) -> None:
        if view.base_table != self.base_table.schema.name:
            raise SchemaError(
                f"view {view.name!r} is over {view.base_table!r}, router is "
                f"for {self.base_table.schema.name!r}"
            )
        self._views.append(view)

    @property
    def views(self) -> list[MaterializedView]:
        return list(self._views)

    def route(self, query: ScanQuery) -> tuple[Table, str]:
        """``(table, source name)`` of the cheapest covering relation."""
        query.validate_against(self.base_table.schema)
        candidates = [view for view in self._views if view.covers(query)]
        if not candidates:
            return self.base_table, self.base_table.schema.name
        best = min(candidates, key=lambda view: view.table.total_bytes)
        if best.table.total_bytes >= self.base_table.total_bytes:
            return self.base_table, self.base_table.schema.name
        return best.table, best.name
