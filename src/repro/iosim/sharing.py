"""Scan sharing (Section 2.1.1's circular-scan optimization).

When multiple concurrent queries scan the same table, it often pays to
employ a single scanner and deliver data to every query off one reading
stream (Teradata, RedBrick, SQL Server, QPipe).  The paper notes the
optimization is orthogonal to row-vs-column placement and does not
study it; it is implemented here as an extension so the benefit can be
quantified on the same simulated array.

A late arrival attaches to the running scan mid-file (circular scan):
it consumes from the attach point to the end alongside the others, then
the stream wraps around once to serve it the prefix it missed.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SimulationError
from repro.iosim.request import FileExtent
from repro.iosim.sim import DiskArraySim
from repro.iosim.streams import ScanStream, SubmissionPolicy


@dataclass(frozen=True)
class SharedScanQuery:
    """One query attached to a shared table scan."""

    name: str
    arrival_time: float = 0.0


@dataclass(frozen=True)
class SharedScanOutcome:
    """Completion times with and without sharing."""

    shared_finish: dict[str, float]
    independent_finish: dict[str, float]

    @property
    def shared_makespan(self) -> float:
        return max(self.shared_finish.values())

    @property
    def independent_makespan(self) -> float:
        return max(self.independent_finish.values())

    @property
    def speedup(self) -> float:
        """Makespan improvement from sharing the scan."""
        if self.shared_makespan == 0:
            return 1.0
        return self.independent_makespan / self.shared_makespan


class SharedScanSimulator:
    """Compares one shared circular scan against independent scans."""

    def __init__(
        self,
        table_bytes: int,
        sim: DiskArraySim | None = None,
        prefetch_depth: int | None = None,
    ):
        if table_bytes <= 0:
            raise SimulationError(f"table must be non-empty: {table_bytes}")
        self.table_bytes = table_bytes
        self.sim = sim or DiskArraySim()
        self.prefetch_depth = (
            prefetch_depth
            if prefetch_depth is not None
            else self.sim.calibration.default_prefetch_depth
        )

    def _scan_seconds(self) -> float:
        """One full sequential pass over the table."""
        stream = ScanStream(
            name="pass",
            files=[FileExtent("T", self.table_bytes)],
            unit_bytes=self.sim.unit_bytes,
            prefetch_depth=self.prefetch_depth,
            policy=SubmissionPolicy.ROW,
        )
        return self.sim.solo_scan_seconds(stream)

    def run_shared(self, queries: list[SharedScanQuery]) -> dict[str, float]:
        """Completion time per query under one circular scan.

        The scan runs continuously while any query is unserved.  A query
        arriving at time ``t`` into a scan that started at position
        ``p(t)`` finishes one full table-length later: it rides to the
        end of the current pass and the scan wraps around for the
        prefix.  The disk does one stream of sequential I/O, so each
        query's service takes exactly one pass from its arrival (plus
        waiting for the scan to start).
        """
        self._validate(queries)
        pass_seconds = self._scan_seconds()
        start = min(query.arrival_time for query in queries)
        finish = {}
        for query in queries:
            begin = max(query.arrival_time, start)
            finish[query.name] = begin + pass_seconds
        return finish

    def run_independent(self, queries: list[SharedScanQuery]) -> dict[str, float]:
        """Completion time per query with one stream per query."""
        self._validate(queries)
        streams = [
            ScanStream(
                name=query.name,
                files=[FileExtent(f"T.{query.name}", self.table_bytes)],
                unit_bytes=self.sim.unit_bytes,
                prefetch_depth=self.prefetch_depth,
                policy=SubmissionPolicy.ROW,
                start_time=query.arrival_time,
            )
            for query in queries
        ]
        stats = self.sim.run(streams)
        return {name: s.finish_time for name, s in stats.items()}

    def compare(self, queries: list[SharedScanQuery]) -> SharedScanOutcome:
        """Both policies for the same arrival pattern."""
        return SharedScanOutcome(
            shared_finish=self.run_shared(queries),
            independent_finish=self.run_independent(queries),
        )

    @staticmethod
    def _validate(queries: list[SharedScanQuery]) -> None:
        if not queries:
            raise SimulationError("no queries to schedule")
        names = [query.name for query in queries]
        if len(set(names)) != len(names):
            raise SimulationError(f"duplicate query names: {names}")
        if any(query.arrival_time < 0 for query in queries):
            raise SimulationError("arrival times must be non-negative")


@dataclass(frozen=True)
class CompetingScansMeasurement:
    """One Figure 11 point: n competing scans, shared vs independent.

    ``independent_bytes_read`` is always ``n x table_bytes`` (every
    query drags its own stream through the array, contending for the
    heads); ``shared_bytes_read`` is what the single circular scan
    actually transferred while any query was unserved — exactly one
    pass when the arrivals are simultaneous, approaching one pass per
    *batch* as arrivals cluster.  Sharing therefore strictly reduces
    modeled I/O bytes for any >= 2 co-running scans of the same table.
    """

    queries: tuple[str, ...]
    pass_seconds: float
    shared_finish: dict[str, float]
    independent_finish: dict[str, float]
    shared_bytes_read: int
    independent_bytes_read: int

    @property
    def shared_makespan(self) -> float:
        return max(self.shared_finish.values())

    @property
    def independent_makespan(self) -> float:
        return max(self.independent_finish.values())

    @property
    def speedup(self) -> float:
        """Makespan improvement from sharing the scan."""
        if self.shared_makespan == 0:
            return 1.0
        return self.independent_makespan / self.shared_makespan

    @property
    def io_savings(self) -> float:
        """Fraction of independent-scan bytes the shared stream avoids."""
        if self.independent_bytes_read == 0:
            return 0.0
        return 1.0 - self.shared_bytes_read / self.independent_bytes_read

    def as_dict(self) -> dict:
        return {
            "queries": list(self.queries),
            "pass_seconds": self.pass_seconds,
            "shared_finish": dict(self.shared_finish),
            "independent_finish": dict(self.independent_finish),
            "shared_makespan": self.shared_makespan,
            "independent_makespan": self.independent_makespan,
            "speedup": self.speedup,
            "shared_bytes_read": self.shared_bytes_read,
            "independent_bytes_read": self.independent_bytes_read,
            "io_savings": self.io_savings,
        }


def measure_competing_scans(
    table_bytes: int,
    arrivals: list[float] | list[SharedScanQuery],
    sim: DiskArraySim | None = None,
    prefetch_depth: int | None = None,
) -> CompetingScansMeasurement:
    """The Figure 11 competing-scans model for one arrival pattern.

    ``arrivals`` is either a list of arrival times (queries named
    ``q0..qN``) or explicit :class:`SharedScanQuery` objects.  The
    independent side reproduces the figure's shape — per-query latency
    grows with the number of competing streams as the array seeks
    between them — while the shared circular scan serves every rider
    in one pass from its arrival, with the I/O stream accounted once.
    """
    queries = [
        query
        if isinstance(query, SharedScanQuery)
        else SharedScanQuery(name=f"q{index}", arrival_time=float(query))
        for index, query in enumerate(arrivals)
    ]
    simulator = SharedScanSimulator(table_bytes, sim=sim, prefetch_depth=prefetch_depth)
    pass_seconds = simulator._scan_seconds()
    shared = simulator.run_shared(queries)
    independent = simulator.run_independent(queries)
    # The circular scan reads continuously from the first arrival until
    # the last rider is served; bytes follow from the pass rate.
    start = min(query.arrival_time for query in queries)
    end = max(shared.values())
    busy_seconds = max(0.0, end - start)
    shared_bytes = (
        int(round(table_bytes * busy_seconds / pass_seconds))
        if pass_seconds > 0
        else table_bytes
    )
    return CompetingScansMeasurement(
        queries=tuple(query.name for query in queries),
        pass_seconds=pass_seconds,
        shared_finish=shared,
        independent_finish=independent,
        shared_bytes_read=shared_bytes,
        independent_bytes_read=table_bytes * len(queries),
    )


@dataclass(frozen=True)
class MergeCompetitionMeasurement:
    """Query latency with a background merge competing for the array.

    The merge is modeled as the paper's tuple mover: one sequential
    read of the old segment plus one sequential write-sized read of the
    new segment (the simulator is read-only, so the write stream is
    represented by an equal-sized read — the head contention is what
    matters).  ``slowdown`` is the factor by which the merge stretches
    the query scan, the write-store analogue of Figure 11's competing
    scans.
    """

    query_solo_seconds: float
    merge_solo_seconds: float
    query_contended_seconds: float
    merge_contended_seconds: float

    @property
    def slowdown(self) -> float:
        """Query latency multiplier while the merge runs."""
        if self.query_solo_seconds == 0:
            return 1.0
        return self.query_contended_seconds / self.query_solo_seconds

    @property
    def merge_stretch(self) -> float:
        """Merge duration multiplier caused by the foreground scan."""
        if self.merge_solo_seconds == 0:
            return 1.0
        return self.merge_contended_seconds / self.merge_solo_seconds

    def as_dict(self) -> dict:
        return {
            "query_solo_seconds": self.query_solo_seconds,
            "merge_solo_seconds": self.merge_solo_seconds,
            "query_contended_seconds": self.query_contended_seconds,
            "merge_contended_seconds": self.merge_contended_seconds,
            "slowdown": self.slowdown,
            "merge_stretch": self.merge_stretch,
        }


def measure_merge_competition(
    table_bytes: int,
    merge_bytes: int | None = None,
    query_arrival: float | None = None,
    sim: DiskArraySim | None = None,
    prefetch_depth: int | None = None,
) -> MergeCompetitionMeasurement:
    """Model a query scan racing a background merge on one array.

    ``merge_bytes`` defaults to ``2 x table_bytes`` (read the old
    segment, write the new one).  The merge starts at time zero;
    ``query_arrival`` defaults to half-way through the solo merge, so
    the query lands mid-merge and contends with the tuple mover's
    in-flight requests.  Latencies are measured from each stream's own
    start, through the shared :class:`~repro.iosim.sim.DiskArraySim`,
    so the result reflects the same seek/transfer calibration as every
    other iosim figure.
    """
    if table_bytes <= 0:
        raise SimulationError(f"table must be non-empty: {table_bytes}")
    if merge_bytes is None:
        merge_bytes = 2 * table_bytes
    if merge_bytes <= 0:
        raise SimulationError(f"merge stream must be non-empty: {merge_bytes}")
    sim = sim or DiskArraySim()
    depth = (
        prefetch_depth
        if prefetch_depth is not None
        else sim.calibration.default_prefetch_depth
    )

    def _stream(name: str, file: str, size: int, start: float = 0.0) -> ScanStream:
        return ScanStream(
            name=name,
            files=[FileExtent(file, size)],
            unit_bytes=sim.unit_bytes,
            prefetch_depth=depth,
            policy=SubmissionPolicy.ROW,
            start_time=start,
        )

    query_solo = sim.solo_scan_seconds(_stream("query", "T", table_bytes))
    merge_solo = sim.solo_scan_seconds(_stream("merge", "M", merge_bytes))
    if query_arrival is None:
        query_arrival = merge_solo / 2
    if query_arrival < 0:
        raise SimulationError(f"arrival must be non-negative: {query_arrival}")
    stats = sim.run(
        [
            _stream("query", "T", table_bytes, start=query_arrival),
            _stream("merge", "M", merge_bytes),
        ]
    )
    return MergeCompetitionMeasurement(
        query_solo_seconds=query_solo,
        merge_solo_seconds=merge_solo,
        query_contended_seconds=stats["query"].finish_time - query_arrival,
        merge_contended_seconds=stats["merge"].finish_time,
    )
