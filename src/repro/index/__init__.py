"""Unclustered secondary indexes and the index-vs-scan tradeoff.

Section 2.1.1 argues that read-optimized systems usually prefer a plain
sequential scan over a secondary index: after probing the index and
sorting the resulting Record IDs to minimize head movement, a query
"must exhibit less than 0.008 % selectivity before it pays off to skip
any data and seek directly to the next value" (5 ms seeks, 300 MB/s,
128-byte tuples).  This package implements the substrate behind that
claim: a real unclustered index, an index-scan operator that fetches
tuples by RID, and the cost model that locates the breakeven.
"""

from repro.index.access_path import (
    AccessPathCosts,
    breakeven_selectivity,
    compare_access_paths,
    index_scan_seconds,
    index_scan_seconds_for_rids,
    sequential_scan_seconds,
)
from repro.index.scan import IndexScan
from repro.index.secondary import SecondaryIndex

__all__ = [
    "SecondaryIndex",
    "IndexScan",
    "AccessPathCosts",
    "compare_access_paths",
    "sequential_scan_seconds",
    "index_scan_seconds",
    "index_scan_seconds_for_rids",
    "breakeven_selectivity",
]
