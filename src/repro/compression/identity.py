"""Identity codec: uncompressed storage through the codec interface.

Keeping uncompressed columns behind the same interface lets pages,
scanners and the cost model treat every column uniformly; the identity
codec simply delegates to the attribute type's fixed-width serializer.
"""

from __future__ import annotations

import numpy as np

from repro.compression.base import Codec, CodecKind, CodecSpec, PageCodecState
from repro.errors import CompressionError
from repro.types.datatypes import AttributeType


class IdentityCodec(Codec):
    """Stores values verbatim at the attribute type's fixed width."""

    def __init__(self, spec: CodecSpec, attr_type: AttributeType):
        if spec.kind is not CodecKind.NONE:
            raise CompressionError(f"IdentityCodec got spec kind {spec.kind}")
        if spec.bits != attr_type.width * 8:
            raise CompressionError(
                f"identity spec width {spec.bits} bits does not match "
                f"attribute width {attr_type.width} bytes"
            )
        super().__init__(spec, attr_type)

    def encode_page(self, values: np.ndarray) -> tuple[bytes, PageCodecState]:
        return self.attr_type.encode_values(values), PageCodecState()

    def decode_page(self, payload: bytes, count: int, state: PageCodecState) -> np.ndarray:
        return self.attr_type.decode_values(payload, count)

    @staticmethod
    def spec_for_type(attr_type: AttributeType) -> CodecSpec:
        """The uncompressed spec for an attribute type."""
        return CodecSpec(kind=CodecKind.NONE, bits=attr_type.width * 8)
