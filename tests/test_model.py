"""Analytical-model tests (Section 5 equations)."""

import math

import pytest

from repro.cpusim.calibration import DEFAULT_CALIBRATION
from repro.errors import CalibrationError
from repro.model.calibrate import scanner_params_from_measurement
from repro.model.contour import speedup_grid
from repro.model.params import HardwareParams, QueryShape, ScannerParams
from repro.model.rates import (
    cpu_rate,
    disk_rate_column,
    disk_rate_row,
    operator_rate,
    parallel_rate,
    scanner_rate,
)
from repro.model.speedup import (
    SpeedupModel,
    analytic_scanner_params,
    crossover_projectivity,
    speedup,
)
from repro.storage.layout import Layout


def hardware(cpdb=18.0):
    return HardwareParams(cpdb=cpdb)


class TestParallelRate:
    def test_paper_example(self):
        # "one operator processing 4 tuples/sec connected to an operator
        #  that processes 6 tuples/sec -> 2.4 tuples/sec"
        assert parallel_rate(4.0, 6.0) == pytest.approx(2.4)

    def test_single_rate_is_identity(self):
        assert parallel_rate(7.5) == pytest.approx(7.5)

    def test_infinite_rates_ignored(self):
        assert parallel_rate(math.inf, 4.0) == pytest.approx(4.0)
        assert parallel_rate(math.inf, math.inf) == math.inf

    def test_zero_rate_dominates(self):
        assert parallel_rate(0.0, 100.0) == 0.0

    def test_requires_an_argument(self):
        with pytest.raises(CalibrationError):
            parallel_rate()


class TestRates:
    def test_operator_rate_eq7(self):
        assert operator_rate(3.2e9, 100.0) == pytest.approx(3.2e7)
        assert operator_rate(3.2e9, 0.0) == math.inf

    def test_disk_rate_row_single_file(self):
        hw = hardware()
        # rate = BW / width
        rate = disk_rate_row(hw, [(1_000, 32.0)])
        assert rate == pytest.approx(hw.disk_bandwidth / 32.0)

    def test_disk_rate_merge_join_weighting(self):
        # The paper's example: File1 1 GB, File2 10 GB -> one byte of
        # File1 per ten bytes of File2.
        hw = hardware()
        rate = disk_rate_row(hw, [(1_000_000, 1_000.0), (10_000_000, 1_000.0)])
        assert rate == pytest.approx(
            hw.disk_bandwidth * 11_000_000 / 11_000_000_000
        )

    def test_disk_rate_column_projection_factor(self):
        hw = hardware()
        # Reading 8 of 32 bytes: f = 4, so 4x the row rate.
        row = disk_rate_row(hw, [(1_000, 32.0)])
        column = disk_rate_column(hw, [(1_000, 32.0, 4.0)])
        assert column == pytest.approx(4 * row)

    def test_scanner_rate_memory_bound(self):
        hw = hardware()
        fast_cpu = ScannerParams(i_user=1.0, i_system=0.0, mem_bytes_per_tuple=3200.0)
        rate = scanner_rate(hw, fast_cpu)
        # Memory-bound: clock * 1 B/cycle / 3200 B/tuple = 1e6 t/s.
        assert rate == pytest.approx(1e6, rel=0.01)

    def test_cpu_rate_composes_operators(self):
        hw = hardware()
        scanner = ScannerParams(i_user=100.0, i_system=0.0, mem_bytes_per_tuple=0.0)
        alone = cpu_rate(hw, [scanner])
        with_op = cpu_rate(hw, [scanner], [100.0])
        assert with_op == pytest.approx(alone / 2)

    def test_empty_file_set_rejected(self):
        with pytest.raises(CalibrationError):
            disk_rate_row(hardware(), [(0, 0.0)])


class TestQueryShape:
    def test_projection_factor(self):
        shape = QueryShape(32.0, 8.0, 0.1, 8, 2)
        assert shape.projection_factor == pytest.approx(4.0)

    def test_validation(self):
        with pytest.raises(CalibrationError):
            QueryShape(32.0, 40.0, 0.1, 8, 2)  # selected > width
        with pytest.raises(CalibrationError):
            QueryShape(32.0, 8.0, 1.5, 8, 2)  # bad selectivity
        with pytest.raises(CalibrationError):
            QueryShape(32.0, 8.0, 0.1, 8, 9)  # too many attrs

    def test_hardware_validation(self):
        with pytest.raises(CalibrationError):
            HardwareParams(cpdb=0)

    def test_from_calibration(self):
        hw = HardwareParams.from_calibration(DEFAULT_CALIBRATION)
        assert hw.cpdb == pytest.approx(DEFAULT_CALIBRATION.cpdb)
        assert hw.mem_bytes_per_cycle == pytest.approx(1.0)


class TestSpeedup:
    def test_disk_bound_speedup_equals_projection_factor(self):
        # At huge cpdb (CPU essentially free), speedup = f.
        model = SpeedupModel()
        shape = QueryShape(32.0, 8.0, 0.10, 8, 2)
        assert model.predict(shape, cpdb=100_000) == pytest.approx(4.0, rel=0.01)

    def test_speedup_monotone_in_cpdb(self):
        model = SpeedupModel()
        shape = QueryShape(8.0, 4.0, 0.10, 2, 1)
        values = [model.predict(shape, cpdb=c) for c in (9, 18, 36, 72, 144)]
        assert all(b >= a - 1e-9 for a, b in zip(values, values[1:]))

    def test_rows_win_on_lean_tuples_at_low_cpdb(self):
        # Figure 2's bottom-left region (50% projection of 8 columns).
        model = SpeedupModel()
        shape = QueryShape(4.0, 2.0, 0.10, 8, 4)
        assert model.predict(shape, cpdb=9) < 1.0

    def test_columns_win_on_wide_tuples(self):
        model = SpeedupModel()
        shape = QueryShape(150.0, 75.0, 0.10, 16, 8)
        assert model.predict(shape, cpdb=18) > 1.5

    def test_full_projection_speedup_near_one_when_disk_bound(self):
        model = SpeedupModel()
        shape = QueryShape(150.0, 150.0, 0.10, 16, 16)
        assert model.predict(shape, cpdb=1_000) == pytest.approx(1.0, abs=0.05)

    def test_crossover_moves_with_cpdb(self):
        model = SpeedupModel()
        low = crossover_projectivity(model, 16.0, 4, 0.10, cpdb=9)
        high = crossover_projectivity(model, 16.0, 4, 0.10, cpdb=144)
        assert low is not None
        assert high is None  # disk-bound: columns always win

    def test_analytic_params_row_flat_in_projection(self):
        narrow = QueryShape(32.0, 4.0, 0.10, 8, 1)
        wide = QueryShape(32.0, 32.0, 0.10, 8, 8)
        row_narrow = analytic_scanner_params(narrow, Layout.ROW)
        row_wide = analytic_scanner_params(wide, Layout.ROW)
        assert row_wide.mem_bytes_per_tuple == row_narrow.mem_bytes_per_tuple
        # Only the copy cost grows, slightly.
        assert row_wide.i_user < row_narrow.i_user * 1.5

    def test_analytic_params_column_grow_with_attrs(self):
        one = analytic_scanner_params(QueryShape(32.0, 4.0, 0.10, 8, 1), Layout.COLUMN)
        eight = analytic_scanner_params(QueryShape(32.0, 32.0, 0.10, 8, 8), Layout.COLUMN)
        assert eight.i_user > one.i_user


class TestContour:
    def test_grid_shape_and_bands(self):
        model = SpeedupModel()
        grid = speedup_grid(model, widths=[4, 16, 36], cpdbs=[9, 144])
        assert grid.values.shape == (2, 3)
        # High cpdb row should dominate the low cpdb row.
        assert (grid.values[1] >= grid.values[0] - 1e-9).all()
        text = grid.render()
        assert "cpdb" in text

    def test_fig2_qualitative_shape(self):
        model = SpeedupModel()
        grid = speedup_grid(model)
        # Top-right (high cpdb, wide tuples): around 2x for 50% projection.
        assert grid.values[-1, -1] == pytest.approx(2.0, rel=0.05)
        # Bottom-left (low cpdb, lean tuples): below 1 — rows win.
        assert grid.values[0, 0] < 1.0


class TestCalibrateFromMeasurement:
    def test_extracts_per_tuple_costs(self):
        from repro.cpusim.costmodel import CpuModel
        from repro.cpusim.events import CostEvents

        events = CostEvents(
            tuples_examined=1_000,
            predicate_evals=1_000,
            mem_seq_lines=250,
            bytes_read=32_000,
        )
        params = scanner_params_from_measurement(events, CpuModel(), 1_000)
        assert params.i_user > 0
        assert params.i_system == pytest.approx(32.0, rel=0.01)
        assert params.mem_bytes_per_tuple == pytest.approx(32.0)

    def test_zero_tuples_rejected(self):
        from repro.cpusim.costmodel import CpuModel
        from repro.cpusim.events import CostEvents

        with pytest.raises(CalibrationError):
            scanner_params_from_measurement(CostEvents(), CpuModel(), 0)
