# Convenience targets.  `pip install -e .` needs the `wheel` package for
# PEP 660 editable builds; in offline environments without it, the
# legacy `setup.py develop` path below installs identically.

.PHONY: install test bench fuzz write-fuzz crash-matrix chaos chaos-deep scrub experiments experiments-md metrics overhead-gate parallel-bench workload-bench scheduler-test dashboard regression-check all

install:
	pip install -e . 2>/dev/null || python setup.py develop

test:
	pytest tests/

bench:
	pytest benchmarks/ --benchmark-only

# Differential fuzzing: 2,000 seeded cases through every layout x codec
# configuration vs the pure-Python oracle.  Replay one failure with
# `python -m repro.testing --seed N`.
fuzz:
	python -m repro.testing --cases 2000

# Hybrid read/write differential battery: every fuzz case carries an
# interleaved insert/delete/merge op sequence and is checked through the
# delta overlay, the scheduler, and a rebuilt table vs the write oracle.
# Replay one failure with `python -m repro.testing --seed N --writes`.
write-fuzz:
	python -m repro.testing --cases 2000 --writes

# Crash-safe merge matrix: kill the merge at every declared fault point
# and require reopen to see exactly old-or-new with a clean scrub.
crash-matrix:
	pytest tests/test_merge_crash_matrix.py tests/test_write_path.py -q

# Chaos harness smoke: 200 seeded lifecycle faults (worker kills/stalls,
# slow decodes, allocation spikes, tight deadlines, mid-scan cancels) vs
# the governance contract — correct result XOR typed error, within
# deadline x slack.  Replay one violation with
# `python -m repro.testing.chaos --seed N`.
chaos:
	python -m repro.testing.chaos --cases 200 --blackbox-dir chaos-artifacts

# The deep 2,000-case chaos sweep (also: pytest --run-chaos).
chaos-deep:
	python -m repro.testing.chaos --cases 2000

# Integrity self-test: inject seeded faults into a scratch table and
# require the scrubber to pinpoint every one.
scrub:
	python -m repro.storage.scrub --self-test

experiments:
	python -m repro.experiments

experiments-md:
	python benchmarks/generate_experiments_md.py

# Run a small demo workload and print its Prometheus text exposition.
metrics:
	python -m repro.obs.metrics

# CI gate: the tracing no-op path must stay within 5% of the raw engine.
overhead-gate:
	python benchmarks/check_tracing_overhead.py --out obs-artifacts

# Parallel-scan speedup artifact: serial vs 2/4 workers on the fig06
# baseline workload, plus a hard byte-identity gate against serial.
parallel-bench:
	python benchmarks/bench_parallel_scan.py --out parallel-artifacts

all: install test bench

# Concurrent-workload throughput artifact: 1/4/16/64 clients through the
# cooperative scheduler, shared scans on vs off, with hard byte-identity
# and modeled-I/O-reduction gates.
workload-bench:
	python benchmarks/bench_workload_throughput.py --out workload-artifacts

# The scheduler test battery: equivalence vs serial, scan-sharing
# properties, and chaos under concurrency.
scheduler-test:
	pytest tests/test_scheduler_equivalence.py tests/test_scan_sharing.py \
		tests/test_scheduler_chaos.py tests/test_parallel_equivalence.py -q

# Live scheduler board: a demo concurrent workload redrawn as it runs.
# `python -m repro.obs.dashboard --html board.html` for a snapshot page.
dashboard:
	python -m repro.obs.dashboard --frames 5

# Regression sentinel: produce a fresh throughput artifact, compare it
# against the newest baseline under baselines/ (passes with a note when
# none is committed), then self-test the comparator's decision logic.
regression-check:
	python benchmarks/bench_workload_throughput.py --out workload-artifacts
	python benchmarks/check_regression.py \
		--current workload-artifacts/bench_workload_throughput.json \
		--baseline 'baselines/*.json'
	python benchmarks/check_regression.py \
		--current workload-artifacts/bench_workload_throughput.json \
		--self-test
