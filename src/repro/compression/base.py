"""Codec interface shared by all compression schemes.

A *codec spec* (:class:`CodecSpec`) is what the physical-design phase
records in the catalog: the scheme, the packed width in bits, and any
scheme parameters (the dictionary, a zig-zag flag for signed deltas).
A *codec* (:class:`Codec`) is the runtime object built from a spec; it
packs a page worth of values into bytes and unpacks them again.

Per the paper, all schemes produce **fixed-length** compressed values, so
a page holds ``floor(payload_bits / bits_per_value)`` values and positions
can be computed by arithmetic, exactly as for uncompressed data.
"""

from __future__ import annotations

import abc
import enum
from dataclasses import dataclass, field

import numpy as np

from repro.errors import CompressionError
from repro.types.datatypes import AttributeType


class CodecKind(enum.Enum):
    """The compression schemes of Section 2.2.1, plus RLE.

    The paper deliberately refrains from run-length encoding ("better
    suited for column data") to keep its study unbiased; it is included
    here as an extension so that bias can be measured.
    """

    NONE = "none"
    PACK = "pack"
    DICT = "dict"
    FOR = "for"
    FOR_DELTA = "for-delta"
    RLE = "rle"


@dataclass(frozen=True)
class CodecSpec:
    """Catalog description of how one column is compressed.

    Attributes
    ----------
    kind:
        Which scheme is used.
    bits:
        Packed width of one value, in bits.  For ``NONE`` this is the
        attribute width times eight.
    dictionary:
        For ``DICT``, the ordered tuple of distinct values (codes are
        indexes into this tuple).
    zigzag:
        For ``FOR``/``FOR_DELTA``, whether deltas are zig-zag encoded to
        admit negative differences.
    """

    kind: CodecKind
    bits: int
    dictionary: tuple = field(default=())
    zigzag: bool = False
    #: RLE only: packed width of a run length (one run = bits + run_bits).
    run_bits: int = 0

    def __post_init__(self) -> None:
        if self.bits <= 0:
            raise CompressionError(f"packed width must be positive: {self.bits}")
        if self.kind is CodecKind.DICT and not self.dictionary:
            raise CompressionError("DICT spec requires a non-empty dictionary")
        if self.kind is not CodecKind.DICT and self.dictionary:
            raise CompressionError(f"{self.kind} spec must not carry a dictionary")
        if self.kind is CodecKind.RLE and self.run_bits <= 0:
            raise CompressionError("RLE spec requires positive run_bits")
        if self.kind is not CodecKind.RLE and self.run_bits:
            raise CompressionError(f"{self.kind} spec must not carry run_bits")

    @property
    def is_compressed(self) -> bool:
        return self.kind is not CodecKind.NONE

    def describe(self) -> str:
        """Short Figure 5-style description, e.g. ``dict, 3 bits``."""
        if self.kind is CodecKind.NONE:
            return "non-compressed"
        if self.bits % 8 == 0 and self.bits >= 16:
            return f"{self.kind.value}, {self.bits // 8} bytes"
        return f"{self.kind.value}, {self.bits} bits"


@dataclass(frozen=True)
class PageCodecState:
    """Per-page codec state stored in the page trailer.

    Only the frame-of-reference schemes carry state: the base value of the
    block (the first value of the page, per Section 2.2.1).
    """

    base: int = 0


class Codec(abc.ABC):
    """Packs and unpacks one page worth of column values."""

    def __init__(self, spec: CodecSpec, attr_type: AttributeType):
        self.spec = spec
        self.attr_type = attr_type

    @property
    def bits_per_value(self) -> int:
        """Fixed packed width of one value, in bits."""
        return self.spec.bits

    @property
    def decodes_whole_page(self) -> bool:
        """True if decoding *any* value requires decoding the whole page.

        FOR-delta reconstructs value *i* from the base value and all the
        deltas before it, so selective access still pays for a full-page
        decode (the effect behind Figure 9's CPU jump).
        """
        return False

    @property
    def is_variable(self) -> bool:
        """True when values per page depend on the data (e.g. RLE).

        Variable codecs are loaded through :meth:`encode_prefix` and
        need the column file's page directory for position lookups.
        """
        return False

    def encode_prefix(
        self, values: np.ndarray, payload_bytes: int
    ) -> tuple[bytes, PageCodecState, int]:
        """Encode as many leading ``values`` as fit in ``payload_bytes``.

        Returns ``(payload, state, values_consumed)``.  Fixed-width
        codecs consume exactly :meth:`values_per_page` values; variable
        codecs override this with a data-dependent split.
        """
        capacity = min(len(values), self.values_per_page(payload_bytes))
        if capacity <= 0:
            raise CompressionError("page cannot hold a single value")
        chunk = values[:capacity]
        payload, state = self.encode_page(chunk)
        return payload, state, capacity

    @abc.abstractmethod
    def encode_page(self, values: np.ndarray) -> tuple[bytes, PageCodecState]:
        """Pack ``values`` into page payload bytes plus trailer state."""

    @abc.abstractmethod
    def decode_page(self, payload: bytes, count: int, state: PageCodecState) -> np.ndarray:
        """Unpack all ``count`` values of a page."""

    def decode_positions(
        self,
        payload: bytes,
        count: int,
        state: PageCodecState,
        positions: np.ndarray,
    ) -> tuple[np.ndarray, int]:
        """Unpack only the values at ``positions`` (sorted, in-page).

        Returns ``(values, values_decoded)`` where ``values_decoded`` is
        the number of decode operations actually performed — the cost the
        CPU model charges.  Schemes with :attr:`decodes_whole_page` set
        decode all ``count`` values regardless of how few are requested.
        """
        positions = np.asarray(positions, dtype=np.int64)
        if positions.size and (positions[0] < 0 or positions[-1] >= count):
            raise CompressionError(
                f"position out of page range [0, {count}): "
                f"{positions[0]}..{positions[-1]}"
            )
        if self.decodes_whole_page:
            all_values = self.decode_page(payload, count, state)
            return all_values[positions], count
        values = self._decode_selected(payload, count, state, positions)
        return values, int(positions.size)

    def _decode_selected(
        self,
        payload: bytes,
        count: int,
        state: PageCodecState,
        positions: np.ndarray,
    ) -> np.ndarray:
        """Default selective decode: full unpack then gather.

        Subclasses that can random-access values cheaply may override;
        the *cost accounting* (``values_decoded``) is what matters for the
        study, not the Python-level shortcut.
        """
        return self.decode_page(payload, count, state)[positions]

    def effective_bits(self, values: np.ndarray) -> float:
        """Average stored bits per value on this data.

        Fixed-width codecs store exactly :attr:`bits_per_value`;
        variable codecs (RLE) override with the data-dependent density
        used for paper-scale size extrapolation.
        """
        return float(self.bits_per_value)

    def values_per_page(self, payload_bytes: int) -> int:
        """How many values fit in ``payload_bytes`` of page payload."""
        capacity = (payload_bytes * 8) // self.bits_per_value
        if capacity <= 0:
            raise CompressionError(
                f"page payload of {payload_bytes} bytes cannot hold a "
                f"{self.bits_per_value}-bit value"
            )
        return capacity

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.spec.describe()})"


def require_int_array(values: np.ndarray, what: str) -> np.ndarray:
    """Coerce to an int64 array, raising :class:`CompressionError` otherwise."""
    values = np.asarray(values)
    if values.dtype.kind not in "iu":
        raise CompressionError(f"{what} requires integer values, got {values.dtype}")
    return values.astype(np.int64, copy=False)
