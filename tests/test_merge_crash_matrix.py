"""Crash-safe merge: every fault point leaves exactly old-or-new on disk.

``merge_into_directory`` rebuilds the table into a fresh versioned
directory and commits by durably flipping the ``CURRENT`` manifest.
This matrix kills the merge at every declared fault point and asserts
the atomicity contract after each crash:

* reopening through ``open_current`` yields **exactly** the old or the
  new table — old before the manifest flip, new after — never a blend;
* a full scrub of the reopened table is clean (no torn pages);
* exactly one flight-recorder black box is captured per induced
  failure;
* a retry from recovered state (fresh store, reopened table) succeeds.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.tpch import generate_orders
from repro.engine.executor import run_scan
from repro.engine.query import ScanQuery
from repro.errors import StorageError
from repro.obs import recorder as flight
from repro.storage.layout import Layout
from repro.storage.loader import load_table
from repro.storage.persist import save_table
from repro.storage.scrub import scrub_table
from repro.storage.write_store import (
    MERGE_FAULT_POINTS,
    WriteOptimizedStore,
    _flip_current,
    merge_into_directory,
    open_current,
    read_current_version,
)

ROWS = 120


class InducedCrash(Exception):
    """Simulates the process dying at a fault point."""


@pytest.fixture()
def seeded_root(tmp_path):
    data = generate_orders(ROWS, seed=9)
    table = load_table(data, Layout.COLUMN)
    save_table(table, tmp_path / "v0000")
    _flip_current(tmp_path, "v0000")
    return tmp_path, data, table


def _staged_rows(data, count=2):
    return [
        tuple(data.columns[a.name][index] for a in data.schema)
        for index in range(count)
    ]


def _dirty_store(table, data):
    store = WriteOptimizedStore(table.schema)
    store.attach_base(table.num_rows)
    store.insert_many(_staged_rows(data))
    store.delete([0, 3, ROWS])  # two base rows and one staged row
    return store


@pytest.mark.parametrize("point", MERGE_FAULT_POINTS)
def test_crash_leaves_exactly_old_or_new(seeded_root, point):
    root, data, _ = seeded_root
    table = open_current(root)
    store = _dirty_store(table, data)
    expected_new = run_scan(
        store.rebuild(table), ScanQuery(table.schema.name, select=("O_ORDERKEY",))
    )
    before_version = read_current_version(root)
    before_boxes = len(flight.RECORDER.blackboxes)

    def hook(where):
        if where == point:
            raise InducedCrash(where)

    with pytest.raises(InducedCrash):
        merge_into_directory(store, table, root, crash_hook=hook)

    # Exactly one black box per induced failure.
    assert len(flight.RECORDER.blackboxes) == before_boxes + 1

    # Reopen as a recovering process would: strictly old-or-new.
    after_version = read_current_version(root)
    after = open_current(root)
    committed = point == "current.written"  # hook fires after the flip
    if committed:
        assert after_version != before_version
        assert after.num_rows == ROWS + 2 - 3
        result = run_scan(after, ScanQuery(after.schema.name, select=("O_ORDERKEY",)))
        np.testing.assert_array_equal(
            result.columns["O_ORDERKEY"], expected_new.columns["O_ORDERKEY"]
        )
    else:
        assert after_version == before_version
        assert after.num_rows == ROWS
        result = run_scan(after, ScanQuery(after.schema.name, select=("O_ORDERKEY",)))
        np.testing.assert_array_equal(
            result.columns["O_ORDERKEY"], data.columns["O_ORDERKEY"]
        )

    # Scrub the reopened table: no torn pages at any crash point.
    report = scrub_table(after)
    assert report.is_clean, report.summary()

    # Recovery: a fresh store against the reopened table merges fine.
    retry = _dirty_store(after, data) if not committed else None
    if retry is not None:
        new_table, path = merge_into_directory(retry, after, root)
        assert read_current_version(root) == path.name
        assert scrub_table(open_current(root)).is_clean


def test_commit_point_crash_keeps_surviving_store_consistent(seeded_root):
    """A crash AFTER the flip resets the in-process store to the new base.

    The exception still propagates (callers see the failure), but a
    surviving process must not retry a merge that already committed.
    """
    root, data, _ = seeded_root
    table = open_current(root)
    store = _dirty_store(table, data)

    def hook(where):
        if where == "current.written":
            raise InducedCrash(where)

    with pytest.raises(InducedCrash):
        merge_into_directory(store, table, root, crash_hook=hook)
    new_rows = ROWS + 2 - 3
    assert store.base_rows == new_rows
    assert not store.has_changes
    assert not store.merging


def test_merge_into_directory_success_path(seeded_root):
    root, data, _ = seeded_root
    table = open_current(root)
    store = _dirty_store(table, data)
    new_table, path = merge_into_directory(store, table, root)
    assert read_current_version(root) == path.name == "v0001"
    assert new_table.num_rows == ROWS + 2 - 3
    assert scrub_table(open_current(root)).is_clean
    # The superseded version directory was garbage-collected.
    assert not (root / "v0000").exists()
    # The store drained and re-attached to the new base.
    assert store.base_rows == new_table.num_rows
    assert not store.has_changes


def test_version_sequence_advances_across_merges(seeded_root):
    root, data, _ = seeded_root
    for expected in ("v0001", "v0002", "v0003"):
        table = open_current(root)
        store = WriteOptimizedStore(table.schema)
        store.attach_base(table.num_rows)
        store.insert_many(_staged_rows(data, count=1))
        _, path = merge_into_directory(store, table, root)
        assert path.name == expected
    assert open_current(root).num_rows == ROWS + 3


def test_open_current_requires_manifest(tmp_path):
    with pytest.raises(StorageError, match="CURRENT"):
        open_current(tmp_path)
    assert read_current_version(tmp_path) is None


def test_current_manifest_rejects_garbage(tmp_path):
    (tmp_path / "CURRENT").write_text("../evil\n")
    with pytest.raises(StorageError):
        read_current_version(tmp_path)
