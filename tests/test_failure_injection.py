"""Failure injection: corrupt pages and malformed inputs must raise
library errors, never silently return wrong data."""

import struct

import numpy as np
import pytest

from repro.compression.base import CodecKind, CodecSpec
from repro.compression.registry import build_codec
from repro.data.tpch import generate_orders
from repro.errors import (
    CompressionError,
    PageFormatError,
    ReproError,
    StorageError,
)
from repro.storage.layout import Layout
from repro.storage.loader import load_table
from repro.storage.page import (
    DEFAULT_PAGE_SIZE,
    PAGE_TRAILER_BYTES,
    ColumnPageCodec,
    RowPageCodec,
)
from repro.storage.pagefile import PagedFile
from repro.types.datatypes import IntType


def corrupt_count(page: bytes, new_count: int) -> bytes:
    """Overwrite the page's entry count."""
    return struct.pack("<I", new_count) + page[4:]


class TestCorruptPages:
    def test_row_page_with_impossible_count(self, orders_data):
        codec = RowPageCodec(orders_data.schema)
        slices = {k: v[:10] for k, v in orders_data.columns.items()}
        page = codec.encode(0, slices)
        bad = corrupt_count(page, 100_000)
        with pytest.raises(PageFormatError):
            codec.decode(bad)

    def test_column_page_with_impossible_count(self):
        codec = ColumnPageCodec(
            build_codec(CodecSpec(kind=CodecKind.PACK, bits=8), IntType())
        )
        page = codec.encode(0, np.arange(10))
        bad = corrupt_count(page, 10**6)
        with pytest.raises(ReproError):
            codec.decode(bad)

    def test_truncated_page(self, orders_data):
        codec = RowPageCodec(orders_data.schema)
        slices = {k: v[:10] for k, v in orders_data.columns.items()}
        page = codec.encode(0, slices)
        with pytest.raises(PageFormatError):
            codec.decode(page[: DEFAULT_PAGE_SIZE // 2])

    def test_dictionary_code_out_of_range(self):
        spec = CodecSpec(kind=CodecKind.DICT, bits=4, dictionary=(10, 20, 30))
        codec = build_codec(spec, IntType())
        payload, state = codec.encode_page(np.array([10, 20, 30]))
        # Flip bits so a code exceeds the dictionary.
        tampered = bytes([0xFF]) + payload[1:]
        with pytest.raises(CompressionError):
            codec.decode_page(tampered, 3, state)

    def test_page_trailer_survives_payload_padding(self, orders_data):
        codec = RowPageCodec(orders_data.schema)
        slices = {k: v[:1] for k, v in orders_data.columns.items()}
        page = codec.encode(1234, slices)
        page_id, rows = codec.decode(page)
        assert page_id == 1234
        assert len(rows) == 1
        assert len(page) == DEFAULT_PAGE_SIZE
        # Trailer occupies the fixed tail offset.
        trailer = page[-PAGE_TRAILER_BYTES:]
        assert struct.unpack("<qq", trailer)[0] == 1234


class TestMalformedFiles:
    def test_mixed_page_sizes_rejected(self):
        file = PagedFile("t", page_size=256)
        file.append_page(b"\x00" * 256)
        with pytest.raises(StorageError):
            file.append_page(b"\x00" * 512)

    def test_scanning_respects_file_length(self):
        data = generate_orders(200, seed=1)
        table = load_table(data, Layout.COLUMN)
        custkey = table.column_file("O_CUSTKEY")
        with pytest.raises(StorageError):
            custkey.file.read_page(custkey.file.num_pages)


class TestErrorHierarchy:
    def test_all_errors_are_repro_errors(self):
        import repro.errors as errors

        for name in dir(errors):
            obj = getattr(errors, name)
            if isinstance(obj, type) and issubclass(obj, Exception):
                assert issubclass(obj, ReproError) or obj is ReproError

    def test_one_except_clause_suffices(self, orders_data):
        codec = RowPageCodec(orders_data.schema)
        try:
            codec.decode(b"nope")
        except ReproError:
            pass
        else:  # pragma: no cover
            pytest.fail("expected a ReproError")
