"""Seeded random generator of schemas, data, codec assignments, queries.

Everything a case contains is a pure function of its integer seed, so
any failure is replayable with ``python -m repro.testing --seed N``.
Each seed also *features* one codec kind (round-robin over the
registered kinds) and guarantees a compatible column carries it, so a
modest number of consecutive seeds covers the whole layout x codec
matrix deterministically.

Cases deliberately include the adversarial corners: empty tables,
single-row tables, constant columns, long runs, zipf skew, negative
domains, zero-selectivity and full-selectivity predicates, and
max-width text values.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace

import numpy as np

from repro.compression.base import CodecKind, CodecSpec
from repro.compression.registry import build_codec_for_values
from repro.data.generator import GeneratedTable
from repro.engine.predicate import ComparisonOp, Predicate
from repro.engine.query import AggregateFunction, AggregateSpec, ScanQuery
from repro.types.datatypes import FixedTextType, IntType
from repro.types.schema import Attribute, TableSchema

#: Codec kinds cycled through as each seed's featured kind.
FEATURED_KINDS = (
    CodecKind.NONE,
    CodecKind.PACK,
    CodecKind.DICT,
    CodecKind.FOR,
    CodecKind.FOR_DELTA,
    CodecKind.RLE,
)

#: Value distributions the integer-column generator draws from.
INT_DISTRIBUTIONS = (
    "uniform",
    "narrow",
    "zipf",
    "runs",
    "sorted",
    "constant",
    "negative",
)

_CASE_KINDS = ("scan", "scan", "scan", "aggregate", "aggregate", "join", "limit", "topn")

_WORD_CHARS = "abcdefghijklmnopqrstuvwxyz"


@dataclass
class GeneratedCase:
    """One seed-replayable differential test case."""

    seed: int
    kind: str
    page_size: int
    #: Plain (codec-free) tables by name; the harness applies
    #: ``codec_specs`` per layout.
    tables: dict[str, GeneratedTable]
    #: Full codec assignment, possibly including column-only kinds (RLE).
    codec_specs: dict[str, dict[str, CodecSpec]]
    #: The primary scan (the right/fact side for joins).
    query: ScanQuery
    aggregate: AggregateSpec | None = None
    sort_based: bool = False
    join_left_query: ScanQuery | None = None
    join_left_key: str | None = None
    join_right_key: str | None = None
    limit_count: int | None = None
    topn_key: str | None = None
    topn_count: int | None = None
    topn_descending: bool = False
    #: Parallel execution toggle: ``workers > 1`` additionally runs the
    #: case through :func:`repro.engine.parallel.parallel_query` with
    #: ``num_partitions`` row-range partitions and diffs that result
    #: against the oracle too.  Both are pure functions of the seed, so
    #: a failing parallel case replays with the same worker count.
    workers: int = 1
    num_partitions: int | None = None
    #: Governance knobs (see :mod:`repro.engine.governance`): a subset
    #: of cases runs with a generous deadline and/or a memory budget
    #: armed.  The budget is sized so reduced-width retries trigger on
    #: the bigger cases while the answer must still equal the oracle's;
    #: a typed :class:`~repro.errors.GovernanceError` is an acceptable
    #: outcome, anything untyped is a failure.
    deadline: float | None = None
    memory_budget: int | None = None
    #: Notes appended by the minimizer describing applied shrink steps.
    shrink_steps: list[str] = field(default_factory=list)
    #: Interleaved insert/delete/merge ops applied before the query
    #: (see :mod:`repro.testing.writes`).  Non-empty cases run the
    #: hybrid read/write differential battery instead of the plain
    #: matrix: every scanner architecture's hybrid scan, the scheduler
    #: (sharing on/off per ``sharing``), and a rebuilt-table leg must
    #: all equal the pure-Python :class:`~repro.testing.writes
    #: .WriteModel` oracle.
    write_ops: list = field(default_factory=list)
    #: Scheduler shared-scan toggle for the write-case scheduler leg.
    sharing: bool = False

    def describe(self) -> str:
        """One replayable human-readable summary."""
        table = self.tables[self.query.table]
        parts = [
            f"seed={self.seed} kind={self.kind} page_size={self.page_size}",
            f"table {self.query.table}: {table.num_rows} rows x "
            f"{len(table.schema)} attrs",
            "codecs: "
            + ", ".join(
                f"{t}.{a}={spec.kind.value}"
                for t, specs in sorted(self.codec_specs.items())
                for a, spec in specs.items()
                if spec.kind is not CodecKind.NONE
            ),
            f"query: {self.query.describe()}",
        ]
        if self.aggregate is not None:
            how = "sort" if self.sort_based else "hash"
            parts.append(
                f"aggregate[{how}]: {self.aggregate.function.value}"
                f"({self.aggregate.argument}) group by {self.aggregate.group_by}"
            )
        if self.join_left_query is not None:
            parts.append(
                f"join: {self.join_left_query.describe()} on "
                f"{self.join_left_key}={self.join_right_key}"
            )
        if self.limit_count is not None:
            parts.append(f"limit: {self.limit_count}")
        if self.topn_key is not None:
            direction = "desc" if self.topn_descending else "asc"
            parts.append(f"top-n: {self.topn_count} by {self.topn_key} {direction}")
        if self.workers > 1:
            parts.append(
                f"parallel: workers={self.workers} "
                f"partitions={self.num_partitions or self.workers}"
            )
        if self.deadline is not None or self.memory_budget is not None:
            parts.append(
                f"governance: deadline={self.deadline} "
                f"budget={self.memory_budget}"
            )
        if self.write_ops:
            parts.append(
                f"writes[sharing={'on' if self.sharing else 'off'}]: "
                + "; ".join(op.describe() for op in self.write_ops)
            )
        if self.shrink_steps:
            parts.append("shrunk: " + "; ".join(self.shrink_steps))
        return "\n  ".join(parts)


# --- column data ----------------------------------------------------------------


def _int_values(
    rng: random.Random, nprng: np.random.Generator, n: int, dist: str
) -> np.ndarray:
    if n == 0:
        return np.zeros(0, dtype=np.int64)
    if dist == "uniform":
        values = nprng.integers(0, 1_000_000, size=n)
    elif dist == "narrow":
        values = nprng.integers(0, rng.choice([2, 5, 16]), size=n)
    elif dist == "zipf":
        domain = np.arange(rng.choice([4, 16, 64]))
        weights = 1.0 / (domain + 1.0) ** 1.3
        values = nprng.choice(domain, size=n, p=weights / weights.sum())
    elif dist == "runs":
        run_length = rng.choice([2, 3, 8, 32])
        distinct = nprng.integers(0, 1000, size=max(1, n // run_length + 1))
        values = np.repeat(distinct, run_length)[:n]
    elif dist == "sorted":
        values = np.sort(nprng.integers(0, 100_000, size=n))
    elif dist == "constant":
        values = np.full(n, int(nprng.integers(-100, 100)))
    elif dist == "negative":
        values = nprng.integers(-5_000, 5_000, size=n)
    else:  # pragma: no cover - closed set
        raise ValueError(f"unknown distribution {dist!r}")
    return values.astype(np.int64)


def _text_values(
    rng: random.Random, nprng: np.random.Generator, n: int, width: int
) -> np.ndarray:
    if n == 0:
        return np.zeros(0, dtype=f"S{width}")
    pool_size = rng.choice([1, 3, 8, 24])
    pool = []
    for index in range(pool_size):
        # Cover the adversarial corners: empty strings and values at the
        # full field width.
        if index == 0 and rng.random() < 0.3:
            pool.append(b"")
        elif index == 1 and rng.random() < 0.5:
            pool.append("".join(rng.choice(_WORD_CHARS) for _ in range(width)).encode())
        else:
            length = rng.randint(1, width)
            pool.append("".join(rng.choice(_WORD_CHARS) for _ in range(length)).encode())
    pool_array = np.array(pool, dtype=f"S{width}")
    return pool_array[nprng.integers(0, len(pool_array), size=n)]


def _compatible_kinds(attr_type, values: np.ndarray) -> list[CodecKind]:
    """Codec kinds that can legally encode this column."""
    kinds = [CodecKind.NONE, CodecKind.DICT]
    if isinstance(attr_type, IntType):
        kinds += [CodecKind.FOR, CodecKind.FOR_DELTA, CodecKind.RLE]
        if values.size and int(values.min()) >= 0:
            kinds.append(CodecKind.PACK)
    elif isinstance(attr_type, FixedTextType):
        kinds.append(CodecKind.PACK)  # pad-byte suppression
    if values.size == 0:
        return [CodecKind.NONE]  # nothing to size a codec from
    return kinds


def _spec_for(kind: CodecKind, attr_type, values: np.ndarray) -> CodecSpec:
    codec = build_codec_for_values(kind, attr_type, values, page_capacity_hint=256)
    return codec.spec


def _make_table(
    rng: random.Random,
    nprng: np.random.Generator,
    name: str,
    num_rows: int,
    featured: CodecKind,
    extra_int_sorted: bool = False,
) -> tuple[GeneratedTable, dict[str, CodecSpec]]:
    """A random table plus a codec assignment honouring ``featured``."""
    num_int = rng.randint(1, 3)
    num_text = rng.randint(0, 2)
    attributes: list[Attribute] = []
    columns: dict[str, np.ndarray] = {}
    for index in range(num_int):
        attr_name = f"{name.lower()}_i{index}"
        dist = rng.choice(INT_DISTRIBUTIONS)
        if featured is CodecKind.PACK and index == 0 and dist == "negative":
            dist = "uniform"  # guarantee a PACK-compatible column
        if featured is CodecKind.RLE and index == 0 and dist in ("uniform", "negative"):
            dist = "runs"  # make the featured RLE column interesting
        values = _int_values(rng, nprng, num_rows, dist)
        if extra_int_sorted and index == 0:
            values = np.sort(values)
        attributes.append(Attribute(attr_name, IntType()))
        columns[attr_name] = values
    for index in range(num_text):
        width = rng.choice([4, 8, 12])
        attr_name = f"{name.lower()}_t{index}"
        attributes.append(Attribute(attr_name, FixedTextType(width)))
        columns[attr_name] = _text_values(rng, nprng, num_rows, width)
    schema = TableSchema(name=name, attributes=tuple(attributes))
    data = GeneratedTable(schema=schema, columns=columns)

    specs: dict[str, CodecSpec] = {}
    featured_placed = False
    for attr in schema:
        values = columns[attr.name]
        kinds = _compatible_kinds(attr.attr_type, values)
        if not featured_placed and featured in kinds:
            kind = featured
            featured_placed = True
        elif rng.random() < 0.35:
            kind = CodecKind.NONE
        else:
            kind = rng.choice(kinds)
        if kind is not CodecKind.NONE:
            specs[attr.name] = _spec_for(kind, attr.attr_type, values)
    return data, specs


# --- predicates and queries -----------------------------------------------------

_INT_OPS = tuple(ComparisonOp)
_TEXT_OPS = tuple(ComparisonOp)


def _predicate_for(
    rng: random.Random, data: GeneratedTable, attr: Attribute
) -> Predicate:
    values = data.columns[attr.name]
    if isinstance(attr.attr_type, IntType):
        op = rng.choice(_INT_OPS)
        if values.size and rng.random() < 0.7:
            constant = int(values[rng.randrange(values.size)])
            # Occasionally nudge off an existing value to hit gaps.
            if rng.random() < 0.3:
                constant += rng.choice([-1, 1])
        else:
            constant = rng.randint(-10, 1_000_000)
        return Predicate(attr.name, op, constant)
    op = rng.choice(_TEXT_OPS)
    if values.size:
        constant = bytes(values[rng.randrange(values.size)])
    else:
        constant = b"x"
    return Predicate(attr.name, op, constant)


def _scan_query(
    rng: random.Random,
    data: GeneratedTable,
    must_select: tuple[str, ...] = (),
    max_predicates: int = 3,
) -> ScanQuery:
    names = list(data.schema.attribute_names)
    k = rng.randint(1, len(names))
    select = list(must_select)
    for name in rng.sample(names, k):
        if name not in select:
            select.append(name)
    select = select[: max(len(must_select), k) or 1]
    if not select:
        select = [names[0]]
    predicates = tuple(
        _predicate_for(rng, data, data.schema.attribute(rng.choice(names)))
        for _ in range(rng.randint(0, max_predicates))
    )
    return ScanQuery(data.schema.name, select=tuple(select), predicates=predicates)


def _num_rows(rng: random.Random, allow_empty: bool = True) -> int:
    roll = rng.random()
    if allow_empty and roll < 0.04:
        return 0
    if roll < 0.12:
        return 1
    if roll < 0.5:
        return rng.randint(2, 40)
    return rng.randint(41, 150)


# --- case kinds -----------------------------------------------------------------


def _aggregate_case(rng: random.Random, case: GeneratedCase) -> GeneratedCase:
    data = case.tables[case.query.table]
    int_selected = [
        name
        for name in case.query.select
        if isinstance(data.schema.attribute(name).attr_type, IntType)
    ]
    function = rng.choice(tuple(AggregateFunction))
    if function is not AggregateFunction.COUNT and not int_selected:
        function = AggregateFunction.COUNT
    argument = rng.choice(int_selected) if function is not AggregateFunction.COUNT else None
    group_pool = [n for n in case.query.select if n != argument] or list(case.query.select)
    group_by = tuple(
        rng.sample(group_pool, min(len(group_pool), rng.randint(0, 2)))
    )
    sort_based = bool(group_by) and rng.random() < 0.4
    return replace(
        case,
        aggregate=AggregateSpec(group_by=group_by, function=function, argument=argument),
        sort_based=sort_based,
    )


def _join_case(
    rng: random.Random, nprng: np.random.Generator, seed: int, featured: CodecKind,
    page_size: int,
) -> GeneratedCase:
    dim_rows = max(1, _num_rows(rng, allow_empty=False) // 2)
    # Unique, sorted dimension keys with random gaps.
    keys = np.cumsum(nprng.integers(1, 4, size=dim_rows)).astype(np.int64)
    dim_data, dim_specs = _make_table(rng, nprng, "DIM", dim_rows, featured)
    key_attr = Attribute("dim_key", IntType())
    dim_schema = TableSchema(
        "DIM", attributes=(key_attr,) + dim_data.schema.attributes
    )
    dim_columns = {"dim_key": keys, **dim_data.columns}
    dim_data = GeneratedTable(schema=dim_schema, columns=dim_columns)

    fact_rows = _num_rows(rng, allow_empty=True)
    fact_data, fact_specs = _make_table(rng, nprng, "FCT", fact_rows, featured)
    # Sorted foreign keys; some may fall outside the dimension domain.
    fk_domain = np.concatenate([keys, keys.max() + np.arange(1, 4)]) if dim_rows else keys
    fks = np.sort(fk_domain[nprng.integers(0, len(fk_domain), size=fact_rows)])
    fact_schema = TableSchema(
        "FCT", attributes=(Attribute("fct_key", IntType()),) + fact_data.schema.attributes
    )
    fact_columns = {"fct_key": fks.astype(np.int64), **fact_data.columns}
    fact_data = GeneratedTable(schema=fact_schema, columns=fact_columns)

    if fact_rows:
        fact_specs = dict(fact_specs)
        fact_specs["fct_key"] = _spec_for(
            rng.choice([CodecKind.NONE, CodecKind.FOR_DELTA, CodecKind.RLE]),
            IntType(),
            fact_columns["fct_key"],
        )
    left_query = _scan_query(rng, dim_data, must_select=("dim_key",), max_predicates=1)
    right_query = _scan_query(rng, fact_data, must_select=("fct_key",), max_predicates=1)
    return GeneratedCase(
        seed=seed,
        kind="join",
        page_size=page_size,
        tables={"DIM": dim_data, "FCT": fact_data},
        codec_specs={"DIM": dim_specs, "FCT": fact_specs},
        query=right_query,
        join_left_query=left_query,
        join_left_key="dim_key",
        join_right_key="fct_key",
    )


def generate_case(seed: int, force_writes: bool = False) -> GeneratedCase:
    """The differential test case for one seed (pure function).

    With ``force_writes`` the case is always a plain scan and carries a
    seed-derived interleaving of insert/delete/merge ops (see
    :mod:`repro.testing.writes`); the op stream is drawn from an
    independent rng, so ``generate_case(seed)`` without writes is
    byte-identical to what it produced before writes existed.
    """
    rng = random.Random(seed)
    nprng = np.random.default_rng(seed)
    featured = FEATURED_KINDS[seed % len(FEATURED_KINDS)]
    kind = "scan" if force_writes else rng.choice(_CASE_KINDS)
    page_size = rng.choice([512, 1024, 4096])

    if kind == "join":
        return _join_case(rng, nprng, seed, featured, page_size)

    num_rows = _num_rows(rng)
    data, specs = _make_table(rng, nprng, "T", num_rows, featured)
    query = _scan_query(rng, data)
    case = GeneratedCase(
        seed=seed,
        kind=kind,
        page_size=page_size,
        tables={"T": data},
        codec_specs={"T": specs},
        query=query,
    )
    if kind == "aggregate":
        case = _aggregate_case(rng, case)
    elif kind == "limit":
        case = replace(case, limit_count=rng.randint(0, num_rows + 2))
    elif kind == "topn":
        case = replace(
            case,
            topn_key=rng.choice(query.select),
            topn_count=rng.randint(1, num_rows + 2),
            topn_descending=rng.random() < 0.5,
        )
    # About a third of non-join cases additionally exercise the
    # partitioned parallel executor; deliberately includes more
    # partitions than rows (empty partitions) and uneven splits.
    if rng.random() < 0.35:
        case = replace(
            case,
            workers=rng.choice([2, 3, 4]),
            num_partitions=rng.choice([1, 2, 3, 5, 7]),
        )
    # A slice of cases runs governed: the deadline is generous (it must
    # not fire on a healthy case), the budget ranges from narrow-retry
    # territory down to abort territory — the harness accepts a typed
    # GovernanceError and diffs everything else against the oracle.
    if rng.random() < 0.15:
        case = replace(case, deadline=rng.choice([5.0, 10.0, 30.0]))
    if rng.random() < 0.10:
        case = replace(
            case, memory_budget=rng.choice([4_096, 16_384, 262_144, 4_000_000])
        )
    if force_writes:
        from repro.testing.writes import generate_write_ops

        # Write cases isolate the hybrid read/write differential: no
        # governance knobs (covered by dedicated tests) and a
        # seed-derived sharing toggle for the scheduler leg.
        case = replace(
            case,
            deadline=None,
            memory_budget=None,
            write_ops=generate_write_ops(seed, data),
            sharing=bool(seed % 2),
        )
    return case
