"""Pull-based block-iterator operator interface (Section 2.2.3).

Each operator calls ``next()`` on its child and receives a block of
tuples (or ``None`` at end of stream).  Operators are agnostic about
the database schema and work on generic column dictionaries.
"""

from __future__ import annotations

import abc

from repro.engine.blocks import Block
from repro.engine.context import ExecutionContext
from repro.errors import CompressionError, EngineError, StorageError

#: What salvage mode treats as "this page is corrupt, skip it": checksum
#: mismatches, malformed page bytes, codec failures, missing pages, and
#: transient faults whose retry budget is exhausted.
SALVAGEABLE_ERRORS = (StorageError, CompressionError)


class Operator(abc.ABC):
    """One node of a query plan."""

    def __init__(self, context: ExecutionContext):
        self.context = context
        self._opened = False

    @property
    def events(self):
        return self.context.events

    def _salvage_decode(self, decode, file_name: str, page_index: int, row_span: int):
        """Run one page read+decode under the integrity policy.

        Strict mode lets any error propagate (a checksum mismatch aborts
        the query).  Salvage mode records the fault — with the page's
        nominal row span as the loss estimate — and returns ``None`` so
        the caller skips the page while keeping position accounting
        consistent.
        """
        try:
            result = decode()
        except SALVAGEABLE_ERRORS as exc:
            if self.context.strict_integrity:
                raise
            self.context.corruption.record(file_name, page_index, row_span, exc)
            return None
        self.context.corruption.pages_scanned += 1
        return result

    def open(self) -> None:
        """Prepare for iteration; children are opened first."""
        for child in self.children():
            child.open()
        self._open()
        self._opened = True

    def next(self) -> Block | None:
        """The next block of tuples, or ``None`` when exhausted."""
        if not self._opened:
            raise EngineError(f"{type(self).__name__}.next() before open()")
        block = self._next()
        if block is not None and len(block):
            self.events.blocks_produced += 1
        return block

    def close(self) -> None:
        """Release state; children are closed last."""
        self._close()
        for child in self.children():
            child.close()
        self._opened = False

    def children(self) -> list["Operator"]:
        """Child operators (empty for scanners)."""
        return []

    def _open(self) -> None:
        """Subclass hook."""

    @abc.abstractmethod
    def _next(self) -> Block | None:
        """Subclass hook: produce the next block."""

    def _close(self) -> None:
        """Subclass hook."""

    def drain(self) -> list[Block]:
        """Run the subtree to completion (open/next*/close)."""
        self.open()
        blocks = []
        while True:
            block = self.next()
            if block is None:
                break
            blocks.append(block)
        self.close()
        return blocks
