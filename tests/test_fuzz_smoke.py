"""Differential-fuzz quotas.

The smoke quota (200 seeded cases) always runs in tier-1; the deep
2,000-case sweep carries the ``fuzz`` marker and runs only under
``pytest --run-fuzz`` or ``make fuzz``.
"""

from __future__ import annotations

import pytest

from repro.storage.layout import Layout
from repro.testing.harness import COLUMN_ONLY_KINDS, CONFIGS, run_suite
from repro.testing.genquery import FEATURED_KINDS

SMOKE_CASES = 200
DEEP_CASES = 2_000


def _achievable_cells() -> set[tuple[str, str]]:
    cells = set()
    for config in CONFIGS:
        for kind in FEATURED_KINDS:
            if kind in COLUMN_ONLY_KINDS and config.layout is not Layout.COLUMN:
                continue
            cells.add((config.name, kind.value))
    return cells


def _assert_clean(report) -> None:
    assert report.ok, "\n" + report.format()
    missing = _achievable_cells() - report.coverage
    assert not missing, f"uncovered layout x codec cells: {sorted(missing)}"


def test_fuzz_smoke_quota():
    _assert_clean(run_suite(SMOKE_CASES, start_seed=0))


def test_fuzz_write_smoke_quota():
    """Hybrid read/write battery: 200 seeded interleaved-op cases."""
    report = run_suite(SMOKE_CASES, start_seed=0, force_writes=True)
    assert report.ok, "\n" + report.format()


@pytest.mark.fuzz
def test_fuzz_deep_sweep():
    _assert_clean(run_suite(DEEP_CASES, start_seed=0))


@pytest.mark.fuzz
def test_fuzz_deep_write_sweep():
    report = run_suite(DEEP_CASES, start_seed=0, force_writes=True)
    assert report.ok, "\n" + report.format()
