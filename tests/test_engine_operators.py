"""Aggregation, merge-join, and sort operator tests."""

import numpy as np
import pytest

from repro.data.tpch import generate_tpch_pair
from repro.engine.context import ExecutionContext
from repro.engine.executor import execute_plan, run_scan
from repro.engine.plan import aggregate_plan, merge_join_plan, scan_plan
from repro.engine.predicate import predicate_for_selectivity
from repro.engine.query import AggregateFunction, AggregateSpec, ScanQuery
from repro.errors import PlanError
from repro.storage.layout import Layout
from repro.storage.loader import load_table


def reference_groups(keys, values, function):
    out = {}
    for key, value in zip(keys, values):
        out.setdefault(key, []).append(int(value))
    if function == "sum":
        return {k: sum(v) for k, v in out.items()}
    if function == "min":
        return {k: min(v) for k, v in out.items()}
    if function == "max":
        return {k: max(v) for k, v in out.items()}
    if function == "count":
        return {k: len(v) for k, v in out.items()}
    raise AssertionError(function)


@pytest.fixture(scope="module")
def joined_pair():
    orders, lineitem = generate_tpch_pair(600, seed=21)
    return {
        "orders": orders,
        "lineitem": lineitem,
        "orders_col": load_table(orders, Layout.COLUMN),
        "orders_row": load_table(orders, Layout.ROW),
        "line_col": load_table(lineitem, Layout.COLUMN),
        "line_row": load_table(lineitem, Layout.ROW),
    }


class TestAggregates:
    @pytest.mark.parametrize(
        "function",
        [AggregateFunction.SUM, AggregateFunction.MIN, AggregateFunction.MAX],
    )
    def test_hash_aggregate_matches_reference(
        self, lineitem_data, lineitem_column, function
    ):
        query = ScanQuery(
            "LINEITEM", select=("L_RETURNFLAG", "L_QUANTITY")
        )
        spec = AggregateSpec(
            group_by=("L_RETURNFLAG",),
            function=function,
            argument="L_QUANTITY",
        )
        result = execute_plan(
            aggregate_plan(ExecutionContext(), lineitem_column, query, spec)
        )
        expected = reference_groups(
            lineitem_data.column("L_RETURNFLAG"),
            lineitem_data.column("L_QUANTITY"),
            function.value,
        )
        got = dict(
            zip(result.column("L_RETURNFLAG"), result.column(f"{function.value}_L_QUANTITY"))
        )
        assert got == expected

    def test_count(self, lineitem_data, lineitem_row):
        query = ScanQuery("LINEITEM", select=("L_SHIPMODE",))
        spec = AggregateSpec(group_by=("L_SHIPMODE",), function=AggregateFunction.COUNT)
        result = execute_plan(
            aggregate_plan(ExecutionContext(), lineitem_row, query, spec)
        )
        expected = reference_groups(
            lineitem_data.column("L_SHIPMODE"),
            np.zeros(lineitem_data.num_rows),
            "count",
        )
        got = dict(zip(result.column("L_SHIPMODE"), result.column("count")))
        assert got == expected

    def test_avg(self, lineitem_data, lineitem_column):
        query = ScanQuery("LINEITEM", select=("L_RETURNFLAG", "L_QUANTITY"))
        spec = AggregateSpec(
            group_by=("L_RETURNFLAG",),
            function=AggregateFunction.AVG,
            argument="L_QUANTITY",
        )
        result = execute_plan(
            aggregate_plan(ExecutionContext(), lineitem_column, query, spec)
        )
        sums = reference_groups(
            lineitem_data.column("L_RETURNFLAG"),
            lineitem_data.column("L_QUANTITY"),
            "sum",
        )
        counts = reference_groups(
            lineitem_data.column("L_RETURNFLAG"),
            lineitem_data.column("L_QUANTITY"),
            "count",
        )
        got = dict(zip(result.column("L_RETURNFLAG"), result.column("avg_L_QUANTITY")))
        for key, value in got.items():
            assert value == pytest.approx(sums[key] / counts[key])

    def test_grouped_by_two_keys(self, lineitem_data, lineitem_column):
        query = ScanQuery(
            "LINEITEM",
            select=("L_RETURNFLAG", "L_LINESTATUS", "L_QUANTITY"),
        )
        spec = AggregateSpec(
            group_by=("L_RETURNFLAG", "L_LINESTATUS"),
            function=AggregateFunction.SUM,
            argument="L_QUANTITY",
        )
        result = execute_plan(
            aggregate_plan(ExecutionContext(), lineitem_column, query, spec)
        )
        expected = {}
        for f, s, q in zip(
            lineitem_data.column("L_RETURNFLAG"),
            lineitem_data.column("L_LINESTATUS"),
            lineitem_data.column("L_QUANTITY"),
        ):
            expected[(f, s)] = expected.get((f, s), 0) + int(q)
        got = dict(
            zip(
                zip(result.column("L_RETURNFLAG"), result.column("L_LINESTATUS")),
                result.column("sum_L_QUANTITY"),
            )
        )
        assert {k: int(v) for k, v in got.items()} == expected

    def test_sort_based_equals_hash_based(self, lineitem_data, lineitem_column):
        query = ScanQuery("LINEITEM", select=("L_SHIPMODE", "L_QUANTITY"))
        spec = AggregateSpec(
            group_by=("L_SHIPMODE",),
            function=AggregateFunction.SUM,
            argument="L_QUANTITY",
        )
        hash_result = execute_plan(
            aggregate_plan(ExecutionContext(), lineitem_column, query, spec)
        )
        sort_result = execute_plan(
            aggregate_plan(
                ExecutionContext(), lineitem_column, query, spec, sort_based=True
            )
        )
        a = dict(zip(hash_result.column("L_SHIPMODE"), hash_result.column("sum_L_QUANTITY")))
        b = dict(zip(sort_result.column("L_SHIPMODE"), sort_result.column("sum_L_QUANTITY")))
        assert a == b

    def test_aggregate_with_predicate(self, orders_data, orders_column):
        predicate = predicate_for_selectivity(
            "O_ORDERDATE", orders_data.column("O_ORDERDATE"), 0.25
        )
        query = ScanQuery(
            "ORDERS",
            select=("O_ORDERDATE", "O_ORDERSTATUS", "O_TOTALPRICE"),
            predicates=(predicate,),
        )
        spec = AggregateSpec(
            group_by=("O_ORDERSTATUS",),
            function=AggregateFunction.SUM,
            argument="O_TOTALPRICE",
        )
        result = execute_plan(
            aggregate_plan(ExecutionContext(), orders_column, query, spec)
        )
        mask = predicate.evaluate(orders_data.column("O_ORDERDATE"))
        expected = reference_groups(
            orders_data.column("O_ORDERSTATUS")[mask],
            orders_data.column("O_TOTALPRICE")[mask],
            "sum",
        )
        got = dict(
            zip(result.column("O_ORDERSTATUS"), result.column("sum_O_TOTALPRICE"))
        )
        assert got == expected

    def test_missing_argument_attribute_rejected(self, orders_column):
        query = ScanQuery("ORDERS", select=("O_ORDERSTATUS",))
        spec = AggregateSpec(
            group_by=("O_ORDERSTATUS",),
            function=AggregateFunction.SUM,
            argument="O_TOTALPRICE",
        )
        with pytest.raises(PlanError):
            aggregate_plan(ExecutionContext(), orders_column, query, spec)

    def test_spec_requires_argument(self):
        with pytest.raises(PlanError):
            AggregateSpec(group_by=("a",), function=AggregateFunction.SUM)

    def test_agg_events_counted(self, lineitem_column):
        context = ExecutionContext()
        query = ScanQuery("LINEITEM", select=("L_RETURNFLAG", "L_QUANTITY"))
        spec = AggregateSpec(
            group_by=("L_RETURNFLAG",),
            function=AggregateFunction.SUM,
            argument="L_QUANTITY",
        )
        execute_plan(aggregate_plan(context, lineitem_column, query, spec))
        assert context.events.agg_updates == lineitem_column.num_rows
        assert context.events.group_lookups == lineitem_column.num_rows


class TestMergeJoin:
    def test_one_to_many_join(self, joined_pair):
        context = ExecutionContext()
        plan = merge_join_plan(
            context,
            joined_pair["orders_col"],
            ScanQuery("ORDERS", select=("O_ORDERKEY", "O_CUSTKEY")),
            joined_pair["line_col"],
            ScanQuery("LINEITEM", select=("L_ORDERKEY", "L_QUANTITY")),
            left_key="O_ORDERKEY",
            right_key="L_ORDERKEY",
        )
        result = execute_plan(plan)
        lineitem = joined_pair["lineitem"]
        assert result.num_tuples == lineitem.num_rows
        np.testing.assert_array_equal(
            result.column("L_ORDERKEY"), result.column("O_ORDERKEY")
        )
        # Join carried the correct customer for each line item.
        orders = joined_pair["orders"]
        cust_of = dict(zip(orders.column("O_ORDERKEY"), orders.column("O_CUSTKEY")))
        expected = np.array(
            [cust_of[k] for k in lineitem.column("L_ORDERKEY")], dtype=np.int64
        )
        np.testing.assert_array_equal(result.column("O_CUSTKEY"), expected)

    def test_row_and_column_joins_agree(self, joined_pair):
        results = []
        for kind in ("row", "col"):
            plan = merge_join_plan(
                ExecutionContext(),
                joined_pair[f"orders_{kind}"],
                ScanQuery("ORDERS", select=("O_ORDERKEY", "O_TOTALPRICE")),
                joined_pair[f"line_{kind}"],
                ScanQuery("LINEITEM", select=("L_ORDERKEY", "L_EXTENDEDPRICE")),
                left_key="O_ORDERKEY",
                right_key="L_ORDERKEY",
            )
            results.append(execute_plan(plan))
        np.testing.assert_array_equal(
            results[0].column("O_TOTALPRICE"), results[1].column("O_TOTALPRICE")
        )

    def test_join_key_must_be_selected(self, joined_pair):
        with pytest.raises(PlanError):
            merge_join_plan(
                ExecutionContext(),
                joined_pair["orders_col"],
                ScanQuery("ORDERS", select=("O_CUSTKEY",)),
                joined_pair["line_col"],
                ScanQuery("LINEITEM", select=("L_ORDERKEY",)),
                left_key="O_ORDERKEY",
                right_key="L_ORDERKEY",
            )

    def test_comparisons_counted(self, joined_pair):
        context = ExecutionContext()
        plan = merge_join_plan(
            context,
            joined_pair["orders_col"],
            ScanQuery("ORDERS", select=("O_ORDERKEY",)),
            joined_pair["line_col"],
            ScanQuery("LINEITEM", select=("L_ORDERKEY",)),
            left_key="O_ORDERKEY",
            right_key="L_ORDERKEY",
        )
        execute_plan(plan)
        orders = joined_pair["orders"]
        lineitem = joined_pair["lineitem"]
        assert (
            context.events.join_comparisons
            == orders.num_rows + lineitem.num_rows
        )


class TestSort:
    def test_sort_operator(self, orders_data, orders_column):
        from repro.engine.operators.sort import SortOperator

        context = ExecutionContext()
        scan = scan_plan(
            context,
            orders_column,
            ScanQuery("ORDERS", select=("O_CUSTKEY", "O_TOTALPRICE")),
        )
        plan = SortOperator(context, scan, key="O_TOTALPRICE")
        result = execute_plan(plan)
        prices = result.column("O_TOTALPRICE")
        assert (np.diff(prices) >= 0).all()
        assert context.events.sort_comparisons > orders_data.num_rows

    def test_sort_descending(self, orders_data, orders_column):
        from repro.engine.operators.sort import SortOperator

        context = ExecutionContext()
        scan = scan_plan(
            context, orders_column, ScanQuery("ORDERS", select=("O_TOTALPRICE",))
        )
        plan = SortOperator(context, scan, key="O_TOTALPRICE", descending=True)
        result = execute_plan(plan)
        assert (np.diff(result.column("O_TOTALPRICE")) <= 0).all()
