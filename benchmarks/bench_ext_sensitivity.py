"""Robustness bench — the conclusions survive 2x miscalibration."""

from _common import BENCH_ROWS, publish, run_once

from repro.experiments.figures import sensitivity


def bench_calibration_sensitivity(benchmark):
    out = run_once(benchmark, lambda: sensitivity.run(num_rows=BENCH_ROWS))
    publish(out, "ext_sensitivity.txt")

    assert all(v == 1.0 for v in out.series["claim1"])
    assert all(v == 1.0 for v in out.series["claim2"])
    # The 50%-projection speedup stays comfortably above 1 throughout.
    assert min(out.series["speedup"]) > 2.0
