"""Extension bench — the conclusion's hardware-trend claim.

"Current architectural trends suggest column stores ... will become an
even more attractive architecture with time."
"""

from _common import publish, run_once

from repro.experiments.report import ExperimentOutput, FigureResult
from repro.model.params import QueryShape
from repro.model.trends import (
    columns_more_attractive_over_time,
    speedup_trajectory,
)

YEARS = (1995, 2000, 2005, 2010, 2015, 2020, 2025)


def run_trend() -> ExperimentOutput:
    shape = QueryShape(
        tuple_width=32.0,
        selected_bytes=16.0,
        selectivity=0.10,
        num_attributes=8,
        selected_attributes=4,
    )
    table = FigureResult(
        title="Projected cpdb and column speedup (50% projection, 32 B tuples)",
        headers=["year", "cpdb", "speedup"],
    )
    points = speedup_trajectory(shape, list(YEARS))
    series = {"speedup": [], "cpdb": []}
    for point in points:
        table.add_row(point.year, round(point.cpdb, 1), round(point.speedup, 2))
        series["speedup"].append(point.speedup)
        series["cpdb"].append(point.cpdb)
    output = ExperimentOutput(
        name="Extension: hardware-trend projection", tables=[table], series=series
    )
    output.series["monotone"] = [
        1.0 if columns_more_attractive_over_time(points) else 0.0
    ]
    return output


def bench_hardware_trends(benchmark):
    out = run_once(benchmark, run_trend)
    publish(out, "ext_trends.txt")
    assert out.series["monotone"][0] == 1.0
    assert out.series["speedup"][-1] > out.series["speedup"][0]
