"""Differential-testing oracle for the query engine.

The paper's core engineering claim is that the row, column (pipelined
and fused), and PAX scanners sit under an *identical* operator layer and
therefore must return identical answers for any query.  This package
turns that claim into an executable oracle:

* :mod:`repro.testing.oracle` — a deliberately naive pure-Python
  reference executor (plain tuples, ``itertools``-level evaluation, no
  blocks, no codecs in the result path) that serves as ground truth;
* :mod:`repro.testing.genquery` — a seeded random generator of schemas,
  data distributions, codec assignments, and queries;
* :mod:`repro.testing.harness` — runs each generated case through every
  layout x codec configuration plus the oracle, diffs the results, and
  on mismatch emits a minimized, seed-replayable repro command.

Run it as ``python -m repro.testing --cases 2000`` (or ``make fuzz``);
replay one failing case with ``python -m repro.testing --seed N``.
"""

from repro.testing.genquery import GeneratedCase, generate_case
from repro.testing.harness import (
    CaseOutcome,
    SuiteReport,
    minimize_case,
    run_case,
    run_suite,
)
from repro.testing.oracle import (
    OracleResult,
    oracle_aggregate,
    oracle_limit,
    oracle_merge_join,
    oracle_scan,
    oracle_topn,
)

__all__ = [
    "CaseOutcome",
    "GeneratedCase",
    "OracleResult",
    "SuiteReport",
    "generate_case",
    "minimize_case",
    "oracle_aggregate",
    "oracle_limit",
    "oracle_merge_join",
    "oracle_scan",
    "oracle_topn",
    "run_case",
    "run_suite",
]
