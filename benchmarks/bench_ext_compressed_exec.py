"""Extension bench — operating directly on compressed data."""

from _common import BENCH_ROWS, publish, run_once

from repro.experiments.figures import compressed_execution


def bench_compressed_execution(benchmark):
    out = run_once(
        benchmark, lambda: compressed_execution.run(num_rows=BENCH_ROWS)
    )
    publish(out, "ext_compressed_execution.txt")

    decoded = out.series["decoded"]
    on_codes = out.series["on_codes"]
    projected = out.series["projected"]
    # Where the predicate column is not projected, running on codes
    # must be a strict CPU win.
    for d, c, p in zip(decoded, on_codes, projected):
        if p == 0.0:
            assert c < d
