"""Row and column tables: schema + paged files.

A :class:`RowTable` stores the whole relation in one file of row pages;
a :class:`ColumnTable` stores one file of column pages per attribute
(Figure 3).  Both expose the file-size arithmetic the I/O simulator
needs to model paper-scale scans without materializing paper-scale data.
"""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass

import numpy as np

from repro.compression.registry import build_codec
from repro.errors import SchemaError, StorageError
from repro.storage.layout import Layout
from repro.storage.page import DEFAULT_PAGE_SIZE, ColumnPageCodec, RowPageCodec
from repro.storage.pagefile import PagedFile
from repro.storage.rowz import CompressedRowPageCodec, schema_is_compressed
from repro.types.schema import TableSchema


def make_row_page_codec(
    schema: TableSchema, page_size: int = DEFAULT_PAGE_SIZE
) -> "RowPageCodec | CompressedRowPageCodec":
    """Pick the plain or bit-packed row page codec for a schema."""
    if schema_is_compressed(schema):
        return CompressedRowPageCodec(schema, page_size)
    return RowPageCodec(schema, page_size)


class Table(abc.ABC):
    """Common interface for the two physical layouts."""

    def __init__(self, schema: TableSchema, num_rows: int, page_size: int):
        self.schema = schema
        self.num_rows = num_rows
        self.page_size = page_size

    @property
    @abc.abstractmethod
    def layout(self) -> Layout:
        """Physical layout of this table."""

    @property
    @abc.abstractmethod
    def total_bytes(self) -> int:
        """Total on-disk size of the materialized table."""

    @abc.abstractmethod
    def file_sizes_for(self, attrs: list[str], cardinality: int | None = None) -> dict[str, int]:
        """Bytes that a scan selecting ``attrs`` must read, per file.

        ``cardinality`` overrides the materialized row count so the I/O
        simulator can be driven at paper scale (60 M rows) while the
        engine executes on a small materialized table.
        """

    @abc.abstractmethod
    def read_column(self, name: str) -> np.ndarray:
        """Materialize one full column (testing/verification path)."""

    def columns_dict(self) -> dict[str, np.ndarray]:
        """Materialize every column (testing/verification path)."""
        return {name: self.read_column(name) for name in self.schema.attribute_names}


class RowTable(Table):
    """One file of dense row pages."""

    def __init__(
        self,
        schema: TableSchema,
        file: PagedFile,
        num_rows: int,
        page_size: int = DEFAULT_PAGE_SIZE,
    ):
        super().__init__(schema, num_rows, page_size)
        self.file = file
        self.page_codec = make_row_page_codec(schema, page_size)

    @property
    def layout(self) -> Layout:
        return Layout.ROW

    @property
    def total_bytes(self) -> int:
        return self.file.size_bytes

    @property
    def row_stride(self) -> int:
        return self.page_codec.stride

    def pages_for_rows(self, cardinality: int) -> int:
        return math.ceil(cardinality / self.page_codec.tuples_per_page)

    def row_span_of_page(self, page_id: int) -> int:
        """Rows one page covers (corruption accounting; see ColumnFile)."""
        capacity = self.page_codec.tuples_per_page
        return max(0, min(capacity, self.num_rows - page_id * capacity))

    def file_sizes_for(self, attrs: list[str], cardinality: int | None = None) -> dict[str, int]:
        for name in attrs:
            self.schema.attribute(name)  # raises SchemaError when unknown
        rows = self.num_rows if cardinality is None else cardinality
        return {self.schema.name: self.pages_for_rows(rows) * self.page_size}

    def read_column(self, name: str) -> np.ndarray:
        self.schema.attribute(name)
        chunks = []
        for page in self.file.iter_pages():
            _page_id, _count, columns = self.page_codec.decode_columns(page)
            chunks.append(columns[name])
        if not chunks:
            attr = self.schema.attribute(name)
            return np.zeros(0, dtype=attr.attr_type.numpy_dtype())
        return np.concatenate(chunks)


@dataclass
class ColumnFile:
    """One column's paged file plus its page codec.

    Variable-capacity codecs (RLE) carry a *page directory*:
    ``first_rows[i]`` is the global row id of page ``i``'s first value,
    so positional lookups stay O(log pages) regardless of how the data
    compressed.
    """

    name: str
    file: PagedFile
    page_codec: ColumnPageCodec
    first_rows: np.ndarray | None = None
    #: Measured average stored bits per value (variable codecs only);
    #: drives paper-scale size extrapolation.
    effective_bits: float | None = None

    @property
    def values_per_page(self) -> int:
        return self.page_codec.values_per_page

    @property
    def is_variable(self) -> bool:
        return self.page_codec.codec.is_variable

    def page_of_positions(self, positions: np.ndarray) -> np.ndarray:
        """Page index containing each global row position."""
        if self.first_rows is None:
            return positions // self.values_per_page
        return (
            np.searchsorted(self.first_rows, positions, side="right") - 1
        ).astype(np.int64)

    def first_row_of_page(self, page_id: int) -> int:
        """Global row id of a page's first value."""
        if self.first_rows is None:
            return page_id * self.values_per_page
        return int(self.first_rows[page_id])

    def row_span_of_page(self, page_id: int, num_rows: int) -> int:
        """How many of the table's rows one page covers.

        Used by salvage scans and :mod:`repro.storage.scrub` to estimate
        the rows lost with an undecodable page without trusting its
        (possibly corrupt) entry count.
        """
        start = self.first_row_of_page(page_id)
        if self.first_rows is not None:
            if page_id + 1 < len(self.first_rows):
                end = int(self.first_rows[page_id + 1])
            else:
                end = num_rows
        else:
            end = min(num_rows, start + self.values_per_page)
        return max(0, end - start)


class ColumnTable(Table):
    """One file of dense column pages per attribute."""

    def __init__(
        self,
        schema: TableSchema,
        column_files: dict[str, ColumnFile],
        num_rows: int,
        page_size: int = DEFAULT_PAGE_SIZE,
    ):
        super().__init__(schema, num_rows, page_size)
        missing = set(schema.attribute_names) - set(column_files)
        if missing:
            raise StorageError(f"missing column files: {sorted(missing)}")
        self.column_files = column_files

    @property
    def layout(self) -> Layout:
        return Layout.COLUMN

    @property
    def total_bytes(self) -> int:
        return sum(cf.file.size_bytes for cf in self.column_files.values())

    def column_file(self, name: str) -> ColumnFile:
        if name not in self.column_files:
            raise SchemaError(f"no column {name!r} in table {self.schema.name!r}")
        return self.column_files[name]

    def pages_for_rows(self, name: str, cardinality: int) -> int:
        column_file = self.column_file(name)
        if column_file.is_variable and column_file.effective_bits is not None:
            # Variable-capacity codecs: extrapolate from the measured
            # stored-bits-per-value density.
            from repro.storage.page import page_payload_bytes

            payload_bits = page_payload_bytes(self.page_size) * 8
            total_bits = cardinality * column_file.effective_bits
            return max(1, math.ceil(total_bits / payload_bits))
        return math.ceil(cardinality / column_file.values_per_page)

    def file_sizes_for(self, attrs: list[str], cardinality: int | None = None) -> dict[str, int]:
        rows = self.num_rows if cardinality is None else cardinality
        return {
            name: self.pages_for_rows(name, rows) * self.page_size
            for name in attrs
        }

    def read_column(self, name: str) -> np.ndarray:
        column_file = self.column_file(name)
        chunks = []
        for page in column_file.file.iter_pages():
            _page_id, values = column_file.page_codec.decode(page)
            chunks.append(values)
        if not chunks:
            attr = self.schema.attribute(name)
            return np.zeros(0, dtype=attr.attr_type.numpy_dtype())
        return np.concatenate(chunks)


class PaxTable(Table):
    """One file of PAX pages: row-store I/O, minipage-grouped contents."""

    def __init__(
        self,
        schema: TableSchema,
        file: PagedFile,
        num_rows: int,
        page_size: int = DEFAULT_PAGE_SIZE,
    ):
        super().__init__(schema, num_rows, page_size)
        self.file = file
        from repro.storage.pax import PaxPageCodec

        self.page_codec = PaxPageCodec(schema, page_size)

    @property
    def layout(self) -> Layout:
        return Layout.PAX

    @property
    def total_bytes(self) -> int:
        return self.file.size_bytes

    def pages_for_rows(self, cardinality: int) -> int:
        return math.ceil(cardinality / self.page_codec.tuples_per_page)

    def row_span_of_page(self, page_id: int) -> int:
        """Rows one page covers (corruption accounting; see ColumnFile)."""
        capacity = self.page_codec.tuples_per_page
        return max(0, min(capacity, self.num_rows - page_id * capacity))

    def file_sizes_for(self, attrs: list[str], cardinality: int | None = None) -> dict[str, int]:
        # PAX does not change what a page contains, so a scan reads the
        # whole file no matter the projection — exactly like a row store.
        for name in attrs:
            self.schema.attribute(name)
        rows = self.num_rows if cardinality is None else cardinality
        return {self.schema.name: self.pages_for_rows(rows) * self.page_size}

    def read_column(self, name: str) -> np.ndarray:
        self.schema.attribute(name)
        chunks = []
        for page in self.file.iter_pages():
            _page_id, _count, values = self.page_codec.decode_attribute(page, name)
            chunks.append(values)
        if not chunks:
            attr = self.schema.attribute(name)
            return np.zeros(0, dtype=attr.attr_type.numpy_dtype())
        return np.concatenate(chunks)


def build_column_file(
    schema: TableSchema, name: str, page_size: int = DEFAULT_PAGE_SIZE
) -> ColumnFile:
    """An empty column file with its codec built from the schema spec."""
    attr = schema.attribute(name)
    codec = build_codec(attr.spec, attr.attr_type)
    page_codec = ColumnPageCodec(codec, page_size)
    file = PagedFile(f"{schema.name}.{name}", page_size=page_size)
    return ColumnFile(name=name, file=file, page_codec=page_codec)
