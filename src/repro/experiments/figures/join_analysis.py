"""Extension — merge-join analysis (the eq. 2 multi-file case).

Section 5's disk-rate equation weights each file's rate by its size
("in the case of a merge-join, if File1 is 1 GB and File2 is 10 GB,
then the disks process on average one byte from File1 for every ten
bytes from File2").  This experiment runs the ORDERS ⋈ LINEITEM merge
join on both layouts, sweeping the fact-table projection, and checks
the simulated disk rate against that weighting.
"""

from __future__ import annotations

from repro.data.tpch import generate_tpch_pair
from repro.engine.query import ScanQuery
from repro.experiments.config import DEFAULT_EXECUTED_ROWS, ExperimentConfig
from repro.experiments.report import ExperimentOutput, FigureResult
from repro.experiments.runner import measure_join
from repro.model.params import HardwareParams
from repro.model.rates import disk_rate_row
from repro.storage.layout import Layout
from repro.storage.loader import load_table

_FACT_SELECTS = (
    ("L_ORDERKEY", "L_EXTENDEDPRICE"),
    ("L_ORDERKEY", "L_EXTENDEDPRICE", "L_QUANTITY", "L_DISCOUNT"),
    None,  # all attributes
)


def run(
    num_rows: int = DEFAULT_EXECUTED_ROWS,
    config: ExperimentConfig | None = None,
) -> ExperimentOutput:
    """Measure the join under both layouts and validate eq. 2."""
    config = config or ExperimentConfig()
    orders, lineitem = generate_tpch_pair(max(num_rows // 4, 50), seed=13)
    tables = {
        layout: (load_table(orders, layout), load_table(lineitem, layout))
        for layout in (Layout.ROW, Layout.COLUMN)
    }
    orders_query = ScanQuery("ORDERS", select=("O_ORDERKEY", "O_ORDERPRIORITY"))

    table = FigureResult(
        title="ORDERS x LINEITEM merge join (60M orders, ~4 line items each)",
        headers=[
            "fact attrs",
            "row elapsed (s)",
            "col elapsed (s)",
            "row GB read",
            "col GB read",
            "speedup",
        ],
    )
    series: dict[str, list[float]] = {
        "row_elapsed": [],
        "col_elapsed": [],
        "speedup": [],
    }
    for select in _FACT_SELECTS:
        fact_select = select or lineitem.schema.attribute_names
        lineitem_query = ScanQuery("LINEITEM", select=tuple(fact_select))
        measurements = {}
        for layout, (orders_table, lineitem_table) in tables.items():
            measurements[layout] = measure_join(
                orders_table,
                orders_query,
                lineitem_table,
                lineitem_query,
                left_key="O_ORDERKEY",
                right_key="L_ORDERKEY",
                config=config,
            )
        row = measurements[Layout.ROW]
        col = measurements[Layout.COLUMN]
        speedup = row.elapsed / col.elapsed
        table.add_row(
            len(fact_select),
            round(row.elapsed, 1),
            round(col.elapsed, 1),
            round(row.bytes_read / 1e9, 2),
            round(col.bytes_read / 1e9, 2),
            round(speedup, 2),
        )
        series["row_elapsed"].append(row.elapsed)
        series["col_elapsed"].append(col.elapsed)
        series["speedup"].append(speedup)

    # eq. 2 check for the row layout: predicted tuples/sec from the
    # weighted file rates vs the simulated run.
    row_full = measure_join(
        tables[Layout.ROW][0],
        orders_query,
        tables[Layout.ROW][1],
        ScanQuery("LINEITEM", select=lineitem.schema.attribute_names),
        left_key="O_ORDERKEY",
        right_key="L_ORDERKEY",
        config=config,
    )
    hardware = HardwareParams.from_calibration(config.calibration)
    predicted_rate = disk_rate_row(
        hardware,
        [
            (row_full.left_cardinality, orders.schema.row_stride),
            (row_full.right_cardinality, lineitem.schema.row_stride),
        ],
    )
    total_tuples = row_full.left_cardinality + row_full.right_cardinality
    measured_rate = total_tuples / row_full.io_elapsed
    check = FigureResult(
        title="Equation 2 validation (row layout, full projection)",
        headers=["quantity", "tuples/sec"],
    )
    check.add_row("predicted (weighted file rates)", f"{predicted_rate:,.0f}")
    check.add_row("simulated", f"{measured_rate:,.0f}")
    series["eq2_predicted"] = [predicted_rate]
    series["eq2_measured"] = [measured_rate]
    return ExperimentOutput(
        name="Extension: merge-join analysis",
        tables=[table, check],
        series=series,
    )
