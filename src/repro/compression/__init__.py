"""Light-weight, fixed-width compression schemes (Section 2.2.1).

The paper studies three database-specific compression techniques that
yield the same compression ratio for row and column data and produce
fixed-length compressed values:

* **Bit packing** (null suppression) — :mod:`repro.compression.bitpack`
* **Dictionary** (+ bit packing of the codes) —
  :mod:`repro.compression.dictionary`
* **FOR / FOR-delta** (frame of reference) — :mod:`repro.compression.frame`

Uncompressed storage is modelled by :mod:`repro.compression.identity` so
that every column goes through the same codec interface.
"""

from repro.compression.advisor import CompressionAdvisor, choose_spec
from repro.compression.base import Codec, CodecKind, CodecSpec, PageCodecState
from repro.compression.bitpack import BitPackCodec, pack_bits, unpack_bits
from repro.compression.dictionary import DictionaryCodec
from repro.compression.frame import ForCodec, ForDeltaCodec
from repro.compression.identity import IdentityCodec
from repro.compression.registry import build_codec, build_codec_for_values
from repro.compression.rle import RleCodec, find_runs
from repro.compression.textpack import TextPackCodec

__all__ = [
    "Codec",
    "CodecKind",
    "CodecSpec",
    "PageCodecState",
    "BitPackCodec",
    "DictionaryCodec",
    "ForCodec",
    "ForDeltaCodec",
    "IdentityCodec",
    "RleCodec",
    "find_runs",
    "TextPackCodec",
    "CompressionAdvisor",
    "choose_spec",
    "build_codec",
    "build_codec_for_values",
    "pack_bits",
    "unpack_bits",
]
