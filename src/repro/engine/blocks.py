"""Tuple blocks passed between operators.

A block is an array of tuples in columnar form (one numpy array per
attribute) plus the global positions (Record IDs) of those tuples.  The
paper sizes blocks to fit the 16 KB L1 data cache and uses 100-tuple
blocks throughout; blocks are reused between operators, so block
traffic never shows up as L2 memory pressure.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import EngineError

DEFAULT_BLOCK_SIZE = 100


@dataclass
class Block:
    """One block of tuples in flight between operators."""

    columns: dict[str, np.ndarray]
    positions: np.ndarray

    def __post_init__(self) -> None:
        count = len(self.positions)
        for name, column in self.columns.items():
            if len(column) != count:
                raise EngineError(
                    f"column {name!r} has {len(column)} values for "
                    f"{count} positions"
                )

    def __len__(self) -> int:
        return len(self.positions)

    @property
    def attribute_names(self) -> list[str]:
        return list(self.columns)

    def column(self, name: str) -> np.ndarray:
        if name not in self.columns:
            raise EngineError(f"no column {name!r} in block ({self.attribute_names})")
        return self.columns[name]

    def with_column(self, name: str, values: np.ndarray) -> "Block":
        """A block with one more attribute attached (no copy of others)."""
        if len(values) != len(self):
            raise EngineError(
                f"attaching {len(values)} values to a {len(self)}-tuple block"
            )
        columns = dict(self.columns)
        columns[name] = values
        return Block(columns=columns, positions=self.positions)

    def take(self, mask: np.ndarray) -> "Block":
        """The sub-block of tuples where ``mask`` is true."""
        return Block(
            columns={name: col[mask] for name, col in self.columns.items()},
            positions=self.positions[mask],
        )

    def rows(self) -> list[tuple]:
        """Tuples in attribute order (testing convenience)."""
        names = self.attribute_names
        return [
            tuple(self.columns[name][i] for name in names)
            for i in range(len(self))
        ]


def concat_blocks(blocks: list[Block]) -> Block:
    """Concatenate blocks that share the same attributes."""
    if not blocks:
        return Block(columns={}, positions=np.zeros(0, dtype=np.int64))
    names = blocks[0].attribute_names
    for block in blocks[1:]:
        if block.attribute_names != names:
            raise EngineError(
                f"cannot concat blocks with attributes {block.attribute_names} "
                f"and {names}"
            )
    return Block(
        columns={
            name: np.concatenate([b.columns[name] for b in blocks])
            for name in names
        },
        positions=np.concatenate([b.positions for b in blocks]),
    )


def split_into_blocks(block: Block, block_size: int) -> list[Block]:
    """Split a large block into engine-sized blocks."""
    if block_size <= 0:
        raise EngineError(f"block size must be positive: {block_size}")
    if len(block) == 0:
        # Preserve the (empty) column structure of a no-result scan.
        return [block]
    out = []
    for start in range(0, len(block), block_size):
        end = start + block_size
        out.append(
            Block(
                columns={
                    name: col[start:end] for name, col in block.columns.items()
                },
                positions=block.positions[start:end],
            )
        )
    return out
