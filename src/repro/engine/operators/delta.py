"""Hybrid base+delta operators: DeltaScan and HybridUnion.

The write-optimized store (Figure 1's left-hand box) stages inserts in
memory and marks deletes in a :class:`~repro.storage.delete_vector.
DeleteVector`.  To make those edits visible to reads *without*
rebuilding the read store, a query plan over an edited table becomes::

    HybridUnion
    ├── <base plan>   (any of the four scanner architectures)
    └── DeltaScan     (the staged rows that qualify)

:class:`HybridUnion` streams the base plan first, dropping rows whose
global position is marked deleted and shifting the survivors down to
the positions they would occupy in a freshly rebuilt table; it then
drains :class:`DeltaScan`, whose rows already carry rebuilt-table
positions.  The union is therefore byte-identical to scanning a table
rebuilt as ``base minus deletes, then staged inserts in insertion
order`` — the equivalence the differential battery in
``tests/test_write_path.py`` pins across all four architectures.

Both operators live on the ordinary :class:`~repro.engine.operators.
base.Operator` interface, so tracing spans, governance checkpoints, and
salvage accounting apply to the hybrid layer exactly as they do to any
other plan node.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.engine.blocks import Block
from repro.engine.context import ExecutionContext
from repro.engine.operators.base import Operator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (hybrid -> plan)
    from repro.engine.hybrid import HybridOverlay


class DeltaScan(Operator):
    """Stream the qualifying staged rows in insertion order.

    The overlay has already projected the staged rows to the query's
    select list, applied its predicates, dropped staged rows that were
    deleted again before ever reaching disk, and remapped their global
    positions to rebuilt-table coordinates — this operator only blocks
    the result out at engine block size, keeping memory-resident delta
    rows on the same pull-based protocol as paged base rows.
    """

    def __init__(self, context: ExecutionContext, overlay: "HybridOverlay"):
        super().__init__(context)
        self.overlay = overlay
        self._offset = 0

    def describe(self) -> str:
        return f"delta rows={len(self.overlay.delta_positions)}"

    def _open(self) -> None:
        self._offset = 0

    def _next(self) -> Block | None:
        total = len(self.overlay.delta_positions)
        if self._offset >= total:
            return None
        end = min(total, self._offset + self.context.block_size)
        block = Block(
            columns={
                name: values[self._offset : end]
                for name, values in self.overlay.delta_columns.items()
            },
            positions=self.overlay.delta_positions[self._offset : end],
        )
        self._offset = end
        return block


class HybridUnion(Operator):
    """Base-minus-deletes followed by the delta, in rebuilt-table order.

    Base blocks pass through :meth:`HybridOverlay.transform_base_block`
    (delete filtering + position remap); empty blocks are forwarded
    untouched so a no-result scan keeps its column structure.  Once the
    base plan is exhausted the delta child is drained.
    """

    def __init__(
        self,
        context: ExecutionContext,
        base: Operator,
        delta: DeltaScan,
        overlay: "HybridOverlay",
    ):
        super().__init__(context)
        self.base = base
        self.delta = delta
        self.overlay = overlay
        self._base_done = False

    def describe(self) -> str:
        return (
            f"base_rows={self.overlay.base_rows} "
            f"deleted={self.overlay.num_deleted} "
            f"delta={len(self.overlay.delta_positions)}"
        )

    def children(self) -> list[Operator]:
        return [self.base, self.delta]

    def _open(self) -> None:
        self._base_done = False

    def _next(self) -> Block | None:
        while not self._base_done:
            block = self.base.next()
            if block is None:
                self._base_done = True
                break
            return self.overlay.transform_base_block(block)
        return self.delta.next()
