"""Differential harness: every layout x codec configuration vs the oracle.

For each generated case the harness bulk-loads the same logical data
under all four scanner configurations (row, PAX, column pipelined,
column fused), executes the case's query through the real engine, and
diffs the answer against the pure-Python oracle.  On top of the oracle
diff it layers four *metamorphic* checks that need no oracle at all:

* **selectivity monotonicity** — dropping a conjunct can only grow the
  qualifying set;
* **predicate-complement partition** — ``P`` and ``not P`` split the
  unfiltered result into two disjoint halves;
* **aggregate-of-parts** — aggregating the two halves and merging them
  reproduces the whole-table aggregate;
* **compression invariance** — re-loading the table with identity
  codecs must not change any answer.

A failing case is greedily minimized (drop predicates, strip codecs,
shrink the select list, halve the data) and reported with a one-line
``python -m repro.testing --seed N`` repro command.

Column-only codecs (RLE has variable page capacity) are transparently
downgraded to identity for the fixed-stride row and PAX layouts; the
coverage report tracks which (layout, codec) cells each run exercised.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Callable

import numpy as np

from repro.compression.base import CodecKind, CodecSpec
from repro.data.generator import GeneratedTable
from repro.engine.context import ExecutionContext
from repro.engine.executor import QueryResult, execute_plan
from repro.engine.governance import QueryContext
from repro.engine.operators.limit import Limit, TopN
from repro.engine.plan import (
    ColumnScannerKind,
    aggregate_plan,
    merge_join_plan,
    scan_plan,
)
from repro.engine.predicate import ComparisonOp, Predicate
from repro.engine.query import AggregateFunction, ScanQuery
from repro.errors import GovernanceError
from repro.storage.layout import Layout
from repro.storage.loader import load_table
from repro.storage.table import Table
from repro.testing.genquery import FEATURED_KINDS, GeneratedCase, generate_case
from repro.testing.oracle import (
    OracleResult,
    complement_predicate,
    oracle_aggregate,
    oracle_limit,
    oracle_merge_join,
    oracle_scan,
    oracle_topn,
    pyvalue,
)
from repro.testing.writes import WriteModel, WriteOp


@dataclass(frozen=True)
class ScanConfig:
    """One of the four scanner architectures under test."""

    name: str
    layout: Layout
    column_scanner: ColumnScannerKind = ColumnScannerKind.PIPELINED


#: The full configuration matrix every case runs through.
CONFIGS = (
    ScanConfig("row", Layout.ROW),
    ScanConfig("pax", Layout.PAX),
    ScanConfig("column", Layout.COLUMN, ColumnScannerKind.PIPELINED),
    ScanConfig("fused", Layout.COLUMN, ColumnScannerKind.FUSED),
)

#: Codec kinds whose page codecs have data-dependent (variable) page
#: capacity; only the column layout supports those, so they downgrade to
#: identity under fixed-stride row/PAX pages.
COLUMN_ONLY_KINDS = frozenset({CodecKind.RLE})


@dataclass
class CaseOutcome:
    """What happened when one case ran through the whole matrix."""

    seed: int
    failures: list[str] = field(default_factory=list)
    #: (config name, codec kind value) cells this case exercised.
    coverage: set[tuple[str, str]] = field(default_factory=set)
    checks: int = 0

    @property
    def ok(self) -> bool:
        return not self.failures


@dataclass
class SuiteReport:
    """Aggregate result of a fuzzing run."""

    start_seed: int
    num_cases: int
    checks: int = 0
    coverage: set[tuple[str, str]] = field(default_factory=set)
    #: (seed, first failure message, minimized description) triples.
    failures: list[tuple[int, str, str]] = field(default_factory=list)
    #: Whether the suite forced write-op interleavings onto every case
    #: (replay with ``--writes``).
    writes: bool = False

    @property
    def ok(self) -> bool:
        return not self.failures

    def coverage_table(self) -> str:
        kinds = [kind.value for kind in FEATURED_KINDS]
        lines = ["layout   " + " ".join(f"{k:>9s}" for k in kinds)]
        for config in CONFIGS:
            cells = []
            for kind in FEATURED_KINDS:
                impossible = (
                    kind in COLUMN_ONLY_KINDS and config.layout is not Layout.COLUMN
                )
                if impossible:
                    cells.append(f"{'-':>9s}")
                else:
                    hit = (config.name, kind.value) in self.coverage
                    cells.append(f"{'ok' if hit else 'MISS':>9s}")
            lines.append(f"{config.name:<8s} " + " ".join(cells))
        return "\n".join(lines)

    def format(self) -> str:
        lines = [
            f"fuzz: {self.num_cases} cases (seeds {self.start_seed}.."
            f"{self.start_seed + self.num_cases - 1}), "
            f"{self.checks} differential checks, "
            f"{len(self.failures)} failure(s)",
            self.coverage_table(),
        ]
        flag = " --writes" if self.writes else ""
        for seed, message, minimized in self.failures:
            lines.append(f"FAIL seed {seed}: {message}")
            lines.append(f"  repro: python -m repro.testing --seed {seed}{flag}")
            if minimized:
                lines.append("  minimized:\n    " + minimized.replace("\n", "\n    "))
        return "\n".join(lines)


# --- loading ------------------------------------------------------------------


def _effective_specs(
    specs: dict[str, CodecSpec], layout: Layout
) -> dict[str, CodecSpec]:
    """The codec assignment actually loadable under ``layout``."""
    if layout is Layout.COLUMN:
        return dict(specs)
    return {
        name: spec
        for name, spec in specs.items()
        if spec.kind not in COLUMN_ONLY_KINDS
    }


def _load(case: GeneratedCase, table_name: str, layout: Layout) -> Table:
    data = case.tables[table_name]
    specs = _effective_specs(case.codec_specs.get(table_name, {}), layout)
    bound = data.with_schema(data.schema.with_codecs(specs))
    return load_table(bound, layout, page_size=case.page_size)


def _case_coverage(case: GeneratedCase, config: ScanConfig) -> set[tuple[str, str]]:
    cells = set()
    for specs in case.codec_specs.values():
        effective = _effective_specs(specs, config.layout)
        for spec in effective.values():
            cells.add((config.name, spec.kind.value))
        if len(effective) < len(specs) or len(specs) < max(
            len(case.tables[name].schema) for name in case.tables
        ):
            cells.add((config.name, CodecKind.NONE.value))
    return cells


# --- engine execution ---------------------------------------------------------


def _case_context(case: GeneratedCase) -> ExecutionContext:
    """An execution context honouring the case's governance knobs."""
    context = ExecutionContext()
    if case.deadline is not None or case.memory_budget is not None:
        context.governance = QueryContext.start(
            timeout=case.deadline,
            memory_budget=case.memory_budget,
            label=f"fuzz seed {case.seed}",
        )
    return context


def _run_engine(case: GeneratedCase, config: ScanConfig) -> QueryResult:
    context = _case_context(case)
    if case.kind == "join":
        left = _load(case, case.join_left_query.table, config.layout)
        right = _load(case, case.query.table, config.layout)
        plan = merge_join_plan(
            context,
            left,
            case.join_left_query,
            right,
            case.query,
            case.join_left_key,
            case.join_right_key,
            column_scanner=config.column_scanner,
        )
        return execute_plan(plan)
    table = _load(case, case.query.table, config.layout)
    if case.kind == "aggregate":
        plan = aggregate_plan(
            context,
            table,
            case.query,
            case.aggregate,
            sort_based=case.sort_based,
            column_scanner=config.column_scanner,
        )
        return execute_plan(plan)
    scan = scan_plan(context, table, case.query, config.column_scanner)
    if case.kind == "limit":
        return execute_plan(Limit(context, scan, case.limit_count))
    if case.kind == "topn":
        return execute_plan(
            TopN(
                context,
                scan,
                key=case.topn_key,
                count=case.topn_count,
                descending=case.topn_descending,
            )
        )
    return execute_plan(scan)


def _run_parallel(case: GeneratedCase, config: ScanConfig) -> QueryResult:
    """The case's query through the partitioned parallel executor."""
    from repro.engine.parallel import parallel_query

    table = _load(case, case.query.table, config.layout)
    kwargs: dict = {}
    if case.kind == "aggregate":
        kwargs["aggregate"] = case.aggregate
        kwargs["sort_based"] = case.sort_based
    elif case.kind == "limit":
        kwargs["limit"] = case.limit_count
    elif case.kind == "topn":
        kwargs["topn"] = (case.topn_key, case.topn_count, case.topn_descending)
    return parallel_query(
        table,
        case.query,
        workers=case.workers,
        partitions=case.num_partitions,
        context=_case_context(case),
        column_scanner=config.column_scanner,
        **kwargs,
    )


def _oracle_expected(case: GeneratedCase) -> OracleResult:
    data = case.tables[case.query.table]
    if case.kind == "aggregate":
        return oracle_aggregate(data, case.query, case.aggregate)
    if case.kind == "join":
        return oracle_merge_join(
            case.tables[case.join_left_query.table],
            case.join_left_query,
            data,
            case.query,
            case.join_left_key,
            case.join_right_key,
        )
    scanned = oracle_scan(data, case.query)
    if case.kind == "limit":
        return oracle_limit(scanned, case.limit_count)
    if case.kind == "topn":
        return oracle_topn(
            scanned, case.topn_key, case.topn_count, case.topn_descending
        )
    return scanned


# --- comparison ---------------------------------------------------------------


def _engine_rows(result: QueryResult, names: list[str]) -> list[tuple]:
    columns = [
        [pyvalue(v) for v in result.columns[name].tolist()] for name in names
    ]
    return [tuple(col[i] for col in columns) for i in range(result.num_tuples)]


def _values_equal(got, want) -> bool:
    if isinstance(want, float) or isinstance(got, float):
        return math.isclose(float(got), float(want), rel_tol=1e-9, abs_tol=1e-9)
    return got == want


def _rows_equal(got: list[tuple], want: list[tuple]) -> bool:
    if len(got) != len(want):
        return False
    return all(
        len(g) == len(w) and all(_values_equal(a, b) for a, b in zip(g, w))
        for g, w in zip(got, want)
    )


def _diff_message(what: str, got, want) -> str:
    return f"{what}: engine={_truncate(got)} oracle={_truncate(want)}"


def _truncate(value, limit: int = 160) -> str:
    text = repr(value)
    return text if len(text) <= limit else text[: limit - 3] + "..."


def compare_result(
    case: GeneratedCase, result: QueryResult, expected: OracleResult
) -> str | None:
    """One-line diff between an engine result and the oracle, or None."""
    if result.num_tuples == 0 and expected.num_tuples == 0:
        return None
    missing = [n for n in expected.names if n not in result.columns]
    if missing:
        return f"missing output columns {missing} (have {list(result.columns)})"
    got = _engine_rows(result, expected.names)
    if case.kind == "aggregate":
        # Group ordering differs between hash (np.unique) and sort
        # aggregation; compare as sorted multisets.
        got_sorted = sorted(got)
        want_sorted = sorted(expected.rows)
        if not _rows_equal(got_sorted, want_sorted):
            return _diff_message("aggregate rows differ", got_sorted, want_sorted)
        return None
    if not _rows_equal(got, expected.rows):
        return _diff_message("rows differ", got, expected.rows)
    got_positions = result.positions.tolist()
    if got_positions != expected.positions:
        return _diff_message("positions differ", got_positions, expected.positions)
    return None


# --- metamorphic checks -------------------------------------------------------


def _scan_positions(
    table: Table, query: ScanQuery, config: ScanConfig
) -> list[int]:
    context = ExecutionContext()
    plan = scan_plan(context, table, query, config.column_scanner)
    return execute_plan(plan).positions.tolist()


def _split_predicate(case: GeneratedCase) -> Predicate | None:
    """A predicate partitioning the primary table (for parts checks)."""
    query = case.query
    if query.predicates:
        return query.predicates[0]
    data = case.tables[query.table]
    if data.num_rows == 0:
        return None
    attr = query.select[0]
    values = data.column(attr)
    pivot = pyvalue(np.sort(values)[len(values) // 2])
    return Predicate(attr, ComparisonOp.LE, pivot)


def _merge_parts(function: AggregateFunction, parts: list[list[tuple]]):
    merged: dict[tuple, object] = {}
    for rows in parts:
        for row in rows:
            key, value = row[:-1], row[-1]
            if key not in merged:
                merged[key] = value
            elif function in (AggregateFunction.COUNT, AggregateFunction.SUM):
                merged[key] = merged[key] + value
            elif function is AggregateFunction.MIN:
                merged[key] = min(merged[key], value)
            else:
                merged[key] = max(merged[key], value)
    return sorted(key + (value,) for key, value in merged.items())


def metamorphic_failures(case: GeneratedCase) -> list[str]:
    """Engine-only invariant checks (no oracle involved).

    Runs on the column/pipelined configuration: the invariants hold per
    configuration, and the oracle diff already pins all four
    configurations to the same answer.
    """
    failures: list[str] = []
    config = CONFIGS[2]
    query = case.query
    table = _load(case, query.table, config.layout)

    # 1. Selectivity monotonicity: each dropped conjunct grows the set.
    if query.predicates:
        full = set(_scan_positions(table, query, config))
        weaker = set(
            _scan_positions(
                table, replace(query, predicates=query.predicates[:-1]), config
            )
        )
        if not full <= weaker:
            failures.append(
                "metamorphic: dropping a conjunct lost rows "
                f"{sorted(full - weaker)[:10]}"
            )

    # 2. Predicate-complement partition.
    split = _split_predicate(case)
    if split is not None:
        base = replace(query, predicates=())
        everything = _scan_positions(table, base, config)
        part = _scan_positions(table, replace(base, predicates=(split,)), config)
        rest = _scan_positions(
            table, replace(base, predicates=(complement_predicate(split),)), config
        )
        if set(part) & set(rest):
            failures.append(
                f"metamorphic: P and not-P overlap on {sorted(set(part) & set(rest))[:10]}"
            )
        if sorted(part + rest) != everything:
            failures.append(
                "metamorphic: P + not-P does not partition the table "
                f"({len(part)}+{len(rest)} vs {len(everything)})"
            )

        # 3. Aggregate-of-parts = whole (exact for non-AVG functions).
        if (
            case.kind == "aggregate"
            and case.aggregate.function is not AggregateFunction.AVG
        ):
            spec = case.aggregate
            names = list(spec.group_by) + [
                "count"
                if spec.function is AggregateFunction.COUNT
                else f"{spec.function.value}_{spec.argument}"
            ]

            def _agg_rows(predicates: tuple[Predicate, ...]) -> list[tuple]:
                context = ExecutionContext()
                plan = aggregate_plan(
                    context,
                    table,
                    replace(query, predicates=predicates),
                    spec,
                    sort_based=case.sort_based,
                    column_scanner=config.column_scanner,
                )
                result = execute_plan(plan)
                if result.num_tuples == 0:
                    return []
                return _engine_rows(result, names)

            whole = sorted(_agg_rows(query.predicates))
            merged = _merge_parts(
                spec.function,
                [
                    _agg_rows(query.predicates + (split,)),
                    _agg_rows(query.predicates + (complement_predicate(split),)),
                ],
            )
            if not _rows_equal(merged, whole):
                failures.append(
                    _diff_message(
                        "metamorphic: aggregate-of-parts != whole", merged, whole
                    )
                )

    # 4. Compression invariance: identity codecs give identical answers.
    if case.codec_specs.get(query.table):
        plain = case.tables[query.table]
        identity = load_table(plain, config.layout, page_size=case.page_size)
        with_codecs = _scan_positions(table, query, config)
        without = _scan_positions(identity, query, config)
        if with_codecs != without:
            failures.append(
                "metamorphic: compression changed the answer "
                f"({len(with_codecs)} vs {len(without)} rows)"
            )
    return failures


# --- write cases ---------------------------------------------------------------


def _write_expected(case: GeneratedCase) -> OracleResult:
    """The WriteModel oracle's answer after the whole op sequence."""
    model = WriteModel(case.tables[case.query.table])
    for op in case.write_ops:
        model.apply(op)
    return oracle_scan(model.snapshot(), case.query)


def _write_database(case: GeneratedCase, config: ScanConfig):
    """A single-layout Database with the case's ops applied in order."""
    from repro.database import Database

    name = case.query.table
    data = case.tables[name]
    specs = _effective_specs(case.codec_specs.get(name, {}), config.layout)
    bound = data.with_schema(data.schema.with_codecs(specs))
    db = Database(layouts=(config.layout,), page_size=case.page_size)
    db.create_table(bound)
    for op in case.write_ops:
        if op.kind == "insert":
            db.insert_many(name, list(op.rows))
        elif op.kind == "delete":
            db.delete(name, positions=list(op.positions))
        elif op.kind == "delete_where":
            db.delete(name, predicates=(op.predicate,))
        else:
            db.merge(name)
    return db


def _run_write_case(case: GeneratedCase) -> CaseOutcome:
    """The hybrid read/write differential battery for one case.

    Every scanner architecture answers the query through the hybrid
    base+delta path after the interleaved op sequence; the column
    config additionally runs the scheduler leg (sharing per the case),
    a rebuilt-table leg (atomic merge product, refreshed codecs), and —
    when the case is parallel — the partitioned executor with the
    overlay applied post-hoc.  All must equal the pure-Python
    :class:`~repro.testing.writes.WriteModel` oracle byte-for-byte.
    """
    outcome = CaseOutcome(seed=case.seed)
    expected = _write_expected(case)
    name = case.query.table
    for config in CONFIGS:
        try:
            db = _write_database(case, config)
            result = db.query(
                name,
                select=case.query.select,
                predicates=case.query.predicates,
                column_scanner=config.column_scanner,
            )
            error = compare_result(case, result, expected)
        except Exception as exc:  # noqa: BLE001 - a crash is a finding
            error = f"{type(exc).__name__}: {exc}"
        outcome.checks += 1
        if error:
            outcome.failures.append(f"[{config.name} hybrid] {error}")
        outcome.coverage |= _case_coverage(case, config)
        if outcome.failures:
            return outcome

        # Scheduler leg: same snapshot through the cooperative
        # scheduler, shared circular scans per the case's toggle.
        try:
            handles = db.run_workload(
                [
                    dict(
                        table=name,
                        select=case.query.select,
                        predicates=case.query.predicates,
                    )
                ],
                share_scans=case.sharing,
            )
            handle = handles[0]
            if handle.error is not None:
                error = f"{type(handle.error).__name__}: {handle.error}"
            else:
                error = compare_result(case, handle.result, expected)
        except Exception as exc:  # noqa: BLE001
            error = f"{type(exc).__name__}: {exc}"
        outcome.checks += 1
        if error:
            outcome.failures.append(
                f"[{config.name} scheduler sharing={case.sharing}] {error}"
            )
            return outcome

    # Rebuilt-table leg: the crash-safe merge product (with refreshed
    # codecs) must answer identically to the still-hybrid store.
    config = CONFIGS[2]
    try:
        db = _write_database(case, config)
        rebuilt = db.write_store(name).rebuild(db.table(name))
        from repro.engine.executor import run_scan

        error = compare_result(case, run_scan(rebuilt, case.query), expected)
    except Exception as exc:  # noqa: BLE001
        error = f"{type(exc).__name__}: {exc}"
    outcome.checks += 1
    if error:
        outcome.failures.append(f"[column rebuilt] {error}")
        return outcome

    # Parallel leg: partitioned scan of the base plus post-hoc overlay.
    if case.workers > 1:
        try:
            db = _write_database(case, config)
            result = db.query(
                name,
                select=case.query.select,
                predicates=case.query.predicates,
                workers=case.workers,
                partitions=case.num_partitions,
            )
            error = compare_result(case, result, expected)
        except Exception as exc:  # noqa: BLE001
            error = f"{type(exc).__name__}: {exc}"
        outcome.checks += 1
        if error:
            outcome.failures.append(
                f"[column workers={case.workers}] {error}"
            )
    return outcome


# --- case driver --------------------------------------------------------------


def run_case(case: GeneratedCase, metamorphic: bool = True) -> CaseOutcome:
    """Run one case through the full matrix plus the invariant checks."""
    if case.write_ops:
        return _run_write_case(case)
    outcome = CaseOutcome(seed=case.seed)
    expected = _oracle_expected(case)
    for config in CONFIGS:
        try:
            result = _run_engine(case, config)
            error = compare_result(case, result, expected)
        except GovernanceError:
            # Typed abort under the case's governance knobs: an
            # acceptable outcome of the lifecycle contract, not a bug.
            error = None
        except Exception as exc:  # noqa: BLE001 - a crash is a finding
            error = f"{type(exc).__name__}: {exc}"
        outcome.checks += 1
        if error:
            outcome.failures.append(f"[{config.name}] {error}")
        outcome.coverage |= _case_coverage(case, config)
    # Parallel-equivalence leg: the same case through the partitioned
    # executor must match the same oracle answer (joins are not
    # decomposable and stay serial-only).
    if case.workers > 1 and case.kind != "join":
        for config in CONFIGS:
            try:
                result = _run_parallel(case, config)
                error = compare_result(case, result, expected)
            except GovernanceError:
                error = None  # see the serial leg above
            except Exception as exc:  # noqa: BLE001 - a crash is a finding
                error = f"{type(exc).__name__}: {exc}"
            outcome.checks += 1
            if error:
                outcome.failures.append(
                    f"[{config.name} workers={case.workers}] {error}"
                )
    if metamorphic and not outcome.failures:
        try:
            meta = metamorphic_failures(case)
        except Exception as exc:  # noqa: BLE001
            meta = [f"metamorphic checks crashed: {type(exc).__name__}: {exc}"]
        outcome.checks += 1
        outcome.failures.extend(f"[column] {m}" for m in meta)
    return outcome


# --- minimization -------------------------------------------------------------


def _with_rows(case: GeneratedCase, count: int) -> GeneratedCase:
    tables = {
        name: GeneratedTable(
            schema=data.schema,
            columns={k: v[:count] for k, v in data.columns.items()},
        )
        for name, data in case.tables.items()
    }
    return replace(case, tables=tables)


def _write_ops_valid(case: GeneratedCase) -> bool:
    """Whether every delete position still addresses an existing row."""
    if not case.write_ops:
        return True
    model = WriteModel(case.tables[case.query.table])
    for op in case.write_ops:
        if op.kind == "delete" and any(
            position >= len(model.rows) for position in op.positions
        ):
            return False
        model.apply(op)
    return True


def _required_attrs(case: GeneratedCase) -> set[str]:
    needed: set[str] = set()
    if case.aggregate is not None:
        needed.update(case.aggregate.group_by)
        if case.aggregate.argument:
            needed.add(case.aggregate.argument)
    if case.join_right_key:
        needed.add(case.join_right_key)
    if case.topn_key:
        needed.add(case.topn_key)
    return needed


def minimize_case(
    case: GeneratedCase,
    still_fails: Callable[[GeneratedCase], bool] | None = None,
    budget: int = 40,
) -> GeneratedCase:
    """Greedy shrink: smallest variant that still fails the harness.

    The original codec specs stay valid on row prefixes (packed widths
    upper-bound the surviving values; dictionaries are supersets), so
    halving the data never invalidates the physical design.
    """
    if still_fails is None:
        still_fails = lambda c: not run_case(c).ok  # noqa: E731
    spent = 0

    def attempt(candidate: GeneratedCase, note: str) -> GeneratedCase | None:
        nonlocal spent
        if spent >= budget:
            return None
        spent += 1
        try:
            if still_fails(candidate):
                return replace(
                    candidate, shrink_steps=case.shrink_steps + [note]
                )
        except Exception:  # noqa: BLE001 - a crash still reproduces
            return replace(candidate, shrink_steps=case.shrink_steps + [note])
        return None

    changed = True
    while changed and spent < budget:
        changed = False
        # Write batches shrink FIRST: most hybrid-path failures need
        # only a fragment of the op interleaving, and a short op list
        # makes every later shrink (rows, predicates, codecs) cheaper
        # to evaluate.  Only structurally valid shortenings are tried —
        # dropping an insert can strand a later delete's positions.
        if case.write_ops:
            for index in range(len(case.write_ops) - 1, -1, -1):
                ops = case.write_ops[:index] + case.write_ops[index + 1 :]
                candidate = replace(case, write_ops=ops)
                if not _write_ops_valid(candidate):
                    continue
                shrunk = attempt(
                    candidate,
                    f"drop write op {case.write_ops[index].describe()}",
                )
                if shrunk is not None:
                    case = shrunk
                    changed = True
                    break
            if changed:
                continue
            for index, op in enumerate(case.write_ops):
                if op.kind != "insert" or len(op.rows) < 2:
                    continue
                ops = list(case.write_ops)
                ops[index] = replace(op, rows=op.rows[: len(op.rows) // 2])
                candidate = replace(case, write_ops=ops)
                if not _write_ops_valid(candidate):
                    continue
                shrunk = attempt(
                    candidate, f"halve insert #{index} to {len(op.rows) // 2}"
                )
                if shrunk is not None:
                    case = shrunk
                    changed = True
                    break
            if changed:
                continue
        # Does the failure need governance at all?  Shrinking toward
        # "no governance" first separates lifecycle bugs from engine
        # bugs that merely surfaced under a governed run.
        if case.deadline is not None or case.memory_budget is not None:
            candidate = attempt(
                replace(case, deadline=None, memory_budget=None), "no governance"
            )
            if candidate is not None:
                case = candidate
                changed = True
                continue
        # Is the failure parallel-specific?  Serial-only repros first.
        if case.workers > 1:
            candidate = attempt(
                replace(case, workers=1, num_partitions=None), "workers->1"
            )
            if candidate is not None:
                case = candidate
                changed = True
                continue
        # Halve the data.
        rows = max(d.num_rows for d in case.tables.values())
        if rows > 1:
            halved = _with_rows(case, rows // 2)
            if _write_ops_valid(halved):
                smaller = attempt(halved, f"rows->{rows // 2}")
                if smaller is not None:
                    case = smaller
                    changed = True
                    continue
        # Drop predicates one at a time.
        for index in range(len(case.query.predicates)):
            predicates = (
                case.query.predicates[:index] + case.query.predicates[index + 1 :]
            )
            candidate = attempt(
                replace(case, query=replace(case.query, predicates=predicates)),
                f"drop predicate {case.query.predicates[index].describe()}",
            )
            if candidate is not None:
                case = candidate
                changed = True
                break
        if changed:
            continue
        # Strip codecs.
        for table_name, specs in case.codec_specs.items():
            for attr in list(specs):
                slimmed = {
                    t: {a: s for a, s in sp.items() if (t, a) != (table_name, attr)}
                    for t, sp in case.codec_specs.items()
                }
                candidate = attempt(
                    replace(case, codec_specs=slimmed),
                    f"identity codec for {table_name}.{attr}",
                )
                if candidate is not None:
                    case = candidate
                    changed = True
                    break
            if changed:
                break
        if changed:
            continue
        # Shrink the select list.
        required = _required_attrs(case)
        for name in case.query.select:
            if name in required or len(case.query.select) == 1:
                continue
            select = tuple(n for n in case.query.select if n != name)
            candidate = attempt(
                replace(case, query=replace(case.query, select=select)),
                f"drop select {name}",
            )
            if candidate is not None:
                case = candidate
                changed = True
                break
    return case


# --- suite driver -------------------------------------------------------------


def run_suite(
    num_cases: int,
    start_seed: int = 0,
    metamorphic: bool = True,
    minimize: bool = True,
    progress: Callable[[int, SuiteReport], None] | None = None,
    force_writes: bool = False,
) -> SuiteReport:
    """Fuzz ``num_cases`` consecutive seeds and aggregate the outcome.

    With ``force_writes`` every case carries an interleaved
    insert/delete/merge op sequence and runs the hybrid read/write
    differential battery instead of the plain matrix.
    """
    report = SuiteReport(
        start_seed=start_seed, num_cases=num_cases, writes=force_writes
    )
    for offset in range(num_cases):
        seed = start_seed + offset
        case = generate_case(seed, force_writes=force_writes)
        outcome = run_case(case, metamorphic=metamorphic)
        report.checks += outcome.checks
        report.coverage |= outcome.coverage
        if not outcome.ok:
            minimized = ""
            if minimize:
                minimized = minimize_case(case).describe()
            report.failures.append((seed, outcome.failures[0], minimized))
        if progress is not None:
            progress(offset + 1, report)
    return report
