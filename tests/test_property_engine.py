"""Property-based engine tests.

Invariant under randomization: for any schema, data, compression
choice, predicate, and projection, all four scanners (row, compressed
row, pipelined column, fused column, PAX) return the same tuples in the
same order.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression.base import CodecKind
from repro.compression.registry import build_codec_for_values
from repro.data.generator import GeneratedTable
from repro.engine.executor import run_scan
from repro.engine.plan import ColumnScannerKind
from repro.engine.predicate import ComparisonOp, Predicate
from repro.engine.query import ScanQuery
from repro.storage.layout import Layout
from repro.storage.loader import load_table
from repro.types.datatypes import FixedTextType, IntType
from repro.types.schema import Attribute, TableSchema


@st.composite
def random_table(draw):
    """A 2-5 attribute table with 1-300 rows of mixed types."""
    num_attrs = draw(st.integers(min_value=2, max_value=5))
    num_rows = draw(st.integers(min_value=1, max_value=300))
    rng = np.random.default_rng(draw(st.integers(min_value=0, max_value=2**31)))
    attributes = []
    columns = {}
    for index in range(num_attrs):
        name = f"a{index}"
        kind = draw(st.sampled_from(["int", "smallint", "text"]))
        if kind == "int":
            attributes.append(Attribute(name, IntType()))
            columns[name] = rng.integers(-(2**30), 2**30, size=num_rows)
        elif kind == "smallint":
            attributes.append(Attribute(name, IntType()))
            columns[name] = rng.integers(0, 16, size=num_rows)
        else:
            width = draw(st.integers(min_value=1, max_value=12))
            attributes.append(Attribute(name, FixedTextType(width)))
            pool = [
                ("v%d" % i)[:width].encode() for i in range(draw(st.integers(1, 6)))
            ]
            choices = rng.integers(0, len(pool), size=num_rows)
            columns[name] = np.array([pool[c] for c in choices], dtype=f"S{width}")
    schema = TableSchema(name="RAND", attributes=tuple(attributes))
    return GeneratedTable(schema=schema, columns=columns)


@st.composite
def query_for_table(draw, data):
    names = list(data.schema.attribute_names)
    select_count = draw(st.integers(min_value=1, max_value=len(names)))
    select = tuple(draw(st.permutations(names))[:select_count])
    predicates = []
    if draw(st.booleans()):
        attr = draw(st.sampled_from(names))
        column = data.columns[attr]
        pivot = column[draw(st.integers(0, len(column) - 1))]
        op = draw(
            st.sampled_from(
                [ComparisonOp.LE, ComparisonOp.GT, ComparisonOp.EQ, ComparisonOp.NE]
            )
        )
        predicates.append(Predicate(attr, op, pivot))
    return ScanQuery("RAND", select=select, predicates=tuple(predicates))


@settings(max_examples=30, deadline=None)
@given(st.data())
def test_all_layouts_agree_on_random_data(data_strategy):
    data = data_strategy.draw(random_table())
    query = data_strategy.draw(query_for_table(data))

    results = []
    for layout in (Layout.ROW, Layout.COLUMN, Layout.PAX):
        table = load_table(data, layout)
        results.append(run_scan(table, query))
    column_table = load_table(data, Layout.COLUMN)
    results.append(
        run_scan(column_table, query, column_scanner=ColumnScannerKind.FUSED)
    )

    reference = results[0]
    for other in results[1:]:
        assert other.num_tuples == reference.num_tuples
        np.testing.assert_array_equal(other.positions, reference.positions)
        for name in query.select:
            np.testing.assert_array_equal(other.column(name), reference.column(name))


@settings(max_examples=20, deadline=None)
@given(st.data())
def test_compressed_storage_is_transparent(data_strategy):
    """Loading under advisor-chosen codecs never changes query answers."""
    from repro.compression.advisor import CompressionAdvisor

    data = data_strategy.draw(random_table())
    query = data_strategy.draw(query_for_table(data))
    reference = run_scan(load_table(data, Layout.ROW), query)

    advisor = CompressionAdvisor()
    attr_types = {a.name: a.attr_type for a in data.schema}
    specs = advisor.advise(attr_types, data.columns)
    packed = data.with_schema(data.schema.with_codecs(specs))
    for layout in (Layout.ROW, Layout.COLUMN, Layout.PAX):
        result = run_scan(load_table(packed, layout), query)
        assert result.num_tuples == reference.num_tuples
        for name in query.select:
            np.testing.assert_array_equal(
                result.column(name), reference.column(name)
            )


@settings(max_examples=25, deadline=None)
@given(st.data())
def test_event_counts_scale_linearly(data_strategy):
    """Doubling the data doubles every scan event count."""
    from repro.engine.context import ExecutionContext

    data = data_strategy.draw(random_table())
    doubled = GeneratedTable(
        schema=data.schema,
        columns={
            name: np.concatenate([col, col]) for name, col in data.columns.items()
        },
    )
    query = ScanQuery("RAND", select=(data.schema.attribute_names[0],))

    single = ExecutionContext()
    run_scan(load_table(data, Layout.COLUMN), query, single)
    double = ExecutionContext()
    run_scan(load_table(doubled, Layout.COLUMN), query, double)

    assert double.events.values_examined == 2 * single.events.values_examined
    assert double.events.values_copied == 2 * single.events.values_copied
    assert double.events.bytes_copied == 2 * single.events.bytes_copied


@settings(max_examples=25, deadline=None)
@given(
    st.lists(
        st.integers(min_value=-(2**31), max_value=2**31 - 1),
        min_size=1,
        max_size=400,
    )
)
def test_page_split_invariance(raw):
    """Column reads are identical regardless of how pages split."""
    values = np.array(raw, dtype=np.int64)
    codec = build_codec_for_values(
        CodecKind.FOR, IntType(), values, page_capacity_hint=max(1, len(values) // 3)
    )
    from repro.storage.page import ColumnPageCodec

    for page_size in (512, 1024, 4096):
        page_codec = ColumnPageCodec(codec, page_size)
        capacity = page_codec.values_per_page
        decoded = []
        for start in range(0, len(values), capacity):
            chunk = values[start : start + capacity]
            page = page_codec.encode(start // capacity, chunk)
            _pid, out = page_codec.decode(page)
            decoded.append(out)
        np.testing.assert_array_equal(np.concatenate(decoded), values)
