"""Parallel-merge operators: gather worker output and recombine it.

:mod:`repro.engine.parallel` executes one plan per row-range partition
in worker processes and materializes each worker's output.  These
operators stitch the pieces back together *in the parent plan*, so the
merge itself is traced and cost-accounted like any other plan node:

* :class:`GatherOperator` — emit the workers' blocks in partition
  order.  Because partitions are contiguous row ranges handed out in
  order, the concatenation is already in global Record-ID order, which
  makes a plain parallel selection byte-identical to the serial scan.
* :class:`MergePartials` — reduce per-partition partial aggregates
  (count/sum/min/max, or sum+count for AVG) into the final groups with
  the same ``np.unique`` grouping and per-group arithmetic the serial
  :class:`~repro.engine.operators.aggregate.HashAggregate` uses, so
  group order, dtypes, and values match the serial plan exactly.
* :class:`MergeSortedRuns` — k-way heap merge of per-partition sorted
  runs.  Ties break by global position (Record ID): each run is
  internally stable with positions ascending, so equal keys come out
  in original row order — identical to the serial stable sort — even
  when runs are delivered out of partition order (a shared-scan or
  parallel interleaving must not be able to reorder ties).
"""

from __future__ import annotations

import heapq
import math
from collections import deque

import numpy as np

from repro.engine.blocks import Block, concat_blocks, split_into_blocks
from repro.engine.context import ExecutionContext
from repro.engine.operators.aggregate import _AggregateBase
from repro.engine.operators.base import Operator
from repro.engine.query import AggregateFunction, AggregateSpec
from repro.errors import EngineError, PlanError


class GatherOperator(Operator):
    """Emit pre-materialized partition outputs as a block stream.

    The blocks were produced (and their work charged) inside worker
    processes; gathering them is a pointer handoff, so this node adds
    no cost events of its own.  Empty blocks are passed through so a
    no-result scan keeps its output schema, exactly like the serial
    scanners' empty-block emission.
    """

    def __init__(
        self,
        context: ExecutionContext,
        blocks: list[Block],
        detail: str = "",
    ):
        super().__init__(context)
        self._blocks = list(blocks)
        self._detail = detail
        self._cursor = 0

    def describe(self) -> str:
        return self._detail or f"{len(self._blocks)} partition output(s)"

    def _open(self) -> None:
        self._cursor = 0

    def _next(self) -> Block | None:
        if self._cursor >= len(self._blocks):
            return None
        block = self._blocks[self._cursor]
        self._cursor += 1
        return block


class MergePartials(_AggregateBase):
    """Final reduction of per-partition partial aggregate rows.

    The child (a :class:`GatherOperator`) supplies one row per
    (partition, group) holding the partial columns named by
    :meth:`~repro.engine.query.AggregateSpec.output_name` of the
    decomposed specs — ``count``, ``sum_X``, ``min_X``, ``max_X``, or
    both ``sum_X`` and ``count`` for AVG.
    """

    def _compute(self) -> list[Block]:
        data = self._drain_child()
        if not len(data):
            return []
        spec = self.spec
        if spec.group_by:
            key_arrays = [data.column(name) for name in spec.group_by]
            if len(key_arrays) > 1:
                keys = np.rec.fromarrays(key_arrays, names=list(spec.group_by))
                distinct, group_ids = np.unique(keys, return_inverse=True)
                group_columns = {
                    name: np.asarray(distinct[name]) for name in spec.group_by
                }
            else:
                distinct, group_ids = np.unique(key_arrays[0], return_inverse=True)
                group_columns = {spec.group_by[0]: distinct}
            num_groups = len(distinct)
        else:
            group_ids = np.zeros(len(data), dtype=np.int64)
            num_groups = 1
            group_columns = {}

        self.events.group_lookups += len(data)
        self.events.agg_updates += len(data)
        values = self._merge_reduce(data, group_ids, num_groups)
        return self._result_blocks(group_columns, values)

    def _merge_reduce(
        self, data: Block, group_ids: np.ndarray, num_groups: int
    ) -> np.ndarray:
        function = self.spec.function
        argument = self.spec.argument
        if function is AggregateFunction.COUNT:
            return np.bincount(
                group_ids, weights=data.column("count"), minlength=num_groups
            ).astype(np.int64)
        if function is AggregateFunction.SUM:
            return np.bincount(
                group_ids,
                weights=data.column(f"sum_{argument}"),
                minlength=num_groups,
            ).astype(np.int64)
        if function is AggregateFunction.AVG:
            sums = np.bincount(
                group_ids,
                weights=data.column(f"sum_{argument}"),
                minlength=num_groups,
            )
            counts = np.bincount(
                group_ids, weights=data.column("count"), minlength=num_groups
            )
            with np.errstate(invalid="ignore", divide="ignore"):
                return np.where(counts > 0, sums / np.maximum(counts, 1), np.nan)
        if function is AggregateFunction.MIN:
            out = np.full(num_groups, np.iinfo(np.int64).max)
            np.minimum.at(out, group_ids, data.column(f"min_{argument}"))
            return out
        if function is AggregateFunction.MAX:
            out = np.full(num_groups, np.iinfo(np.int64).min)
            np.maximum.at(out, group_ids, data.column(f"max_{argument}"))
            return out
        raise EngineError(f"unsupported aggregate function: {function}")


class MergeSortedRuns(Operator):
    """K-way merge of per-partition runs, each sorted on ``keys``.

    Heap entries compare as ``(key values..., global position)``: each
    run is internally stable — equal keys appear in ascending Record-ID
    order — and positions are globally unique, so ties across runs
    resolve to original row order no matter how the runs were produced
    or in what order they arrived.  That makes the merged output
    byte-identical to the serial plan's chained stable sorts even when
    partitions finish out of order (a run-index tie-break would be
    wrong the moment runs are not delivered in partition order).
    """

    def __init__(
        self,
        context: ExecutionContext,
        runs: list[Block],
        keys: tuple[str, ...],
        detail: str = "",
    ):
        super().__init__(context)
        if not keys:
            raise PlanError("merge of sorted runs needs at least one key")
        self.keys = tuple(keys)
        self._runs = list(runs)
        self._detail = detail
        self._ready: deque[Block] = deque()
        self._done = False

    def describe(self) -> str:
        base = f"keys={', '.join(self.keys)}"
        if self._detail:
            base += f" | {self._detail}"
        return base

    def _open(self) -> None:
        self._ready.clear()
        self._done = False

    def _next(self) -> Block | None:
        if not self._done:
            self._ready.extend(self._merge())
            self._done = True
        if not self._ready:
            return None
        return self._ready.popleft()

    def _merge(self) -> list[Block]:
        runs = [run for run in self._runs if len(run)]
        if not runs:
            # Preserve the shared output schema of a no-result query.
            return [concat_blocks(self._runs)]
        for run in runs:
            for key in self.keys:
                if key not in run.columns:
                    raise PlanError(f"merge key {key!r} missing from input")
        merged = concat_blocks(runs)
        offsets = np.cumsum([0] + [len(run) for run in runs[:-1]])

        key_columns = [
            [run.column(key).tolist() for key in self.keys] for run in runs
        ]
        position_lists = [run.positions.tolist() for run in runs]

        def entry(run_index: int, row: int):
            cols = key_columns[run_index]
            return (
                tuple(col[row] for col in cols),
                position_lists[run_index][row],
                run_index,
                row,
            )

        heap = [entry(run_index, 0) for run_index in range(len(runs))]
        heapq.heapify(heap)
        order = np.empty(len(merged), dtype=np.int64)
        filled = 0
        while heap:
            _key, _position, run_index, row = heapq.heappop(heap)
            order[filled] = offsets[run_index] + row
            filled += 1
            if row + 1 < len(runs[run_index]):
                heapq.heappush(heap, entry(run_index, row + 1))

        n = len(merged)
        self.events.sort_comparisons += int(
            n * max(1.0, math.log2(max(len(runs), 2)))
        )
        width = sum(int(col.dtype.itemsize) for col in merged.columns.values())
        self.events.values_copied += n * len(merged.columns)
        self.events.bytes_copied += n * width
        out = Block(
            columns={name: col[order] for name, col in merged.columns.items()},
            positions=merged.positions[order],
        )
        return split_into_blocks(out, self.context.block_size)
