"""ScanQuery, plan-builder, and context tests."""

import pytest

from repro.data.tpch import orders_schema
from repro.engine.context import ExecutionContext
from repro.engine.plan import ColumnScannerKind, scan_plan
from repro.engine.predicate import ComparisonOp, Predicate
from repro.engine.query import AggregateFunction, AggregateSpec, ScanQuery
from repro.errors import PlanError


def predicate(attr="O_ORDERDATE", value=5):
    return Predicate(attr, ComparisonOp.LE, value)


class TestScanQuery:
    def test_scan_attributes_put_predicates_first(self):
        query = ScanQuery(
            "ORDERS",
            select=("O_CUSTKEY", "O_ORDERDATE"),
            predicates=(predicate("O_ORDERDATE"),),
        )
        assert query.scan_attributes()[0] == "O_ORDERDATE"
        assert set(query.scan_attributes()) == {"O_CUSTKEY", "O_ORDERDATE"}

    def test_scan_attributes_include_unselected_predicates(self):
        query = ScanQuery(
            "ORDERS",
            select=("O_CUSTKEY",),
            predicates=(predicate("O_TOTALPRICE"),),
        )
        assert query.scan_attributes() == ("O_TOTALPRICE", "O_CUSTKEY")

    def test_no_duplicates_in_scan_attributes(self):
        query = ScanQuery(
            "ORDERS",
            select=("O_ORDERDATE", "O_CUSTKEY"),
            predicates=(
                predicate("O_ORDERDATE", 5),
                predicate("O_ORDERDATE", 9),
            ),
        )
        assert query.scan_attributes().count("O_ORDERDATE") == 1

    def test_selected_width(self):
        query = ScanQuery("ORDERS", select=("O_ORDERDATE", "O_ORDERPRIORITY"))
        assert query.selected_width(orders_schema()) == 4 + 11

    def test_empty_select_rejected(self):
        with pytest.raises(PlanError):
            ScanQuery("ORDERS", select=())

    def test_duplicate_select_rejected(self):
        with pytest.raises(PlanError):
            ScanQuery("ORDERS", select=("O_CUSTKEY", "O_CUSTKEY"))

    def test_validate_against_schema(self):
        query = ScanQuery("ORDERS", select=("NOPE",))
        with pytest.raises(Exception):
            query.validate_against(orders_schema())

    def test_describe(self):
        query = ScanQuery(
            "ORDERS", select=("O_CUSTKEY",), predicates=(predicate(),)
        )
        text = query.describe()
        assert "select O_CUSTKEY from ORDERS" in text
        assert "O_ORDERDATE <= 5" in text

    def test_describe_without_predicates(self):
        query = ScanQuery("ORDERS", select=("O_CUSTKEY",))
        assert query.describe().endswith("where true")

    def test_predicates_on(self):
        p1, p2 = predicate("O_ORDERDATE"), predicate("O_CUSTKEY")
        query = ScanQuery("ORDERS", select=("O_CUSTKEY",), predicates=(p1, p2))
        assert query.predicates_on("O_ORDERDATE") == (p1,)
        assert query.predicates_on("O_TOTALPRICE") == ()


class TestAggregateSpec:
    def test_count_needs_no_argument(self):
        spec = AggregateSpec(group_by=("a",), function=AggregateFunction.COUNT)
        assert spec.argument is None

    def test_sum_requires_argument(self):
        with pytest.raises(PlanError):
            AggregateSpec(group_by=("a",), function=AggregateFunction.SUM)


class TestPlanBuilders:
    def test_scanner_kind_dispatch(self, orders_row, orders_column):
        from repro.engine.operators.scan_column import ColumnScanner
        from repro.engine.operators.scan_fused import FusedColumnScanner
        from repro.engine.operators.scan_row import RowScanner

        query = ScanQuery("ORDERS", select=("O_CUSTKEY",))
        assert isinstance(
            scan_plan(ExecutionContext(), orders_row, query), RowScanner
        )
        assert isinstance(
            scan_plan(ExecutionContext(), orders_column, query), ColumnScanner
        )
        assert isinstance(
            scan_plan(
                ExecutionContext(),
                orders_column,
                query,
                ColumnScannerKind.FUSED,
            ),
            FusedColumnScanner,
        )

    def test_unknown_attribute_rejected_at_plan_time(self, orders_row):
        query = ScanQuery("ORDERS", select=("NOPE",))
        with pytest.raises(Exception):
            scan_plan(ExecutionContext(), orders_row, query)


class TestExecutionContext:
    def test_reset_events(self):
        context = ExecutionContext()
        context.events.tuples_examined = 10
        context.reset_events()
        assert context.events.tuples_examined == 0

    def test_defaults(self):
        context = ExecutionContext()
        assert context.block_size == 100
        assert not context.compressed_execution
