"""Page-format tests: dense packing, trailers, capacities."""

import numpy as np
import pytest

from repro.compression.base import CodecKind, CodecSpec
from repro.compression.registry import build_codec
from repro.data.tpch import orders_schema
from repro.errors import PageFormatError, StorageError
from repro.storage.page import (
    DEFAULT_PAGE_SIZE,
    PAGE_HEADER_BYTES,
    PAGE_TRAILER_BYTES,
    ColumnPageCodec,
    RowPageCodec,
    page_payload_bytes,
)
from repro.types.datatypes import IntType


def orders_columns(n, seed=0):
    from repro.data.tpch import generate_orders

    data = generate_orders(n, seed=seed)
    return data.schema, data.columns


class TestPagePayload:
    def test_default_payload(self):
        assert page_payload_bytes(4096) == 4096 - PAGE_HEADER_BYTES - PAGE_TRAILER_BYTES

    def test_tiny_page_rejected(self):
        with pytest.raises(StorageError):
            page_payload_bytes(PAGE_HEADER_BYTES + PAGE_TRAILER_BYTES)


class TestRowPageCodec:
    def test_capacity_matches_paper_arithmetic(self):
        schema = orders_schema()
        codec = RowPageCodec(schema, DEFAULT_PAGE_SIZE)
        assert codec.stride == 32
        assert codec.tuples_per_page == page_payload_bytes(DEFAULT_PAGE_SIZE) // 32

    def test_roundtrip(self):
        schema, columns = orders_columns(50)
        codec = RowPageCodec(schema)
        page = codec.encode(7, {k: v[:50] for k, v in columns.items()})
        assert len(page) == DEFAULT_PAGE_SIZE
        page_id, rows = codec.decode(page)
        assert page_id == 7
        assert len(rows) == 50
        np.testing.assert_array_equal(
            codec.column_from_rows(rows, "O_ORDERKEY"), columns["O_ORDERKEY"][:50]
        )

    def test_decode_columns_interface(self):
        schema, columns = orders_columns(20)
        codec = RowPageCodec(schema)
        page = codec.encode(0, {k: v[:20] for k, v in columns.items()})
        page_id, count, decoded = codec.decode_columns(page)
        assert (page_id, count) == (0, 20)
        for name in schema.attribute_names:
            np.testing.assert_array_equal(decoded[name], columns[name][:20])

    def test_overflow_rejected(self):
        schema, columns = orders_columns(200)
        codec = RowPageCodec(schema, page_size=512)
        with pytest.raises(PageFormatError):
            codec.encode(0, columns)

    def test_ragged_slices_rejected(self):
        schema, columns = orders_columns(10)
        codec = RowPageCodec(schema)
        bad = {k: v[:10] for k, v in columns.items()}
        bad["O_CUSTKEY"] = bad["O_CUSTKEY"][:5]
        with pytest.raises(PageFormatError):
            codec.encode(0, bad)

    def test_wrong_page_size_rejected(self):
        schema, _ = orders_columns(1)
        codec = RowPageCodec(schema)
        with pytest.raises(PageFormatError):
            codec.decode(b"\x00" * 100)


class TestColumnPageCodec:
    def _codec(self, spec_kind=CodecKind.NONE, bits=32):
        spec = CodecSpec(kind=spec_kind, bits=bits)
        return ColumnPageCodec(build_codec(spec, IntType()))

    def test_uncompressed_capacity(self):
        codec = self._codec()
        assert codec.values_per_page == page_payload_bytes(DEFAULT_PAGE_SIZE) // 4

    def test_packed_capacity_scales_with_bits(self):
        packed = ColumnPageCodec(
            build_codec(CodecSpec(kind=CodecKind.PACK, bits=8), IntType())
        )
        assert packed.values_per_page == page_payload_bytes(DEFAULT_PAGE_SIZE)

    def test_roundtrip_with_base_in_trailer(self):
        spec = CodecSpec(kind=CodecKind.FOR, bits=16)
        codec = ColumnPageCodec(build_codec(spec, IntType()))
        values = np.arange(1_000, 1_100)
        page = codec.encode(3, values)
        page_id, decoded = codec.decode(page)
        assert page_id == 3
        np.testing.assert_array_equal(decoded, values)

    def test_decode_raw_exposes_state(self):
        spec = CodecSpec(kind=CodecKind.FOR, bits=16)
        codec = ColumnPageCodec(build_codec(spec, IntType()))
        page = codec.encode(0, np.arange(500, 510))
        _pid, count, payload, state = codec.decode_raw(page)
        assert count == 10
        assert state.base == 500
        assert len(payload) == page_payload_bytes(DEFAULT_PAGE_SIZE)

    def test_overflow_rejected(self):
        codec = self._codec()
        too_many = np.zeros(codec.values_per_page + 1, dtype=np.int64)
        with pytest.raises(PageFormatError):
            codec.encode(0, too_many)
