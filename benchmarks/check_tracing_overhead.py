"""CI gate: the tracing and governance no-op paths must stay within 5%.

The observability layer promises zero-overhead when disabled: with
``ExecutionContext.tracer is None`` the operator layer takes one
attribute load plus a branch per ``open()``/``next()``/``close()``
call.  This script measures that promise on ``bench_engine_micro``'s
smallest configuration (the 4,000-row pipelined column scan at 10%
selectivity):

1. **baseline** — ``Operator.open/next/close`` temporarily replaced by
   the pre-instrumentation (seed) bodies, metrics disabled;
2. **no-op** — the shipped instrumented methods, tracer ``None``,
   metrics disabled.

A second paired gate holds query lifecycle governance (see
:mod:`repro.engine.governance`) to the same promise: with
``ExecutionContext.governance is None`` every checkpoint — the one in
``Operator.next()`` and the per-page ``_governance_check()`` calls
inside the scanners — costs one attribute load plus a branch.  The
governance arms swap only those checkpoints (shipped vs stubbed-out),
so the measured ratio isolates the disabled-governance cost.

A third paired gate covers the flight recorder, which — unlike tracing
and governance — ships **enabled by default**.  Its arms run the same
concurrent scheduler batch (where every recorder emit point lives)
with the recorder module flag off vs on, holding the enabled-by-default
cost of :mod:`repro.obs.recorder` to the same 5% budget.

A fourth paired gate prices the hybrid write path's read-side promise:
with nothing staged and nothing deleted, dispatching a scan through
:func:`repro.engine.hybrid.run_scan_with_store` (the route every
Database query now takes) must cost no more than the plain
``run_scan`` — the empty-delta fast path is one ``has_changes`` check.

Measurement is built for noisy shared runners: both arms alternate in
paired cycles (each block re-warmed after the method swap, because
swapping class attributes invalidates CPython's adaptive
specialization), each sample times a whole batch of scans, the
per-cycle ratio pairs arms under the same machine conditions, and the
attempt's verdict is the median cycle ratio.  Because load spikes can
only inflate the measured ratio, the gate retries a failing attempt up
to ``--attempts`` times and passes if any attempt lands under the
threshold (default 5%, override via ``REPRO_OVERHEAD_THRESHOLD``).

It also emits artifacts under ``--out``: a provenance-stamped
``overhead.json`` with the measurements, plus a demo Chrome trace and
EXPLAIN ANALYZE text from one traced execution, so every CI run leaves
an inspectable trace behind.

Usage::

    python benchmarks/check_tracing_overhead.py --out obs-artifacts
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import sys
import time

from repro.data.tpch import generate_lineitem
from repro.engine.blocks import Block
from repro.engine.executor import run_scan
from repro.engine.operators.base import Operator
from repro.engine.predicate import predicate_for_selectivity
from repro.engine.query import ScanQuery
from repro.errors import EngineError
from repro.obs import SpanTracer, chrome_trace, flat_profile, metrics, render_explain
from repro.obs import recorder as flight
from repro.obs.provenance import provenance
from repro.engine.context import ExecutionContext
from repro.engine.scheduler import Scheduler
from repro.storage.layout import Layout
from repro.storage.loader import load_table

#: bench_engine_micro's smallest engine config.
ROWS = 4_000
SELECTIVITY = 0.10
SELECT = ("L_PARTKEY", "L_ORDERKEY", "L_QUANTITY", "L_SHIPMODE")


# --- the seed (pre-instrumentation) operator methods ----------------------


def _seed_open(self) -> None:
    for child in self.children():
        child.open()
    self._open()
    self._opened = True


def _seed_next(self) -> Block | None:
    if not self._opened:
        raise EngineError(f"{type(self).__name__}.next() before open()")
    block = self._next()
    if block is not None and len(block):
        self.events.blocks_produced += 1
    return block


def _seed_close(self) -> None:
    self._close()
    for child in self.children():
        child.close()
    self._opened = False


_INSTRUMENTED = (Operator.open, Operator.next, Operator.close)
_SEED = (_seed_open, _seed_next, _seed_close)


# --- the governance-free checkpoint bodies --------------------------------


def _nogov_next(self) -> Block | None:
    # The shipped Operator.next() minus the governance checkpoint.
    if not self._opened:
        raise EngineError(f"{type(self).__name__}.next() before open()")
    tracer = self.context.tracer
    if tracer is None:
        block = self._next()
        if block is not None and len(block):
            self.events.blocks_produced += 1
        return block
    frame = tracer.enter(self, "next")
    rows = 0
    blocks = 0
    try:
        block = self._next()
        if block is not None and len(block):
            self.events.blocks_produced += 1
            rows = len(block)
            blocks = 1
        return block
    finally:
        tracer.exit(frame, self.context.events, rows=rows, blocks=blocks)


def _nogov_check(self) -> None:
    pass


_GOVERNED = (Operator.next, Operator._governance_check)
_UNGOVERNED = (_nogov_next, _nogov_check)

#: Scans per timed sample: batching amortizes timer and scheduler noise
#: that dominates a single ~1 ms scan.
BATCH = 20


def _use(methods) -> None:
    Operator.open, Operator.next, Operator.close = methods


def _workload():
    data = generate_lineitem(ROWS, seed=5)
    table = load_table(data, Layout.COLUMN)
    predicate = predicate_for_selectivity(
        "L_PARTKEY", data.column("L_PARTKEY"), SELECTIVITY
    )
    query = ScanQuery("LINEITEM", select=SELECT, predicates=(predicate,))
    return table, query


def _sample(table, query) -> float:
    started = time.perf_counter()
    for _ in range(BATCH):
        result = run_scan(table, query)
    assert result.num_tuples > 0
    return time.perf_counter() - started


def _paired(
    cycles: int, samples: int, use_baseline, use_candidate, sample=None
) -> tuple[float, list[float]]:
    """One attempt: (median cycle ratio - 1, the per-cycle ratios).

    ``sample`` defaults to the single-query :func:`_sample`; the
    recorder gate passes :func:`_scheduler_sample` instead so its arms
    exercise the scheduler paths the recorder instruments.
    """
    import statistics

    sample = sample or _sample
    table, query = _workload()
    ratios = []
    try:
        for _ in range(cycles):
            use_baseline()
            sample(table, query)  # re-specialize after the method swap
            sample(table, query)
            baseline = min(sample(table, query) for _ in range(samples))
            use_candidate()
            sample(table, query)
            sample(table, query)
            candidate = min(sample(table, query) for _ in range(samples))
            ratios.append(candidate / baseline)
    finally:
        use_candidate()  # leave the shipped methods installed
    return statistics.median(ratios) - 1.0, ratios


def measure(cycles: int, samples: int) -> tuple[float, list[float]]:
    """Tracing gate: seed bodies vs shipped instrumented bodies."""
    return _paired(
        cycles, samples, lambda: _use(_SEED), lambda: _use(_INSTRUMENTED)
    )


def _use_governance(methods) -> None:
    Operator.next, Operator._governance_check = methods


def measure_governance(cycles: int, samples: int) -> tuple[float, list[float]]:
    """Governance gate: stubbed checkpoints vs shipped checkpoints."""
    return _paired(
        cycles,
        samples,
        lambda: _use_governance(_UNGOVERNED),
        lambda: _use_governance(_GOVERNED),
    )


#: Concurrent batches per recorder-gate sample: each batch runs
#: ``SCHED_CLIENTS`` queries through one shared-scan scheduler, hitting
#: every recorder emit point (submit/admit/slice/attach/wrap/detach/done).
SCHED_BATCH = 5
SCHED_CLIENTS = 8


def _scheduler_sample(table, query) -> float:
    started = time.perf_counter()
    for _ in range(SCHED_BATCH):
        scheduler = Scheduler(max_inflight=SCHED_CLIENTS, share_scans=True)
        for index in range(SCHED_CLIENTS):
            scheduler.submit(table, query, label=f"overhead client-{index}")
        scheduler.run()
        assert scheduler.failed == 0
    return time.perf_counter() - started


def measure_recorder(cycles: int, samples: int) -> tuple[float, list[float]]:
    """Recorder gate: flight recorder disabled vs enabled (the default).

    No method swapping — the arms flip the module flag that every
    guarded ``flight.record()`` call checks, which is exactly the knob
    a user has.  The candidate arm (enabled) is the shipped default, so
    this gate prices the recorder's always-on promise.
    """
    return _paired(
        cycles, samples, flight.disable, flight.enable, sample=_scheduler_sample
    )


#: Arm selector for the write-path gate (no method swapping: the arms
#: differ only in which entry point dispatches the scan).
_WRITE_ARM = {"hybrid": False}
_WRITE_STORE = None


def _write_sample(table, query) -> float:
    from repro.engine.hybrid import run_scan_with_store

    started = time.perf_counter()
    if _WRITE_ARM["hybrid"]:
        for _ in range(BATCH):
            result = run_scan_with_store(table, query, _WRITE_STORE)
    else:
        for _ in range(BATCH):
            result = run_scan(table, query)
    assert result.num_tuples > 0
    return time.perf_counter() - started


def measure_write_path(cycles: int, samples: int) -> tuple[float, list[float]]:
    """Write-path gate: plain scan vs hybrid dispatch with an empty delta.

    Every table now carries a write store, so every query pays the
    hybrid dispatch (one ``has_changes`` check) even when nothing is
    staged.  The candidate arm routes through
    :func:`repro.engine.hybrid.run_scan_with_store` with an attached
    but empty store — the exact read path of a clean table — and must
    stay within the same 5% budget as the other disabled-feature arms.
    """
    from repro.storage.write_store import WriteOptimizedStore

    global _WRITE_STORE
    data = generate_lineitem(ROWS, seed=5)
    store = WriteOptimizedStore(data.schema)
    store.attach_base(data.num_rows)
    _WRITE_STORE = store
    return _paired(
        cycles,
        samples,
        lambda: _WRITE_ARM.__setitem__("hybrid", False),
        lambda: _WRITE_ARM.__setitem__("hybrid", True),
        sample=_write_sample,
    )


def demo_artifacts(out_dir: pathlib.Path) -> None:
    """One traced execution: Chrome trace + EXPLAIN text + flat profile."""
    data = generate_lineitem(ROWS, seed=5)
    table = load_table(data, Layout.COLUMN)
    predicate = predicate_for_selectivity(
        "L_PARTKEY", data.column("L_PARTKEY"), SELECTIVITY
    )
    query = ScanQuery("LINEITEM", select=SELECT, predicates=(predicate,))
    context = ExecutionContext(tracer=SpanTracer())
    run_scan(table, query, context)
    explain_text = render_explain(context.tracer)
    (out_dir / "explain_analyze.txt").write_text(explain_text + "\n")
    (out_dir / "chrome_trace.json").write_text(
        json.dumps(chrome_trace(context.tracer), indent=2) + "\n"
    )
    (out_dir / "profile.json").write_text(
        json.dumps(flat_profile(context.tracer, provenance=provenance()), indent=2)
        + "\n"
    )
    print(explain_text)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--cycles", type=int, default=5, help="paired A/B cycles")
    parser.add_argument(
        "--samples", type=int, default=4, help="timed batches per arm per cycle"
    )
    parser.add_argument(
        "--attempts",
        type=int,
        default=3,
        help="retries for a failing measurement (noise only inflates it)",
    )
    parser.add_argument(
        "--out",
        default="obs-artifacts",
        help="directory for overhead.json + demo trace artifacts",
    )
    args = parser.parse_args(argv)
    threshold = float(os.environ.get("REPRO_OVERHEAD_THRESHOLD", "0.05"))

    out_dir = pathlib.Path(args.out)
    out_dir.mkdir(parents=True, exist_ok=True)

    def run_gate(name: str, measurer) -> tuple[float, list[dict]]:
        attempts = []
        overhead = float("inf")
        for attempt in range(args.attempts):
            overhead, ratios = measurer(args.cycles, args.samples)
            attempts.append({"overhead_fraction": overhead, "cycle_ratios": ratios})
            print(
                f"{name} attempt {attempt + 1}: cycle ratios "
                + " ".join(f"{(r - 1) * 100:+.2f}%" for r in ratios)
                + f" -> median {overhead * 100:+.2f}%"
            )
            if overhead <= threshold:
                break
        return overhead, attempts

    # Quiesce the whole obs layer: these arms are the "disabled" promise.
    # The recorder gate also runs here so metrics noise is identical in
    # both of its arms; only the recorder flag differs between them.
    metrics.disable()
    try:
        tracing_overhead, tracing_attempts = run_gate("tracing", measure)
        governance_overhead, governance_attempts = run_gate(
            "governance", measure_governance
        )
        recorder_overhead, recorder_attempts = run_gate(
            "recorder", measure_recorder
        )
        write_overhead, write_attempts = run_gate(
            "write-path", measure_write_path
        )
    finally:
        metrics.enable()

    ok = True
    for name, overhead in (
        ("tracing no-op", tracing_overhead),
        ("governance no-op", governance_overhead),
        ("recorder enabled-by-default", recorder_overhead),
        ("write-path empty-delta", write_overhead),
    ):
        verdict = "OK" if overhead <= threshold else "FAIL"
        ok = ok and overhead <= threshold
        print(
            f"{name} overhead: {overhead * 100:+.2f}% "
            f"(threshold {threshold * 100:.0f}%) -> {verdict}"
        )
    (out_dir / "overhead.json").write_text(
        json.dumps(
            {
                "rows": ROWS,
                "selectivity": SELECTIVITY,
                "batch": BATCH,
                "overhead_fraction": tracing_overhead,
                "threshold": threshold,
                "ok": ok,
                "attempts": tracing_attempts,
                "governance": {
                    "overhead_fraction": governance_overhead,
                    "attempts": governance_attempts,
                },
                "recorder": {
                    "overhead_fraction": recorder_overhead,
                    "attempts": recorder_attempts,
                },
                "write_path": {
                    "overhead_fraction": write_overhead,
                    "attempts": write_attempts,
                },
                "provenance": provenance(),
            },
            indent=2,
        )
        + "\n"
    )
    demo_artifacts(out_dir)
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
