"""Hybrid base+delta read path: differential equivalence and lifecycle.

The tentpole contract: a table with staged inserts and a populated
delete vector answers every query **byte-identically** to a freshly
rebuilt table, through every scanner architecture, the partitioned
parallel executor at several worker counts, and the cooperative
scheduler with shared scans on and off.  On top sit the write
lifecycle pieces: write memory budgets, merge under governance,
stable sort-key reclustering, background (incremental) merge through
the scheduler, and the write-store telemetry surface.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.tpch import generate_orders
from repro.database import Database
from repro.engine.executor import run_scan
from repro.engine.governance import QueryContext
from repro.engine.hybrid import build_overlay, run_scan_with_store
from repro.engine.plan import ColumnScannerKind
from repro.engine.query import ScanQuery
from repro.errors import (
    GovernanceError,
    MemoryBudgetExceeded,
    PlanError,
    SchemaError,
    StorageError,
)
from repro.storage.layout import Layout
from repro.storage.loader import load_table
from repro.storage.write_store import WriteOptimizedStore
from repro.types.datatypes import IntType
from repro.types.schema import Attribute, TableSchema
from repro.data.generator import GeneratedTable

ROWS = 240
SELECT = ("O_ORDERKEY", "O_TOTALPRICE", "O_ORDERDATE")

ARCHITECTURES = (
    ("row", Layout.ROW, ColumnScannerKind.PIPELINED),
    ("pax", Layout.PAX, ColumnScannerKind.PIPELINED),
    ("column", Layout.COLUMN, ColumnScannerKind.PIPELINED),
    ("fused", Layout.COLUMN, ColumnScannerKind.FUSED),
)


def _dirty_database(layout: Layout, sort_key: str | None = None) -> tuple:
    """A Database with staged inserts and deletes on both legs."""
    data = generate_orders(ROWS, seed=11)
    db = Database(layouts=(layout,))
    db.create_table(data, sort_key=sort_key)
    name = data.schema.name
    staged = [
        tuple(data.columns[a.name][index] for a in data.schema)
        for index in (3, 7, 7, 11)
    ]
    db.insert_many(name, staged)
    # Base deletes, a staged delete, and a re-delete (idempotent).
    db.delete(name, positions=[0, 5, ROWS - 1, ROWS + 1, 5])
    return db, data, name


def _assert_same(result, expected) -> None:
    np.testing.assert_array_equal(result.positions, expected.positions)
    assert set(result.columns) == set(expected.columns)
    for attr, column in expected.columns.items():
        np.testing.assert_array_equal(result.columns[attr], column)


@pytest.mark.parametrize("arch,layout,scanner", ARCHITECTURES)
def test_hybrid_equals_rebuilt_serial(arch, layout, scanner):
    db, data, name = _dirty_database(layout)
    predicate = db.predicate(name, "O_TOTALPRICE", 0.6)
    query = ScanQuery(name, select=SELECT, predicates=(predicate,))
    rebuilt = db.write_store(name).rebuild(db.table(name))
    expected = run_scan(rebuilt, query, column_scanner=scanner)
    result = db.query(
        name, select=SELECT, predicates=(predicate,), column_scanner=scanner
    )
    _assert_same(result, expected)


@pytest.mark.parametrize("arch,layout,scanner", ARCHITECTURES)
@pytest.mark.parametrize("workers", [1, 2, 4])
def test_hybrid_equals_rebuilt_parallel(arch, layout, scanner, workers):
    """Partitioned parallel scan + post-hoc overlay == rebuilt table.

    Drives :func:`repro.engine.parallel.parallel_query` directly (the
    Database clamps ``workers`` to ``os.cpu_count()``, which can be 1
    on CI runners) with the overlay snapshotted before the fan-out —
    the exact transform ``Database.query`` applies.
    """
    from repro.engine.parallel import parallel_query

    db, data, name = _dirty_database(layout)
    store = db.write_store(name)
    predicate = db.predicate(name, "O_TOTALPRICE", 0.5)
    query = ScanQuery(name, select=SELECT, predicates=(predicate,))
    rebuilt = store.rebuild(db.table(name))
    expected = run_scan(rebuilt, query, column_scanner=scanner)
    overlay = build_overlay(store, query)
    result = overlay.apply(
        parallel_query(
            db.table(name),
            query,
            workers=workers,
            partitions=workers,
            column_scanner=scanner,
        )
    )
    _assert_same(result, expected)
    # The facade route (clamped workers) must agree as well.
    _assert_same(
        db.query(
            name,
            select=SELECT,
            predicates=(predicate,),
            workers=workers,
            column_scanner=scanner,
        ),
        expected,
    )


@pytest.mark.parametrize("arch,layout,scanner", ARCHITECTURES)
@pytest.mark.parametrize("sharing", [False, True])
def test_hybrid_equals_rebuilt_scheduler(arch, layout, scanner, sharing):
    db, data, name = _dirty_database(layout)
    predicate = db.predicate(name, "O_TOTALPRICE", 0.4)
    query = ScanQuery(name, select=SELECT, predicates=(predicate,))
    rebuilt = db.write_store(name).rebuild(db.table(name))
    expected = run_scan(rebuilt, query)
    handles = db.run_workload(
        [
            dict(table=name, select=SELECT, predicates=(predicate,)),
            dict(table=name, select=SELECT, predicates=(predicate,)),
        ],
        share_scans=sharing,
        column_scanner=scanner,
    )
    for handle in handles:
        assert handle.error is None
        _assert_same(handle.result, expected)


def test_hybrid_positions_are_remapped_not_global():
    """Positions must address the rebuilt table, not the base snapshot."""
    db, data, name = _dirty_database(Layout.COLUMN)
    result = db.query(name, select=("O_ORDERKEY",))
    # Deleted base rows 0 and 5: the first surviving row is global row 1
    # but rebuilt position 0, and positions are dense [0, live).
    live = ROWS + 4 - 4  # base + staged - deleted
    assert result.positions.tolist() == list(range(live))


def test_unfiltered_hybrid_row_content():
    db, data, name = _dirty_database(Layout.COLUMN)
    result = db.query(name, select=("O_ORDERKEY",))
    keys = data.columns["O_ORDERKEY"]
    expected = [
        int(keys[i]) for i in range(ROWS) if i not in (0, 5, ROWS - 1)
    ] + [int(keys[3]), int(keys[7]), int(keys[11])]
    assert result.columns["O_ORDERKEY"].tolist() == expected


def test_views_bypassed_while_dirty_and_rebuilt_after_merge():
    data = generate_orders(ROWS, seed=11)
    db = Database(layouts=(Layout.COLUMN,))
    db.create_table(data)
    name = data.schema.name
    view = db.create_view(name, ("O_ORDERKEY", "O_TOTALPRICE"))
    assert view.table.num_rows == ROWS
    row = tuple(data.columns[a.name][0] for a in data.schema)
    db.insert(name, row)
    # Dirty: the query answers from the hybrid path, seeing the insert.
    result = db.query(name, select=("O_ORDERKEY",))
    assert len(result.positions) == ROWS + 1
    db.merge(name)
    # Views were re-materialized against the merged base.
    entry_view = db._entry(name).router.views[0]
    assert entry_view.table.num_rows == ROWS + 1
    result = db.query(name, select=("O_ORDERKEY",))
    assert len(result.positions) == ROWS + 1


def test_merge_stable_sort_keeps_insertion_order_for_duplicate_keys():
    """Satellite: duplicate sort keys preserve insertion order (stable)."""
    schema = TableSchema(
        "S",
        attributes=(Attribute("k", IntType()), Attribute("v", IntType())),
    )
    data = GeneratedTable(
        schema=schema,
        columns={
            "k": np.array([2, 1, 2, 1], dtype=np.int64),
            "v": np.array([10, 11, 12, 13], dtype=np.int64),
        },
    )
    db = Database(layouts=(Layout.COLUMN,))
    db.create_table(data, sort_key="k")
    # Stage duplicates of both keys; they must land AFTER the base rows
    # with equal keys, in insertion order.
    db.insert_many("S", [(1, 20), (2, 21), (1, 22)])
    db.merge("S")
    result = db.query("S", select=("k", "v"))
    assert result.columns["k"].tolist() == [1, 1, 1, 1, 2, 2, 2]
    assert result.columns["v"].tolist() == [11, 13, 20, 22, 10, 12, 21]
    # A second merge with no changes is a stable no-op.
    db.insert("S", (1, 30))
    db.merge("S")
    result = db.query("S", select=("v",), predicates=())
    assert result.columns["v"].tolist() == [11, 13, 20, 22, 30, 10, 12, 21]


def test_write_budget_enforced_and_drained_by_merge():
    data = generate_orders(20, seed=3)
    row_bytes = sum(a.attr_type.width for a in data.schema)
    db = Database(layouts=(Layout.COLUMN,))
    db.create_table(data, write_budget=row_bytes * 2)
    name = data.schema.name
    row = tuple(data.columns[a.name][0] for a in data.schema)
    db.insert(name, row)
    db.insert(name, row)
    with pytest.raises(MemoryBudgetExceeded):
        db.insert(name, row)
    db.merge(name)
    db.insert(name, row)  # budget drained by the merge
    assert len(db.write_store(name)) == 1


def test_writes_frozen_during_merge():
    data = generate_orders(20, seed=3)
    store = WriteOptimizedStore(data.schema)
    store.attach_base(data.num_rows)
    row = tuple(data.columns[a.name][0] for a in data.schema)
    store.insert(row)
    store.begin_merge()
    with pytest.raises(StorageError, match="merge"):
        store.insert(row)
    with pytest.raises(StorageError, match="merge"):
        store.delete([0])
    store.end_merge()
    store.insert(row)
    assert len(store) == 2


def test_insert_arity_checked():
    data = generate_orders(10, seed=3)
    db = Database(layouts=(Layout.COLUMN,))
    db.create_table(data)
    with pytest.raises(SchemaError):
        db.insert(data.schema.name, (1, 2))


def test_delete_rejects_predicates_plus_positions():
    db, data, name = _dirty_database(Layout.COLUMN)
    predicate = db.predicate(name, "O_TOTALPRICE", 0.5)
    with pytest.raises(PlanError):
        db.delete(name, predicates=(predicate,), positions=[1])


def test_predicate_delete_covers_base_and_staged():
    db, data, name = _dirty_database(Layout.COLUMN)
    predicate = db.predicate(name, "O_TOTALPRICE", 0.5)
    db.delete(name, predicates=(predicate,))
    result = db.query(name, select=SELECT, predicates=(predicate,))
    assert result.num_tuples == 0
    # The complement population is untouched and still byte-identical
    # to the rebuilt table.
    rebuilt = db.write_store(name).rebuild(db.table(name))
    _assert_same(
        db.query(name, select=SELECT),
        run_scan(rebuilt, ScanQuery(name, select=SELECT)),
    )


def test_merge_under_governance_deadline_aborts_typed():
    db, data, name = _dirty_database(Layout.COLUMN)
    store = db.write_store(name)
    governance = QueryContext.start(timeout=0.0, label="doomed merge")
    with pytest.raises(GovernanceError):
        store.rebuild(db.table(name), governance=governance)
    # The store is writable again after the typed abort.
    row = tuple(data.columns[a.name][0] for a in data.schema)
    db.insert(name, row)


def test_background_merge_snapshot_semantics():
    db, data, name = _dirty_database(Layout.COLUMN)
    predicate = db.predicate(name, "O_TOTALPRICE", 0.5)
    rebuilt = db.write_store(name).rebuild(db.table(name))
    expected = run_scan(
        rebuilt, ScanQuery(name, select=SELECT, predicates=(predicate,))
    )
    # Submit a query BEFORE the merge: its overlay snapshots the
    # pre-merge state, so it must answer identically no matter how far
    # the merge has progressed when it runs.
    before = db.submit(name, select=SELECT, predicates=(predicate,))
    job = db.merge(name, background=True)
    while db.scheduler.poll():
        pass
    assert job.done and not job.failed
    assert job.result == ROWS + 4 - 4
    _assert_same(before.result, expected)
    # Writes unfroze and the store drained.
    assert not db.write_store(name).has_changes
    assert db.write_store(name).base_rows == job.result
    # A query after the merge sees the merged base directly.
    _assert_same(
        db.query(name, select=SELECT, predicates=(predicate,)), expected
    )
    # The job shows up on the scheduler board.
    jobs = db.scheduler.board()["jobs"]
    assert any(j["done"] and not j["failed"] for j in jobs)


def test_background_merge_failure_unfreezes_and_reports():
    db, data, name = _dirty_database(Layout.COLUMN)
    entry = db._entry(name)
    # Sabotage the catalog so the rebuild step raises a typed error.
    entry.data = GeneratedTable(
        schema=entry.data.schema,
        columns={k: v[:-1] for k, v in entry.data.columns.items()},
    )
    job = db.merge(name, background=True)
    while db.scheduler.poll():
        pass
    assert job.done and job.failed
    assert not db.write_store(name).merging  # unfrozen on abort


def test_write_board_and_metrics_surface():
    from repro.obs import metrics as obs_metrics

    db, data, name = _dirty_database(Layout.COLUMN)
    board = db.write_board()
    assert board[name]["staged"] == 4
    assert board[name]["deleted"] == 4
    assert board[name]["base_rows"] == ROWS
    assert board[name]["staged_bytes"] > 0
    assert not board[name]["merging"]
    rendered = obs_metrics.REGISTRY.render()
    assert "repro_write_staged_rows_total" in rendered
    db.merge(name)
    board = db.write_board()
    assert board[name]["staged"] == 0 and board[name]["deleted"] == 0


def test_dashboard_renders_write_panel():
    from repro.obs.dashboard import render_board, render_html

    db, data, name = _dirty_database(Layout.COLUMN)
    text = render_board(write_board=db.write_board())
    assert "write stores" in text
    assert name in text
    html = render_html(write_board=db.write_board())
    assert "write stores" in html


def test_flight_recorder_sees_write_lifecycle():
    from repro.obs import recorder as flight

    db, data, name = _dirty_database(Layout.COLUMN)
    db.merge(name)
    kinds = [event.kind for event in flight.RECORDER.events()]
    for kind in (
        "write.stage",
        "write.delete",
        "write.merge.begin",
        "write.merge.commit",
    ):
        assert kind in kinds


def test_overlay_apply_matches_operator_path():
    """Post-hoc overlay application == in-plan HybridUnion, exactly."""
    data = generate_orders(ROWS, seed=11)
    table = load_table(data, Layout.COLUMN)
    store = WriteOptimizedStore(data.schema)
    store.attach_base(data.num_rows)
    staged = [
        tuple(data.columns[a.name][index] for a in data.schema)
        for index in (1, 2)
    ]
    store.insert_many(staged)
    store.delete([4, ROWS])
    query = ScanQuery(data.schema.name, select=SELECT)
    operator_result = run_scan_with_store(table, query, store)
    overlay = build_overlay(store, query)
    posthoc = overlay.apply(run_scan(table, query))
    _assert_same(posthoc, operator_result)


def test_iosim_merge_competition_model():
    from repro.iosim import measure_merge_competition

    measurement = measure_merge_competition(4 * 1024 * 1024)
    assert measurement.slowdown >= 1.0
    assert measurement.merge_stretch >= 1.0
    assert measurement.merge_solo_seconds > measurement.query_solo_seconds
    payload = measurement.as_dict()
    assert payload["slowdown"] == measurement.slowdown
