"""I/O request and file-extent primitives."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SimulationError


@dataclass(frozen=True)
class FileExtent:
    """One file to be scanned: a name and its size in bytes.

    Files are striped across the whole array, so the simulator needs no
    per-disk placement — a transfer of one I/O unit engages every disk
    in parallel.
    """

    name: str
    size_bytes: int

    def __post_init__(self) -> None:
        if self.size_bytes < 0:
            raise SimulationError(f"negative file size: {self.size_bytes}")


@dataclass
class IoRequest:
    """One array-wide I/O unit in flight.

    ``submit_time``/``seq`` define the FIFO service order; the
    controller fills in ``start_time``/``finish_time`` when served.
    """

    stream_name: str
    file_name: str
    offset: int
    size_bytes: int
    submit_time: float
    seq: int
    window_id: int
    start_time: float = field(default=0.0)
    finish_time: float = field(default=0.0)

    @property
    def end_offset(self) -> int:
        return self.offset + self.size_bytes

    def sort_key(self) -> tuple[float, int]:
        return (self.submit_time, self.seq)
