"""The Section 5 analytical model.

Predicts the tuples/sec rate of row and column scans — and hence the
column-over-row speedup — from a handful of parameters: the files read,
per-operator instruction counts, memory bandwidth, and the single
hardware knob **cpdb** (CPU cycles per sequentially delivered disk
byte).
"""

from repro.model.params import HardwareParams, QueryShape, ScannerParams
from repro.model.rates import (
    cpu_rate,
    disk_rate_column,
    disk_rate_row,
    operator_rate,
    parallel_rate,
    scanner_rate,
)
from repro.model.speedup import (
    SpeedupModel,
    crossover_projectivity,
    speedup,
)
from repro.model.contour import speedup_grid
from repro.model.calibrate import scanner_params_from_measurement
from repro.model.trends import (
    TrendPoint,
    columns_more_attractive_over_time,
    projected_cpdb,
    speedup_trajectory,
)

__all__ = [
    "HardwareParams",
    "QueryShape",
    "ScannerParams",
    "parallel_rate",
    "operator_rate",
    "scanner_rate",
    "cpu_rate",
    "disk_rate_row",
    "disk_rate_column",
    "speedup",
    "SpeedupModel",
    "crossover_projectivity",
    "speedup_grid",
    "scanner_params_from_measurement",
    "projected_cpdb",
    "speedup_trajectory",
    "TrendPoint",
    "columns_more_attractive_over_time",
]
