"""Physical-design advisor tests."""

import pytest

from repro.data.tpch import orders_schema
from repro.design.mv_advisor import MaterializedViewAdvisor
from repro.design.physical import LayoutAdvisor
from repro.engine.query import ScanQuery
from repro.errors import PlanError
from repro.storage.layout import Layout


def q(*select):
    return ScanQuery("ORDERS", select=tuple(select))


class TestMvAdvisor:
    def test_single_query_workload(self):
        advisor = MaterializedViewAdvisor(orders_schema())
        views = advisor.advise([q("O_ORDERDATE", "O_TOTALPRICE")])
        assert views
        best = views[0]
        assert set(best.attributes) == {"O_ORDERDATE", "O_TOTALPRICE"}
        assert best.coverage == 1.0
        assert best.view_width == 8
        assert best.bytes_saved_fraction == pytest.approx(1 - 8 / 32)

    def test_union_candidate_covers_both_queries(self):
        advisor = MaterializedViewAdvisor(orders_schema())
        views = advisor.advise(
            [q("O_ORDERDATE", "O_TOTALPRICE"), q("O_ORDERDATE", "O_CUSTKEY")],
            max_views=10,
        )
        full_coverage = [v for v in views if v.coverage == 1.0]
        assert full_coverage
        assert set(full_coverage[0].attributes) == {
            "O_ORDERDATE",
            "O_TOTALPRICE",
            "O_CUSTKEY",
        }

    def test_attributes_in_schema_order(self):
        advisor = MaterializedViewAdvisor(orders_schema())
        views = advisor.advise([q("O_TOTALPRICE", "O_ORDERDATE")])
        assert views[0].attributes == ("O_ORDERDATE", "O_TOTALPRICE")

    def test_affinity_counts(self):
        advisor = MaterializedViewAdvisor(orders_schema())
        counts = advisor.affinity(
            [q("O_ORDERDATE", "O_TOTALPRICE"), q("O_ORDERDATE", "O_TOTALPRICE")]
        )
        assert counts[("O_ORDERDATE", "O_TOTALPRICE")] == 2

    def test_wrong_table_rejected(self):
        advisor = MaterializedViewAdvisor(orders_schema())
        with pytest.raises(PlanError):
            advisor.advise([ScanQuery("LINEITEM", select=("L_PARTKEY",))])

    def test_empty_workload(self):
        advisor = MaterializedViewAdvisor(orders_schema())
        assert advisor.advise([]) == []

    def test_predicate_attrs_included(self):
        from repro.engine.predicate import ComparisonOp, Predicate

        advisor = MaterializedViewAdvisor(orders_schema())
        query = ScanQuery(
            "ORDERS",
            select=("O_TOTALPRICE",),
            predicates=(Predicate("O_ORDERDATE", ComparisonOp.LE, 5),),
        )
        views = advisor.advise([query])
        assert "O_ORDERDATE" in views[0].attributes


class TestLayoutAdvisor:
    def test_wide_table_gets_column_store(self):
        from repro.data.tpch import lineitem_schema

        advisor = LayoutAdvisor()
        workload = [
            (ScanQuery("LINEITEM", select=("L_PARTKEY", "L_QUANTITY")), 0.10)
        ]
        rec = advisor.recommend(lineitem_schema(), workload, cpdb=18)
        assert rec.layout is Layout.COLUMN
        assert rec.mean_speedup > 2

    def test_full_scans_on_lean_table_at_low_cpdb_get_rows(self):
        advisor = LayoutAdvisor()
        schema = orders_schema().project(["O_ORDERDATE", "O_ORDERKEY"])
        from repro.types.schema import TableSchema

        schema = TableSchema(name="LEAN", attributes=schema.attributes)
        workload = [
            (ScanQuery("LEAN", select=("O_ORDERDATE", "O_ORDERKEY")), 0.10)
        ]
        rec = advisor.recommend(schema, workload, cpdb=9)
        assert rec.layout is Layout.ROW

    def test_empty_workload_rejected(self):
        with pytest.raises(PlanError):
            LayoutAdvisor().recommend(orders_schema(), [], cpdb=18)

    def test_describe_lists_queries(self):
        advisor = LayoutAdvisor()
        workload = [(q("O_ORDERDATE", "O_TOTALPRICE"), 0.10)]
        rec = advisor.recommend(orders_schema(), workload, cpdb=18)
        assert "ORDERS" in rec.describe()
        assert "select" in rec.describe()
