"""Telemetry attribution under the cooperative scheduler.

The engine interleaves many queries on one thread, which is exactly
where naive telemetry goes wrong: a global tracer would attribute one
query's decode work to whichever peer happened to hold the timeslice,
and shared-scan deliveries land *during a peer's pump*.  The design
avoids cross-attribution structurally:

* every scheduled query runs on its **own** ``ExecutionContext`` (its
  ``events`` is the per-query CostEvents diff) and — when traced — its
  **own** ``SpanTracer``;
* a shared-scan delivery is recorded on the *receiving* consumer's
  tracer (``SharedScanConsumer._receive`` opens a span on its own
  context), so work done off a peer's pump still lands on the query
  that benefited;
* the process-wide ``metrics.REGISTRY`` is intentionally the workload
  **sum** — never used for per-query numbers.

The regression tests here pin the resulting invariant: for every query
of a traced batch, sharing on or off, the tracer's aggregated span
events equal that query's own result events **exactly** — nothing
leaks in from peers, nothing leaks out.
"""

from __future__ import annotations

import pytest

from repro.data.tpch import generate_orders
from repro.engine.predicate import predicate_for_selectivity
from repro.engine.query import ScanQuery
from repro.engine.scheduler import QueryState, Scheduler
from repro.obs import metrics
from repro.storage.layout import Layout
from repro.storage.loader import load_table

ROWS = 4_000


@pytest.fixture(scope="module")
def workload():
    data = generate_orders(ROWS, seed=31)
    table = load_table(data, Layout.COLUMN)
    queries = [
        ScanQuery(
            "ORDERS",
            select=("O_ORDERKEY", "O_TOTALPRICE"),
            predicates=(
                predicate_for_selectivity(
                    "O_TOTALPRICE", data.column("O_TOTALPRICE"), selectivity
                ),
            ),
        )
        for selectivity in (0.1, 0.3, 0.5, 0.8)
    ]
    return table, queries


def _run_traced(table, queries, share: bool) -> Scheduler:
    scheduler = Scheduler(max_inflight=8, share_scans=share, trace=True)
    for index, query in enumerate(queries):
        scheduler.submit(table, query, label=f"telemetry q{index}")
    scheduler.run()
    assert all(h.state is QueryState.DONE for h in scheduler.handles())
    return scheduler


class TestPerQueryAttribution:
    @pytest.mark.parametrize("share", [False, True], ids=["solo", "shared"])
    def test_tracer_events_equal_result_events_exactly(self, workload, share):
        table, queries = workload
        scheduler = _run_traced(table, queries, share)
        for handle in scheduler.handles():
            traced = handle._tracer.total_events().as_dict()
            owned = handle.result.events.as_dict()
            assert traced == owned, (
                f"{handle.governance.label}: span attribution drifted from "
                f"the query's own ExecutionContext"
            )

    def test_shared_deliveries_do_not_leak_to_peers(self, workload):
        """Distinct selectivities => distinct per-query output costs."""
        table, queries = workload
        scheduler = _run_traced(table, queries, share=True)
        # Every rider filters the same delivered segments (so each
        # examines the full table's values)...
        for handle in scheduler.handles():
            assert handle.result.events.values_examined >= ROWS
        # ...but each copies only its own qualifying tuples.  Had a
        # peer's work been attributed here, these would collapse to one
        # value (or sum to more than the batch's true total).
        copied = [
            handle.result.events.bytes_copied
            for handle in scheduler.handles()
        ]
        rows = [handle.result.num_tuples for handle in scheduler.handles()]
        assert len(set(rows)) == len(rows)
        assert sorted(copied) == [c for _, c in sorted(zip(rows, copied))]

    def test_each_query_has_its_own_tracer(self, workload):
        table, queries = workload
        scheduler = _run_traced(table, queries, share=True)
        tracers = [handle._tracer for handle in scheduler.handles()]
        assert len({id(tracer) for tracer in tracers}) == len(tracers)
        assert all(tracer.roots for tracer in tracers)


class TestRegistryIsTheWorkloadSum:
    def test_registry_counts_the_batch_not_the_query(self, workload):
        table, queries = workload
        metrics.enable()
        metrics.REGISTRY.reset_values()
        _run_traced(table, queries, share=False)
        assert metrics.SCHEDULER_COMPLETED.value == len(queries)
        # The window saw every completion; per-query latencies live on
        # the handles, never in the registry.
        assert metrics.WINDOW_QUERY_LATENCY.count == len(queries)
        metrics.REGISTRY.reset_values()


class TestBoard:
    def test_board_tracks_queue_run_and_done(self, workload):
        table, queries = workload
        scheduler = Scheduler(max_inflight=2, share_scans=False)
        for index, query in enumerate(queries):
            scheduler.submit(table, query, label=f"board q{index}")
        board = scheduler.board()
        assert len(board["queued"]) == len(queries)
        assert board["running"] == []

        assert scheduler.poll()
        board = scheduler.board()
        assert len(board["running"]) == 2  # max_inflight admitted
        entry = board["running"][0]
        assert set(entry) == {"label", "table", "slices", "shared"}
        assert entry["table"] == "ORDERS"
        assert entry["slices"] >= 1

        scheduler.run()
        board = scheduler.board()
        assert board["completed"] == len(queries)
        assert board["queued"] == [] and board["running"] == []

    def test_board_exposes_live_shared_streams(self, workload):
        table, queries = workload
        scheduler = Scheduler(max_inflight=8, share_scans=True)
        for index, query in enumerate(queries):
            scheduler.submit(table, query, label=f"stream q{index}")
        assert scheduler.poll()
        streams = scheduler.board()["streams"]
        assert len(streams) == 1
        stream = streams[0]
        assert stream["table"] == "ORDERS"
        assert stream["segments"] > 0
        # A rider may already have finished off its peers' pumps in the
        # first round, so the board shows between 1 and all of them.
        riders = set(stream["riders"])
        assert riders and riders <= {f"stream q{i}" for i in range(len(queries))}
        scheduler.run()
        assert scheduler.board()["streams"] == []
