"""End-to-end storage integrity: checksums, retry, salvage, scrub.

The acceptance scenario from the integrity work: inject a bit flip, a
torn write, and a truncation into a persisted table (each layout);
strict opens/queries raise, salvage-mode queries return exactly the
surviving rows with an accurate :class:`CorruptionReport`, transient
faults are retried to success, ``Database.scrub()`` pinpoints every
corrupt page, and v1-format directories still open and query correctly.
"""

import json
import struct

import numpy as np
import pytest

from repro.data.tpch import generate_orders
from repro.database import Database
from repro.engine.executor import run_scan
from repro.engine.query import ScanQuery
from repro.errors import (
    ChecksumError,
    PageFormatError,
    StorageError,
    TransientIOError,
)
from repro.storage.faults import (
    FaultPlan,
    drop_trailing_pages,
    flip_bit_on_disk,
    tear_file,
)
from repro.storage.layout import Layout
from repro.storage.loader import BulkLoader, load_table
from repro.storage.page import (
    PAGE_TRAILER_BYTES,
    RowPageCodec,
    checksum_verification_enabled,
    downgrade_page_v2,
    page_checksum,
    set_checksum_verification,
    upgrade_page_v1,
)
from repro.storage.pagefile import PagedFile
from repro.storage.persist import open_table, save_table
from repro.storage.retry import RetryPolicy, retry_io
from repro.storage.scrub import (
    WHOLE_FILE,
    CorruptionReport,
    scrub_directory,
    scrub_table,
    verify_table,
)
from repro.storage.write_store import WriteOptimizedStore

LAYOUTS = (Layout.ROW, Layout.COLUMN, Layout.PAX)
ROWS = 500


def no_sleep_policy(**overrides) -> RetryPolicy:
    defaults = dict(max_attempts=4, sleep=lambda _s: None)
    defaults.update(overrides)
    return RetryPolicy(**defaults)


@pytest.fixture()
def orders():
    return generate_orders(ROWS, seed=11)


@pytest.fixture()
def select(orders):
    return tuple(orders.schema.attribute_names)


def full_scan(table, select, **kwargs):
    return run_scan(table, ScanQuery("ORDERS", select=select), **kwargs)


# --- page checksum unit behavior ---------------------------------------------


class TestPageChecksum:
    def test_checksum_stored_in_trailer(self, orders):
        codec = RowPageCodec(orders.schema)
        page = codec.encode(3, {k: v[:5] for k, v in orders.columns.items()})
        _page_id, crc, _base = struct.unpack("<IIq", page[-PAGE_TRAILER_BYTES:])
        assert crc == page_checksum(page)

    def test_verification_toggle_restores(self, orders):
        codec = RowPageCodec(orders.schema)
        page = bytearray(
            codec.encode(0, {k: v[:5] for k, v in orders.columns.items()})
        )
        page[100] ^= 1
        assert checksum_verification_enabled()
        previous = set_checksum_verification(False)
        try:
            assert previous is True
            # Verification off: the flip decodes (wrong values, no error) —
            # this is the ablation-benchmark mode, not a correctness mode.
            codec.decode(bytes(page))
        finally:
            set_checksum_verification(True)
        with pytest.raises(ChecksumError):
            codec.decode(bytes(page))

    def test_v1_upgrade_roundtrip(self, orders):
        codec = RowPageCodec(orders.schema)
        page = codec.encode(42, {k: v[:5] for k, v in orders.columns.items()})
        v1 = downgrade_page_v2(page)
        # v1 trailers store (page_id, base) as two i64s — no CRC.
        assert struct.unpack("<qq", v1[-PAGE_TRAILER_BYTES:])[0] == 42
        upgraded = upgrade_page_v1(v1)
        assert upgraded == page
        page_id, rows = codec.decode(upgraded)
        assert page_id == 42
        assert len(rows) == 5


# --- retry policy -------------------------------------------------------------


class TestRetry:
    def test_succeeds_after_transient_failures(self):
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] < 3:
                raise TransientIOError("flaky")
            return "ok"

        assert retry_io(flaky, no_sleep_policy()) == "ok"
        assert calls["n"] == 3

    def test_exhaustion_reraises(self):
        def always_fails():
            raise TransientIOError("down")

        with pytest.raises(TransientIOError):
            retry_io(always_fails, no_sleep_policy(max_attempts=2))

    def test_permanent_errors_not_retried(self):
        calls = {"n": 0}

        def corrupt():
            calls["n"] += 1
            raise ChecksumError("bad page")

        with pytest.raises(ChecksumError):
            retry_io(corrupt, no_sleep_policy())
        assert calls["n"] == 1

    def test_backoff_is_bounded_and_seeded(self):
        policy = RetryPolicy(base_delay=0.010, multiplier=4.0, max_delay=0.050, seed=9)
        delays = [policy.delay_for(i) for i in range(6)]
        assert all(0 < d <= 0.050 for d in delays)
        replay = RetryPolicy(base_delay=0.010, multiplier=4.0, max_delay=0.050, seed=9)
        assert delays == [replay.delay_for(i) for i in range(6)]


# --- in-memory fault plans ----------------------------------------------------


class TestFaultPlan:
    def test_transient_reads_retried_to_success(self, orders, select):
        table = load_table(orders, Layout.ROW)
        table.file.retry_policy = no_sleep_policy()
        plan = FaultPlan(seed=1).schedule_transient_reads(2, page=0)
        plan.wrap_table(table)
        result = full_scan(table, select)
        assert result.num_tuples == ROWS
        assert plan.transient_raised == 2

    def test_transient_exhaustion_raises(self, orders, select):
        table = load_table(orders, Layout.ROW)
        table.file.retry_policy = no_sleep_policy(max_attempts=3)
        plan = FaultPlan(seed=1).schedule_transient_reads(50, page=0)
        plan.wrap_table(table)
        with pytest.raises(TransientIOError):
            full_scan(table, select)
        assert plan.transient_raised == 3  # one per attempt, then gave up

    @pytest.mark.parametrize("layout", LAYOUTS)
    def test_bit_flip_strict_vs_salvage(self, orders, select, layout):
        clean = full_scan(load_table(orders, layout), select)

        def faulty_table():
            table = load_table(orders, layout)
            FaultPlan(seed=5).schedule_bit_flip(page=1).wrap_table(table)
            return table

        with pytest.raises(ChecksumError):
            full_scan(faulty_table(), select)

        result = full_scan(faulty_table(), select, salvage=True)
        assert not result.is_complete
        assert result.corruption.pages_skipped >= 1
        surviving = np.isin(clean.positions, result.positions)
        for name in select:
            np.testing.assert_array_equal(
                result.column(name), clean.column(name)[surviving]
            )

    def test_flip_positions_are_replayable(self, orders):
        table = load_table(orders, Layout.ROW)

        def corrupted_page():
            plan = FaultPlan(seed=33).schedule_bit_flip(page=0)
            return plan.wrap(table.file)._read_page_raw(0)

        assert corrupted_page() == corrupted_page()
        assert corrupted_page() != table.file.read_page(0)


# --- persisted tables under injected damage -----------------------------------


class TestPersistedDamage:
    def save(self, orders, layout, directory):
        table = load_table(orders, layout)
        save_table(table, directory)
        return table

    @pytest.mark.parametrize("layout", LAYOUTS)
    def test_acceptance_bit_flip(self, orders, select, tmp_path, layout):
        directory = tmp_path / layout.value
        clean = full_scan(self.save(orders, layout, directory), select)
        pages_file = sorted(directory.glob("*.pages"))[0]
        flip_bit_on_disk(pages_file, byte=pages_file.stat().st_size // 2, bit=6)

        with pytest.raises(ChecksumError):
            full_scan(open_table(directory), select)

        result = full_scan(open_table(directory), select, salvage=True)
        assert not result.is_complete
        surviving = np.isin(clean.positions, result.positions)
        for name in select:
            np.testing.assert_array_equal(
                result.column(name), clean.column(name)[surviving]
            )
        assert (
            clean.num_tuples - result.num_tuples
            <= result.corruption.estimated_rows_lost
        )

        # scrub_directory pinpoints the damaged file.
        report = scrub_directory(directory)
        assert not report.is_clean
        assert any(fault.page != WHOLE_FILE for fault in report.faults)

    @pytest.mark.parametrize("layout", LAYOUTS)
    def test_acceptance_torn_write(self, orders, select, tmp_path, layout):
        directory = tmp_path / layout.value
        self.save(orders, layout, directory)
        torn = sorted(directory.glob("*.pages"))[-1]
        tear_file(torn, page_size=4096)

        with pytest.raises(StorageError):
            open_table(directory)

        report = CorruptionReport()
        table = open_table(directory, salvage=report)
        assert not report.is_clean
        assert report.estimated_rows_lost > 0
        result = full_scan(table, select, salvage=True)
        # Open-time accounting covers the torn tail exactly: what the
        # salvage scan returns plus what the report wrote off is the table.
        assert result.num_tuples + report.estimated_rows_lost == ROWS

    @pytest.mark.parametrize("layout", LAYOUTS)
    def test_acceptance_truncation(self, orders, select, tmp_path, layout):
        directory = tmp_path / layout.value
        self.save(orders, layout, directory)
        target = sorted(directory.glob("*.pages"))[-1]
        drop_trailing_pages(target, page_size=4096, pages=1)

        with pytest.raises(StorageError, match="truncated|torn"):
            open_table(directory)

        report = CorruptionReport()
        table = open_table(directory, salvage=report)
        assert len(report.faults) >= 1
        assert all("missing" in fault.error for fault in report.faults)
        result = full_scan(table, select, salvage=True)
        assert result.num_tuples + report.estimated_rows_lost == ROWS

    def test_transient_faults_on_open_are_retried(self, orders, tmp_path):
        directory = tmp_path / "t"
        self.save(orders, Layout.ROW, directory)
        attempts = {"n": 0}

        def flaky_sleep(_seconds):
            attempts["n"] += 1

        table = open_table(directory, retry_policy=no_sleep_policy(sleep=flaky_sleep))
        assert table.num_rows == ROWS


# --- format versioning --------------------------------------------------------


def rewrite_as_v1(directory) -> None:
    """Demote a saved v2 directory to the legacy v1 on-disk format."""
    for pages_path in directory.glob("*.pages"):
        data = pages_path.read_bytes()
        pages_path.write_bytes(
            b"".join(
                downgrade_page_v2(data[start : start + 4096])
                for start in range(0, len(data), 4096)
            )
        )
    meta_path = directory / "meta.json"
    meta = json.loads(meta_path.read_text())
    meta["format_version"] = 1
    del meta["meta_crc32"]
    meta_path.write_text(json.dumps(meta, indent=2))


class TestFormatVersions:
    @pytest.mark.parametrize("layout", LAYOUTS)
    def test_v1_directories_open_transparently(
        self, orders, select, tmp_path, layout
    ):
        directory = tmp_path / layout.value
        table = load_table(orders, layout)
        save_table(table, directory)
        clean = full_scan(table, select)
        rewrite_as_v1(directory)

        reopened = open_table(directory)
        result = full_scan(reopened, select)
        assert result.num_tuples == ROWS
        for name in select:
            np.testing.assert_array_equal(result.column(name), clean.column(name))
        # And the in-memory pages now carry valid v2 checksums.
        assert scrub_table(reopened).is_clean

    def test_unknown_version_rejected(self, orders, tmp_path):
        directory = tmp_path / "t"
        save_table(load_table(orders, Layout.ROW), directory)
        meta_path = directory / "meta.json"
        meta = json.loads(meta_path.read_text())
        meta["format_version"] = 99
        meta_path.write_text(json.dumps(meta))
        with pytest.raises(StorageError, match="version"):
            open_table(directory)


# --- crash-safe save and metadata integrity -----------------------------------


class TestAtomicSave:
    def test_no_staging_dir_left_behind(self, orders, tmp_path):
        directory = tmp_path / "t"
        save_table(load_table(orders, Layout.COLUMN), directory)
        leftovers = [p.name for p in tmp_path.iterdir() if p.name.startswith(".")]
        assert leftovers == []

    def test_overwrite_replaces_table(self, orders, tmp_path):
        directory = tmp_path / "t"
        save_table(load_table(orders, Layout.ROW), directory)
        bigger = generate_orders(ROWS * 2, seed=11)
        save_table(load_table(bigger, Layout.ROW), directory)
        assert open_table(directory).num_rows == ROWS * 2

    def test_half_written_meta_detected(self, orders, tmp_path):
        directory = tmp_path / "t"
        save_table(load_table(orders, Layout.ROW), directory)
        meta_path = directory / "meta.json"
        text = meta_path.read_text()
        meta_path.write_text(text[: len(text) // 2])  # crash mid-write
        with pytest.raises(StorageError, match="corrupt or half-written"):
            open_table(directory)

    def test_meta_field_tamper_detected(self, orders, tmp_path):
        directory = tmp_path / "t"
        save_table(load_table(orders, Layout.ROW), directory)
        meta_path = directory / "meta.json"
        meta = json.loads(meta_path.read_text())
        meta["num_rows"] = ROWS + 1  # valid JSON, wrong content
        meta_path.write_text(json.dumps(meta))
        with pytest.raises(ChecksumError, match="checksum mismatch"):
            open_table(directory)

    def test_missing_meta_checksum_detected(self, orders, tmp_path):
        directory = tmp_path / "t"
        save_table(load_table(orders, Layout.ROW), directory)
        meta_path = directory / "meta.json"
        meta = json.loads(meta_path.read_text())
        del meta["meta_crc32"]
        meta_path.write_text(json.dumps(meta))
        with pytest.raises(ChecksumError, match="no checksum"):
            open_table(directory)

    def test_missing_page_file(self, orders, tmp_path):
        directory = tmp_path / "t"
        save_table(load_table(orders, Layout.COLUMN), directory)
        sorted(directory.glob("*.pages"))[0].unlink()
        with pytest.raises(StorageError, match="missing"):
            open_table(directory)
        report = CorruptionReport()
        open_table(directory, salvage=report)
        assert not report.is_clean


# --- database facade ----------------------------------------------------------


class TestDatabaseIntegrity:
    def test_scrub_clean_and_verify(self, orders):
        db = Database()
        db.create_table(orders)
        db.create_view("ORDERS", ("O_ORDERDATE", "O_TOTALPRICE"), name="V1")
        reports = db.scrub()
        assert set(reports) == {"ORDERS:row", "ORDERS:column", "ORDERS:V1"}
        assert all(report.is_clean for report in reports.values())
        assert db.verify() == sum(r.pages_scanned for r in reports.values())

    def test_scrub_pinpoints_injected_faults(self, orders):
        db = Database()
        db.create_table(orders)
        victim = db.table("ORDERS", Layout.COLUMN)
        FaultPlan(seed=2).schedule_bit_flip(
            page=0, file="ORDERS.O_CUSTKEY"
        ).wrap_table(victim)
        reports = db.scrub("ORDERS")
        dirty = {k: v for k, v in reports.items() if not v.is_clean}
        assert list(dirty) == ["ORDERS:column"]
        (fault,) = dirty["ORDERS:column"].faults
        assert fault.file == "ORDERS.O_CUSTKEY"
        assert fault.page == 0
        with pytest.raises(ChecksumError, match="verification failed"):
            db.verify()

    def test_salvage_query_through_facade(self, orders, select):
        db = Database()
        db.create_table(orders)
        FaultPlan(seed=3).schedule_bit_flip(page=0).wrap_table(
            db.table("ORDERS", Layout.ROW)
        )
        with pytest.raises(ChecksumError):
            db.query("ORDERS", select=select, layout=Layout.ROW)
        result = db.query("ORDERS", select=select, layout=Layout.ROW, salvage=True)
        assert not result.is_complete
        assert 0 < result.num_tuples < ROWS


# --- loader / write-store verification hooks ----------------------------------


class TestVerificationHooks:
    def test_loader_verify_sweeps_every_page(self, orders):
        table = BulkLoader(verify=True).load(orders, Layout.COLUMN)
        assert verify_table(table).pages_scanned > 0

    def test_merge_with_verify(self, orders):
        table = load_table(orders, Layout.COLUMN)
        store = WriteOptimizedStore(orders.schema)
        store.insert(tuple(orders.columns[n][0] for n in orders.schema.attribute_names))
        merged = store.merge_into(table, verify=True)
        assert merged.num_rows == ROWS + 1


# --- paged file invariants ----------------------------------------------------


class TestPagedFileInvariants:
    def test_from_bytes_rejects_partial_page(self):
        with pytest.raises(StorageError, match="partial page"):
            PagedFile.from_bytes("t", b"\x00" * 5000, page_size=4096)

    def test_read_past_end(self):
        file = PagedFile.from_bytes("t", b"\x00" * 8192, page_size=4096)
        with pytest.raises(StorageError):
            file.read_page(2)
        with pytest.raises(StorageError):
            file.read_page(-1)

    def test_truncated_page_decode(self, orders):
        codec = RowPageCodec(orders.schema)
        page = codec.encode(0, {k: v[:3] for k, v in orders.columns.items()})
        with pytest.raises(PageFormatError):
            codec.decode(page[:128])
