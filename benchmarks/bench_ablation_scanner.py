"""Ablation — pipelined vs fused (single-iterator) column scanner.

Section 4.2 sketches the optimization this bench quantifies: instead of
position-driven scan nodes, fetch all columns' pages and iterate whole
rows through memory offsets (PAX / MonetDB style).  The tradeoff: the
fused scanner decodes every accessed column densely, the pipelined one
touches later columns only at qualifying positions.
"""

from _common import BENCH_ROWS, publish, run_once

from repro.engine.plan import ColumnScannerKind
from repro.engine.query import ScanQuery
from repro.experiments.config import ExperimentConfig
from repro.experiments.report import ExperimentOutput, FigureResult
from repro.experiments.runner import measure_scan
from repro.experiments.workloads import prepare_lineitem

SELECTIVITIES = (0.001, 0.01, 0.10, 0.5, 1.0)
ATTRS = 8


def run_ablation(num_rows: int) -> ExperimentOutput:
    prepared = prepare_lineitem(num_rows)
    config = ExperimentConfig()
    table = FigureResult(
        title=f"Column-scanner CPU time (s), {ATTRS} attributes, by selectivity",
        headers=["selectivity", "pipelined", "fused", "winner"],
    )
    series = {"pipelined": [], "fused": []}
    for selectivity in SELECTIVITIES:
        predicate = prepared.predicate("L_PARTKEY", selectivity)
        query = ScanQuery(
            "LINEITEM",
            select=prepared.attrs_prefix(ATTRS),
            predicates=(predicate,),
        )
        pipelined = measure_scan(prepared.column, query, config)
        fused = measure_scan(
            prepared.column, query, config, column_scanner=ColumnScannerKind.FUSED
        )
        winner = "fused" if fused.cpu.total < pipelined.cpu.total else "pipelined"
        table.add_row(
            f"{selectivity:.1%}",
            round(pipelined.cpu.total, 2),
            round(fused.cpu.total, 2),
            winner,
        )
        series["pipelined"].append(pipelined.cpu.total)
        series["fused"].append(fused.cpu.total)
    return ExperimentOutput(
        name="Ablation: pipelined vs fused column scanner",
        tables=[table],
        series=series,
    )


def bench_ablation_scanner_architecture(benchmark):
    out = run_once(benchmark, lambda: run_ablation(BENCH_ROWS))
    publish(out, "ablation_scanner.txt")

    pipelined = out.series["pipelined"]
    fused = out.series["fused"]
    # At very low selectivity the position-driven pipeline does almost
    # no work per extra column; the fused scanner decodes everything.
    assert pipelined[0] < fused[0]
    # At high selectivity the per-position bookkeeping dominates and
    # the fused scanner wins — the paper's §4.2 rationale.
    assert fused[-1] < pipelined[-1]
