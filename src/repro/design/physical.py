"""Layout advisor: row or column store for a given workload + hardware.

Uses the Section 5 analytical model to recommend a physical layout per
table, the capacity-planning workflow the paper's analysis enables: a
DBA supplies the query shapes and the machine's cpdb rating, and the
advisor predicts the speedup for each query and aggregates.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.engine.query import ScanQuery
from repro.errors import PlanError
from repro.model.params import QueryShape
from repro.model.speedup import SpeedupModel
from repro.storage.layout import Layout
from repro.types.schema import TableSchema


@dataclass(frozen=True)
class LayoutRecommendation:
    """The advisor's verdict for one table under one workload."""

    table: str
    layout: Layout
    #: Workload-weighted geometric-mean speedup of columns over rows.
    mean_speedup: float
    per_query: tuple[tuple[str, float], ...]

    def describe(self) -> str:
        lines = [
            f"{self.table}: use a {self.layout.value} store "
            f"(mean column speedup {self.mean_speedup:.2f}x)"
        ]
        for description, value in self.per_query:
            lines.append(f"  {value:5.2f}x  {description}")
        return "\n".join(lines)


class LayoutAdvisor:
    """Recommends row vs column layout from predicted speedups."""

    def __init__(self, model: SpeedupModel | None = None):
        self.model = model or SpeedupModel()

    def shape_for(
        self, schema: TableSchema, query: ScanQuery, selectivity: float
    ) -> QueryShape:
        """Model shape of one query against one schema."""
        query.validate_against(schema)
        selected = query.selected_width(schema)
        return QueryShape(
            tuple_width=float(schema.row_stride),
            selected_bytes=float(selected),
            selectivity=selectivity,
            num_attributes=len(schema),
            selected_attributes=len(query.select),
        )

    def recommend(
        self,
        schema: TableSchema,
        workload: list[tuple[ScanQuery, float]],
        cpdb: float | None = None,
    ) -> LayoutRecommendation:
        """Recommend a layout for ``workload``: (query, selectivity) pairs."""
        if not workload:
            raise PlanError("cannot recommend a layout for an empty workload")
        per_query = []
        log_sum = 0.0
        for query, selectivity in workload:
            shape = self.shape_for(schema, query, selectivity)
            value = self.model.predict(shape, cpdb=cpdb)
            per_query.append((query.describe(), value))
            log_sum += math.log(max(value, 1e-9))
        mean = float(math.exp(log_sum / len(workload)))
        layout = Layout.COLUMN if mean >= 1.0 else Layout.ROW
        return LayoutRecommendation(
            table=schema.name,
            layout=layout,
            mean_speedup=mean,
            per_query=tuple(per_query),
        )
