"""Scan streams and their AIO submission policies.

A stream turns a list of file extents into a sequence of *windows*
(``prefetch_depth`` consecutive I/O units of one file, the amount the
AIO layer issues at once).  Multi-file scans visit their files round
robin — the pipelined column scanner consumes all its columns at the
same row pace.

The policy controls how many windows a stream keeps in flight:

* ``ROW`` / ``COLUMN_SLOW`` — one window at a time; the next window is
  submitted only when the current one completes.  This is the paper's
  "slow" column variant (wait for one column's request before
  submitting the next).
* ``COLUMN_FAST`` — two windows in flight: while the disk serves column
  *i*, the CPU has already submitted column *i+1*'s request.  Being one
  step ahead is what gets the column system favored by the FIFO
  controller under competing traffic (Figure 11).
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass

from repro.errors import SimulationError
from repro.iosim.request import FileExtent


class SubmissionPolicy(enum.Enum):
    """How aggressively a stream keeps requests outstanding."""

    ROW = "row"
    COLUMN_FAST = "column-fast"
    COLUMN_SLOW = "column-slow"

    @property
    def windows_in_flight(self) -> int:
        if self is SubmissionPolicy.COLUMN_FAST:
            return 2
        return 1


@dataclass(frozen=True)
class _Window:
    """One batch of consecutive units from one file."""

    file_name: str
    offset: int
    size_bytes: int
    unit_bytes: int

    def unit_extents(self) -> list[tuple[int, int]]:
        """``(offset, size)`` per unit within this window."""
        units = []
        offset = self.offset
        remaining = self.size_bytes
        while remaining > 0:
            size = min(self.unit_bytes, remaining)
            units.append((offset, size))
            offset += size
            remaining -= size
        return units


class ScanStream:
    """A sequential scan of one or more files through the AIO layer."""

    def __init__(
        self,
        name: str,
        files: list[FileExtent],
        unit_bytes: int,
        prefetch_depth: int,
        policy: SubmissionPolicy,
        start_time: float = 0.0,
    ):
        if not files:
            raise SimulationError(f"stream {name!r} has no files")
        if unit_bytes <= 0:
            raise SimulationError(f"unit size must be positive: {unit_bytes}")
        if prefetch_depth <= 0:
            raise SimulationError(f"prefetch depth must be positive: {prefetch_depth}")
        self.name = name
        self.files = list(files)
        self.unit_bytes = unit_bytes
        self.prefetch_depth = prefetch_depth
        self.policy = policy
        self.start_time = start_time
        self._windows = self._build_windows()

    @property
    def total_bytes(self) -> int:
        return sum(f.size_bytes for f in self.files)

    @property
    def total_units(self) -> int:
        return sum(
            math.ceil(f.size_bytes / self.unit_bytes)
            for f in self.files
            if f.size_bytes
        )

    def num_windows(self) -> int:
        return len(self._windows)

    def windows(self) -> list[_Window]:
        """The stream's windows in submission order."""
        return list(self._windows)

    def _build_windows(self) -> list[_Window]:
        """Round-robin windows of ``prefetch_depth`` units per file."""
        window_bytes = self.unit_bytes * self.prefetch_depth
        cursors = {f.name: 0 for f in self.files}
        remaining = {f.name: f.size_bytes for f in self.files}
        order = [f.name for f in self.files if f.size_bytes > 0]
        windows: list[_Window] = []
        index = 0
        while order:
            file_name = order[index % len(order)]
            size = min(window_bytes, remaining[file_name])
            windows.append(
                _Window(
                    file_name=file_name,
                    offset=cursors[file_name],
                    size_bytes=size,
                    unit_bytes=self.unit_bytes,
                )
            )
            cursors[file_name] += size
            remaining[file_name] -= size
            if remaining[file_name] <= 0:
                position = order.index(file_name)
                order.pop(position)
                # Keep the round-robin pointer on the next file.
                index = position
            else:
                index += 1
        return windows
