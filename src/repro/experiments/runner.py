"""Execute + simulate one scan query and report paper-style numbers.

The measurement pipeline:

1. execute the query on the real (small) table, collecting work events;
2. scale the event counts to the configured cardinality (all linear);
3. run the discrete-event disk simulation with the *paper-scale* file
   sizes, the configured prefetch depth, and any competing stream;
4. charge the simulation's I/O counters (bytes, units, stream switches)
   into the events and convert everything into the paper's CPU
   breakdown;
5. elapsed time is ``max(I/O, CPU)`` — the engine overlaps I/O with
   computation through its AIO interface.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cpusim.breakdown import CpuBreakdown
from repro.cpusim.costmodel import CpuModel
from repro.cpusim.events import CostEvents
from repro.engine.context import ExecutionContext
from repro.engine.executor import QueryResult, run_scan
from repro.engine.plan import ColumnScannerKind
from repro.engine.query import ScanQuery
from repro.errors import SimulationError
from repro.experiments.config import ExperimentConfig
from repro.iosim.request import FileExtent
from repro.iosim.sim import DiskArraySim, StreamStats
from repro.iosim.streams import ScanStream, SubmissionPolicy
from repro.iosim.traffic import competing_row_scan
from repro.storage.layout import Layout
from repro.storage.table import ColumnTable, PaxTable, RowTable, Table

_VICTIM = "measured-query"


@dataclass(frozen=True)
class ScanMeasurement:
    """One (query, layout, configuration) data point."""

    layout: Layout
    selected_attributes: int
    selected_bytes: int          #: uncompressed bytes per tuple projected
    bytes_read: int              #: paper-scale bytes the scan reads
    io_elapsed: float            #: disk-sim wall time for the scan
    io_stats: StreamStats
    cpu: CpuBreakdown
    events: CostEvents
    result_tuples: int           #: qualifying tuples in the small run
    executed_rows: int
    cardinality: int

    @property
    def elapsed(self) -> float:
        """Total elapsed time: I/O overlapped with computation."""
        return max(self.io_elapsed, self.cpu.total)

    @property
    def cpu_seconds(self) -> float:
        return self.cpu.total

    @property
    def io_bound(self) -> bool:
        return self.io_elapsed >= self.cpu.total


def _scan_policy(table: Table, config: ExperimentConfig) -> SubmissionPolicy:
    if isinstance(table, (RowTable, PaxTable)):
        return SubmissionPolicy.ROW
    if config.slow_column_io:
        return SubmissionPolicy.COLUMN_SLOW
    return SubmissionPolicy.COLUMN_FAST


def _scan_files(table: Table, query: ScanQuery, config: ExperimentConfig) -> list[FileExtent]:
    """Paper-scale file extents the scan must read."""
    if isinstance(table, (RowTable, PaxTable)):
        sizes = table.file_sizes_for([], cardinality=config.cardinality)
    elif isinstance(table, ColumnTable):
        attrs = list(query.scan_attributes())
        sizes = table.file_sizes_for(attrs, cardinality=config.cardinality)
    else:
        raise SimulationError(f"unsupported table type: {type(table).__name__}")
    prefix = table.schema.name
    return [
        FileExtent(name=f"{prefix}.{name}", size_bytes=size)
        for name, size in sizes.items()
    ]


@dataclass(frozen=True)
class JoinMeasurement:
    """One merge-join (query, layouts, configuration) data point."""

    bytes_read: int
    io_elapsed: float
    cpu: CpuBreakdown
    events: CostEvents
    result_tuples: int
    left_cardinality: int
    right_cardinality: int

    @property
    def elapsed(self) -> float:
        return max(self.io_elapsed, self.cpu.total)

    @property
    def io_bound(self) -> bool:
        return self.io_elapsed >= self.cpu.total


def measure_join(
    left_table: Table,
    left_query: ScanQuery,
    right_table: Table,
    right_query: ScanQuery,
    left_key: str,
    right_key: str,
    config: ExperimentConfig | None = None,
    column_scanner: ColumnScannerKind = ColumnScannerKind.PIPELINED,
) -> JoinMeasurement:
    """Measure a merge join of two tables under one configuration.

    ``config.cardinality`` sets the *left* (parent) table's paper-scale
    row count; the right side scales by the materialized ratio (TPC-H:
    about four line items per order).  The disks serve both scans'
    files through one stream, so the join's disk rate follows the
    paper's weighted-file-rate equation (eq. 2).
    """
    from repro.engine.plan import merge_join_plan

    config = config or ExperimentConfig()
    if left_table.num_rows <= 0 or right_table.num_rows <= 0:
        raise SimulationError("cannot measure a join over empty tables")

    context = ExecutionContext(
        calibration=config.calibration, block_size=config.block_size
    )
    plan = merge_join_plan(
        context,
        left_table,
        left_query,
        right_table,
        right_query,
        left_key=left_key,
        right_key=right_key,
        column_scanner=column_scanner,
    )
    from repro.engine.executor import execute_plan

    result = execute_plan(plan)

    left_cardinality = config.cardinality
    ratio = right_table.num_rows / left_table.num_rows
    right_cardinality = int(round(left_cardinality * ratio))
    scale = left_cardinality / left_table.num_rows
    events = context.events.scaled(scale)

    sim = DiskArraySim(config.calibration)
    files = _scan_files(
        left_table, left_query, config.with_(cardinality=left_cardinality)
    )
    files += _scan_files(
        right_table, right_query, config.with_(cardinality=right_cardinality)
    )
    any_columnar = isinstance(left_table, ColumnTable) or isinstance(
        right_table, ColumnTable
    )
    policy = (
        SubmissionPolicy.COLUMN_FAST if any_columnar else SubmissionPolicy.ROW
    )
    if len(files) == 1:
        policy = SubmissionPolicy.ROW
    victim = ScanStream(
        name=_VICTIM,
        files=files,
        unit_bytes=sim.unit_bytes,
        prefetch_depth=config.effective_prefetch_depth,
        policy=policy,
    )
    stats = sim.run([victim])[_VICTIM]

    events.bytes_read = stats.bytes_read
    events.io_requests = stats.units
    events.stream_switches = stats.switches
    cpu = CpuModel(config.calibration).breakdown(events)
    return JoinMeasurement(
        bytes_read=stats.bytes_read,
        io_elapsed=stats.elapsed,
        cpu=cpu,
        events=events,
        result_tuples=result.num_tuples,
        left_cardinality=left_cardinality,
        right_cardinality=right_cardinality,
    )


def measure_aggregate(
    table: Table,
    query: ScanQuery,
    spec,
    config: ExperimentConfig | None = None,
    sort_based: bool = False,
    column_scanner: ColumnScannerKind = ColumnScannerKind.PIPELINED,
) -> ScanMeasurement:
    """Measure an aggregation over a scan (same pipeline as a scan).

    The aggregate's accumulator updates, group probes, and (for the
    sort-based variant) sort comparisons all land in the CPU events, so
    this is how the §5 claim about high-cost operators above the scan
    is checked.
    """
    from repro.engine.executor import execute_plan
    from repro.engine.plan import aggregate_plan

    config = config or ExperimentConfig()
    if table.num_rows <= 0:
        raise SimulationError("cannot measure an aggregate over an empty table")
    context = ExecutionContext(
        calibration=config.calibration, block_size=config.block_size
    )
    plan = aggregate_plan(
        context, table, query, spec, sort_based=sort_based,
        column_scanner=column_scanner,
    )
    result = execute_plan(plan)
    scale = config.cardinality / table.num_rows
    events = context.events.scaled(scale)

    sim = DiskArraySim(config.calibration)
    victim = ScanStream(
        name=_VICTIM,
        files=_scan_files(table, query, config),
        unit_bytes=sim.unit_bytes,
        prefetch_depth=config.effective_prefetch_depth,
        policy=_scan_policy(table, config),
    )
    stats = sim.run([victim])[_VICTIM]
    events.bytes_read = stats.bytes_read
    events.io_requests = stats.units
    events.stream_switches = stats.switches
    cpu = CpuModel(config.calibration).breakdown(events)
    return ScanMeasurement(
        layout=table.layout,
        selected_attributes=len(query.select),
        selected_bytes=query.selected_width(table.schema),
        bytes_read=stats.bytes_read,
        io_elapsed=stats.elapsed,
        io_stats=stats,
        cpu=cpu,
        events=events,
        result_tuples=result.num_tuples,
        executed_rows=table.num_rows,
        cardinality=config.cardinality,
    )


@dataclass(frozen=True)
class ParallelScanMeasurement:
    """One scan measured with partitioned multi-core execution.

    The disk array serves one stream per partition (all starting at
    time zero, so they compete for the same spindles); CPU work is the
    merged per-worker events divided across ``workers`` cores.
    """

    serial: ScanMeasurement
    workers: int
    partitions: int
    io_elapsed: float            #: slowest partition stream's finish time
    cpu: CpuBreakdown
    events: CostEvents

    @property
    def elapsed(self) -> float:
        return max(self.io_elapsed, self.cpu.total / self.workers)

    @property
    def speedup(self) -> float:
        """Serial elapsed over parallel elapsed."""
        return self.serial.elapsed / self.elapsed if self.elapsed else float("inf")


def measure_parallel_scan(
    table: Table,
    query: ScanQuery,
    config: ExperimentConfig | None = None,
    column_scanner: ColumnScannerKind = ColumnScannerKind.PIPELINED,
    workers: int = 2,
    partitions: int | None = None,
) -> ParallelScanMeasurement:
    """Measure one scan fanned out over row-range partitions.

    Executes the real partition-and-merge machinery (in process — the
    accounting, not the wall clock, is what feeds the model), scales the
    merged events to paper cardinality, and simulates one disk stream
    per partition: partition ``i`` reads its proportional share of every
    file extent, and all streams start at time zero.  Elapsed is
    ``max(slowest stream, CPU / workers)`` — the multi-core analogue of
    the serial ``max(I/O, CPU)`` overlap.
    """
    from repro.engine.parallel import parallel_query
    from repro.storage.partition import partition_ranges

    config = config or ExperimentConfig()
    if table.num_rows <= 0:
        raise SimulationError("cannot measure a scan over an empty table")
    if workers < 1:
        raise SimulationError(f"worker count must be positive: {workers}")
    partitions = partitions if partitions is not None else workers

    serial = measure_scan(table, query, config, column_scanner)

    context = ExecutionContext(
        calibration=config.calibration, block_size=config.block_size
    )
    parallel_query(
        table,
        query,
        workers=1,  # in-process: we want the events, not the wall clock
        partitions=partitions,
        context=context,
        column_scanner=column_scanner,
    )
    scale = config.cardinality / table.num_rows
    events = context.events.scaled(scale)

    sim = DiskArraySim(config.calibration)
    extents = _scan_files(table, query, config)
    ranges = partition_ranges(config.cardinality, partitions)
    streams = []
    for index, (lo, hi) in enumerate(ranges):
        fraction = (hi - lo) / config.cardinality
        files = [
            FileExtent(
                name=f"{extent.name}[p{index}]",
                size_bytes=max(1, int(extent.size_bytes * fraction)),
            )
            for extent in extents
        ]
        streams.append(
            ScanStream(
                name=f"partition-{index}",
                files=files,
                unit_bytes=sim.unit_bytes,
                prefetch_depth=config.effective_prefetch_depth,
                policy=_scan_policy(table, config),
            )
        )
    all_stats = sim.run(streams)
    io_elapsed = max(stats.elapsed for stats in all_stats.values())

    events.bytes_read = sum(stats.bytes_read for stats in all_stats.values())
    events.io_requests = sum(stats.units for stats in all_stats.values())
    events.stream_switches = sum(stats.switches for stats in all_stats.values())
    cpu = CpuModel(config.calibration).breakdown(events)
    return ParallelScanMeasurement(
        serial=serial,
        workers=workers,
        partitions=partitions,
        io_elapsed=io_elapsed,
        cpu=cpu,
        events=events,
    )


def measure_scan(
    table: Table,
    query: ScanQuery,
    config: ExperimentConfig | None = None,
    column_scanner: ColumnScannerKind = ColumnScannerKind.PIPELINED,
) -> ScanMeasurement:
    """Measure one scan query under one configuration."""
    config = config or ExperimentConfig()
    if table.num_rows <= 0:
        raise SimulationError("cannot measure a scan over an empty table")

    # 1-2: real execution, scaled events.
    context = ExecutionContext(
        calibration=config.calibration, block_size=config.block_size
    )
    result: QueryResult = run_scan(table, query, context, column_scanner)
    scale = config.cardinality / table.num_rows
    events = context.events.scaled(scale)

    # 3: paper-scale disk simulation.
    sim = DiskArraySim(config.calibration)
    depth = config.effective_prefetch_depth
    victim = ScanStream(
        name=_VICTIM,
        files=_scan_files(table, query, config),
        unit_bytes=sim.unit_bytes,
        prefetch_depth=depth,
        policy=_scan_policy(table, config),
    )
    streams = [victim]
    if config.competing is not None:
        comp_depth = config.competing.prefetch_depth or depth
        streams.append(
            competing_row_scan(
                file_bytes=config.competing.file_bytes,
                unit_bytes=sim.unit_bytes,
                prefetch_depth=comp_depth,
                start_time=config.competing.start_time,
            )
        )
    stats = sim.run(streams)[_VICTIM]

    # 4: fold the I/O counters into the CPU events.
    events.bytes_read = stats.bytes_read
    events.io_requests = stats.units
    events.stream_switches = stats.switches
    cpu = CpuModel(config.calibration).breakdown(events)

    return ScanMeasurement(
        layout=table.layout,
        selected_attributes=len(query.select),
        selected_bytes=query.selected_width(table.schema),
        bytes_read=stats.bytes_read,
        io_elapsed=stats.elapsed,
        io_stats=stats,
        cpu=cpu,
        events=events,
        result_tuples=result.num_tuples,
        executed_rows=table.num_rows,
        cardinality=config.cardinality,
    )
