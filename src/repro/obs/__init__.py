"""Observability: span tracing, EXPLAIN ANALYZE, metrics, provenance.

The measurement substrate for every performance claim this repo makes:

* :mod:`repro.obs.trace` — per-operator span tracing with exact
  :class:`~repro.cpusim.events.CostEvents` attribution;
* :mod:`repro.obs.explain` — EXPLAIN ANALYZE text rendering;
* :mod:`repro.obs.export` — Chrome ``trace_event`` JSON and flat
  profiles (:class:`QueryProfile` bundles one traced query);
* :mod:`repro.obs.metrics` — process-wide Prometheus-style counters and
  log-scale histograms (``python -m repro.obs.metrics`` for
  exposition);
* :mod:`repro.obs.provenance` — git SHA + calibration fingerprint
  stamps for results artifacts.

Everything is opt-in: with ``ExecutionContext.tracer`` left ``None``
and metrics quiesced via :func:`repro.obs.metrics.disable`, the engine
runs its untraced fast path.
"""

from repro.obs import metrics
from repro.obs.explain import format_ns, render_explain
from repro.obs.export import QueryProfile, chrome_trace, flat_profile, write_json
from repro.obs.metrics import (
    REGISTRY,
    Counter,
    Histogram,
    MetricsRegistry,
    render_prometheus,
)
from repro.obs.provenance import git_sha, provenance
from repro.obs.trace import OperatorSpan, SpanTracer, TraceSlice

__all__ = [
    "Counter",
    "Histogram",
    "MetricsRegistry",
    "OperatorSpan",
    "QueryProfile",
    "REGISTRY",
    "SpanTracer",
    "TraceSlice",
    "chrome_trace",
    "flat_profile",
    "format_ns",
    "git_sha",
    "metrics",
    "provenance",
    "render_explain",
    "render_prometheus",
    "write_json",
]
