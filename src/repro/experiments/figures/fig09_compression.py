"""Figure 9 — effect of compression (ORDERS-Z, 12 bytes packed).

The selection query over the compressed ORDERS table, with the
``O_ORDERKEY`` column stored two ways: FOR-delta (Figure 5's choice,
8 bits) and plain FOR (16 bits, but decodable value by value).  The
column store turns CPU-bound; FOR-delta's whole-page decode shows up as
a CPU jump the moment the second attribute joins the selection list,
while plain FOR stays cheap at the price of more I/O.

The x axis is spaced on the *uncompressed* width of the selected
attributes, as in the paper.
"""

from __future__ import annotations

from repro.engine.query import ScanQuery
from repro.experiments.config import DEFAULT_EXECUTED_ROWS, ExperimentConfig
from repro.experiments.report import ExperimentOutput, FigureResult
from repro.experiments.runner import measure_scan
from repro.experiments.workloads import prepare_orders

SELECTIVITY = 0.10
PREDICATE_ATTR = "O_ORDERDATE"


def run(
    num_rows: int = DEFAULT_EXECUTED_ROWS,
    config: ExperimentConfig | None = None,
    selectivity: float = SELECTIVITY,
) -> ExperimentOutput:
    """Regenerate Figure 9."""
    config = config or ExperimentConfig()
    delta = prepare_orders(num_rows, compressed=True)
    plain = prepare_orders(num_rows, compressed=True, orderkey_plain_for=True)
    row_prep = delta  # the row store uses the Figure 5 schemes

    predicate = delta.predicate(PREDICATE_ATTR, selectivity)
    total = FigureResult(
        title="Total elapsed time (s), compressed ORDERS-Z",
        headers=["attrs", "sel bytes", "row", "col FOR-delta", "col FOR"],
    )
    cpu = FigureResult(
        title="CPU time (s), compressed ORDERS-Z",
        headers=["attrs", "sel bytes", "row", "col FOR-delta", "col FOR"],
    )
    series: dict[str, list[float]] = {
        "selected_bytes": [],
        "row_elapsed": [],
        "col_delta_elapsed": [],
        "col_for_elapsed": [],
        "row_cpu": [],
        "col_delta_cpu": [],
        "col_for_cpu": [],
    }
    for k in range(1, len(delta.schema) + 1):
        select = delta.attrs_prefix(k)
        query = ScanQuery(delta.schema.name, select=select, predicates=(predicate,))
        query_for = ScanQuery(
            plain.schema.name, select=select, predicates=(predicate,)
        )
        m_row = measure_scan(row_prep.row, query, config)
        m_delta = measure_scan(delta.column, query, config)
        m_for = measure_scan(plain.column, query_for, config)

        sel_bytes = m_delta.selected_bytes
        total.add_row(
            k,
            sel_bytes,
            round(m_row.elapsed, 2),
            round(m_delta.elapsed, 2),
            round(m_for.elapsed, 2),
        )
        cpu.add_row(
            k,
            sel_bytes,
            round(m_row.cpu.total, 2),
            round(m_delta.cpu.total, 2),
            round(m_for.cpu.total, 2),
        )
        series["selected_bytes"].append(sel_bytes)
        series["row_elapsed"].append(m_row.elapsed)
        series["col_delta_elapsed"].append(m_delta.elapsed)
        series["col_for_elapsed"].append(m_for.elapsed)
        series["row_cpu"].append(m_row.cpu.total)
        series["col_delta_cpu"].append(m_delta.cpu.total)
        series["col_for_cpu"].append(m_for.cpu.total)

    return ExperimentOutput(
        name="Figure 9: compression (ORDERS-Z, FOR vs FOR-delta)",
        tables=[total, cpu],
        series=series,
    )
