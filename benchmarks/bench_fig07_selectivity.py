"""Figure 7 — CPU breakdown at 0.1 % selectivity."""

from _common import BENCH_ROWS, publish, run_once

from repro.experiments.figures import fig06_baseline, fig07_selectivity


def bench_figure7_selectivity(benchmark):
    out = run_once(benchmark, lambda: fig07_selectivity.run(num_rows=BENCH_ROWS))
    publish(out, "figure_07_selectivity.txt")

    baseline = fig06_baseline.run(num_rows=BENCH_ROWS)
    # Additional attributes add negligible CPU at 0.1% selectivity.
    growth_low = out.series["col_cpu"][-1] - out.series["col_cpu"][0]
    growth_high = baseline.series["col_cpu"][-1] - baseline.series["col_cpu"][0]
    assert growth_low < 0.5 * growth_high
    # The string columns' memory delays disappear.
    assert max(out.series["col_l2"]) < 0.3
    # I/O time is untouched by selectivity.
    assert (
        abs(out.series["col_elapsed"][-1] - baseline.series["col_elapsed"][-1])
        < 0.02 * baseline.series["col_elapsed"][-1]
    )
