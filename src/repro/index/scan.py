"""Index-scan operator: probe the index, fetch tuples by sorted RID.

Produces exactly the same blocks a table scanner would for the same
predicate, so the two access paths are interchangeable above the disk
layer — the property the paper's engine design insists on.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.engine.blocks import Block, split_into_blocks
from repro.engine.context import ExecutionContext
from repro.engine.operators.base import Operator
from repro.engine.predicate import Predicate
from repro.errors import PlanError
from repro.index.secondary import SecondaryIndex
from repro.storage.table import RowTable


class IndexScan(Operator):
    """Fetch the tuples qualifying under one indexed predicate."""

    def __init__(
        self,
        context: ExecutionContext,
        table: RowTable,
        index: SecondaryIndex,
        predicate: Predicate,
        select: tuple[str, ...],
    ):
        super().__init__(context)
        if not select:
            raise PlanError("index scan needs a non-empty select list")
        if index.num_rows != table.num_rows:
            raise PlanError(
                f"index covers {index.num_rows} rows, table has {table.num_rows}"
            )
        for name in select:
            table.schema.attribute(name)
        self.table = table
        self.index = index
        self.predicate = predicate
        self.select = tuple(select)
        self._ready: deque[Block] = deque()
        self._done = False

    def _open(self) -> None:
        self._ready.clear()
        self._done = False

    def _next(self) -> Block | None:
        if not self._done:
            self._execute()
            self._done = True
        if not self._ready:
            return None
        return self._ready.popleft()

    def _execute(self) -> None:
        events = self.events
        calibration = self.context.calibration
        rids = self.index.lookup_predicate(self.predicate)
        # Probing the index and sorting the RID list.
        events.positions_processed += int(rids.size)

        per_page = self.table.page_codec.tuples_per_page
        columns = {
            name: [] for name in self.select
        }
        if rids.size:
            page_ids = rids // per_page
            for page_id in np.unique(page_ids):
                in_page = rids[page_ids == page_id] - page_id * per_page
                page = self.table.file.read_page(int(page_id))
                _pid, _count, decoded = self.table.page_codec.decode_columns(page)
                events.pages_touched += 1
                # A fetched page streams through the caches whole.
                events.mem_seq_lines += (
                    self.table.page_size // calibration.l2_line_bytes
                )
                events.l1_lines += self.table.page_size // calibration.l1_line_bytes
                for name in self.select:
                    columns[name].append(decoded[name][in_page])

        materialized = {}
        for name in self.select:
            if columns[name]:
                materialized[name] = np.concatenate(columns[name])
            else:
                attr = self.table.schema.attribute(name)
                materialized[name] = np.zeros(0, dtype=attr.attr_type.numpy_dtype())
        qualified = int(rids.size)
        selected_width = sum(
            self.table.schema.attribute(name).width for name in self.select
        )
        events.values_copied += qualified * len(self.select)
        events.bytes_copied += qualified * selected_width
        block = Block(columns=materialized, positions=rids)
        self._ready.extend(split_into_blocks(block, self.context.block_size))
