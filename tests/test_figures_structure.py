"""Structural checks over every registered experiment.

Every experiment must run at small scale, render, and produce
non-empty tables and numeric series — the catch-all that keeps a new
figure module honest.
"""

import pytest

from repro.experiments.figures import ALL_EXPERIMENTS

ROWS = 1_200


@pytest.fixture(scope="module")
def outputs():
    return {
        name: runner(num_rows=ROWS) for name, runner in ALL_EXPERIMENTS.items()
    }


@pytest.mark.parametrize("name", sorted(ALL_EXPERIMENTS))
def test_experiment_produces_tables(outputs, name):
    output = outputs[name]
    assert output.tables, f"{name} produced no tables"
    for table in output.tables:
        assert table.rows, f"{name}: table {table.title!r} is empty"
        for row in table.rows:
            assert len(row) == len(table.headers)


@pytest.mark.parametrize("name", sorted(ALL_EXPERIMENTS))
def test_experiment_renders(outputs, name):
    text = outputs[name].render()
    assert outputs[name].name in text
    assert len(text.splitlines()) > 3


@pytest.mark.parametrize("name", sorted(ALL_EXPERIMENTS))
def test_experiment_series_are_numeric(outputs, name):
    output = outputs[name]
    assert output.series, f"{name} exposes no series for assertions"
    for key, values in output.series.items():
        assert values, f"{name}: series {key!r} is empty"
        for value in values:
            assert isinstance(value, (int, float)), (name, key, value)


def test_experiment_names_are_kebab_case():
    for name in ALL_EXPERIMENTS:
        assert name == name.lower()
        assert " " not in name


class TestQueryResultHelpers:
    def test_rows_and_as_block(self, orders_data, orders_column):
        from repro.engine.executor import run_scan
        from repro.engine.query import ScanQuery

        result = run_scan(
            orders_column, ScanQuery("ORDERS", select=("O_ORDERKEY", "O_CUSTKEY"))
        )
        rows = result.rows()
        assert len(rows) == orders_data.num_rows
        assert rows[0] == (
            orders_data.column("O_ORDERKEY")[0],
            orders_data.column("O_CUSTKEY")[0],
        )
        block = result.as_block()
        assert len(block) == result.num_tuples
        assert block.attribute_names == ["O_ORDERKEY", "O_CUSTKEY"]
