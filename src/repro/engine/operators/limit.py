"""Limit and top-N operators.

Report queries usually end in ``ORDER BY ... LIMIT k``; ``TopN`` fuses
the sort with the cutoff (keeping only the best ``k`` per block) so the
limit costs ``n log2 k`` comparisons instead of a full ``n log2 n``
sort.
"""

from __future__ import annotations

import math

import numpy as np

from repro.engine.blocks import Block, split_into_blocks
from repro.engine.context import ExecutionContext
from repro.engine.operators.base import Operator
from repro.errors import EngineError, PlanError


class Limit(Operator):
    """Pass through at most ``count`` tuples, then stop pulling."""

    def __init__(self, context: ExecutionContext, child: Operator, count: int):
        super().__init__(context)
        if count < 0:
            raise PlanError(f"limit must be non-negative: {count}")
        self.child = child
        self.count = count
        self._remaining = count

    def children(self) -> list[Operator]:
        return [self.child]

    def describe(self) -> str:
        return f"n={self.count}"

    def _open(self) -> None:
        self._remaining = self.count

    def _next(self) -> Block | None:
        if self._remaining <= 0:
            return None
        block = self.child.next()
        if block is None:
            return None
        if len(block) > self._remaining:
            mask = np.zeros(len(block), dtype=bool)
            mask[: self._remaining] = True
            block = block.take(mask)
        self._remaining -= len(block)
        return block


class TopN(Operator):
    """The ``k`` tuples with the smallest (or largest) key values."""

    def __init__(
        self,
        context: ExecutionContext,
        child: Operator,
        key: str,
        count: int,
        descending: bool = False,
    ):
        super().__init__(context)
        if count <= 0:
            raise PlanError(f"top-N needs a positive count: {count}")
        self.child = child
        self.key = key
        self.count = count
        self.descending = descending
        self._ready: list[Block] = []
        self._done = False

    def children(self) -> list[Operator]:
        return [self.child]

    def describe(self) -> str:
        order = "largest" if self.descending else "smallest"
        return f"{order} {self.count} by {self.key}"

    def _open(self) -> None:
        self._ready = []
        self._done = False

    def _next(self) -> Block | None:
        if not self._done:
            self._ready = self._compute()
            self._done = True
        if not self._ready:
            return None
        return self._ready.pop(0)

    def _compute(self) -> list[Block]:
        best: Block | None = None
        while True:
            block = self.child.next()
            if block is None:
                break
            if not len(block):
                continue
            if self.key not in block.columns:
                raise PlanError(f"top-N key {self.key!r} missing from input")
            merged = block if best is None else _concat_pair(best, block)
            # Maintaining a k-bounded heap: log2(k) per inserted tuple.
            self.events.sort_comparisons += int(
                len(block) * max(1.0, math.log2(self.count + 1))
            )
            keys = merged.column(self.key)
            order = np.argsort(keys, kind="stable")
            if self.descending:
                order = order[::-1]
            take = order[: self.count]
            take.sort()  # keep stable input order within the retained set
            mask = np.zeros(len(merged), dtype=bool)
            mask[take] = True
            best = merged.take(mask)
        if best is None:
            return []
        keys = best.column(self.key)
        order = np.argsort(keys, kind="stable")
        if self.descending:
            order = order[::-1]
        final = Block(
            columns={name: col[order] for name, col in best.columns.items()},
            positions=best.positions[order],
        )
        return split_into_blocks(final, self.context.block_size)


def _concat_pair(a: Block, b: Block) -> Block:
    if a.attribute_names != b.attribute_names:
        raise EngineError(
            f"cannot merge blocks with attributes {a.attribute_names} and "
            f"{b.attribute_names}"
        )
    return Block(
        columns={
            name: np.concatenate([a.columns[name], b.columns[name]])
            for name in a.attribute_names
        },
        positions=np.concatenate([a.positions, b.positions]),
    )
