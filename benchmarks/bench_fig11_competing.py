"""Figure 11 — competing disk traffic at prefetch 48 / 8 / 2."""

from _common import BENCH_ROWS, publish, run_once

from repro.experiments.figures import fig11_competing


def bench_figure11_competing(benchmark):
    out = run_once(benchmark, lambda: fig11_competing.run(num_rows=BENCH_ROWS))
    publish(out, "figure_11_competing.txt")

    for depth in (48, 8, 2):
        row = out.series[f"row_{depth}"]
        fast = out.series[f"col_{depth}"]
        slow = out.series[f"col_slow_{depth}"]
        # The column system outperforms the row system in all
        # configurations — the paper's surprising result.
        assert all(c < r for c, r in zip(fast, row))
        # The "slow" submission variant gives the advantage back.
        assert all(s >= f for f, s in zip(fast, slow))
        assert abs(slow[-1] - row[-1]) < 0.15 * row[-1]
