"""Hardware constants and per-event instruction costs.

Hardware numbers come straight from the paper's Section 2-4 description
of its Pentium 4 testbed; per-event instruction counts are the one free
parameter of the reproduction and were tuned so the Figure 6/8 CPU bar
magnitudes land in the paper's range (see EXPERIMENTS.md).  Everything
lives here so no magic number hides in the engine.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.compression.base import CodecKind
from repro.units import KIB, MB


@dataclass(frozen=True)
class Calibration:
    """All tunable constants of the cost simulation."""

    # --- CPU core (Pentium 4 3.2 GHz) ------------------------------------
    clock_hz: float = 3.2e9
    #: CPUs available to the query.  The paper treats a parallel query
    #: as one with N times the CPU bandwidth ("if a query can run on
    #: three CPUs, we will treat it as one that has three times the CPU
    #: bandwidth"); parallelization itself is orthogonal to the study.
    num_cpus: int = 1
    #: Pentium 4 retires at most 3 uops per cycle; usr-uop = inst / 3.
    uops_per_cycle: float = 3.0
    #: Effective cycles per instruction actually achieved (stalls other
    #: than memory: branches, functional units).  usr-rest is the gap
    #: between this and the 3-wide ideal.
    cycles_per_instruction: float = 1.0

    # --- memory hierarchy -------------------------------------------------
    l2_line_bytes: int = 128
    #: Sequential (prefetched) delivery: one 128-byte line per 128 cycles
    #: = 1 byte per cycle of memory-bus bandwidth.
    seq_line_cycles: float = 128.0
    #: Measured random main-memory access stall.
    random_miss_cycles: float = 380.0
    l1_line_bytes: int = 64
    #: Upper bound on the L2 -> L1 fill cost per 64-byte line.
    l1_fill_cycles: float = 9.0
    l1_data_bytes: int = 16 * KIB

    # --- per-event instruction costs ---------------------------------------
    inst_tuple_iter_row: float = 100.0     #: row scanner, per tuple
    inst_value_iter_col: float = 85.0     #: dense column scan, per value
    inst_predicate: float = 18.0          #: per predicate evaluation
    inst_predicate_byte: float = 1.0      #: plus per byte of the operand
    inst_position: float = 200.0           #: per position-list lookup
    inst_copy_value: float = 12.0         #: per value copied into a block
    inst_copy_byte: float = 0.6           #: plus per byte copied
    inst_page_overhead: float = 250.0     #: per page-boundary crossing
    inst_block_overhead: float = 180.0    #: per block-iterator handoff
    inst_agg_update: float = 14.0         #: per aggregate accumulator update
    inst_group_lookup: float = 30.0       #: per hash/sort group probe
    inst_join_comparison: float = 12.0    #: per merge-join key comparison
    inst_sort_comparison: float = 16.0    #: per sort comparison
    inst_decode: dict = field(
        default_factory=lambda: {
            CodecKind.NONE: 0.0,
            CodecKind.PACK: 7.0,
            CodecKind.DICT: 10.0,
            CodecKind.FOR: 6.0,
            CodecKind.FOR_DELTA: 9.0,
            CodecKind.RLE: 3.0,
        }
    )

    # --- kernel-side I/O costs ---------------------------------------------
    #: Kernel work per byte read (buffer management, DMA completion).
    sys_cycles_per_byte: float = 1.0
    #: Per I/O-unit request submission/completion overhead.
    sys_cycles_per_request: float = 40_000.0
    #: Extra scheduler work each time the AIO layer switches streams
    #: (the paper's "more work needed by the Linux scheduler to handle
    #: read requests for multiple files").
    sys_cycles_per_stream_switch: float = 1_500_000.0

    # --- disk subsystem (3 x SATA software RAID) ----------------------------
    disk_bandwidth_bytes: float = 60 * MB  #: per-disk sequential bandwidth
    num_disks: int = 3
    #: Cost of breaking a sequential pattern: seek + settle (paper: the
    #: heads spend 5-10 ms repositioning).
    seek_seconds: float = 8e-3
    io_unit_bytes: int = 128 * KIB         #: per-disk AIO transfer unit
    default_prefetch_depth: int = 48       #: I/O units issued at once

    def with_overrides(self, **kwargs) -> "Calibration":
        """A copy with some constants replaced."""
        return replace(self, **kwargs)

    def fingerprint(self) -> str:
        """A stable 12-hex digest over every constant.

        Stamped into results provenance (see
        :mod:`repro.obs.provenance`): two runs with equal fingerprints
        simulated the same hardware, so their trajectories are
        comparable; any constant change shows up as a new fingerprint.
        """
        import hashlib
        from dataclasses import fields

        parts = []
        for spec in fields(self):
            value = getattr(self, spec.name)
            if isinstance(value, dict):
                value = sorted((str(key), item) for key, item in value.items())
            parts.append(f"{spec.name}={value!r}")
        return hashlib.sha256(";".join(parts).encode()).hexdigest()[:12]

    @property
    def total_disk_bandwidth(self) -> float:
        """Aggregate sequential bandwidth of the array, bytes/sec."""
        return self.disk_bandwidth_bytes * self.num_disks

    @property
    def aggregate_clock_hz(self) -> float:
        """Cycle supply across all CPUs, per second."""
        return self.clock_hz * self.num_cpus

    @property
    def cpdb(self) -> float:
        """Cycles per disk byte for this configuration (Section 5).

        The paper's machine — one 3.2 GHz CPU over three 60 MB/s disks —
        is rated at about 18 cpdb; a second CPU doubles it, more disks
        divide it.
        """
        return self.aggregate_clock_hz / self.total_disk_bandwidth

    def decode_cost(self, kind: CodecKind) -> float:
        """Instructions per value decode for a scheme."""
        return self.inst_decode.get(kind, 0.0)


#: The paper's testbed configuration.
DEFAULT_CALIBRATION = Calibration()
