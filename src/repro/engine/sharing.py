"""Shared scans: many queries riding one circular table scan.

Section 2.1.1 of the paper notes that concurrent queries over the same
table can be served off a *single* reading stream (Teradata, RedBrick,
QPipe); Figure 11 measures the competing-scans regime this avoids.  The
engine-side implementation lives here:

* :class:`SharedScanStream` — one circular pass over a table's needed
  column set, advanced a *segment* (one driving page's worth of rows)
  at a time.  Whoever pumps the stream drives it; every attached
  consumer receives each decoded segment.  The stream's I/O (pages
  touched, bytes read) is accounted **once** on the stream's own
  :class:`~repro.cpusim.events.CostEvents`, mirroring the iosim
  shared-stream model (:mod:`repro.iosim.sharing`), while decode and
  predicate CPU is charged **per consumer** — each query still pays to
  process the delivered values.
* :class:`SharedScanConsumer` — an :class:`~repro.engine.operators.base.
  Operator` view of one query's ride on the stream.  A consumer
  attaches *mid-flight* at the stream's current position, rides to the
  end, wraps around for the prefix it missed (circular scan), and
  detaches after exactly one full pass.  Output is re-assembled into
  global Record-ID order before emission, so the result is
  byte-identical to a cold serial scan.
* :class:`ScanShareManager` — the attach point: queries over the same
  table, column set, and integrity mode join the in-progress stream;
  everything else gets a fresh one.

Salvage mode drops the union of corrupt-page row spans across the
needed columns — exactly the rows a serial salvage scan would lose —
and records the damage per consumer.  Under strict integrity a decode
error fails the whole stream with the same typed error every rider
would have hit scanning alone.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.cpusim.events import CostEvents
from repro.engine.blocks import Block, concat_blocks, split_into_blocks
from repro.engine.context import ExecutionContext
from repro.engine.operators.base import SALVAGEABLE_ERRORS, Operator
from repro.engine.query import ScanQuery
from repro.errors import EngineError, PlanError
from repro.obs import metrics as obs_metrics
from repro.obs import recorder as flight
from repro.storage.table import ColumnTable, PaxTable, RowTable, Table

__all__ = [
    "ScanShareManager",
    "SharedScanConsumer",
    "SharedScanStream",
    "share_key",
]


def share_key(table: Table, query: ScanQuery, strict_integrity: bool) -> tuple:
    """The attach-compatibility key: same table, column set, integrity."""
    return (id(table), frozenset(query.scan_attributes()), strict_integrity)


class _SegmentData:
    """One decoded segment: full-width values plus a validity mask."""

    __slots__ = ("lo", "hi", "columns", "valid", "pages")

    def __init__(self, lo, hi, columns, valid, pages):
        self.lo = lo
        self.hi = hi
        #: attr name -> values for rows [lo, hi) (zero-filled where invalid).
        self.columns = columns
        #: Boolean mask over [lo, hi): False where a corrupt page's span fell.
        self.valid = valid
        #: ``(file_name, page_id, decoded, row_span, error)`` per page read.
        self.pages = pages


class SharedScanStream:
    """One circular scan over ``attrs`` of ``table``, shared by consumers.

    Segments are the driving file's pages: the row file's pages (row
    and PAX layouts) or the pages of the column file with the *most*
    pages (column layout — its pages bound the finest row spans, so
    every other needed column is swept sequentially alongside it
    through a small rolling page cache and each page still decodes once
    per pass).
    """

    #: Rolling decoded-page cache entries kept per column file.
    _CACHE_PAGES = 4

    def __init__(self, table: Table, attrs: tuple[str, ...], strict_integrity: bool):
        self.table = table
        self.attrs = tuple(attrs)
        self.strict_integrity = strict_integrity
        #: I/O accounted once for the whole stream, not per consumer.
        self.io_events = CostEvents()
        self._consumers: list[SharedScanConsumer] = []
        self._cursor = 0
        self._failed: Exception | None = None
        #: ``(file_key, page_id) -> (file_name, row_span, error)`` for pages
        #: that failed to decode (salvage mode keeps going; consumers each
        #: record the damage once).
        self._corrupt: dict[tuple, tuple[str, int, Exception]] = {}
        #: Per-column rolling cache of decoded pages (column layout).
        self._page_cache: dict[str, dict[int, np.ndarray]] = {}
        self._segments = self._build_segments()
        #: Lifetime totals (survive consumer detach; feed scheduler stats).
        self.total_attached = 0

    # --- geometry ---------------------------------------------------------

    def _build_segments(self) -> list[tuple[int, int, int]]:
        """``(driving page id, row lo, row hi)`` per segment, in row order."""
        table = self.table
        segments: list[tuple[int, int, int]] = []
        if isinstance(table, (RowTable, PaxTable)):
            base = 0
            for page_id in range(table.file.num_pages):
                span = table.row_span_of_page(page_id)
                if span > 0:
                    segments.append((page_id, base, base + span))
                base += span
            return segments
        if isinstance(table, ColumnTable):
            driver = self._driving_column()
            if driver is None:
                return segments
            column_file = table.column_file(driver)
            for page_id in range(column_file.file.num_pages):
                lo = column_file.first_row_of_page(page_id)
                span = column_file.row_span_of_page(page_id, table.num_rows)
                if span > 0:
                    segments.append((page_id, lo, lo + span))
            return segments
        raise PlanError(f"unsupported table type for sharing: {type(table).__name__}")

    def _driving_column(self) -> str | None:
        """The needed column with the most pages (finest segments)."""
        table = self.table
        assert isinstance(table, ColumnTable)
        best: str | None = None
        best_pages = -1
        for name in sorted(self.attrs):
            pages = table.column_file(name).file.num_pages
            if pages > best_pages:
                best, best_pages = name, pages
        return best

    @property
    def num_segments(self) -> int:
        return len(self._segments)

    @property
    def cursor(self) -> int:
        """The segment index the stream will serve next."""
        return self._cursor

    @property
    def consumers(self) -> tuple:
        return tuple(self._consumers)

    @property
    def failed(self) -> Exception | None:
        return self._failed

    # --- attach / detach --------------------------------------------------

    def attach(self, consumer: "SharedScanConsumer") -> set[int]:
        """Join the stream mid-flight; one full circular pass serves you."""
        if self._failed is not None:
            raise self._failed
        self._consumers.append(consumer)
        self.total_attached += 1
        return set(range(len(self._segments)))

    def detach(self, consumer: "SharedScanConsumer") -> None:
        """Leave the stream (end of pass, failure, or cancellation)."""
        if consumer in self._consumers:
            self._consumers.remove(consumer)
            flight.record(
                "share.detach",
                consumer._flight_label(),
                table=self.table.schema.name,
                riders=len(self._consumers),
            )

    @property
    def idle(self) -> bool:
        """True when no attached consumer still needs a segment."""
        return not any(c._remaining for c in self._consumers)

    # --- the circular pump ------------------------------------------------

    def step(self) -> bool:
        """Decode and deliver the next needed segment (circularly).

        Returns False when no attached consumer needs anything.  Raises
        the stream's terminal error (strict-integrity decode failure)
        to whoever pumps after it tripped.
        """
        if self._failed is not None:
            raise self._failed
        total = len(self._segments)
        if total == 0 or self.idle:
            return False
        for offset in range(total):
            index = (self._cursor + offset) % total
            takers = [c for c in self._consumers if index in c._remaining]
            if not takers:
                continue
            try:
                data = self._decode_segment(index)
            except SALVAGEABLE_ERRORS as exc:
                # Strict integrity: the whole stream dies with the typed
                # error every rider would have hit scanning alone.
                self._failed = exc
                raise
            self._cursor = (index + 1) % total
            if index + 1 == total:
                # The circular pass wrapped back to segment 0.
                flight.record(
                    "share.wrap",
                    table=self.table.schema.name,
                    riders=len(takers),
                )
            for consumer in takers:
                consumer._receive(index, data)
            return True
        return False

    # --- decoding ---------------------------------------------------------

    def _decode_segment(self, index: int) -> _SegmentData:
        table = self.table
        page_id, lo, hi = self._segments[index]
        if isinstance(table, (RowTable, PaxTable)):
            return self._decode_paged_segment(table, page_id, lo, hi)
        assert isinstance(table, ColumnTable)
        return self._decode_column_segment(table, lo, hi)

    def _read_page(self, file, page_id: int, file_key: str, row_span: int):
        """One accounted page read (+decode by the caller); None if corrupt.

        The I/O is charged to the stream exactly once per page per pass;
        a corrupt page is remembered so re-deliveries don't re-read it.
        """
        key = (file_key, page_id)
        if key in self._corrupt:
            return None
        self.io_events.pages_touched += 1
        self.io_events.bytes_read += self.table.page_size
        obs_metrics.SCHEDULER_SHARED_PAGES.inc()
        return file.read_page(page_id)

    def _record_corrupt(
        self, file_key: str, file_name: str, page_id: int, row_span: int, exc
    ) -> None:
        if self.strict_integrity:
            raise exc
        self._corrupt[(file_key, page_id)] = (file_name, row_span, exc)
        flight.record(
            "storage.salvage",
            file=file_name,
            page=page_id,
            error=type(exc).__name__,
        )

    def _decode_paged_segment(self, table, page_id: int, lo: int, hi: int):
        """Row/PAX: one segment is exactly one page of the row file."""
        span = hi - lo
        file_key = table.file.name
        pages: list[tuple] = []
        raw = self._read_page(table.file, page_id, file_key, span)
        decoded: dict[str, np.ndarray] | None = None
        if raw is not None:
            try:
                if isinstance(table, RowTable):
                    _pid, _count, columns = table.page_codec.decode_columns(raw)
                    decoded = {name: columns[name] for name in self.attrs}
                else:
                    decoded = {}
                    for name in self.attrs:
                        _pid, _count, values = table.page_codec.decode_attribute(
                            raw, name
                        )
                        decoded[name] = values
            except SALVAGEABLE_ERRORS as exc:
                self._record_corrupt(file_key, table.file.name, page_id, span, exc)
                decoded = None
        if decoded is None:
            _name, row_span, error = self._corrupt[(file_key, page_id)]
            pages.append((table.file.name, page_id, False, row_span, error))
            columns = {
                name: np.zeros(
                    span, dtype=table.schema.attribute(name).attr_type.numpy_dtype()
                )
                for name in self.attrs
            }
            return _SegmentData(lo, hi, columns, np.zeros(span, dtype=bool), pages)
        pages.append((table.file.name, page_id, True, span, None))
        return _SegmentData(
            lo,
            hi,
            {name: values[:span] for name, values in decoded.items()},
            np.ones(span, dtype=bool),
            pages,
        )

    def _decode_column_segment(self, table: ColumnTable, lo: int, hi: int):
        """Column layout: assemble [lo, hi) of every needed column."""
        span = hi - lo
        valid = np.ones(span, dtype=bool)
        columns: dict[str, np.ndarray] = {}
        pages: list[tuple] = []
        for name in self.attrs:
            column_file = table.column_file(name)
            dtype = table.schema.attribute(name).attr_type.numpy_dtype()
            out = np.zeros(span, dtype=dtype)
            page_id = int(
                column_file.page_of_positions(np.asarray([lo], dtype=np.int64))[0]
            )
            row = lo
            while row < hi:
                if page_id >= column_file.file.num_pages:
                    raise EngineError(
                        f"column {name!r} ran out of pages at row {row} of "
                        f"[{lo}, {hi})"
                    )
                page_first = column_file.first_row_of_page(page_id)
                page_span = column_file.row_span_of_page(page_id, table.num_rows)
                page_end = page_first + page_span
                take_lo = max(row, page_first)
                take_hi = min(hi, page_end)
                if take_hi <= row:
                    page_id += 1
                    continue
                values = self._column_page_values(column_file, page_id, page_span)
                if values is None:
                    _fname, row_span, error = self._corrupt[
                        (column_file.file.name, page_id)
                    ]
                    pages.append(
                        (column_file.file.name, page_id, False, row_span, error)
                    )
                    valid[take_lo - lo : take_hi - lo] = False
                else:
                    pages.append(
                        (column_file.file.name, page_id, True, page_span, None)
                    )
                    out[take_lo - lo : take_hi - lo] = values[
                        take_lo - page_first : take_hi - page_first
                    ]
                row = take_hi
                page_id += 1
            columns[name] = out
        return _SegmentData(lo, hi, columns, valid, pages)

    def _column_page_values(self, column_file, page_id: int, row_span: int):
        """One column page's values, through the rolling per-pass cache."""
        cache = self._page_cache.setdefault(column_file.file.name, {})
        if page_id in cache:
            return cache[page_id]
        raw = self._read_page(
            column_file.file, page_id, column_file.file.name, row_span
        )
        if raw is None:
            return None
        try:
            _pid, values = column_file.page_codec.decode(raw)
        except SALVAGEABLE_ERRORS as exc:
            self._record_corrupt(
                column_file.file.name,
                column_file.file.name,
                page_id,
                row_span,
                exc,
            )
            return None
        while len(cache) >= self._CACHE_PAGES:
            cache.pop(next(iter(cache)))
        cache[page_id] = values
        return values


class SharedScanConsumer(Operator):
    """One query's ride on a :class:`SharedScanStream`.

    Applies its *own* predicates and projection to every delivered
    segment (per-consumer CPU), buffers qualifying rows keyed by
    segment index, and — once its full circular pass completes — emits
    them re-assembled into global Record-ID order, split into
    engine-sized blocks.  Byte-identical to a cold serial scan of the
    same query.
    """

    def __init__(
        self,
        context: ExecutionContext,
        share: SharedScanStream,
        query: ScanQuery,
    ):
        super().__init__(context)
        query.validate_against(share.table.schema)
        missing = set(query.scan_attributes()) - set(share.attrs)
        if missing:
            raise PlanError(
                f"shared stream lacks attributes {sorted(missing)} "
                f"(carries {sorted(share.attrs)})"
            )
        self.share = share
        self.query = query
        self.select = tuple(query.select)
        self.predicates = tuple(query.predicates)
        #: Segment the stream was at when we attached (for EXPLAIN).
        self.attach_cursor = share.cursor
        self._remaining = share.attach(self)
        flight.record(
            "share.attach",
            self._flight_label(),
            table=share.table.schema.name,
            cursor=self.attach_cursor,
            segments=share.num_segments,
            riders=len(share.consumers),
        )
        self._buffered: list[tuple[int, Block]] = []
        self._output: deque[Block] = deque()
        self._finalized = False
        self._seen_pages: set[tuple[str, int]] = set()
        self._schema_compressed = any(
            attr.spec.is_compressed for attr in share.table.schema
        )

    def describe(self) -> str:
        detail = (
            f"{self.share.table.schema.name}: {', '.join(self.select)} | "
            f"shared, attached@segment {self.attach_cursor}/"
            f"{self.share.num_segments}"
        )
        if self.predicates:
            detail += f" | {len(self.predicates)} predicate(s)"
        return detail

    @property
    def finished(self) -> bool:
        """True once this consumer's full pass is assembled."""
        return self._finalized

    def _flight_label(self) -> str | None:
        """This rider's query label for flight-recorder attribution."""
        governance = self.context.governance
        return governance.label if governance is not None else None

    # --- stream side ------------------------------------------------------

    def _receive(self, index: int, data: _SegmentData) -> None:
        """Process one delivered segment (called by the stream).

        Deliveries run during *whoever pumps* — often a peer's
        timeslice — yet mutate this consumer's own ``context.events``.
        So the work is wrapped in a span window on this consumer's own
        tracer (billed to its ``next`` bucket): per-query span totals
        stay exactly equal to the per-query plan totals even when every
        segment arrived off peers' pumps.  Nesting is safe when the
        delivery happens inside this consumer's own traced ``next()``
        drain — both frames belong to the same span.
        """
        tracer = self.context.tracer
        if tracer is None:
            self._receive_inner(index, data)
            return
        frame = tracer.enter(self, "receive")
        try:
            self._receive_inner(index, data)
        finally:
            tracer.exit(frame, self.context.events)

    def _receive_inner(self, index: int, data: _SegmentData) -> None:
        self._remaining.discard(index)
        events = self.events
        span = data.hi - data.lo
        corruption = self.context.corruption
        for file_name, page_id, decoded, row_span, error in data.pages:
            key = (file_name, page_id)
            if key in self._seen_pages:
                continue
            self._seen_pages.add(key)
            if decoded:
                corruption.pages_scanned += 1
            else:
                obs_metrics.PAGES_SALVAGED.inc()
                corruption.record(file_name, page_id, row_span, error)

        mask = data.valid.copy()
        candidates = int(np.count_nonzero(mask))
        events.values_examined += span
        decoded_attrs: set[str] = set()
        for predicate in self.predicates:
            events.predicate_evals += candidates
            events.predicate_eval_bytes += (
                candidates
                * self.share.table.schema.attribute(predicate.attr).width
            )
            self._count_decodes(predicate.attr, span, decoded_attrs)
            mask &= predicate.evaluate(data.columns[predicate.attr])
            candidates = int(np.count_nonzero(mask))

        qualified = candidates
        if not qualified:
            return
        for name in self.select:
            self._count_decodes(name, span, decoded_attrs)
        selected_width = sum(
            self.share.table.schema.attribute(name).width for name in self.select
        )
        events.values_copied += qualified * len(self.select)
        events.bytes_copied += qualified * selected_width
        positions = data.lo + np.flatnonzero(mask)
        block = Block(
            columns={name: data.columns[name][mask] for name in self.select},
            positions=positions,
        )
        self._buffered.append((index, block))

    def _count_decodes(self, attr_name: str, span: int, decoded_attrs: set) -> None:
        """Per-consumer decode CPU: each rider pays to process values."""
        if not self._schema_compressed or attr_name in decoded_attrs:
            return
        spec = self.share.table.schema.attribute(attr_name).spec
        if not spec.is_compressed:
            return
        decoded_attrs.add(attr_name)
        self.events.count_decode(spec.kind, span)

    # --- operator side ----------------------------------------------------

    def advance(self) -> bool:
        """One cooperative timeslice: pump the stream one segment.

        Returns True while more pumping is needed for *this* consumer;
        once its pass is complete the output is finalized and False is
        returned (drain the blocks with ``next()``).  Deliveries made
        while a *peer* pumps shrink ``_remaining`` too, so a consumer
        may finish without ever pumping itself.
        """
        if self._finalized:
            return False
        if self.share.failed is not None:
            raise self.share.failed
        self._governance_check()
        if not self._remaining:
            self._finalize()
            return False
        if not self.share.step():
            raise EngineError(
                "shared scan stream stalled with segments outstanding"
            )
        if not self._remaining:
            self._finalize()
            return False
        return True

    def _finalize(self) -> None:
        self._finalized = True
        self.share.detach(self)
        self._buffered.sort(key=lambda pair: pair[0])
        blocks = [block for _index, block in self._buffered]
        self._buffered = []
        merged = concat_blocks(blocks)
        if not len(merged):
            self._output.append(self._empty_block())
            return
        self._output.extend(split_into_blocks(merged, self.context.block_size))

    def _empty_block(self) -> Block:
        columns = {
            name: np.zeros(
                0,
                dtype=self.share.table.schema.attribute(
                    name
                ).attr_type.numpy_dtype(),
            )
            for name in self.select
        }
        return Block(columns=columns, positions=np.zeros(0, dtype=np.int64))

    def _next(self) -> Block | None:
        while not self._finalized:
            self.advance()
        if not self._output:
            return None
        return self._output.popleft()

    def _close(self) -> None:
        self.share.detach(self)


class ScanShareManager:
    """The attach point: route each query to a live compatible stream.

    Streams are keyed by (table identity, needed column set, integrity
    mode); a query matching a stream that still has riders attaches to
    it mid-flight (share *hit*), anything else starts a fresh stream
    (share *miss*).  Streams with no riders left are dropped — their
    I/O totals are kept for workload-level accounting.
    """

    def __init__(self) -> None:
        self._streams: dict[tuple, SharedScanStream] = {}
        self._history: list[SharedScanStream] = []
        self.hits = 0
        self.misses = 0

    def acquire(
        self, table: Table, query: ScanQuery, context: ExecutionContext
    ) -> SharedScanConsumer:
        """A consumer for ``query``, shared with compatible live scans."""
        key = share_key(table, query, context.strict_integrity)
        stream = self._streams.get(key)
        if stream is not None and stream.failed is None and stream.consumers:
            self.hits += 1
            obs_metrics.SCHEDULER_SHARE_HITS.inc()
        else:
            stream = SharedScanStream(
                table, query.scan_attributes(), context.strict_integrity
            )
            self._streams[key] = stream
            self._history.append(stream)
            self.misses += 1
            obs_metrics.SCHEDULER_SHARE_MISSES.inc()
        obs_metrics.SHARE_HIT_RATIO.set(self.hits / (self.hits + self.misses))
        return SharedScanConsumer(context, stream, query)

    def discard(self, consumer: SharedScanConsumer) -> None:
        """Detach a failed/cancelled rider without touching its peers."""
        consumer.share.detach(consumer)

    def live_streams(self) -> list[SharedScanStream]:
        """Streams that still have riders attached."""
        return [
            stream for stream in self._streams.values() if stream.consumers
        ]

    def board(self) -> list[dict]:
        """Live-stream summaries for the scheduler dashboard."""
        return [
            {
                "table": stream.table.schema.name,
                "cursor": stream.cursor,
                "segments": stream.num_segments,
                "riders": [
                    consumer._flight_label() or "?"
                    for consumer in stream.consumers
                ],
            }
            for stream in self.live_streams()
        ]

    def io_bytes(self) -> int:
        """Bytes read by every stream ever created, each counted once."""
        return sum(stream.io_events.bytes_read for stream in self._history)

    def io_pages(self) -> int:
        return sum(stream.io_events.pages_touched for stream in self._history)

    def stats(self) -> dict:
        return {
            "share_hits": self.hits,
            "share_misses": self.misses,
            "shared_io_bytes": self.io_bytes(),
            "shared_io_pages": self.io_pages(),
        }
