"""Unit-helper tests."""

import pytest

from repro.units import bits_to_bytes, fmt_bytes, fmt_seconds


class TestBitsToBytes:
    def test_exact_bytes(self):
        assert bits_to_bytes(8) == 1
        assert bits_to_bytes(64) == 8

    def test_rounds_up(self):
        assert bits_to_bytes(1) == 1
        assert bits_to_bytes(9) == 2
        assert bits_to_bytes(92) == 12  # ORDERS-Z

    def test_zero(self):
        assert bits_to_bytes(0) == 0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            bits_to_bytes(-1)


class TestFormatting:
    def test_fmt_bytes_scales(self):
        assert fmt_bytes(512) == "512 B"
        assert fmt_bytes(9.5e9) == "9.5 GB"
        assert fmt_bytes(1_935_118_336).endswith("GB")

    def test_fmt_seconds_scales(self):
        assert fmt_seconds(52.5) == "52.50 s"
        assert fmt_seconds(0.008) == "8.00 ms"
        assert fmt_seconds(5e-6).endswith("us")
