"""Slow-query log: top-K forensics for the slowest queries of a batch.

Real column stores keep a slow-query log because the p99 tail is where
workload pathologies live — a query that queued behind a convoy, missed
the shared-scan attach window, or burned CPU salvaging corrupt pages.
This module captures exactly that for the cooperative scheduler: every
finished query whose latency clears ``threshold_s`` competes for one of
``top_k`` slots (a min-heap keeps only the slowest), and each kept
entry freezes the forensics the scheduler had at finish time — queue
vs execution split, time-slice count, the per-query CostEvents diff
(each scheduled query runs on its own ``ExecutionContext``, so its
``events`` *is* the diff against zero), whether it rode a shared
stream, and the full EXPLAIN ANALYZE text when the batch was traced.

:meth:`repro.database.Database.run_workload` attaches a log to each
batch and returns it in the info dict::

    results, info = db.run_workload(requests, info=True)
    print(info["slowlog"].render())
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

__all__ = ["SlowQueryEntry", "SlowQueryLog"]


@dataclass
class SlowQueryEntry:
    """Forensics for one slow query, frozen at finish time."""

    label: str
    table: str
    latency_s: float
    #: Admission-queue wait (already included in ``latency_s``).
    queue_s: float
    #: Cooperative timeslices the scheduler granted this query.
    slices: int
    rows: int | None
    #: Typed error name for failed queries, ``None`` for completed ones.
    error: str | None
    #: Whether the query rode a shared circular scan stream.
    shared: bool
    #: Per-query CostEvents diff (pages, decode ns, tuples, ...).
    events: dict = field(default_factory=dict)
    #: EXPLAIN ANALYZE text when the batch ran with ``trace=True``.
    explain: str | None = None

    def render(self) -> str:
        status = self.error or "ok"
        lines = [
            f"{self.label} [{status}] table={self.table} "
            f"latency={self.latency_s * 1e3:.2f}ms "
            f"(queued {self.queue_s * 1e3:.2f}ms) "
            f"slices={self.slices} rows={self.rows} "
            f"shared={'yes' if self.shared else 'no'}"
        ]
        if self.events:
            pages = self.events.get("pages_touched", 0)
            values = self.events.get("values_examined", 0)
            copied = self.events.get("bytes_copied", 0)
            lines.append(
                f"  events: pages={pages} values={values} copied={copied}B"
                + ("  (stream pays the I/O)" if self.shared else "")
            )
        if self.explain:
            lines.extend("  | " + line for line in self.explain.splitlines())
        return "\n".join(lines)


class SlowQueryLog:
    """Threshold + top-K capture of the slowest queries in a batch.

    ``threshold_s`` filters first (0.0 admits everything); among
    admitted entries a bounded min-heap keeps only the ``top_k``
    slowest, so a million-query batch still holds ``top_k`` entries.
    """

    def __init__(self, threshold_s: float = 0.0, top_k: int = 5):
        if top_k < 1:
            raise ValueError(f"top_k must be >= 1: {top_k}")
        self.threshold_s = threshold_s
        self.top_k = top_k
        #: ``(latency, insertion_seq, entry)`` min-heap; root = fastest kept.
        self._heap: list[tuple[float, int, SlowQueryEntry]] = []
        self._seq = 0
        #: Queries observed (kept or not), for the render header.
        self.observed = 0

    def observe(self, entry: SlowQueryEntry) -> bool:
        """Offer one finished query; returns True when it was kept."""
        self.observed += 1
        if entry.latency_s < self.threshold_s:
            return False
        item = (entry.latency_s, self._seq, entry)
        self._seq += 1
        if len(self._heap) < self.top_k:
            heapq.heappush(self._heap, item)
            return True
        if item[0] <= self._heap[0][0]:
            return False
        heapq.heappushpop(self._heap, item)
        return True

    def __len__(self) -> int:
        return len(self._heap)

    def entries(self) -> list[SlowQueryEntry]:
        """Kept entries, slowest first."""
        return [
            item[2]
            for item in sorted(self._heap, key=lambda item: -item[0])
        ]

    def render(self) -> str:
        """Human-readable log, slowest first."""
        header = (
            f"slow-query log: top {len(self._heap)} of {self.observed} "
            f"queries (threshold {self.threshold_s * 1e3:.1f}ms)"
        )
        parts = [header]
        for rank, entry in enumerate(self.entries(), 1):
            parts.append(f"#{rank} {entry.render()}")
        return "\n".join(parts)
