"""Frame-of-reference compression: FOR and FOR-delta.

Both schemes keep one *base value* per page (the first value of the page)
in the page trailer.  Plain **FOR** stores each value as its difference
from the base; **FOR-delta** stores each value as its difference from the
*previous* value (the first value of the page is the base itself).

FOR-delta typically needs fewer bits (a sorted key column becomes a run
of small steps) but reconstruction of value *i* requires a prefix sum of
all deltas before it, so any access decodes the entire page — the CPU
cost the paper isolates in Figure 9.

Deltas can be negative for non-monotonic data; the spec's ``zigzag`` flag
enables zig-zag encoding (``(d << 1) ^ (d >> 63)``) in that case, chosen
automatically by the advisor.
"""

from __future__ import annotations

import numpy as np

from repro.compression.base import Codec, CodecKind, CodecSpec, PageCodecState, require_int_array
from repro.compression.bitpack import bits_needed, pack_bits, unpack_bits
from repro.errors import CompressionError
from repro.types.datatypes import AttributeType, IntType


def zigzag_encode(deltas: np.ndarray) -> np.ndarray:
    """Map signed deltas onto non-negative integers (0,-1,1,-2 → 0,1,2,3)."""
    deltas = deltas.astype(np.int64, copy=False)
    return ((deltas << 1) ^ (deltas >> 63)).astype(np.int64)


def zigzag_decode(encoded: np.ndarray) -> np.ndarray:
    """Inverse of :func:`zigzag_encode`."""
    encoded = encoded.astype(np.int64, copy=False)
    unsigned = encoded.astype(np.uint64)
    return ((unsigned >> np.uint64(1)).astype(np.int64)) ^ -(encoded & 1)


class _FrameCodecBase(Codec):
    """Shared machinery for the two frame-of-reference variants."""

    _KIND: CodecKind

    def __init__(self, spec: CodecSpec, attr_type: AttributeType):
        if spec.kind is not self._KIND:
            raise CompressionError(f"{type(self).__name__} got spec kind {spec.kind}")
        if not isinstance(attr_type, IntType):
            raise CompressionError("frame-of-reference applies to integer attributes only")
        super().__init__(spec, attr_type)

    def _pack_deltas(self, deltas: np.ndarray) -> bytes:
        if self.spec.zigzag:
            deltas = zigzag_encode(deltas)
        elif deltas.size and int(deltas.min()) < 0:
            raise CompressionError(
                "negative delta without zigzag encoding; "
                "use choose_spec() to size the codec from the data"
            )
        return pack_bits(deltas, self.spec.bits)

    def _unpack_deltas(self, payload: bytes, count: int) -> np.ndarray:
        deltas = unpack_bits(payload, self.spec.bits, count)
        if self.spec.zigzag:
            deltas = zigzag_decode(deltas)
        return deltas

    @classmethod
    def _spec_from_deltas(cls, deltas: np.ndarray) -> CodecSpec:
        if deltas.size == 0:
            return CodecSpec(kind=cls._KIND, bits=1)
        lo = int(deltas.min())
        if lo < 0:
            encoded = zigzag_encode(deltas)
            return CodecSpec(
                kind=cls._KIND, bits=bits_needed(int(encoded.max())), zigzag=True
            )
        return CodecSpec(kind=cls._KIND, bits=bits_needed(int(deltas.max())))


class ForCodec(_FrameCodecBase):
    """Plain FOR: differences from the page's base value.

    Values can be decoded individually (no prefix sum), so selective
    access only decodes the requested positions.
    """

    _KIND = CodecKind.FOR

    def encode_page(self, values: np.ndarray) -> tuple[bytes, PageCodecState]:
        values = require_int_array(values, "FOR")
        if values.size == 0:
            return b"", PageCodecState()
        base = int(values[0])
        deltas = values - base
        return self._pack_deltas(deltas), PageCodecState(base=base)

    def decode_page(self, payload: bytes, count: int, state: PageCodecState) -> np.ndarray:
        deltas = self._unpack_deltas(payload, count)
        return deltas + state.base

    @staticmethod
    def spec_for_values(values: np.ndarray, page_capacity: int = 0) -> CodecSpec:
        """Size the codec so *any* page split of ``values`` encodes.

        The base of a page is its first value, so a delta is bounded by
        the column's global value range no matter where the loader cuts
        pages (``page_capacity`` is accepted for API symmetry but the
        bound is split-invariant).  Non-monotonic data can yield
        negative deltas and gets zig-zag encoding.
        """
        values = require_int_array(values, "FOR")
        if values.size == 0:
            return CodecSpec(kind=CodecKind.FOR, bits=1)
        value_range = int(values.max()) - int(values.min())
        nondecreasing = bool(np.all(np.diff(values) >= 0))
        if nondecreasing:
            return CodecSpec(kind=CodecKind.FOR, bits=bits_needed(value_range))
        extremes = zigzag_encode(np.array([value_range, -value_range]))
        return CodecSpec(
            kind=CodecKind.FOR, bits=bits_needed(int(extremes.max())), zigzag=True
        )


class ForDeltaCodec(_FrameCodecBase):
    """FOR-delta: differences from the previous value.

    Reconstructing any value requires the running sum of all preceding
    deltas in the page, so :attr:`decodes_whole_page` is true.
    """

    _KIND = CodecKind.FOR_DELTA

    @property
    def decodes_whole_page(self) -> bool:
        return True

    def encode_page(self, values: np.ndarray) -> tuple[bytes, PageCodecState]:
        values = require_int_array(values, "FOR-delta")
        if values.size == 0:
            return b"", PageCodecState()
        base = int(values[0])
        deltas = np.diff(values, prepend=values[0])
        return self._pack_deltas(deltas), PageCodecState(base=base)

    def decode_page(self, payload: bytes, count: int, state: PageCodecState) -> np.ndarray:
        deltas = self._unpack_deltas(payload, count)
        if deltas.size == 0:
            return deltas
        values = np.cumsum(deltas)
        return values + state.base

    @staticmethod
    def spec_for_values(values: np.ndarray, page_capacity: int = 0) -> CodecSpec:
        """Size the codec from consecutive-value deltas.

        The encoder's deltas are a subset of the column's consecutive
        differences (every page's first delta is zero), so the bound is
        split-invariant; ``page_capacity`` is accepted for API symmetry.
        """
        values = require_int_array(values, "FOR-delta")
        if values.size == 0:
            return CodecSpec(kind=CodecKind.FOR_DELTA, bits=1)
        deltas = np.diff(values, prepend=values[0])
        return ForDeltaCodec._spec_from_deltas(deltas)
