"""Distribution-helper tests."""

import numpy as np
import pytest

from repro.data import distributions as dist


class TestCategorical:
    def test_values_from_domain(self, rng):
        out = dist.sample_categorical(rng, dist.SHIP_MODES, 500, width=10)
        assert set(np.unique(out)) <= set(dist.SHIP_MODES)
        assert out.dtype == np.dtype("S10")

    def test_domain_sizes_match_fig5(self):
        # The dictionary widths of Figure 5 come from these counts.
        assert len(dist.RETURN_FLAGS) == 3  # 2 bits
        assert len(dist.LINE_STATUSES) == 2
        assert len(dist.SHIP_INSTRUCTIONS) == 4  # 2 bits
        assert len(dist.SHIP_MODES) == 7  # 3 bits
        assert len(dist.ORDER_STATUSES) == 3  # 2 bits
        assert len(dist.ORDER_PRIORITIES) == 5  # 3 bits

    def test_priorities_fit_11_byte_field(self):
        assert all(len(p) <= 11 for p in dist.ORDER_PRIORITIES)


class TestOrderDates:
    def test_hash_dates_deterministic(self):
        keys = np.array([1, 2, 3, 1000, 10**6])
        a = dist.order_date_for_keys(keys)
        b = dist.order_date_for_keys(keys)
        np.testing.assert_array_equal(a, b)

    def test_hash_dates_in_domain(self):
        keys = np.arange(1, 50_000)
        dates = dist.order_date_for_keys(keys)
        assert dates.min() >= dist.DAYS_1970_TO_1992
        assert dates.max() < dist.DAYS_1970_TO_1998_END
        assert dates.max() < 2**14  # O_ORDERDATE packs to 14 bits

    def test_hash_dates_spread(self):
        dates = dist.order_date_for_keys(np.arange(1, 10_000))
        # A hash, not a constant: wide spread across the domain.
        assert len(np.unique(dates)) > 1_000

    def test_sampled_dates_leave_shipping_room(self, rng):
        dates = dist.sample_order_dates(rng, 10_000)
        assert dates.max() <= dist.DAYS_1970_TO_1998_END - 152


class TestComments:
    def test_length_budget(self, rng):
        out = dist.sample_comments(rng, 200, max_length=28, field_width=69)
        lengths = [len(v) for v in out.tolist()]
        assert max(lengths) == 28  # forced witness for pack sizing
        assert all(length <= 28 for length in lengths)

    def test_width_validation(self, rng):
        with pytest.raises(ValueError):
            dist.sample_comments(rng, 10, max_length=70, field_width=69)

    def test_deterministic_given_generator_state(self):
        a = dist.sample_comments(
            np.random.default_rng(5), 50, max_length=28, field_width=69
        )
        b = dist.sample_comments(
            np.random.default_rng(5), 50, max_length=28, field_width=69
        )
        np.testing.assert_array_equal(a, b)
