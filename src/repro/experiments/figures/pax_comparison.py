"""Section 6 extension — NSM vs PAX vs DSM on one query sweep.

PAX groups each page's values by attribute but does not change what a
page contains, so "I/O performance is identical to that of a row-store"
while the cache behaviour approaches a column store's.  This experiment
puts all three layouts on the Figure 6 sweep.
"""

from __future__ import annotations

from repro.engine.query import ScanQuery
from repro.experiments.config import DEFAULT_EXECUTED_ROWS, ExperimentConfig
from repro.experiments.report import ExperimentOutput, FigureResult
from repro.experiments.runner import measure_scan
from repro.experiments.workloads import prepare_lineitem
from repro.storage.layout import Layout
from repro.storage.loader import load_table

SELECTIVITY = 0.10
PREDICATE_ATTR = "L_PARTKEY"


def run(
    num_rows: int = DEFAULT_EXECUTED_ROWS,
    config: ExperimentConfig | None = None,
) -> ExperimentOutput:
    """Regenerate the three-layout comparison."""
    config = config or ExperimentConfig()
    prepared = prepare_lineitem(num_rows)
    pax = load_table(prepared.data, Layout.PAX)
    predicate = prepared.predicate(PREDICATE_ATTR, SELECTIVITY)

    table = FigureResult(
        title="Elapsed / CPU / memory time by layout (LINEITEM, 10% sel)",
        headers=[
            "attrs",
            "row elapsed",
            "pax elapsed",
            "col elapsed",
            "row mem (s)",
            "pax mem (s)",
            "col mem (s)",
        ],
    )
    series: dict[str, list[float]] = {
        "attrs": [],
        "row_elapsed": [],
        "pax_elapsed": [],
        "col_elapsed": [],
        "row_mem": [],
        "pax_mem": [],
        "col_mem": [],
    }
    calibration = config.calibration
    for k in (1, 4, 8, 12, 16):
        query = ScanQuery(
            "LINEITEM", select=prepared.attrs_prefix(k), predicates=(predicate,)
        )
        m_row = measure_scan(prepared.row, query, config)
        m_pax = measure_scan(pax, query, config)
        m_col = measure_scan(prepared.column, query, config)

        def mem_seconds(m):
            events = m.events
            return (
                events.mem_seq_lines * calibration.seq_line_cycles
                + events.mem_rand_lines * calibration.random_miss_cycles
            ) / calibration.clock_hz

        table.add_row(
            k,
            round(m_row.elapsed, 2),
            round(m_pax.elapsed, 2),
            round(m_col.elapsed, 2),
            round(mem_seconds(m_row), 2),
            round(mem_seconds(m_pax), 2),
            round(mem_seconds(m_col), 2),
        )
        series["attrs"].append(k)
        series["row_elapsed"].append(m_row.elapsed)
        series["pax_elapsed"].append(m_pax.elapsed)
        series["col_elapsed"].append(m_col.elapsed)
        series["row_mem"].append(mem_seconds(m_row))
        series["pax_mem"].append(mem_seconds(m_pax))
        series["col_mem"].append(mem_seconds(m_col))
    return ExperimentOutput(
        name="Extension: NSM vs PAX vs DSM", tables=[table], series=series
    )
