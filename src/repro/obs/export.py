"""Trace exporters: Chrome ``trace_event`` JSON and flat profiles.

Two machine-readable views of one :class:`~repro.obs.trace.SpanTracer`:

* :func:`chrome_trace` — the Trace Event Format that
  ``chrome://tracing`` and `Perfetto <https://ui.perfetto.dev>`_ load
  directly.  Operator calls become complete (``"ph": "X"``) events on
  the query thread; simulated disk activity (see
  :meth:`~repro.iosim.sim.DiskArraySim.run`'s ``trace`` argument)
  becomes a second process with one thread per stream, on the
  *simulated* clock.
* :func:`flat_profile` — a flat JSON list of aggregated spans (wall
  times, call counts, exclusive events) plus plan totals and a
  provenance stamp, for diffing across commits.

:class:`QueryProfile` bundles result + tracer + provenance; it is what
:meth:`repro.database.Database.profile` returns.
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.obs.explain import render_explain
from repro.obs.trace import SpanTracer

if TYPE_CHECKING:  # pragma: no cover - annotation only
    from repro.engine.executor import QueryResult

__all__ = ["QueryProfile", "chrome_trace", "flat_profile", "write_json"]


def chrome_trace(
    tracer: SpanTracer | None = None,
    io_slices=None,
    process_name: str = "repro query engine",
) -> dict:
    """A Chrome/Perfetto ``trace_event`` document.

    Operator slices use microseconds of real wall time; I/O slices (if
    given) use microseconds of *simulated* disk time on their own
    process track, so both are inspectable even though the clocks are
    unrelated.
    """
    events: list[dict] = [
        {
            "ph": "M",
            "pid": 1,
            "tid": 0,
            "name": "process_name",
            "args": {"name": process_name},
        },
        {
            "ph": "M",
            "pid": 1,
            "tid": 1,
            "name": "thread_name",
            "args": {"name": "query execution"},
        },
    ]
    if tracer is not None:
        # Track 0 is the parent query thread (tid 1); parallel worker
        # tracks 1..N become their own named threads (tid 1 + track).
        named_tracks = {0}
        for piece in tracer.slices:
            if piece.track not in named_tracks:
                named_tracks.add(piece.track)
                events.append(
                    {
                        "ph": "M",
                        "pid": 1,
                        "tid": 1 + piece.track,
                        "name": "thread_name",
                        "args": {"name": f"worker {piece.track - 1}"},
                    }
                )
            events.append(
                {
                    "name": f"{piece.name}.{piece.phase}",
                    "cat": "operator",
                    "ph": "X",
                    "ts": piece.start_ns / 1_000,
                    "dur": piece.duration_ns / 1_000,
                    "pid": 1,
                    "tid": 1 + piece.track,
                    "args": {"span_id": piece.span_id, "phase": piece.phase},
                }
            )
    if io_slices:
        events.append(
            {
                "ph": "M",
                "pid": 2,
                "tid": 0,
                "name": "process_name",
                "args": {"name": "disk-array simulation (simulated time)"},
            }
        )
        tids: dict[str, int] = {}
        for piece in io_slices:
            tid = tids.setdefault(piece.stream, len(tids) + 1)
            if tid == len(tids):  # first slice of this stream names its track
                events.append(
                    {
                        "ph": "M",
                        "pid": 2,
                        "tid": tid,
                        "name": "thread_name",
                        "args": {"name": f"stream {piece.stream}"},
                    }
                )
            events.append(
                {
                    "name": piece.file,
                    "cat": "io",
                    "ph": "X",
                    "ts": piece.start * 1e6,
                    "dur": (piece.finish - piece.start) * 1e6,
                    "pid": 2,
                    "tid": tid,
                    "args": {
                        "bytes": piece.size_bytes,
                        "seek_seconds": piece.seek_seconds,
                    },
                }
            )
    document = {"traceEvents": events, "displayTimeUnit": "ms"}
    if tracer is not None and tracer.dropped_slices:
        document["metadata"] = {"dropped_slices": tracer.dropped_slices}
    return document


def _span_record(span, parent_id: int | None, depth: int) -> dict:
    return {
        "span_id": span.span_id,
        "parent_id": parent_id,
        "depth": depth,
        "operator": span.name,
        "detail": span.detail,
        "wall_ns": span.wall_ns,
        "self_ns": span.self_ns,
        "open_ns": span.open_ns,
        "next_ns": span.next_ns,
        "close_ns": span.close_ns,
        "next_calls": span.next_calls,
        "blocks": span.blocks,
        "rows": span.rows,
        "events": span.events.as_dict(),
    }


def flat_profile(tracer: SpanTracer, provenance: dict | None = None) -> dict:
    """Aggregated spans as one flat JSON-ready dict."""
    records = []

    def visit(span, parent_id, depth):
        records.append(_span_record(span, parent_id, depth))
        for child in span.children:
            visit(child, span.span_id, depth + 1)

    for root in tracer.roots:
        visit(root, None, 0)
    profile = {
        "spans": records,
        "total_wall_ns": tracer.total_wall_ns,
        "total_events": tracer.total_events().as_dict(),
    }
    if provenance is not None:
        profile["provenance"] = provenance
    return profile


def write_json(path, payload: dict) -> pathlib.Path:
    """Write one JSON document (creating parent directories)."""
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2, default=str) + "\n", encoding="utf-8")
    return path


@dataclass
class QueryProfile:
    """One traced query execution: its result, spans, and provenance."""

    result: "QueryResult"
    tracer: SpanTracer
    provenance: dict
    #: Governance snapshot (deadline slack, memory peak, outcome notes)
    #: when the query ran with a lifecycle policy; ``None`` otherwise.
    governance: dict | None = None

    def explain_text(self) -> str:
        """The EXPLAIN ANALYZE rendering of the traced plan.

        A governed query appends a footer listing every governance
        outcome — degradations, retries, narrowing, breaker trips — so
        the plan shows *why* it degraded, not just that it did.
        """
        text = render_explain(self.tracer)
        if self.governance is None:
            return text
        lines = [text, "", "Governance:"]
        lines.append(f"  memory peak: {self.governance['memory_peak']:,} B")
        remaining = self.governance.get("deadline_remaining_s")
        if remaining is not None:
            lines.append(f"  deadline slack: {remaining:.3f}s")
        for outcome in self.governance["outcomes"] or ["(no interventions)"]:
            lines.append(f"  - {outcome}")
        return "\n".join(lines)

    def chrome_trace(self) -> dict:
        """Chrome/Perfetto ``trace_event`` JSON for this execution."""
        return chrome_trace(self.tracer)

    def to_dict(self) -> dict:
        """Flat profile + provenance (for saving or diffing)."""
        profile = flat_profile(self.tracer, provenance=self.provenance)
        if self.governance is not None:
            profile["governance"] = self.governance
        return profile

    def save_chrome_trace(self, path) -> pathlib.Path:
        """Write the Chrome trace to ``path`` (open in Perfetto)."""
        return write_json(path, self.chrome_trace())

    def save_profile(self, path) -> pathlib.Path:
        """Write the flat profile JSON to ``path``."""
        return write_json(path, self.to_dict())
