"""Section 2.1.1 — sequential scan vs secondary-index fetch.

Reproduces the paper's back-of-envelope: with 5-10 ms seeks and the
array's sequential bandwidth, an unclustered index pays off only below
roughly 0.01 % selectivity.  Sweeps selectivity, compares both access
paths on the simulated array, and reports the measured breakeven next
to the closed form.
"""

from __future__ import annotations

from repro.experiments.config import DEFAULT_EXECUTED_ROWS, ExperimentConfig
from repro.experiments.report import ExperimentOutput, FigureResult
from repro.experiments.workloads import prepare_lineitem
from repro.index.access_path import breakeven_selectivity, compare_access_paths

SELECTIVITIES = (1e-6, 3e-6, 1e-5, 3e-5, 1e-4, 3e-4, 1e-3, 1e-2, 1e-1)


def run(
    num_rows: int = DEFAULT_EXECUTED_ROWS,
    config: ExperimentConfig | None = None,
) -> ExperimentOutput:
    """Regenerate the index-vs-scan comparison at paper scale."""
    config = config or ExperimentConfig()
    prepared = prepare_lineitem(num_rows)
    calibration = config.calibration
    tuples_per_page = prepared.row.page_codec.tuples_per_page
    page_size = prepared.row.page_size
    cardinality = config.cardinality

    table = FigureResult(
        title="Access-path cost at paper scale (LINEITEM rows)",
        headers=[
            "selectivity",
            "matches",
            "seq scan (s)",
            "index fetch (s)",
            "pages fetched",
            "winner",
        ],
    )
    series: dict[str, list[float]] = {
        "selectivity": [],
        "sequential": [],
        "index": [],
    }
    for selectivity in SELECTIVITIES:
        matches = int(round(selectivity * cardinality))
        costs = compare_access_paths(
            matches, cardinality, tuples_per_page, page_size, calibration
        )
        table.add_row(
            f"{selectivity:.4%}",
            matches,
            round(costs.sequential_seconds, 2),
            round(costs.index_seconds, 2),
            costs.pages_fetched,
            costs.winner,
        )
        series["selectivity"].append(selectivity)
        series["sequential"].append(costs.sequential_seconds)
        series["index"].append(costs.index_seconds)

    closed_form = breakeven_selectivity(
        prepared.schema.row_stride, calibration
    )
    # The paper quotes its figure for 128-byte tuples / 5 ms / 300 MB/s.
    paper_reference = breakeven_selectivity(
        128.0,
        calibration.with_overrides(
            seek_seconds=5e-3, disk_bandwidth_bytes=100_000_000, num_disks=3
        ),
    )
    summary = FigureResult(
        title="Breakeven selectivity (index wins below this)",
        headers=["configuration", "breakeven"],
    )
    summary.add_row("this testbed, 152-byte tuples", f"{closed_form:.4%}")
    summary.add_row(
        "paper reference (128 B, 5 ms, 300 MB/s)", f"{paper_reference:.4%}"
    )
    series["breakeven"] = [closed_form]
    series["paper_reference"] = [paper_reference]
    return ExperimentOutput(
        name="Section 2.1.1: index vs sequential scan",
        tables=[table, summary],
        series=series,
    )
