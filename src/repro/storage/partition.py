"""Horizontal (row-range) table partitioning.

A partitioned table splits one logical relation into N contiguous
row-range partitions, each materialized as an ordinary table with its
own page files (checksummed v2 format, same as any other table).  The
split is balanced: partition sizes differ by at most one row, so a
partition count that does not divide the row count yields uneven
ranges, and a count larger than the row count yields empty partitions —
both states the parallel executor and its equivalence suite must
handle.

Positions inside a partition's page files are partition-local; the
partition's ``row_start`` converts them back to global Record IDs
(:mod:`repro.engine.parallel` applies that fixup when concatenating
worker output).

Partitioned tables persist as one directory per partition plus a
checksummed ``manifest.json`` (see :func:`repro.storage.persist.
save_partitioned_table`) and register in the
:class:`~repro.storage.catalog.Catalog` alongside plain tables.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.data.generator import GeneratedTable
from repro.errors import StorageError
from repro.storage.layout import Layout
from repro.storage.loader import BulkLoader
from repro.storage.page import DEFAULT_PAGE_SIZE
from repro.storage.table import Table


def partition_ranges(num_rows: int, count: int) -> list[tuple[int, int]]:
    """Balanced contiguous half-open row ranges covering ``num_rows``.

    The first ``num_rows % count`` partitions get one extra row; with
    ``count > num_rows`` the tail partitions are empty ranges.
    """
    if count <= 0:
        raise StorageError(f"partition count must be positive: {count}")
    if num_rows < 0:
        raise StorageError(f"row count must be non-negative: {num_rows}")
    base, extra = divmod(num_rows, count)
    ranges = []
    start = 0
    for index in range(count):
        size = base + (1 if index < extra else 0)
        ranges.append((start, start + size))
        start += size
    return ranges


@dataclass
class TablePartition:
    """One row-range shard: a plain table plus its global row window."""

    index: int
    row_start: int
    row_end: int
    table: Table

    @property
    def num_rows(self) -> int:
        return self.row_end - self.row_start


class PartitionedTable:
    """A relation materialized as N contiguous row-range partitions."""

    def __init__(
        self,
        partitions: list[TablePartition],
        layout: Layout,
        page_size: int = DEFAULT_PAGE_SIZE,
    ):
        if not partitions:
            raise StorageError("a partitioned table needs at least one partition")
        expected = 0
        for partition in partitions:
            if partition.row_start != expected or partition.row_end < partition.row_start:
                raise StorageError(
                    f"partition {partition.index} covers "
                    f"[{partition.row_start}, {partition.row_end}), expected to "
                    f"start at row {expected}"
                )
            if partition.table.num_rows != partition.num_rows:
                raise StorageError(
                    f"partition {partition.index} table holds "
                    f"{partition.table.num_rows} rows for a "
                    f"{partition.num_rows}-row range"
                )
            expected = partition.row_end
        self.partitions = list(partitions)
        self.layout = layout
        self.page_size = page_size
        self.schema = partitions[0].table.schema
        self.num_rows = expected

    @classmethod
    def from_data(
        cls,
        data: GeneratedTable,
        layout: Layout,
        num_partitions: int,
        page_size: int = DEFAULT_PAGE_SIZE,
        verify: bool = False,
    ) -> "PartitionedTable":
        """Split generated data into balanced row ranges and load each."""
        loader = BulkLoader(page_size=page_size, verify=verify)
        partitions = []
        for index, (lo, hi) in enumerate(
            partition_ranges(data.num_rows, num_partitions)
        ):
            shard = GeneratedTable(
                schema=data.schema,
                columns={name: col[lo:hi] for name, col in data.columns.items()},
            )
            partitions.append(
                TablePartition(
                    index=index,
                    row_start=lo,
                    row_end=hi,
                    table=loader.load(shard, layout),
                )
            )
        return cls(partitions, layout, page_size=page_size)

    def __len__(self) -> int:
        return len(self.partitions)

    def partition_for_row(self, row: int) -> TablePartition:
        """The partition whose row window contains global row ``row``."""
        if 0 <= row < self.num_rows:
            for partition in self.partitions:
                if partition.row_start <= row < partition.row_end:
                    return partition
        raise StorageError(
            f"row {row} outside table {self.schema.name!r} "
            f"(0..{self.num_rows - 1})"
        )

    def manifest(self) -> dict:
        """JSON-ready description of the partitioning (no page data)."""
        return {
            "table": self.schema.name,
            "layout": self.layout.value,
            "page_size": self.page_size,
            "num_rows": self.num_rows,
            "partitions": [
                {
                    "index": partition.index,
                    "row_start": partition.row_start,
                    "row_end": partition.row_end,
                }
                for partition in self.partitions
            ],
        }
