"""Discrete-event disk-array simulation.

Models the paper's I/O substrate: a software RAID of identical disks
(60 MB/s each), an AIO interface that issues 128 KB-per-disk I/O units
with a configurable prefetch depth, and a FIFO disk controller that
charges a head-repositioning penalty whenever the served request is not
contiguous with the previous one.

The Figure 11 effect — the pipelined column scanner staying "one step
ahead" in the request queue and getting favored by the controller —
emerges from the per-stream submission policies, not from special
casing.
"""

from repro.iosim.request import FileExtent, IoRequest
from repro.iosim.sharing import (
    CompetingScansMeasurement,
    MergeCompetitionMeasurement,
    SharedScanOutcome,
    SharedScanQuery,
    SharedScanSimulator,
    measure_competing_scans,
    measure_merge_competition,
)
from repro.iosim.sim import DiskArraySim, StreamStats
from repro.iosim.streams import ScanStream, SubmissionPolicy
from repro.iosim.traffic import competing_row_scan

__all__ = [
    "FileExtent",
    "IoRequest",
    "ScanStream",
    "SubmissionPolicy",
    "DiskArraySim",
    "StreamStats",
    "SharedScanSimulator",
    "SharedScanQuery",
    "SharedScanOutcome",
    "CompetingScansMeasurement",
    "MergeCompetitionMeasurement",
    "measure_competing_scans",
    "measure_merge_competition",
    "competing_row_scan",
]
