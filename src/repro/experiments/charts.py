"""Plain-text chart rendering for the regenerated figures.

The paper's figures are line charts and stacked bars; these helpers
render their text equivalents so ``python -m repro.experiments
--charts`` output reads like the evaluation section.
"""

from __future__ import annotations

_BLOCKS = " ▏▎▍▌▋▊▉█"


def render_bar_chart(
    labels: list[str],
    values: list[float],
    width: int = 48,
    unit: str = "",
) -> str:
    """Horizontal bar chart, one row per label."""
    if len(labels) != len(values):
        raise ValueError(
            f"{len(labels)} labels for {len(values)} values"
        )
    if not values:
        return "(empty chart)"
    peak = max(max(values), 1e-12)
    label_width = max(len(label) for label in labels)
    lines = []
    for label, value in zip(labels, values):
        filled = value / peak * width
        whole = int(filled)
        remainder = filled - whole
        partial = _BLOCKS[int(remainder * (len(_BLOCKS) - 1))] if whole < width else ""
        bar = "█" * whole + partial
        lines.append(
            f"{label.rjust(label_width)} |{bar.ljust(width)}| "
            f"{value:.2f}{unit}"
        )
    return "\n".join(lines)


def render_series_chart(
    x_values: list[float],
    named_series: dict[str, list[float]],
    height: int = 12,
    width: int = 60,
) -> str:
    """Multiple series as a character-grid line chart.

    Each series gets a marker (``*``, ``o``, ``+``...); collisions show
    the later series' marker.
    """
    markers = "*o+x@#%&"
    all_values = [v for series in named_series.values() for v in series]
    if not all_values or not x_values:
        return "(empty chart)"
    y_max = max(all_values)
    y_min = min(0.0, min(all_values))
    y_span = max(y_max - y_min, 1e-12)
    x_max, x_min = max(x_values), min(x_values)
    x_span = max(x_max - x_min, 1e-12)

    grid = [[" "] * width for _ in range(height)]
    for index, (name, series) in enumerate(named_series.items()):
        if len(series) != len(x_values):
            raise ValueError(
                f"series {name!r} has {len(series)} points for "
                f"{len(x_values)} x values"
            )
        marker = markers[index % len(markers)]
        for x, y in zip(x_values, series):
            column = int((x - x_min) / x_span * (width - 1))
            row = height - 1 - int((y - y_min) / y_span * (height - 1))
            grid[row][column] = marker
    lines = [f"{y_max:>10.1f} ┤" + "".join(grid[0])]
    for row in grid[1:-1]:
        lines.append(" " * 10 + " │" + "".join(row))
    lines.append(f"{y_min:>10.1f} ┤" + "".join(grid[-1]))
    lines.append(
        " " * 10
        + " └"
        + "─" * width
    )
    lines.append(f"{'':10}  {x_min:<10.0f}{'':{max(0, width - 20)}}{x_max:>10.0f}")
    legend = "   ".join(
        f"{markers[i % len(markers)]} {name}"
        for i, name in enumerate(named_series)
    )
    lines.append(" " * 12 + legend)
    return "\n".join(lines)
