"""Shared helpers for the benchmark harness.

Every ``bench_*`` module regenerates one of the paper's tables or
figures: it runs the experiment once under ``pytest-benchmark``, prints
the regenerated rows (the same series the paper reports), saves them
under ``benchmarks/results/``, and asserts the paper's qualitative
shape so a regression in the reproduction fails the bench.

Each published result is written twice: the human-readable ``.txt``
rendering, and a machine-readable ``.json`` sibling stamped with run
provenance (git SHA, timestamp, Python/numpy versions, calibration
fingerprint — see :mod:`repro.obs.provenance`) so result trajectories
are comparable across commits.
"""

from __future__ import annotations

import json
import pathlib

from repro.experiments.report import ExperimentOutput
from repro.obs.provenance import provenance

#: Materialized rows the engine executes on during benches.  Event
#: counts are scaled to the paper's 60 M; this just sets bench runtime.
BENCH_ROWS = 4_000

RESULTS_DIR = pathlib.Path(__file__).resolve().parent / "results"


def run_once(benchmark, fn) -> ExperimentOutput:
    """Time one full regeneration of an experiment."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)


def output_payload(output: ExperimentOutput) -> dict:
    """An experiment's tables + series as one provenance-stamped dict."""
    return {
        "name": output.name,
        "tables": [
            {"title": table.title, "headers": table.headers, "rows": table.rows}
            for table in output.tables
        ],
        "series": output.series,
        "provenance": provenance(),
    }


def publish(output: ExperimentOutput, filename: str) -> None:
    """Print the regenerated figure and persist it under results/.

    Writes the text rendering to ``filename`` and the provenance-stamped
    JSON payload next to it (same stem, ``.json``).
    """
    text = output.render()
    print()
    print(text)
    # parents=True so a single bench runs standalone on a fresh clone,
    # where results/ (untracked) does not exist yet.
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    (RESULTS_DIR / filename).write_text(text + "\n", encoding="utf-8")
    stem = pathlib.Path(filename).stem
    (RESULTS_DIR / f"{stem}.json").write_text(
        json.dumps(output_payload(output), indent=2, default=str) + "\n",
        encoding="utf-8",
    )
