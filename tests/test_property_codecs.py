"""Property-based codec tests: every scheme round-trips any data it
accepts, at any page split, and selective decode equals full decode."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression.base import CodecKind
from repro.compression.registry import build_codec_for_values
from repro.types.datatypes import FixedTextType, IntType

int_columns = st.lists(
    st.integers(min_value=-(2**31), max_value=2**31 - 1),
    min_size=1,
    max_size=300,
)

nonneg_columns = st.lists(
    st.integers(min_value=0, max_value=2**31 - 1), min_size=1, max_size=300
)

text_columns = st.lists(
    st.binary(min_size=0, max_size=8).filter(lambda b: b"\x00" not in b),
    min_size=1,
    max_size=200,
)


def roundtrip(kind, attr_type, values):
    codec = build_codec_for_values(kind, attr_type, values, page_capacity_hint=len(values))
    payload, state = codec.encode_page(values)
    decoded = codec.decode_page(payload, len(values), state)
    np.testing.assert_array_equal(decoded, values)
    return codec, payload, state


@settings(max_examples=60, deadline=None)
@given(nonneg_columns)
def test_bitpack_roundtrip(raw):
    roundtrip(CodecKind.PACK, IntType(), np.array(raw, dtype=np.int64))


@settings(max_examples=60, deadline=None)
@given(int_columns)
def test_for_roundtrip_any_ints(raw):
    roundtrip(CodecKind.FOR, IntType(), np.array(raw, dtype=np.int64))


@settings(max_examples=60, deadline=None)
@given(int_columns)
def test_for_delta_roundtrip_any_ints(raw):
    roundtrip(CodecKind.FOR_DELTA, IntType(), np.array(raw, dtype=np.int64))


@settings(max_examples=60, deadline=None)
@given(int_columns)
def test_dictionary_roundtrip_ints(raw):
    roundtrip(CodecKind.DICT, IntType(), np.array(raw, dtype=np.int64))


@settings(max_examples=60, deadline=None)
@given(text_columns)
def test_dictionary_roundtrip_text(raw):
    values = np.array(raw, dtype="S8")
    roundtrip(CodecKind.DICT, FixedTextType(8), values)


@settings(max_examples=60, deadline=None)
@given(text_columns)
def test_textpack_roundtrip(raw):
    values = np.array(raw, dtype="S8")
    roundtrip(CodecKind.PACK, FixedTextType(8), values)


@settings(max_examples=40, deadline=None)
@given(
    int_columns,
    st.data(),
)
def test_selective_decode_matches_full_decode(raw, data):
    values = np.array(raw, dtype=np.int64)
    kind = data.draw(
        st.sampled_from(
            [CodecKind.NONE, CodecKind.DICT, CodecKind.FOR, CodecKind.FOR_DELTA]
        )
    )
    codec = build_codec_for_values(kind, IntType(), values, page_capacity_hint=len(values))
    payload, state = codec.encode_page(values)
    positions = data.draw(
        st.lists(
            st.integers(min_value=0, max_value=len(values) - 1),
            min_size=0,
            max_size=len(values),
            unique=True,
        ).map(sorted)
    )
    positions = np.array(positions, dtype=np.int64)
    selected, decoded = codec.decode_positions(payload, len(values), state, positions)
    np.testing.assert_array_equal(selected, values[positions])
    if codec.decodes_whole_page:
        assert decoded == len(values)
    else:
        assert decoded == len(positions)


@settings(max_examples=40, deadline=None)
@given(nonneg_columns)
def test_compression_never_negative_sized(raw):
    values = np.array(raw, dtype=np.int64)
    for kind in (CodecKind.PACK, CodecKind.FOR, CodecKind.FOR_DELTA):
        codec = build_codec_for_values(kind, IntType(), values, page_capacity_hint=len(values))
        payload, _state = codec.encode_page(values)
        expected_bits = codec.bits_per_value * len(values)
        assert len(payload) == (expected_bits + 7) // 8
