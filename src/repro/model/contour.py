"""The Figure 2 contour: average speedup over tuple width × cpdb."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.model.params import QueryShape
from repro.model.speedup import SpeedupModel

#: Figure 2's colour bands, as (lower bound, label).
FIG2_BANDS = (
    (1.8, "1.8-2.0+"),
    (1.6, "1.6-1.8"),
    (1.2, "1.2-1.6"),
    (0.8, "0.8-1.2"),
    (0.0, "0.4-0.8"),
)


@dataclass(frozen=True)
class SpeedupGrid:
    """A grid of predicted speedups (rows = cpdb, columns = width)."""

    widths: np.ndarray
    cpdbs: np.ndarray
    values: np.ndarray

    def band(self, value: float) -> str:
        for lower, label in FIG2_BANDS:
            if value >= lower:
                return label
        return FIG2_BANDS[-1][1]

    def render(self) -> str:
        """ASCII rendering of the contour (``cpdb`` decreasing downward)."""
        lines = ["speedup (columns over rows)"]
        header = "cpdb \\ width " + " ".join(f"{int(w):>5d}" for w in self.widths)
        lines.append(header)
        for row_index in range(len(self.cpdbs) - 1, -1, -1):
            cells = " ".join(
                f"{self.values[row_index, col]:>5.2f}"
                for col in range(len(self.widths))
            )
            lines.append(f"{self.cpdbs[row_index]:>11.0f}  {cells}")
        return "\n".join(lines)


def speedup_grid(
    model: SpeedupModel,
    widths: list[float] | None = None,
    cpdbs: list[float] | None = None,
    projection: float = 0.5,
    selectivity: float = 0.10,
    num_attributes: int = 8,
) -> SpeedupGrid:
    """Figure 2's grid: 50 % projection, 10 % selectivity by default.

    ``num_attributes`` splits the tuple into equal-width columns; the
    query selects ``projection`` of them.
    """
    if widths is None:
        widths = [4.0, 8.0, 12.0, 16.0, 20.0, 24.0, 28.0, 32.0, 36.0]
    if cpdbs is None:
        cpdbs = [9.0, 18.0, 36.0, 72.0, 144.0]
    selected_attrs = max(1, round(num_attributes * projection))
    values = np.zeros((len(cpdbs), len(widths)))
    for i, cpdb in enumerate(cpdbs):
        for j, width in enumerate(widths):
            shape = QueryShape(
                tuple_width=float(width),
                selected_bytes=float(width) * projection,
                selectivity=selectivity,
                num_attributes=num_attributes,
                selected_attributes=selected_attrs,
            )
            values[i, j] = model.predict(shape, cpdb=cpdb)
    return SpeedupGrid(
        widths=np.asarray(widths), cpdbs=np.asarray(cpdbs), values=values
    )
