"""Hardware-trend projection (Section 5 / conclusions).

The paper observes that for a single CPU over a single disk, cpdb grew
from about 10 in 1995 to about 30 in 2005, expects multicore to
accelerate the growth, and concludes that "current architectural trends
suggest column stores ... will become an even more attractive
architecture with time".  This module encodes that trajectory and lets
the speedup model be evaluated along it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import CalibrationError
from repro.model.params import QueryShape
from repro.model.speedup import SpeedupModel

#: The paper's reference points: single CPU over a single disk.
CPDB_1995 = 10.0
CPDB_2005 = 30.0

#: Implied annual growth over the paper's decade (~11.6 %/year).
ANNUAL_GROWTH = (CPDB_2005 / CPDB_1995) ** (1.0 / 10.0)


def projected_cpdb(
    year: int,
    multicore_factor: float = 1.0,
    num_disks: int = 1,
) -> float:
    """Projected single-box cpdb for a calendar year.

    Extrapolates the paper's 1995-2005 exponential; ``multicore_factor``
    multiplies the cycle supply (the paper expects cpdb "to grow faster"
    with multicore chips), ``num_disks`` divides it.
    """
    if year < 1990:
        raise CalibrationError(f"trend starts in the 1990s, got {year}")
    if multicore_factor <= 0 or num_disks <= 0:
        raise CalibrationError("factors must be positive")
    base = CPDB_1995 * ANNUAL_GROWTH ** (year - 1995)
    return base * multicore_factor / num_disks


@dataclass(frozen=True)
class TrendPoint:
    """Predicted speedup at one projected year."""

    year: int
    cpdb: float
    speedup: float


def speedup_trajectory(
    shape: QueryShape,
    years: list[int],
    model: SpeedupModel | None = None,
    multicore_factor: float = 1.0,
    num_disks: int = 1,
) -> list[TrendPoint]:
    """The column-over-row speedup along the hardware trend."""
    model = model or SpeedupModel()
    points = []
    for year in years:
        cpdb = projected_cpdb(
            year, multicore_factor=multicore_factor, num_disks=num_disks
        )
        points.append(
            TrendPoint(year=year, cpdb=cpdb, speedup=model.predict(shape, cpdb=cpdb))
        )
    return points


def columns_more_attractive_over_time(points: list[TrendPoint]) -> bool:
    """The conclusion's claim, as a checkable predicate."""
    if len(points) < 2:
        raise CalibrationError("need at least two trend points")
    return all(
        b.speedup >= a.speedup - 1e-9 for a, b in zip(points, points[1:])
    )
