"""Codec construction from catalog specs."""

from __future__ import annotations

import numpy as np

from repro.compression.base import Codec, CodecKind, CodecSpec
from repro.compression.bitpack import BitPackCodec
from repro.compression.dictionary import DictionaryCodec
from repro.compression.frame import ForCodec, ForDeltaCodec
from repro.compression.identity import IdentityCodec
from repro.compression.rle import RleCodec
from repro.compression.textpack import TextPackCodec
from repro.errors import CompressionError
from repro.types.datatypes import AttributeType, FixedTextType

_CODEC_CLASSES: dict[CodecKind, type[Codec]] = {
    CodecKind.NONE: IdentityCodec,
    CodecKind.PACK: BitPackCodec,
    CodecKind.DICT: DictionaryCodec,
    CodecKind.FOR: ForCodec,
    CodecKind.FOR_DELTA: ForDeltaCodec,
    CodecKind.RLE: RleCodec,
}


def build_codec(spec: CodecSpec, attr_type: AttributeType) -> Codec:
    """Instantiate the runtime codec for a catalog spec.

    ``PACK`` dispatches on the attribute type: bit packing for integers,
    pad-byte suppression (:class:`TextPackCodec`) for fixed text.
    """
    if spec.kind is CodecKind.PACK and isinstance(attr_type, FixedTextType):
        return TextPackCodec(spec, attr_type)
    try:
        codec_class = _CODEC_CLASSES[spec.kind]
    except KeyError as exc:  # pragma: no cover - enum is closed
        raise CompressionError(f"unknown codec kind: {spec.kind}") from exc
    return codec_class(spec, attr_type)


def build_codec_for_values(
    kind: CodecKind,
    attr_type: AttributeType,
    values: np.ndarray,
    page_capacity_hint: int = 4096,
) -> Codec:
    """Size a codec of the requested ``kind`` from the column's data.

    This is the load-time path: the physical design names the scheme and
    the loader derives its parameters (packed width, dictionary, zig-zag)
    from the actual values.
    """
    if kind is CodecKind.NONE:
        spec = IdentityCodec.spec_for_type(attr_type)
    elif kind is CodecKind.PACK and isinstance(attr_type, FixedTextType):
        spec = TextPackCodec.spec_for_values(values)
    elif kind is CodecKind.PACK:
        spec = BitPackCodec.spec_for_values(values)
    elif kind is CodecKind.DICT:
        spec = DictionaryCodec.spec_for_values(values)
    elif kind is CodecKind.FOR:
        spec = ForCodec.spec_for_values(values, page_capacity_hint)
    elif kind is CodecKind.FOR_DELTA:
        spec = ForDeltaCodec.spec_for_values(values, page_capacity_hint)
    elif kind is CodecKind.RLE:
        spec = RleCodec.spec_for_values(values)
    else:  # pragma: no cover - enum is closed
        raise CompressionError(f"unknown codec kind: {kind}")
    return build_codec(spec, attr_type)
