"""Figure 7 — effect of selectivity (0.1 %).

Same query as Figure 6 with a very selective filter.  I/O is untouched;
the interesting change is the CPU breakdown: the column store's later
scan nodes now process one of every thousand values, so additional
attributes add negligible CPU work and the string columns' memory
delays disappear.
"""

from __future__ import annotations

from repro.experiments.config import DEFAULT_EXECUTED_ROWS, ExperimentConfig
from repro.experiments.figures.fig06_baseline import build_output, sweep
from repro.experiments.report import ExperimentOutput
from repro.experiments.workloads import prepare_lineitem

SELECTIVITY = 0.001


def run(
    num_rows: int = DEFAULT_EXECUTED_ROWS,
    config: ExperimentConfig | None = None,
    selectivity: float = SELECTIVITY,
) -> ExperimentOutput:
    """Regenerate Figure 7."""
    config = config or ExperimentConfig()
    prepared = prepare_lineitem(num_rows)
    points = sweep(prepared, config, selectivity=selectivity)
    return build_output(
        f"Figure 7: selectivity {selectivity:.3%} (LINEITEM)", points
    )
