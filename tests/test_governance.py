"""Query lifecycle governance: deadlines, cancellation, budgets, supervision.

Covers the contract end to end: cooperative cancellation and deadlines
landing mid-scan in all four scanner architectures (serial and through
the parallel executor), block-granular memory budgets with the
reduced-width retry, the supervision ladder's circuit breaker, the
facade's worker clamp, and pool reaping on KeyboardInterrupt.  The
governing invariant throughout: a governed query either completes with
the full answer or raises a typed GovernanceError — partial results
are never observable.
"""

from __future__ import annotations

import multiprocessing
import time

import numpy as np
import pytest

from repro.data.generator import GeneratedTable
from repro.database import Database
from repro.engine.blocks import Block
from repro.engine.context import ExecutionContext
from repro.engine.executor import execute_plan, run_scan
from repro.engine.governance import (
    CancellationToken,
    CircuitBreaker,
    GovernedAccumulator,
    QueryContext,
    SupervisionPolicy,
    block_nbytes,
    narrow_block,
)
from repro.engine.operators.sort import SortOperator
from repro.engine.plan import ColumnScannerKind, aggregate_plan, scan_plan
from repro.engine.query import AggregateFunction, AggregateSpec, ScanQuery
from repro.errors import (
    GovernanceError,
    MemoryBudgetExceeded,
    PlanError,
    QueryCancelled,
    QueryTimeout,
)
from repro.storage.layout import Layout
from repro.storage.loader import load_table
from repro.types.datatypes import IntType
from repro.types.schema import Attribute, TableSchema

#: The four scanner architectures the engine ships.
ARCHITECTURES = (
    ("row", Layout.ROW, ColumnScannerKind.PIPELINED),
    ("pax", Layout.PAX, ColumnScannerKind.PIPELINED),
    ("column", Layout.COLUMN, ColumnScannerKind.PIPELINED),
    ("fused", Layout.COLUMN, ColumnScannerKind.FUSED),
)
ARCH_IDS = [name for name, _, _ in ARCHITECTURES]

QUERY = ScanQuery("ORDERS", select=("O_ORDERKEY", "O_CUSTKEY"))


@pytest.fixture(scope="module")
def arch_tables(orders_data):
    return {
        layout: load_table(orders_data, layout)
        for layout in (Layout.ROW, Layout.PAX, Layout.COLUMN)
    }


def _governed(timeout=30.0, **kwargs) -> ExecutionContext:
    context = ExecutionContext()
    context.governance = QueryContext.start(timeout=timeout, **kwargs)
    return context


# --- QueryContext unit behaviour ------------------------------------------------


class TestQueryContext:
    def test_negative_timeout_rejected(self):
        with pytest.raises(GovernanceError):
            QueryContext.start(timeout=-1.0)

    def test_non_positive_budget_rejected(self):
        with pytest.raises(GovernanceError):
            QueryContext.start(memory_budget=0)

    def test_expired_deadline_raises_typed_timeout(self):
        governance = QueryContext.start(timeout=0.0)
        time.sleep(0.001)
        assert governance.expired
        with pytest.raises(QueryTimeout, match="deadline"):
            governance.check("unit test")
        assert any("deadline exceeded" in note for note in governance.outcomes)

    def test_cancel_keeps_first_reason(self):
        token = CancellationToken()
        token.cancel("first")
        token.cancel("second")
        assert token.reason == "first"
        governance = QueryContext.start(token=token)
        with pytest.raises(QueryCancelled, match="first"):
            governance.check()

    def test_reserve_release_accounting(self):
        governance = QueryContext.start(memory_budget=100)
        assert governance.try_reserve(60)
        assert governance.try_reserve(40)
        assert not governance.try_reserve(1)
        governance.release(50)
        assert governance.memory_used == 50
        assert governance.memory_peak == 100
        with pytest.raises(GovernanceError):
            governance.try_reserve(-1)

    def test_snapshot_fields(self):
        governance = QueryContext.start(timeout=5.0, memory_budget=1_000)
        governance.note("something happened")
        snapshot = governance.snapshot()
        assert snapshot["memory_budget"] == 1_000
        assert snapshot["deadline_remaining_s"] <= 5.0
        assert snapshot["outcomes"] == ["something happened"]
        assert snapshot["cancelled"] is False

    def test_on_tick_hook_fires_per_check(self):
        governance = QueryContext.start()
        seen = []
        governance.on_tick = lambda ctx: seen.append(ctx.ticks)
        governance.check()
        governance.check()
        assert seen == [1, 2]


# --- narrowing and the governed accumulator -------------------------------------


def _block(n: int, maxval: int = 100) -> Block:
    values = (np.arange(n) % maxval).astype(np.int64)
    return Block(columns={"v": values}, positions=np.arange(n, dtype=np.int64))


class TestGovernedAccumulator:
    def test_narrow_block_preserves_values(self):
        block = _block(500)
        narrow = narrow_block(block)
        assert narrow.columns["v"].dtype == np.int16
        assert narrow.positions.dtype == np.int16
        assert block_nbytes(narrow) * 4 == block_nbytes(block)
        np.testing.assert_array_equal(
            narrow.columns["v"].astype(np.int64), block.columns["v"]
        )

    def test_passthrough_without_budget(self):
        accumulator = GovernedAccumulator(None, "test")
        accumulator.add(_block(10))
        accumulator.add(_block(0))  # empty blocks are skipped
        merged = accumulator.finish()
        assert len(merged) == 10

    def test_narrow_retry_fits_and_widens_back(self):
        governance = QueryContext.start(memory_budget=block_nbytes(_block(500)))
        accumulator = GovernedAccumulator(governance, "test")
        accumulator.add(_block(400))
        accumulator.add(_block(400))  # would not fit at full width
        merged = accumulator.finish()
        assert governance.narrow_retries == 1
        assert len(merged) == 800
        assert merged.columns["v"].dtype == np.int64  # widened back
        assert merged.positions.dtype == np.int64
        assert governance.memory_used == 0  # reservation released

    def test_abort_when_narrowing_is_not_enough(self):
        governance = QueryContext.start(memory_budget=64)
        accumulator = GovernedAccumulator(governance, "test")
        with pytest.raises(MemoryBudgetExceeded, match="reduced-width"):
            for _ in range(100):
                accumulator.add(_block(100))
        assert governance.memory_used == 0  # no leaked reservation
        assert any("memory budget exceeded" in n for n in governance.outcomes)


# --- budgets through the materializing operators --------------------------------


def _int_table(n: int = 2_000, layout: Layout = Layout.COLUMN):
    schema = TableSchema("G", attributes=(Attribute("g_v", IntType()),))
    data = GeneratedTable(
        schema=schema, columns={"g_v": (np.arange(n, dtype=np.int64) % 1_000)}
    )
    return load_table(data, layout)


class TestOperatorBudgets:
    def test_sort_narrow_retry_preserves_answer(self):
        table = _int_table()
        # 2,000 int64 rows + positions = 32 KB; narrowed to int16 = 8 KB.
        context = _governed(memory_budget=16_384)
        scan = scan_plan(
            context, table, ScanQuery("G", select=("g_v",)),
            ColumnScannerKind.PIPELINED,
        )
        result = execute_plan(SortOperator(context, scan, key="g_v"))
        baseline = execute_plan(
            SortOperator(
                (plain := ExecutionContext()),
                scan_plan(
                    plain, table, ScanQuery("G", select=("g_v",)),
                    ColumnScannerKind.PIPELINED,
                ),
                key="g_v",
            )
        )
        governance = context.governance
        assert governance.narrow_retries == 1
        assert result.columns["g_v"].dtype == np.int64
        np.testing.assert_array_equal(result.columns["g_v"], baseline.columns["g_v"])
        assert governance.memory_used == 0
        assert governance.memory_peak > 0

    def test_sort_budget_abort_is_typed(self):
        table = _int_table()
        context = _governed(memory_budget=4_096)  # below even the narrow set
        scan = scan_plan(
            context, table, ScanQuery("G", select=("g_v",)),
            ColumnScannerKind.PIPELINED,
        )
        with pytest.raises(MemoryBudgetExceeded):
            execute_plan(SortOperator(context, scan, key="g_v"))

    @pytest.mark.parametrize("sort_based", [False, True], ids=["hash", "sort"])
    def test_aggregate_budget_abort_is_typed(self, sort_based):
        table = _int_table()
        context = _governed(memory_budget=2_048)
        plan = aggregate_plan(
            context,
            table,
            ScanQuery("G", select=("g_v",)),
            AggregateSpec(
                group_by=("g_v",), function=AggregateFunction.COUNT, argument=None
            ),
            sort_based=sort_based,
        )
        with pytest.raises(MemoryBudgetExceeded):
            execute_plan(plan)


# --- cancellation and deadlines mid-scan, all four architectures ----------------


@pytest.mark.parametrize("name,layout,scanner", ARCHITECTURES, ids=ARCH_IDS)
class TestMidScanGovernance:
    def test_cancel_lands_mid_scan_serial(self, arch_tables, name, layout, scanner):
        context = _governed()
        governance = context.governance

        def hook(ctx: QueryContext) -> None:
            if ctx.ticks >= 4:
                ctx.token.cancel("mid-scan test cancel")

        governance.on_tick = hook
        plan = scan_plan(context, arch_tables[layout], QUERY, scanner)
        with pytest.raises(QueryCancelled, match="mid-scan test cancel"):
            execute_plan(plan)
        # The cancel landed after real work started, not at the gate.
        assert governance.ticks >= 4
        # Partial results are never observable: the raise is the only
        # outcome, and engine state is clean for the next query.
        full = run_scan(arch_tables[layout], QUERY)
        assert full.num_tuples == arch_tables[layout].num_rows

    def test_deadline_fires_serial(self, arch_tables, name, layout, scanner):
        context = _governed(timeout=0.0)
        plan = scan_plan(context, arch_tables[layout], QUERY, scanner)
        with pytest.raises(QueryTimeout):
            execute_plan(plan)

    def test_cancel_parallel_workers(self, arch_tables, name, layout, scanner):
        from repro.engine.parallel import parallel_query

        token = CancellationToken()
        token.cancel("session torn down")
        context = _governed(token=token)
        with pytest.raises(QueryCancelled, match="session torn down"):
            parallel_query(
                arch_tables[layout],
                QUERY,
                workers=2,
                partitions=2,
                context=context,
                column_scanner=scanner,
            )

    def test_deadline_parallel_workers(self, arch_tables, name, layout, scanner):
        from repro.engine.parallel import parallel_query

        context = _governed(timeout=0.0)
        with pytest.raises(QueryTimeout):
            parallel_query(
                arch_tables[layout],
                QUERY,
                workers=2,
                partitions=2,
                context=context,
                column_scanner=scanner,
            )


# --- supervision ladder and circuit breaker -------------------------------------


class TestCircuitBreaker:
    def test_threshold_validation(self):
        with pytest.raises(GovernanceError):
            CircuitBreaker(threshold=0)

    def test_opens_exactly_at_threshold(self):
        breaker = CircuitBreaker(threshold=2)
        key = ("T", 0, (0, 10))
        assert not breaker.record_failure(key)
        assert not breaker.is_open(key)
        assert breaker.record_failure(key)  # the trip
        assert breaker.is_open(key)
        assert not breaker.record_failure(key)  # already open: no re-trip
        assert breaker.open_keys() == [key]
        assert breaker.trips == 1

    def test_success_closes(self):
        breaker = CircuitBreaker(threshold=1)
        key = ("T", 1, (10, 20))
        breaker.record_failure(key)
        assert breaker.is_open(key)
        breaker.record_success(key)
        assert not breaker.is_open(key)

    def test_effective_stall_timeout_capped_by_deadline(self):
        policy = SupervisionPolicy(stall_timeout=15.0, poll_interval=0.02)
        governance = QueryContext.start(timeout=0.1)
        assert policy.effective_stall_timeout(governance) <= 0.1 + 0.02 + 0.01
        assert policy.effective_stall_timeout(None) == 15.0


class TestSupervisionLadder:
    def test_repeated_kills_trip_breaker_and_route_to_salvage(self, arch_tables):
        from repro.engine.parallel import parallel_query

        table = arch_tables[Layout.COLUMN]
        breaker = CircuitBreaker()
        policy = SupervisionPolicy(
            heartbeat_interval=0.03, stall_timeout=0.3, poll_interval=0.02
        )
        baseline = run_scan(table, QUERY)
        for _ in range(2):
            info: dict = {}
            result = parallel_query(
                table,
                QUERY,
                workers=2,
                partitions=3,
                context=_governed(),
                policy=policy,
                breaker=breaker,
                inject_kill=2,
                info=info,
            )
            assert result.num_tuples == baseline.num_tuples
            assert info["mode"] == "parallel-degraded"
        assert breaker.open_keys(), "two kills of one partition must open the breaker"
        # Third query, no injection: the open partition is routed to a
        # salvage-mode serial scan instead of burning another worker.
        info = {}
        result = parallel_query(
            table,
            QUERY,
            workers=2,
            partitions=3,
            context=_governed(),
            policy=policy,
            breaker=breaker,
            info=info,
        )
        assert result.num_tuples == baseline.num_tuples
        assert any("salvage" in note for note in info["governance"])


# --- Database facade ------------------------------------------------------------


class TestFacadeGovernance:
    @pytest.fixture(scope="class")
    def db(self, orders_data):
        database = Database(layouts=(Layout.ROW, Layout.COLUMN))
        database.create_table(orders_data)
        return database

    def test_timeout_zero_raises(self, db):
        with pytest.raises(QueryTimeout):
            db.query("ORDERS", select=("O_ORDERKEY",), timeout=0.0)

    def test_cancelled_token_raises(self, db):
        token = CancellationToken()
        token.cancel("user hit ^C")
        with pytest.raises(QueryCancelled, match="user hit"):
            db.query("ORDERS", select=("O_ORDERKEY",), cancellation=token)

    def test_governed_success_returns_full_result(self, db):
        result = db.query(
            "ORDERS",
            select=("O_ORDERKEY",),
            timeout=30.0,
            memory_budget=64_000_000,
        )
        plain = db.query("ORDERS", select=("O_ORDERKEY",))
        assert result.num_tuples == plain.num_tuples

    def test_governed_context_plus_args_rejected(self, db):
        context = ExecutionContext()
        context.governance = QueryContext.start(timeout=5.0)
        with pytest.raises(PlanError, match="not both"):
            db.query(
                "ORDERS", select=("O_ORDERKEY",), context=context, timeout=1.0
            )

    def test_explain_carries_governance_footer(self, db):
        text = db.explain("ORDERS", select=("O_ORDERKEY",), timeout=30.0)
        assert "Governance:" in text
        assert "memory peak" in text
        assert "deadline slack" in text

    def test_profile_snapshot(self, db):
        profile = db.profile(
            "ORDERS", select=("O_ORDERKEY",), timeout=30.0, memory_budget=1_000_000
        )
        assert profile.governance is not None
        assert profile.governance["memory_budget"] == 1_000_000
        assert profile.governance["ticks"] > 0


class TestWorkerClamp:
    """``Database.query(workers=N)`` clamps N to ``os.cpu_count()``."""

    def _spy(self, monkeypatch):
        import repro.engine.parallel as parallel_mod

        captured: dict = {}
        real = parallel_mod.parallel_query

        def spy(table, scan, *, workers, **kwargs):
            captured["workers"] = workers
            return real(table, scan, workers=workers, **kwargs)

        monkeypatch.setattr(parallel_mod, "parallel_query", spy)
        return captured

    def test_oversubscription_clamped(self, monkeypatch, orders_data):
        db = Database(layouts=(Layout.COLUMN,))
        db.create_table(orders_data)
        captured = self._spy(monkeypatch)
        monkeypatch.setattr("repro.database.os.cpu_count", lambda: 2)
        result = db.query("ORDERS", select=("O_ORDERKEY",), workers=64)
        assert captured["workers"] == 2
        assert result.num_tuples == len(orders_data.column("O_ORDERKEY"))

    def test_unknown_cpu_count_falls_back_to_serial(self, monkeypatch, orders_data):
        db = Database(layouts=(Layout.COLUMN,))
        db.create_table(orders_data)
        captured = self._spy(monkeypatch)
        monkeypatch.setattr("repro.database.os.cpu_count", lambda: None)
        result = db.query("ORDERS", select=("O_ORDERKEY",), workers=4)
        assert "workers" not in captured  # clamped to 1: serial path
        assert result.num_tuples == len(orders_data.column("O_ORDERKEY"))


# --- KeyboardInterrupt reaping --------------------------------------------------


def _pool_workers() -> list:
    return [
        child
        for child in multiprocessing.active_children()
        if "PoolWorker" in child.name
    ]


class TestKeyboardInterrupt:
    def test_interrupt_reaps_children_and_pools(self, arch_tables):
        from repro.engine import parallel

        table = arch_tables[Layout.COLUMN]
        context = _governed()

        def hook(ctx: QueryContext) -> None:
            # Interrupt only once pool workers demonstrably exist, so
            # the reaping assertion below is not vacuous.
            if _pool_workers():
                raise KeyboardInterrupt

        context.governance.on_tick = hook
        with pytest.raises(KeyboardInterrupt):
            parallel.parallel_query(
                table,
                QUERY,
                workers=2,
                partitions=2,
                context=context,
                # A long stall keeps workers alive until the interrupt.
                inject_stall=(0, 5.0),
            )
        assert not parallel._POOLS, "cached pools must be shut down"
        deadline = time.monotonic() + 5.0
        while _pool_workers() and time.monotonic() < deadline:
            time.sleep(0.05)
        assert not _pool_workers(), "no zombie pool workers after KeyboardInterrupt"
