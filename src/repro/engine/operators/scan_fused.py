"""Fused (single-iterator) column scanner — the Section 4.2 extension.

The paper notes that instead of a pipeline of position-driven scan
nodes, a column system can fetch the pages of *all* scanned columns
into memory and iterate over entire rows through memory offsets,
"similarly to a row store" (the PAX / MonetDB approach).  This scanner
implements that optimization: every accessed column is read densely, a
combined predicate mask is computed once, and qualifying tuples are
projected in a single pass.

Compared with the pipelined scanner it trades position-list bookkeeping
for dense decodes of every accessed column — cheaper at high
selectivity, more expensive at very low selectivity.  I/O behaviour is
identical (same files are read).
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.cpusim.cache import page_lines
from repro.engine.blocks import Block, split_into_blocks
from repro.engine.context import ExecutionContext
from repro.engine.operators.base import Operator
from repro.engine.operators.scan_row import normalize_row_range
from repro.engine.predicate import Predicate
from repro.errors import PlanError
from repro.storage.table import ColumnTable


class FusedColumnScanner(Operator):
    """Row-at-a-time iteration over in-memory column pages."""

    def __init__(
        self,
        context: ExecutionContext,
        table: ColumnTable,
        select: tuple[str, ...],
        predicates: tuple[Predicate, ...] = (),
        row_range: tuple[int, int] | None = None,
    ):
        super().__init__(context)
        if not select:
            raise PlanError("fused scanner needs a non-empty select list")
        self.table = table
        self.select = tuple(select)
        self.predicates = tuple(predicates)
        self.row_range = normalize_row_range(row_range, table.num_rows)
        self._attrs = self._scan_attrs()
        self._ready: deque[Block] = deque()
        self._done = False

    def _scan_attrs(self) -> list[str]:
        order = [p.attr for p in self.predicates]
        order += [name for name in self.select if name not in order]
        seen: set[str] = set()
        unique = []
        for name in order:
            if name not in seen:
                seen.add(name)
                unique.append(name)
        for name in unique:
            self.table.schema.attribute(name)
        return unique

    def scan_attribute_order(self) -> list[str]:
        """The columns read (all densely)."""
        return list(self._attrs)

    def describe(self) -> str:
        detail = f"{self.table.schema.name}: {', '.join(self.select)}"
        if self.predicates:
            detail += f" | {len(self.predicates)} predicate(s)"
        lo, hi = self.row_range
        if (lo, hi) != (0, self.table.num_rows):
            detail += f" | rows [{lo}, {hi})"
        return detail

    def _open(self) -> None:
        self._ready.clear()
        self._done = False

    def _next(self) -> Block | None:
        if not self._ready and not self._done:
            self._execute()
            self._done = True
        if not self._ready:
            return None
        return self._ready.popleft()

    def _execute(self) -> None:
        events = self.events
        calibration = self.context.calibration
        num_rows = self.table.num_rows
        lo, hi = self.row_range
        window = hi - lo
        # Rows (within the scan window) whose every accessed page
        # decoded; salvage mode clears the spans of skipped pages so the
        # dense columns stay aligned.
        intact = np.ones(window, dtype=bool)
        columns: dict[str, np.ndarray] = {}
        for name in self._attrs:
            column_file = self.table.column_file(name)
            attr_dtype = self.table.schema.attribute(name).attr_type.numpy_dtype()
            spec = self.table.schema.attribute(name).spec
            page_codec = column_file.page_codec
            bits = page_codec.codec.bits_per_value
            chunks = []
            row_base = 0
            for page_index in range(column_file.file.num_pages if window else 0):
                self._governance_check()
                span = column_file.row_span_of_page(page_index, num_rows)
                if row_base >= hi:
                    break
                if row_base + span <= lo:
                    # Page entirely before the row window: skip, no I/O.
                    row_base += span
                    continue

                def decode(page_index=page_index):
                    _pid, count, payload, state = page_codec.decode_raw(
                        column_file.file.read_page(page_index)
                    )
                    return count, page_codec.codec.decode_page(payload, count, state)

                decoded = self._salvage_decode(
                    decode, column_file.file.name, page_index, span
                )
                if decoded is None:
                    # Placeholder keeps this column's offsets aligned
                    # with the others; the rows are masked out below.
                    overlap_lo = max(row_base, lo)
                    overlap_hi = min(row_base + span, hi)
                    chunks.append(np.zeros(overlap_hi - overlap_lo, dtype=attr_dtype))
                    intact[overlap_lo - lo : overlap_hi - lo] = False
                    row_base += span
                    continue
                count, values = decoded
                # Pages are decoded (and charged) whole; only the slice
                # overlapping the row window joins the dense columns.
                start = max(0, lo - row_base)
                stop = max(start, min(count, hi - row_base))
                chunks.append(values[start:stop])
                row_base += count
                events.pages_touched += 1
                events.count_decode(spec.kind, count)
                events.mem_seq_lines += page_lines(
                    count, bits, calibration.l2_line_bytes
                )
                events.l1_lines += page_lines(count, bits, calibration.l1_line_bytes)
            covered = min(row_base, hi)
            if covered < hi:
                # Truncated column file (salvage open): pad and mask.
                pad_lo = max(covered, lo)
                chunks.append(np.zeros(hi - pad_lo, dtype=attr_dtype))
                intact[pad_lo - lo :] = False
            if chunks:
                columns[name] = np.concatenate(chunks)
            else:
                columns[name] = np.zeros(0, dtype=attr_dtype)

        count = window
        # Row-at-a-time iteration across the resident pages.
        events.tuples_examined += count
        mask = intact
        for index, predicate in enumerate(self.predicates):
            candidates = count if index == 0 else int(np.count_nonzero(mask))
            events.predicate_evals += candidates
            events.predicate_eval_bytes += (
                candidates * self.table.schema.attribute(predicate.attr).width
            )
            mask &= predicate.evaluate(columns[predicate.attr])

        qualified = int(np.count_nonzero(mask))
        selected_width = sum(
            self.table.schema.attribute(name).width for name in self.select
        )
        events.values_copied += qualified * len(self.select)
        events.bytes_copied += qualified * selected_width

        block = Block(
            columns={name: columns[name][mask] for name in self.select},
            positions=(lo + np.flatnonzero(mask)).astype(np.int64),
        )
        self._ready.extend(split_into_blocks(block, self.context.block_size))
