"""Secondary-index and access-path tests (Section 2.1.1)."""

import numpy as np
import pytest

from repro.cpusim.calibration import DEFAULT_CALIBRATION
from repro.engine.context import ExecutionContext
from repro.engine.executor import execute_plan, run_scan
from repro.engine.predicate import ComparisonOp, Predicate, predicate_for_selectivity
from repro.engine.query import ScanQuery
from repro.errors import PlanError, SimulationError
from repro.index.access_path import (
    breakeven_selectivity,
    compare_access_paths,
    index_scan_seconds,
    index_scan_seconds_for_rids,
    sequential_scan_seconds,
)
from repro.index.scan import IndexScan
from repro.index.secondary import SecondaryIndex


@pytest.fixture(scope="module")
def custkey_index(orders_data):
    return SecondaryIndex("O_CUSTKEY", orders_data.column("O_CUSTKEY"))


class TestSecondaryIndex:
    def test_lookup_matches_full_scan(self, orders_data, custkey_index):
        predicate = Predicate("O_CUSTKEY", ComparisonOp.LE, 50_000)
        rids = custkey_index.lookup_predicate(predicate)
        expected = np.flatnonzero(predicate.evaluate(orders_data.column("O_CUSTKEY")))
        np.testing.assert_array_equal(rids, expected)

    @pytest.mark.parametrize(
        "op", [ComparisonOp.LT, ComparisonOp.LE, ComparisonOp.GT, ComparisonOp.GE, ComparisonOp.EQ]
    )
    def test_all_btree_operators(self, orders_data, custkey_index, op):
        value = int(orders_data.column("O_CUSTKEY")[7])
        predicate = Predicate("O_CUSTKEY", op, value)
        rids = custkey_index.lookup_predicate(predicate)
        expected = np.flatnonzero(predicate.evaluate(orders_data.column("O_CUSTKEY")))
        np.testing.assert_array_equal(rids, expected)

    def test_rids_sorted_for_head_movement(self, custkey_index):
        rids = custkey_index.lookup_predicate(
            Predicate("O_CUSTKEY", ComparisonOp.LE, 100_000)
        )
        assert (np.diff(rids) > 0).all()

    def test_range_lookup(self, orders_data, custkey_index):
        rids = custkey_index.lookup_range(10_000, 20_000)
        keys = orders_data.column("O_CUSTKEY")
        expected = np.flatnonzero((keys >= 10_000) & (keys <= 20_000))
        np.testing.assert_array_equal(rids, expected)

    def test_wrong_attribute_rejected(self, custkey_index):
        with pytest.raises(PlanError):
            custkey_index.lookup_predicate(
                Predicate("O_ORDERDATE", ComparisonOp.LE, 5)
            )

    def test_ne_not_indexable(self, custkey_index):
        with pytest.raises(PlanError):
            custkey_index.lookup_predicate(
                Predicate("O_CUSTKEY", ComparisonOp.NE, 5)
            )

    def test_empty_column_rejected(self):
        with pytest.raises(PlanError):
            SecondaryIndex("x", np.array([], dtype=np.int64))

    def test_selectivity_estimate(self, orders_data, custkey_index):
        predicate = predicate_for_selectivity(
            "O_CUSTKEY", orders_data.column("O_CUSTKEY"), 0.25
        )
        assert custkey_index.selectivity_of(predicate) == pytest.approx(0.25, abs=0.02)


class TestIndexScanOperator:
    def test_matches_table_scan(self, orders_data, orders_row, custkey_index):
        predicate = predicate_for_selectivity(
            "O_CUSTKEY", orders_data.column("O_CUSTKEY"), 0.05
        )
        select = ("O_CUSTKEY", "O_TOTALPRICE")
        reference = run_scan(
            orders_row, ScanQuery("ORDERS", select=select, predicates=(predicate,))
        )
        context = ExecutionContext()
        scan = IndexScan(context, orders_row, custkey_index, predicate, select)
        result = execute_plan(scan)
        np.testing.assert_array_equal(result.positions, reference.positions)
        for name in select:
            np.testing.assert_array_equal(result.column(name), reference.column(name))

    def test_touches_only_matching_pages(self, orders_data, orders_row, custkey_index):
        predicate = predicate_for_selectivity(
            "O_CUSTKEY", orders_data.column("O_CUSTKEY"), 0.002
        )
        context = ExecutionContext()
        scan = IndexScan(
            context, orders_row, custkey_index, predicate, ("O_TOTALPRICE",)
        )
        execute_plan(scan)
        assert context.events.pages_touched < orders_row.file.num_pages / 2

    def test_size_mismatch_rejected(self, orders_row):
        short_index = SecondaryIndex("O_CUSTKEY", np.arange(5))
        with pytest.raises(PlanError):
            IndexScan(
                ExecutionContext(),
                orders_row,
                short_index,
                Predicate("O_CUSTKEY", ComparisonOp.LE, 3),
                ("O_CUSTKEY",),
            )


class TestAccessPathModel:
    def test_sequential_scan_at_bandwidth(self):
        seconds = sequential_scan_seconds(1_800_000_000)
        assert seconds == pytest.approx(10.0)

    def test_paper_breakeven_figure(self):
        """§2.1.1: 5 ms seek, 300 MB/s, 128-byte tuples → ~0.008%."""
        calibration = DEFAULT_CALIBRATION.with_overrides(
            seek_seconds=5e-3,
            disk_bandwidth_bytes=100_000_000,
            num_disks=3,
        )
        breakeven = breakeven_selectivity(128.0, calibration)
        assert breakeven == pytest.approx(8.5e-5, rel=0.05)

    def test_exact_rid_costing(self):
        calibration = DEFAULT_CALIBRATION
        # Three widely separated tuples: 3 pages, 3 seeks.
        seconds, pages, seeks = index_scan_seconds_for_rids(
            np.array([0, 100_000, 200_000]), 26, 4096, calibration
        )
        assert pages == 3
        assert seeks == 3
        assert seconds == pytest.approx(
            3 * 4096 / calibration.total_disk_bandwidth
            + 3 * calibration.seek_seconds
        )

    def test_adjacent_pages_share_a_seek(self):
        # Tuples on consecutive pages: one positioning seek only.
        seconds, pages, seeks = index_scan_seconds_for_rids(
            np.array([0, 26, 52]), 26, 4096
        )
        assert pages == 3
        assert seeks == 1

    def test_unsorted_rids_rejected(self):
        with pytest.raises(SimulationError):
            index_scan_seconds_for_rids(np.array([5, 1]), 26, 4096)

    def test_expected_model_monotone_in_matches(self):
        times = [
            index_scan_seconds(n, 60_000_000, 26, 4096)[0]
            for n in (10, 100, 1_000, 10_000)
        ]
        assert all(b > a for a, b in zip(times, times[1:]))

    def test_winner_flips_with_selectivity(self):
        low = compare_access_paths(100, 60_000_000, 26, 4096)
        high = compare_access_paths(600_000, 60_000_000, 26, 4096)
        assert low.index_wins
        assert not high.index_wins

    def test_zero_matches(self):
        seconds, pages, seeks = index_scan_seconds(0, 1_000, 26, 4096)
        assert (seconds, pages, seeks) == (0.0, 0, 0)


class TestIndexEdgeCases:
    """Boundary behaviour: empty tables, degenerate predicates, break-even."""

    def test_empty_table_has_no_index_path(self):
        # An empty column cannot be indexed, and the cost model rejects
        # zero-row tables too: the only access path is the (trivial)
        # sequential scan.
        with pytest.raises(PlanError):
            SecondaryIndex("A", np.zeros(0, dtype=np.int64))
        with pytest.raises(SimulationError):
            index_scan_seconds(1, 0, 26, 4096)

    def test_zero_match_predicate(self, orders_data, orders_row, custkey_index):
        # A constant below the whole domain qualifies nothing: the index
        # scan must produce a well-typed empty result identical to the
        # table scanner's.
        floor = int(orders_data.column("O_CUSTKEY").min()) - 1
        predicate = Predicate("O_CUSTKEY", ComparisonOp.LT, floor)
        select = ("O_CUSTKEY", "O_TOTALPRICE")
        scan = IndexScan(
            ExecutionContext(), orders_row, custkey_index, predicate, select
        )
        result = execute_plan(scan)
        expected = run_scan(orders_row, ScanQuery("ORDERS", select, (predicate,)))
        assert result.num_tuples == expected.num_tuples == 0
        assert result.positions.size == 0
        for name in select:
            assert result.column(name).dtype == expected.column(name).dtype
        assert scan.events.pages_touched == 0

    def test_all_match_predicate(self, orders_data, orders_row, custkey_index):
        # A constant above the whole domain qualifies everything: both
        # paths return every tuple in Record-ID order.
        ceiling = int(orders_data.column("O_CUSTKEY").max()) + 1
        predicate = Predicate("O_CUSTKEY", ComparisonOp.LT, ceiling)
        select = ("O_CUSTKEY",)
        scan = IndexScan(
            ExecutionContext(), orders_row, custkey_index, predicate, select
        )
        result = execute_plan(scan)
        expected = run_scan(orders_row, ScanQuery("ORDERS", select, (predicate,)))
        assert result.num_tuples == orders_data.num_rows
        np.testing.assert_array_equal(result.positions, expected.positions)
        np.testing.assert_array_equal(
            result.column("O_CUSTKEY"), expected.column("O_CUSTKEY")
        )

    def test_breakeven_boundary_single_flip(self):
        # As the match count grows, the winner flips from index to
        # sequential exactly once and never flips back.
        num_rows, per_page, page_size = 10_000_000, 26, 4096
        grid = [int(10**e) for e in np.arange(0, 7, 0.25)]
        winners = [
            compare_access_paths(n, num_rows, per_page, page_size).index_wins
            for n in grid
        ]
        assert winners[0] and not winners[-1]
        flips = sum(a != b for a, b in zip(winners, winners[1:]))
        assert flips == 1

    def test_breakeven_boundary_is_tight(self):
        # Bisect the flip point; one match either side must land within
        # a whisker of cost parity (the model is continuous there).
        num_rows, per_page, page_size = 10_000_000, 26, 4096
        lo, hi = 1, num_rows
        while hi - lo > 1:
            mid = (lo + hi) // 2
            if compare_access_paths(mid, num_rows, per_page, page_size).index_wins:
                lo = mid
            else:
                hi = mid
        below = compare_access_paths(lo, num_rows, per_page, page_size)
        above = compare_access_paths(hi, num_rows, per_page, page_size)
        assert below.index_wins and not above.index_wins
        assert below.index_seconds <= below.sequential_seconds
        assert above.index_seconds >= above.sequential_seconds
        gap = abs(below.index_seconds - below.sequential_seconds)
        assert gap / below.sequential_seconds < 0.01

    def test_breakeven_closed_form_scales_with_width(self):
        # Wider tuples raise the break-even selectivity linearly.
        assert breakeven_selectivity(256) == pytest.approx(
            2 * breakeven_selectivity(128)
        )
