"""Multi-core parallel query execution over horizontal partitions.

The engine stays single-threaded *per plan* (the paper's Section 4
design); parallelism comes from running one plan per row-range
partition in a ``multiprocessing`` worker pool and merging the
materialized partials in the parent:

* plain selections: concatenate worker blocks in partition order
  (already global Record-ID order), fixing up positions of physically
  partitioned shards by their ``row_start``;
* aggregates: each worker computes decomposed partials
  (count/sum/min/max, sum+count for AVG — see
  :func:`repro.engine.plan.decompose_aggregate`) and
  :class:`~repro.engine.operators.gather.MergePartials` reduces them
  with the serial ``HashAggregate``'s arithmetic;
* sorted output: per-partition sorted runs, k-way merged by
  :class:`~repro.engine.operators.gather.MergeSortedRuns`;
* LIMIT / top-N: each worker keeps its first/best ``k``, the parent
  applies the same operator over the recombined candidates (for top-N,
  candidates are re-ordered by global position first so tie-breaking
  matches the serial stable sort).

Cost accounting is exactly-once: each worker runs under a fresh
:class:`~repro.engine.context.ExecutionContext` and its
:class:`~repro.cpusim.events.CostEvents` /
:class:`~repro.storage.scrub.CorruptionReport` are merged into the
parent context one time, before the (traced) merge plan runs.
Boundary pages decoded by two adjacent workers are deduplicated by
``(file, page)`` so a salvage scan's fault list matches the serial
scan's.  Worker span trees are stitched into the parent trace under
the gather node (per-worker Perfetto tracks); the tracer invariant
``total_events() == plan total`` survives stitching.

Failure policy is a **supervision ladder** (see
:mod:`repro.engine.governance`), not discard-all-or-nothing:

1. *kill-and-retry one partition* — a worker exception re-runs only
   that partition inline (the completed partitions' results are kept;
   the retried partition's events are counted exactly once because the
   failed attempt produced no output to merge);
2. *stall detection* — supervised workers write heartbeats into a
   shared board; a silent worker past the policy's stall timeout gets
   its pool evicted (the only way to reap a wedged fork worker) and the
   unfinished partitions move down the ladder;
3. *degrade workers 4→2→1→serial* — each pool-level failure halves the
   worker count; the last rung runs the remaining partitions inline;
4. *circuit breaker* — a partition that keeps failing (per
   :class:`~repro.database.Database` instance) is routed straight to a
   salvage-mode serial scan without burning another worker on it.

A parent- or worker-side deadline/cancellation surfaces as a typed
:class:`~repro.errors.GovernanceError` (never a hang); the pool is
evicted first so stragglers die with the query.  ``KeyboardInterrupt``
terminates and joins every pool — workers are reaped and their pipes
closed, no zombies survive Ctrl-C.
"""

from __future__ import annotations

import atexit
import multiprocessing
import multiprocessing.pool
import os
import time
from dataclasses import dataclass, field, replace

import numpy as np

from repro.cpusim.calibration import Calibration, DEFAULT_CALIBRATION
from repro.cpusim.events import CostEvents
from repro.engine.blocks import Block, concat_blocks
from repro.engine.context import ExecutionContext
from repro.engine.executor import QueryResult, execute_plan
from repro.engine.governance import (
    CircuitBreaker,
    GovernanceError,
    QueryContext,
    SupervisionPolicy,
)
from repro.engine.operators.base import Operator
from repro.engine.operators.gather import (
    GatherOperator,
    MergePartials,
    MergeSortedRuns,
)
from repro.engine.operators.limit import Limit, TopN
from repro.engine.operators.sort import SortOperator
from repro.engine.plan import (
    ColumnScannerKind,
    aggregate_plan,
    decompose_aggregate,
    scan_plan,
)
from repro.engine.query import AggregateSpec, ScanQuery
from repro.errors import PlanError
from repro.obs import metrics as obs_metrics
from repro.obs import recorder as flight
from repro.obs.trace import SpanTracer
from repro.storage.partition import PartitionedTable, partition_ranges
from repro.storage.scrub import CorruptionReport
from repro.storage.table import Table

__all__ = [
    "WorkerCrash",
    "parallel_query",
    "shutdown_pools",
]

#: Logical-partition queries over tables at least this large share the
#: table with fork-inherited memory instead of pickling it per task.
_FORK_SHARE_ROWS = 100_000

#: Governance tick on which an injected chaos action (kill/stall) fires
#: inside the worker — late enough to be genuinely mid-scan.
_CHAOS_ACTION_TICK = 3

#: Exit code of a chaos hard-kill (``os._exit``), distinguishable from
#: a Python crash in pool diagnostics.
_CHAOS_KILL_EXIT = 17


class WorkerCrash(RuntimeError):
    """Injected worker failure (test hook for the degradation path)."""


@dataclass(frozen=True)
class WorkerTask:
    """Everything one worker needs to run its partition's plan."""

    index: int
    table: Table | None          #: ``None``: use the fork-inherited table
    query: ScanQuery
    row_range: tuple[int, int] | None
    position_offset: int
    column_scanner: ColumnScannerKind
    calibration: Calibration
    block_size: int
    compressed_execution: bool
    strict_integrity: bool
    trace: bool
    aggregate: AggregateSpec | None = None
    sort_based: bool = False
    order_by: tuple[str, ...] = ()
    limit: int | None = None
    topn: tuple[str, int, bool] | None = None
    crash: bool = False          #: test hook: raise instead of executing
    # --- governance (see repro.engine.governance) ----------------------
    deadline: float | None = None     #: absolute ``time.monotonic()`` s
    memory_budget: int | None = None  #: this partition's budget share
    heartbeat: object | None = None   #: Manager dict proxy, index → beat
    heartbeat_interval: float = 0.05
    kill: bool = False                #: chaos hook: hard-exit mid-scan
    stall_seconds: float = 0.0        #: chaos hook: sleep mid-scan once


@dataclass
class WorkerOutput:
    """One worker's materialized partial result plus its accounting."""

    index: int
    columns: dict[str, np.ndarray]
    positions: np.ndarray
    events: CostEvents
    corruption: CorruptionReport
    span_roots: list = field(default_factory=list)
    slices: list = field(default_factory=list)
    epoch_ns: int = 0
    #: Governance outcomes recorded inside the worker (narrowing, etc.).
    outcomes: list = field(default_factory=list)
    memory_peak: int = 0


#: Fork-share slot: set in the parent right before forking a dedicated
#: pool, inherited by the children, consulted when ``task.table is None``.
_FORK_TABLE: Table | None = None


def _worker_governance(task: WorkerTask) -> QueryContext | None:
    """The worker-side lifecycle context for one partition, if any.

    The deadline is an absolute ``time.monotonic()`` value: under the
    fork start method parent and child share the clock, so the parent's
    deadline is enforced inside the worker too.  The tick hook writes
    the heartbeat board and fires the chaos injections (hard kill /
    stall) a few ticks in — i.e. genuinely mid-scan.
    """
    if not (
        task.deadline is not None
        or task.memory_budget is not None
        or task.heartbeat is not None
        or task.kill
        or task.stall_seconds
    ):
        return None
    governance = QueryContext(
        deadline=task.deadline,
        memory_budget=task.memory_budget,
        label=f"partition {task.index}",
    )
    state = {"beat": 0.0, "acted": False}

    def on_tick(gov: QueryContext) -> None:
        now = time.monotonic()
        if (
            task.heartbeat is not None
            and now - state["beat"] >= task.heartbeat_interval
        ):
            state["beat"] = now
            try:
                task.heartbeat[task.index] = now
            except Exception:
                # Heartbeat board gone (parent tearing down): keep
                # scanning; the supervisor will reap us either way.
                pass
        if not state["acted"] and gov.ticks >= _CHAOS_ACTION_TICK:
            state["acted"] = True
            if task.kill:
                os._exit(_CHAOS_KILL_EXIT)
            if task.stall_seconds:
                time.sleep(task.stall_seconds)

    governance.on_tick = on_tick
    return governance


def _execute_task(
    task: WorkerTask, governance: QueryContext | None = None
) -> WorkerOutput:
    """Run one partition's plan (in a worker process or inline).

    ``governance`` overrides the task-derived worker context: inline
    execution in the parent passes the query's own
    :class:`~repro.engine.governance.QueryContext` so the shared
    cancellation token and budget accounting stay live.
    """
    if task.crash:
        raise WorkerCrash(f"injected crash in worker {task.index}")
    table = task.table if task.table is not None else _FORK_TABLE
    if table is None:
        raise PlanError("worker has neither a pickled nor a fork-shared table")
    owned = governance is None
    if owned:
        governance = _worker_governance(task)
    tracer = SpanTracer() if task.trace else None
    context = ExecutionContext(
        calibration=task.calibration,
        block_size=task.block_size,
        compressed_execution=task.compressed_execution,
        strict_integrity=task.strict_integrity,
        tracer=tracer,
        governance=governance,
    )
    if task.aggregate is not None:
        partial_results = [
            execute_plan(
                aggregate_plan(
                    context,
                    table,
                    task.query,
                    partial_spec,
                    sort_based=task.sort_based,
                    column_scanner=task.column_scanner,
                    row_range=task.row_range,
                )
            )
            for partial_spec in decompose_aggregate(task.aggregate)
        ]
        columns = dict(partial_results[0].columns)
        for extra in partial_results[1:]:
            for name, values in extra.columns.items():
                columns.setdefault(name, values)
        positions = partial_results[0].positions
    else:
        plan: Operator = scan_plan(
            context, table, task.query, task.column_scanner, row_range=task.row_range
        )
        for key in reversed(task.order_by):
            plan = SortOperator(context, plan, key=key)
        if task.topn is not None:
            key, count, descending = task.topn
            plan = TopN(context, plan, key=key, count=count, descending=descending)
        elif task.limit is not None:
            plan = Limit(context, plan, task.limit)
        result = execute_plan(plan)
        columns = result.columns
        positions = result.positions
        if task.position_offset:
            positions = positions + task.position_offset
    return WorkerOutput(
        index=task.index,
        columns=columns,
        positions=positions,
        events=context.events,
        corruption=context.corruption,
        span_roots=tracer.roots if tracer else [],
        slices=tracer.slices if tracer else [],
        epoch_ns=tracer.epoch_ns if tracer else 0,
        # With an overriding (parent) governance the outcomes already
        # live on the caller's object — don't report them twice.
        outcomes=list(governance.outcomes) if owned and governance else [],
        memory_peak=governance.memory_peak if owned and governance else 0,
    )


# --- worker pools ----------------------------------------------------------------


_POOLS: dict[int, multiprocessing.pool.Pool] = {}


def _mp_context():
    if "fork" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


def _cached_pool(workers: int) -> multiprocessing.pool.Pool:
    pool = _POOLS.get(workers)
    if pool is None:
        pool = _mp_context().Pool(processes=workers)
        _POOLS[workers] = pool
    return pool


def _evict_pool(workers: int) -> None:
    pool = _POOLS.pop(workers, None)
    if pool is not None:
        pool.terminate()
        pool.join()


def shutdown_pools() -> None:
    """Terminate every cached worker pool (atexit / test teardown)."""
    for workers in list(_POOLS):
        _evict_pool(workers)


atexit.register(shutdown_pools)


#: Lazily started ``multiprocessing.Manager`` backing the heartbeat
#: board (a Manager forks a server process — only pay for it when a
#: query is actually supervised with heartbeats).
_MANAGER = None


def _heartbeat_board():
    """A fresh Manager dict workers write ``index → monotonic()`` into."""
    global _MANAGER
    if _MANAGER is None:
        _MANAGER = _mp_context().Manager()
    return _MANAGER.dict()


# --- supervision ladder ----------------------------------------------------------


def _run_rung(
    pending: dict[int, WorkerTask],
    outputs: dict[int, WorkerOutput],
    submit: dict[int, WorkerTask],
    base: dict[int, WorkerTask],
    rung: int,
    fork_table: Table | None,
    governance: QueryContext | None,
    policy: SupervisionPolicy,
    breaker: CircuitBreaker | None,
    keys: dict[int, tuple],
    heartbeat,
    notes: list[str],
    tainted: set[int],
) -> tuple[str | None, int]:
    """One rung of the ladder: a ``rung``-sized pool plus supervision.

    Completed partitions move from ``pending`` to ``outputs``.  A
    single-task exception is recovered immediately by re-running just
    that partition inline (kill-and-retry).  Returns ``(degrade_reason,
    pool_successes)``; a non-``None`` reason means the pool was evicted
    (stall, pool-level error, guard expiry) and the still-pending
    partitions should move down the ladder.
    """
    global _FORK_TABLE
    dedicated = fork_table is not None
    if dedicated:
        # Dedicated pool forked with the table already in memory: the
        # children inherit it copy-on-write instead of unpickling it.
        _FORK_TABLE = fork_table
        try:
            pool = _mp_context().Pool(processes=rung)
        finally:
            _FORK_TABLE = None
    else:
        pool = _cached_pool(rung)

    evicted = False

    def evict() -> None:
        nonlocal evicted
        if evicted:
            return
        evicted = True
        if dedicated:
            pool.terminate()
            pool.join()
        else:
            _evict_pool(rung)

    started = time.monotonic()
    pool_successes = 0
    if heartbeat is not None:
        for index in pending:
            heartbeat[index] = started
    try:
        results = {
            index: pool.apply_async(_execute_task, (submit[index],))
            for index in sorted(pending)
        }
        while results:
            if governance is not None:
                try:
                    governance.check("parallel supervisor")
                except GovernanceError:
                    # Kill the stragglers along with the query.
                    evict()
                    raise
            for index in sorted(results):
                handle = results[index]
                if not handle.ready():
                    continue
                del results[index]
                try:
                    output = handle.get()
                except GovernanceError:
                    # A worker hit its own deadline/budget: typed, final.
                    evict()
                    raise
                except Exception as exc:
                    # Kill-and-retry of only the failed partition; its
                    # crashed attempt produced no output, so re-running
                    # it inline keeps the accounting exactly-once.
                    reason = f"{type(exc).__name__}: {exc}"
                    tainted.add(index)
                    if breaker is not None:
                        breaker.record_failure(keys[index])
                    obs_metrics.GOVERNANCE_PARTITION_RETRIES.inc()
                    flight.record(
                        "parallel.retry",
                        governance.label if governance is not None else None,
                        partition=index,
                        reason=reason,
                    )
                    notes.append(
                        f"partition {index} failed ({reason}); retried inline"
                    )
                    inline = replace(base[index], heartbeat=None)
                    try:
                        outputs[index] = _execute_task(inline, governance)
                    except BaseException:
                        evict()
                        raise
                    del pending[index]
                else:
                    outputs[index] = output
                    del pending[index]
                    pool_successes += 1
                    # A success only closes the breaker if this
                    # partition ran clean the whole query — recovering
                    # on retry must not erase the failure it recovered
                    # from, or a flaky partition could never trip.
                    if breaker is not None and index not in tainted:
                        breaker.record_success(keys[index])
            if not results:
                break
            now = time.monotonic()
            if heartbeat is not None:
                for index in sorted(results):
                    beat = heartbeat.get(index, started)
                    if now - beat > policy.stall_timeout:
                        obs_metrics.GOVERNANCE_STALLS.inc()
                        flight.record(
                            "parallel.stall",
                            governance.label if governance is not None else None,
                            partition=index,
                            silent_s=round(now - beat, 3),
                        )
                        tainted.add(index)
                        if breaker is not None:
                            breaker.record_failure(keys[index])
                        evict()
                        return (
                            f"partition {index} stalled "
                            f"(no heartbeat for {now - beat:.2f}s)",
                            pool_successes,
                        )
            elif now - started > policy.max_dispatch_seconds:
                evict()
                return (
                    "dispatch guard expired after "
                    f"{policy.max_dispatch_seconds:.0f}s",
                    pool_successes,
                )
            time.sleep(policy.poll_interval)
        return None, pool_successes
    except KeyboardInterrupt:
        # Reap every child and close its pipes before surfacing Ctrl-C:
        # terminate() kills the workers, join() waits them out — no
        # zombies survive an interrupt mid-query.
        evict()
        shutdown_pools()
        raise
    except OSError as exc:
        evict()
        return f"pool failure ({type(exc).__name__}: {exc})", pool_successes
    finally:
        if dedicated and not evicted:
            pool.terminate()
            pool.join()


def _dispatch_ladder(
    base: dict[int, WorkerTask],
    first: dict[int, WorkerTask],
    workers: int,
    fork_table: Table | None,
    governance: QueryContext | None,
    policy: SupervisionPolicy,
    breaker: CircuitBreaker | None,
    keys: dict[int, tuple],
    heartbeat,
    notes: list[str],
) -> tuple[dict[int, WorkerOutput], bool]:
    """Supervised dispatch of every partition; returns outputs by index.

    ``base`` holds the clean (re-runnable) task per partition; ``first``
    overlays chaos/test injections applied on the first rung only, so a
    retried partition runs clean.  The second return value reports
    whether any partition completed in a pool worker (mode reporting).
    """
    outputs: dict[int, WorkerOutput] = {}
    pending = dict(base)

    # Breaker-open partitions never reach the pool: they are served by
    # salvage-mode serial scans (skip-don't-crash) straight away.
    if breaker is not None:
        for index in sorted(pending):
            if breaker.is_open(keys[index]):
                task = replace(
                    base[index], heartbeat=None, strict_integrity=False
                )
                outputs[index] = _execute_task(task, governance)
                del pending[index]
                notes.append(
                    f"breaker open: partition {index} routed to "
                    "salvage serial scan"
                )

    pool_ran = False
    first_rung = True
    tainted: set[int] = set()
    rung = min(workers, len(pending)) if pending else 0
    while pending and rung >= 1:
        submit = {}
        for index in pending:
            task = first.get(index, base[index]) if first_rung else base[index]
            if fork_table is not None:
                task = replace(task, table=None)
            submit[index] = task
        reason, successes = _run_rung(
            pending,
            outputs,
            submit,
            base,
            rung,
            fork_table,
            governance,
            policy,
            breaker,
            keys,
            heartbeat,
            notes,
            tainted,
        )
        first_rung = False
        pool_ran = pool_ran or successes > 0
        if reason is None:
            break
        next_rung = rung // 2
        obs_metrics.GOVERNANCE_DEGRADATIONS.inc()
        flight.record(
            "parallel.degrade",
            governance.label if governance is not None else None,
            workers_from=rung,
            workers_to=next_rung,
            reason=reason,
        )
        notes.append(
            f"degraded workers {rung}→{next_rung or 'serial'}: {reason}"
        )
        rung = next_rung
    for index in sorted(pending):
        outputs[index] = _execute_task(
            replace(base[index], heartbeat=None), governance
        )
    pending.clear()
    return outputs, pool_ran


# --- merging ---------------------------------------------------------------------


def _merge_accounting(context: ExecutionContext, outputs: list[WorkerOutput]) -> None:
    """Fold worker events and corruption into the parent, exactly once.

    Adjacent workers both decode the pages straddling their boundary,
    so a corrupt boundary page would be reported twice; deduplicating
    by ``(file, page)`` keeps the merged fault list identical to a
    serial salvage scan's.
    """
    seen = {(fault.file, fault.page) for fault in context.corruption.faults}
    for out in outputs:
        context.events.merge(out.events)
        context.corruption.pages_scanned += out.corruption.pages_scanned
        for fault in out.corruption.faults:
            key = (fault.file, fault.page)
            if key in seen:
                continue
            seen.add(key)
            context.corruption.faults.append(fault)


def _merge_plan(
    context: ExecutionContext,
    outputs: list[WorkerOutput],
    aggregate: AggregateSpec | None,
    order_by: tuple[str, ...],
    limit: int | None,
    topn: tuple[str, int, bool] | None,
    notes: list[str] | None = None,
) -> tuple[Operator, Operator]:
    """The parent-side merge plan; returns ``(plan root, gather anchor)``.

    The anchor is the node worker span trees are attached under.
    Supervision ``notes`` are folded into the gather node's detail so
    EXPLAIN ANALYZE shows *why* a query degraded.
    """
    blocks = [
        Block(columns=out.columns, positions=out.positions) for out in outputs
    ]
    detail = f"{len(blocks)} partition output(s)"
    if notes:
        detail += " | " + "; ".join(notes)
    if aggregate is not None:
        gather = GatherOperator(context, blocks, detail=detail)
        return MergePartials(context, gather, aggregate), gather
    if order_by:
        merge: Operator = MergeSortedRuns(context, blocks, order_by, detail=detail)
        anchor = merge
        if limit is not None:
            merge = Limit(context, merge, limit)
        return merge, anchor
    if topn is not None:
        key, count, descending = topn
        merged = concat_blocks([block for block in blocks if len(block)] or blocks)
        # Candidates arrive in per-worker key order; re-ordering by
        # global position makes the parent's stable tie-breaking see
        # the same input order the serial TopN did.
        order = np.argsort(merged.positions)
        candidates = Block(
            columns={name: col[order] for name, col in merged.columns.items()},
            positions=merged.positions[order],
        )
        gather = GatherOperator(context, [candidates], detail=detail)
        return TopN(context, gather, key=key, count=count, descending=descending), gather
    gather = GatherOperator(context, blocks, detail=detail)
    if limit is not None:
        return Limit(context, gather, limit), gather
    return gather, gather


# --- public API ------------------------------------------------------------------


def parallel_query(
    table: Table | PartitionedTable,
    query: ScanQuery,
    *,
    workers: int = 2,
    partitions: int | None = None,
    context: ExecutionContext | None = None,
    column_scanner: ColumnScannerKind = ColumnScannerKind.PIPELINED,
    salvage: bool = False,
    aggregate: AggregateSpec | None = None,
    sort_based: bool = False,
    order_by: tuple[str, ...] = (),
    limit: int | None = None,
    topn: tuple[str, int, bool] | None = None,
    share: str = "auto",
    policy: SupervisionPolicy | None = None,
    breaker: CircuitBreaker | None = None,
    inject_crash: int | None = None,
    inject_kill: int | None = None,
    inject_stall: tuple[int, float] | None = None,
    info: dict | None = None,
) -> QueryResult:
    """Execute one decomposable query across row-range partitions.

    ``table`` may be a plain table (split logically into ``partitions``
    contiguous row ranges, default one per worker) or a
    :class:`~repro.storage.partition.PartitionedTable` (its physical
    shards are used as-is).  ``workers <= 1`` runs the same
    partition-and-merge machinery in-process, which keeps the merge
    path — and its cost accounting — testable without a pool.

    Exactly one result shape may be requested: a plain selection,
    ``aggregate``, ``order_by`` (optionally with ``limit``), plain
    ``limit``, or ``topn``.  Non-decomposable shapes raise
    :class:`~repro.errors.PlanError`; callers (``Database.query``)
    fall back to the serial engine instead.

    ``share`` controls how workers see the table: ``"pickle"`` ships it
    with each task, ``"fork"`` forks a dedicated pool that inherits it,
    ``"auto"`` picks by table size.  ``info``, when given a dict, is
    filled with execution diagnostics (``mode``, ``partitions``,
    ``workers``, ``fallback_reason``, ``governance`` notes).

    When ``context.governance`` is set, its deadline is enforced inside
    every worker (shared monotonic clock under fork), its memory budget
    is split evenly across the partitions, and the supervisor polls the
    parent-side token/deadline between heartbeats.  ``policy`` tunes
    the supervision ladder; ``breaker`` is the per-``Database`` circuit
    breaker that routes repeat-offender partitions straight to salvage
    serial scans.  ``inject_crash``/``inject_kill``/``inject_stall``
    are fault hooks (exception, hard ``os._exit``, mid-scan sleep) used
    by the chaos harness; injections apply to the first dispatch only,
    so recovery paths always run clean.
    """
    if workers < 1:
        raise PlanError(f"worker count must be positive: {workers}")
    if share not in ("auto", "pickle", "fork"):
        raise PlanError(f"unknown share mode: {share!r}")
    shapes = sum(
        [aggregate is not None, bool(order_by), topn is not None]
    )
    if shapes > 1:
        raise PlanError(
            "parallel query supports one result shape at a time "
            "(aggregate | order_by | topn)"
        )
    if limit is not None and (aggregate is not None or topn is not None):
        raise PlanError("parallel limit composes only with plain or sorted scans")

    context = context or ExecutionContext()
    if salvage:
        context.strict_integrity = False
    trace = context.tracer is not None
    governance = context.governance
    policy = policy or SupervisionPolicy()

    # Partition list: (table, row_range, position_offset) per task.
    if isinstance(table, PartitionedTable):
        shards = [
            (partition.table, None, partition.row_start)
            for partition in table.partitions
        ]
        schema_table: Table = table.partitions[0].table
        fork_candidate = None
    else:
        count = partitions if partitions is not None else workers
        shards = [
            (table, (lo, hi), 0)
            for lo, hi in partition_ranges(table.num_rows, count)
        ]
        schema_table = table
        fork_candidate = table
    query.validate_against(schema_table.schema)

    # Each partition gets an even share of the query's memory budget —
    # its materializing working set is ~1/N of the serial one.
    budget_share = None
    if governance is not None and governance.memory_budget is not None:
        budget_share = max(1, governance.memory_budget // len(shards))
    tasks = [
        WorkerTask(
            index=index,
            table=shard_table,
            query=query,
            row_range=row_range,
            position_offset=offset,
            column_scanner=column_scanner,
            calibration=context.calibration,
            block_size=context.block_size,
            compressed_execution=context.compressed_execution,
            strict_integrity=context.strict_integrity,
            trace=trace,
            aggregate=aggregate,
            sort_based=sort_based,
            order_by=order_by,
            limit=limit,
            topn=topn,
            deadline=governance.deadline if governance else None,
            memory_budget=budget_share,
        )
        for index, (shard_table, row_range, offset) in enumerate(shards)
    ]

    mode = "inline"
    notes: list[str] = []
    if workers > 1 and len(tasks) > 1:
        use_fork = share == "fork" or (
            share == "auto"
            and fork_candidate is not None
            and fork_candidate.num_rows >= _FORK_SHARE_ROWS
            and "fork" in multiprocessing.get_all_start_methods()
        )
        # Heartbeats need a Manager process — only supervised queries
        # (governance, a breaker, or injected worker faults) pay for one.
        heartbeat = None
        if (
            governance is not None
            or breaker is not None
            or inject_kill is not None
            or inject_stall is not None
        ):
            heartbeat = _heartbeat_board()
        base = {
            task.index: replace(
                task,
                heartbeat=heartbeat,
                heartbeat_interval=policy.heartbeat_interval,
            )
            for task in tasks
        }
        first = {}
        if inject_crash is not None and inject_crash in base:
            first[inject_crash] = replace(base[inject_crash], crash=True)
        if inject_kill is not None and inject_kill in base:
            first[inject_kill] = replace(
                first.get(inject_kill, base[inject_kill]), kill=True
            )
        if inject_stall is not None and inject_stall[0] in base:
            index, seconds = inject_stall
            first[index] = replace(
                first.get(index, base[index]), stall_seconds=float(seconds)
            )
        keys = {
            task.index: (schema_table.schema.name, task.index, task.row_range)
            for task in tasks
        }
        by_index, pool_ran = _dispatch_ladder(
            base,
            first,
            min(workers, len(tasks)),
            fork_candidate if use_fork else None,
            governance,
            policy,
            breaker,
            keys,
            heartbeat,
            notes,
        )
        outputs = list(by_index.values())
        if not pool_ran:
            mode = "fallback-serial"
        elif notes:
            mode = "parallel-degraded"
        else:
            mode = "parallel"
    else:
        outputs = [_execute_task(task, governance) for task in tasks]

    outputs.sort(key=lambda out: out.index)
    _merge_accounting(context, outputs)
    if governance is not None:
        for out in outputs:
            for event in out.outcomes:
                governance.note(f"partition {out.index}: {event}")
        for event in notes:
            governance.note(event)

    plan, anchor = _merge_plan(
        context, outputs, aggregate, order_by, limit, topn, notes=notes
    )
    result = execute_plan(plan)

    if trace:
        tracer = context.tracer
        anchor_span = tracer.span_for(anchor)
        for out in outputs:
            tracer.attach_subtree(
                out.span_roots,
                out.slices,
                track=out.index + 1,
                under=anchor_span,
                epoch_ns=out.epoch_ns or None,
            )

    if info is not None:
        info["mode"] = mode
        info["workers"] = workers
        info["partitions"] = len(tasks)
        info["fallback_reason"] = notes[0] if notes else None
        info["governance"] = list(notes)
    return result
