"""Relational operators: scanners, aggregation, merge join, sort."""

from repro.engine.operators.aggregate import HashAggregate, SortAggregate
from repro.engine.operators.base import Operator
from repro.engine.operators.delta import DeltaScan, HybridUnion
from repro.engine.operators.limit import Limit, TopN
from repro.engine.operators.merge_join import MergeJoin
from repro.engine.operators.scan_column import ColumnScanner
from repro.engine.operators.scan_fused import FusedColumnScanner
from repro.engine.operators.scan_pax import PaxScanner
from repro.engine.operators.scan_row import RowScanner
from repro.engine.operators.sort import SortOperator

__all__ = [
    "Operator",
    "DeltaScan",
    "HybridUnion",
    "Limit",
    "TopN",
    "RowScanner",
    "ColumnScanner",
    "FusedColumnScanner",
    "PaxScanner",
    "HashAggregate",
    "SortAggregate",
    "MergeJoin",
    "SortOperator",
]
