"""Bit-packing tests."""

import numpy as np
import pytest

from repro.compression.base import CodecKind, CodecSpec
from repro.compression.bitpack import (
    BitPackCodec,
    bits_needed,
    pack_bits,
    unpack_bits,
)
from repro.errors import CompressionError
from repro.types.datatypes import FixedTextType, IntType


class TestBitsNeeded:
    def test_small_domains(self):
        assert bits_needed(0) == 1
        assert bits_needed(1) == 1
        assert bits_needed(2) == 2
        assert bits_needed(7) == 3
        assert bits_needed(8) == 4

    def test_paper_examples(self):
        # "if an integer attribute has a maximum value of 1000, then we
        #  need at most 10 bits"
        assert bits_needed(1000) == 10
        assert bits_needed(50) == 6  # L_QUANTITY
        assert bits_needed(7) == 3  # L_LINENUMBER

    def test_negative_rejected(self):
        with pytest.raises(CompressionError):
            bits_needed(-1)


class TestPackUnpack:
    def test_roundtrip_various_widths(self):
        rng = np.random.default_rng(3)
        for bits in (1, 3, 7, 8, 13, 16, 31, 32, 40, 63):
            values = rng.integers(0, 2**min(bits, 62), size=257)
            packed = pack_bits(values, bits)
            assert len(packed) == (257 * bits + 7) // 8
            np.testing.assert_array_equal(unpack_bits(packed, bits, 257), values)

    def test_empty(self):
        assert pack_bits(np.array([], dtype=np.int64), 5) == b""
        assert unpack_bits(b"", 5, 0).size == 0

    def test_value_too_large(self):
        with pytest.raises(CompressionError):
            pack_bits(np.array([8]), 3)

    def test_negative_value_rejected(self):
        with pytest.raises(CompressionError):
            pack_bits(np.array([-1]), 8)

    def test_bad_width_rejected(self):
        with pytest.raises(CompressionError):
            pack_bits(np.array([1]), 0)
        with pytest.raises(CompressionError):
            unpack_bits(b"\x00", 64, 1)

    def test_short_stream_rejected(self):
        with pytest.raises(CompressionError):
            unpack_bits(b"\x01", 8, 5)

    def test_bit_density(self):
        # 1000 3-bit values occupy exactly 375 bytes.
        packed = pack_bits(np.arange(1000) % 8, 3)
        assert len(packed) == 375


class TestBitPackCodec:
    def test_spec_from_values(self):
        spec = BitPackCodec.spec_for_values(np.array([1, 50, 3]))
        assert spec == CodecSpec(kind=CodecKind.PACK, bits=6)

    def test_page_roundtrip(self):
        values = np.arange(1, 51)
        codec = BitPackCodec(BitPackCodec.spec_for_values(values), IntType())
        payload, state = codec.encode_page(values)
        np.testing.assert_array_equal(
            codec.decode_page(payload, len(values), state), values
        )

    def test_selective_decode_counts_only_positions(self):
        values = np.arange(100)
        codec = BitPackCodec(BitPackCodec.spec_for_values(values), IntType())
        payload, state = codec.encode_page(values)
        selected, decoded = codec.decode_positions(
            payload, 100, state, np.array([3, 50, 99])
        )
        np.testing.assert_array_equal(selected, [3, 50, 99])
        assert decoded == 3

    def test_rejects_text_type(self):
        spec = CodecSpec(kind=CodecKind.PACK, bits=8)
        with pytest.raises(CompressionError):
            BitPackCodec(spec, FixedTextType(4))

    def test_rejects_wrong_kind(self):
        with pytest.raises(CompressionError):
            BitPackCodec(CodecSpec(kind=CodecKind.DICT, bits=2, dictionary=(1,)), IntType())

    def test_negative_domain_rejected(self):
        with pytest.raises(CompressionError):
            BitPackCodec.spec_for_values(np.array([-5, 3]))

    def test_empty_domain_rejected(self):
        with pytest.raises(CompressionError):
            BitPackCodec.spec_for_values(np.array([], dtype=np.int64))
