"""Plan builders: query specs → operator trees.

The paper uses precompiled plans with an identical operator layer above
the scanners; these builders are that precompilation step.  The same
:class:`~repro.engine.query.ScanQuery` yields interchangeable plans for
row and column tables.
"""

from __future__ import annotations

import enum

from repro.engine.context import ExecutionContext
from repro.engine.operators.aggregate import HashAggregate, SortAggregate
from repro.engine.operators.base import Operator
from repro.engine.operators.merge_join import MergeJoin
from repro.engine.operators.scan_column import ColumnScanner
from repro.engine.operators.scan_fused import FusedColumnScanner
from repro.engine.operators.scan_pax import PaxScanner
from repro.engine.operators.scan_row import RowScanner
from repro.engine.operators.sort import SortOperator
from repro.engine.query import AggregateFunction, AggregateSpec, ScanQuery
from repro.errors import PlanError
from repro.storage.table import ColumnTable, PaxTable, RowTable, Table


class ColumnScannerKind(enum.Enum):
    """Which column-scanner architecture to plan (Section 4.2)."""

    PIPELINED = "pipelined"
    FUSED = "fused"


def scan_plan(
    context: ExecutionContext,
    table: Table,
    query: ScanQuery,
    column_scanner: ColumnScannerKind = ColumnScannerKind.PIPELINED,
    row_range: tuple[int, int] | None = None,
) -> Operator:
    """A scanner for ``query`` matching the table's physical layout.

    ``row_range`` restricts the scan to the half-open global row window
    ``[lo, hi)`` — the unit of horizontal partitioning that
    :mod:`repro.engine.parallel` fans out across workers.  Emitted
    positions remain global Record IDs.
    """
    query.validate_against(table.schema)
    if isinstance(table, RowTable):
        return RowScanner(
            context, table, query.select, query.predicates, row_range=row_range
        )
    if isinstance(table, PaxTable):
        return PaxScanner(
            context, table, query.select, query.predicates, row_range=row_range
        )
    if isinstance(table, ColumnTable):
        if column_scanner is ColumnScannerKind.FUSED:
            return FusedColumnScanner(
                context, table, query.select, query.predicates, row_range=row_range
            )
        return ColumnScanner(
            context, table, query.select, query.predicates, row_range=row_range
        )
    raise PlanError(f"unsupported table type: {type(table).__name__}")


def aggregate_plan(
    context: ExecutionContext,
    table: Table,
    query: ScanQuery,
    spec: AggregateSpec,
    sort_based: bool = False,
    column_scanner: ColumnScannerKind = ColumnScannerKind.PIPELINED,
    row_range: tuple[int, int] | None = None,
) -> Operator:
    """Aggregation over a scan; optionally sort-based (adds a sort)."""
    needed = set(spec.group_by)
    if spec.argument is not None:
        needed.add(spec.argument)
    missing = needed - set(query.select)
    if missing:
        raise PlanError(
            f"aggregate needs attributes not selected by the scan: {sorted(missing)}"
        )
    scan = scan_plan(context, table, query, column_scanner, row_range=row_range)
    if sort_based:
        if not spec.group_by:
            raise PlanError("sort-based aggregation requires a group-by key")
        # Chain stable sorts from the least-significant key outward:
        # stable sorts compose, so the final output is ordered
        # lexicographically on the full group-by key and SortAggregate's
        # run detection (which splits on *all* keys) sees each group as
        # one contiguous run.
        child: Operator = scan
        for key in reversed(spec.group_by):
            child = SortOperator(context, child, key=key)
        return SortAggregate(context, child, spec)
    return HashAggregate(context, scan, spec)


def decompose_aggregate(spec: AggregateSpec) -> tuple[AggregateSpec, ...]:
    """The per-partition partial aggregates that reassemble ``spec``.

    COUNT/SUM/MIN/MAX are self-decomposable; AVG splits into a SUM and
    a COUNT whose merged ratio reproduces the serial float64 result
    exactly for integer inputs below 2**53.  The partials share the
    final spec's group-by key, so
    :class:`~repro.engine.operators.gather.MergePartials` can regroup
    their outputs with the same ``np.unique`` machinery the serial
    :class:`~repro.engine.operators.aggregate.HashAggregate` uses.
    """
    if spec.function is AggregateFunction.AVG:
        return (
            AggregateSpec(spec.group_by, AggregateFunction.SUM, spec.argument),
            AggregateSpec(spec.group_by, AggregateFunction.COUNT, None),
        )
    return (spec,)


def merge_join_plan(
    context: ExecutionContext,
    left_table: Table,
    left_query: ScanQuery,
    right_table: Table,
    right_query: ScanQuery,
    left_key: str,
    right_key: str,
    column_scanner: ColumnScannerKind = ColumnScannerKind.PIPELINED,
) -> Operator:
    """Scan both tables and merge-join them on sorted keys."""
    if left_key not in left_query.select:
        raise PlanError(f"left scan must select the join key {left_key!r}")
    if right_key not in right_query.select:
        raise PlanError(f"right scan must select the join key {right_key!r}")
    left = scan_plan(context, left_table, left_query, column_scanner)
    right = scan_plan(context, right_table, right_query, column_scanner)
    return MergeJoin(context, left, right, left_key, right_key)
