"""Write-optimized staging store and crash-safe merge (Figure 1, left).

The paper assumes updates land in a *write-optimized store* and are
periodically moved in bulk into the read-optimized store (the design
C-Store uses).  The paper itself only measures the read store; this
component makes the library usable end to end:

* inserts accumulate in row-major order in memory (optionally under a
  byte budget, enforced with the same
  :class:`~repro.errors.MemoryBudgetExceeded` the query governor uses);
* deletes are *marked* in a :class:`~repro.storage.delete_vector.
  DeleteVector` over global row positions — both base-table rows and
  staged rows are addressable, so an insert can be deleted again
  before it ever reaches disk;
* reads see the edits through the hybrid overlay layer
  (:mod:`repro.engine.hybrid`) without touching the read store;
* :meth:`WriteOptimizedStore.merge_into` rebuilds the read store with
  deletes reclaimed and staged tuples appended, preserving the table's
  physical layout and refreshing each column's codec parameters (a
  staged value may fall outside the old dictionary or packed width);
* :func:`merge_into_directory` makes that rebuild durable and atomic:
  the new table is saved into a fresh versioned directory (temp files,
  fsync, rename — the PR-1 machinery) and a ``CURRENT`` manifest is
  flipped durably, so a crash at *any* fault point leaves exactly the
  old or the new snapshot on disk, never a mixture.

``tests/test_write_path.py`` pins the hybrid read equivalence and the
merge ordering; ``tests/test_merge_crash_matrix.py`` walks
:data:`MERGE_FAULT_POINTS` and proves old-or-new atomicity.
"""

from __future__ import annotations

import pathlib
import shutil
import time

import numpy as np

from repro.compression.registry import build_codec_for_values
from repro.data.generator import GeneratedTable
from repro.errors import (
    CompressionError,
    MemoryBudgetExceeded,
    SchemaError,
    StorageError,
)
from repro.obs import metrics as obs_metrics
from repro.obs import recorder as flight
from repro.storage.delete_vector import DeleteVector
from repro.storage.loader import BulkLoader
from repro.storage.persist import (
    _fsync_directory,
    _write_file_durably,
    open_table,
    save_table,
)
from repro.storage.table import Table
from repro.types.schema import TableSchema

#: Every injection point a merge-to-disk passes through, in order.  The
#: first five live inside :func:`~repro.storage.persist.save_table`
#: (the versioned snapshot write); the last is the durable ``CURRENT``
#: manifest flip.  A crash at any of them must leave old-or-new state.
MERGE_FAULT_POINTS = (
    "staging.created",
    "pages.written",
    "meta.written",
    "staging.fsynced",
    "table.renamed",
    "current.written",
)

_CURRENT_NAME = "CURRENT"


class WriteOptimizedStore:
    """In-memory staging area (inserts + delete vector) for one table."""

    def __init__(
        self,
        schema: TableSchema,
        sort_key: str | None = None,
        memory_budget: int | None = None,
    ):
        self.schema = schema
        if sort_key is not None:
            schema.attribute(sort_key)  # validates
        self.sort_key = sort_key
        if memory_budget is not None and memory_budget <= 0:
            raise StorageError(f"memory budget must be positive: {memory_budget}")
        self.memory_budget = memory_budget
        self._row_bytes = sum(attr.width for attr in schema)
        self._staged: list[tuple] = []
        self._base_rows = 0
        self._deletes = DeleteVector(0)
        self._merging = False

    def __len__(self) -> int:
        return len(self._staged)

    @property
    def is_empty(self) -> bool:
        return not self._staged

    # --- shape ------------------------------------------------------------

    @property
    def base_rows(self) -> int:
        """Rows in the read-store snapshot this store overlays."""
        return self._base_rows

    @property
    def total_rows(self) -> int:
        """Addressable global positions: base rows plus staged rows."""
        return self._base_rows + len(self._staged)

    @property
    def deletes(self) -> DeleteVector:
        """The delete vector over global positions ``[0, total_rows)``."""
        return self._deletes

    @property
    def staged_bytes(self) -> int:
        """Uncompressed bytes held by the staged tuples."""
        return len(self._staged) * self._row_bytes

    @property
    def has_changes(self) -> bool:
        """Whether a read must overlay this store (staged or deleted rows)."""
        return bool(self._staged) or not self._deletes.is_empty

    def attach_base(self, num_rows: int) -> None:
        """Bind the store to a read-store snapshot of ``num_rows`` rows.

        Resets position accounting: the delete vector starts clean over
        the new base (staged rows, if any, shift to follow it).
        """
        if self._staged:
            raise StorageError(
                "cannot re-attach a base under staged rows; merge or clear first"
            )
        self._base_rows = int(num_rows)
        self._deletes = DeleteVector(self.total_rows)

    def reset(self, base_rows: int) -> None:
        """Post-merge state: nothing staged, nothing deleted, new base."""
        self._staged.clear()
        self._base_rows = int(base_rows)
        self._deletes = DeleteVector(base_rows)

    # --- merge freeze -----------------------------------------------------

    def begin_merge(self) -> None:
        """Freeze writes while a merge snapshot is being rebuilt."""
        if self._merging:
            raise StorageError("a merge is already in flight for this store")
        self._merging = True

    def end_merge(self) -> None:
        self._merging = False

    @property
    def merging(self) -> bool:
        return self._merging

    def _check_writable(self, what: str) -> None:
        if self._merging:
            raise StorageError(
                f"cannot {what} while a merge is in flight; "
                "wait for it to commit or abort"
            )

    # --- writes -----------------------------------------------------------

    def insert(self, row: tuple) -> None:
        """Stage one tuple (in schema attribute order)."""
        self._check_writable("insert")
        if len(row) != len(self.schema):
            raise SchemaError(
                f"tuple of {len(row)} values for {len(self.schema)}-attribute "
                f"table {self.schema.name!r}"
            )
        if (
            self.memory_budget is not None
            and self.staged_bytes + self._row_bytes > self.memory_budget
        ):
            raise MemoryBudgetExceeded(
                f"write store for {self.schema.name!r} at "
                f"{self.staged_bytes} bytes; inserting {self._row_bytes} more "
                f"exceeds the {self.memory_budget}-byte budget (merge to drain)"
            )
        self._staged.append(tuple(row))
        self._deletes.grow(self.total_rows)

    def insert_many(self, rows: list[tuple]) -> None:
        """Stage a batch of tuples."""
        for row in rows:
            self.insert(row)

    def delete(self, positions) -> int:
        """Mark global positions deleted; returns how many were live.

        Positions address the *hybrid* table: ``[0, base_rows)`` is the
        base snapshot, ``[base_rows, total_rows)`` the staged rows in
        insertion order.  Deleting is idempotent.
        """
        self._check_writable("delete")
        return self._deletes.set_many(positions)

    # --- reads ------------------------------------------------------------

    def staged_columns(self) -> dict[str, np.ndarray]:
        """The staged tuples as columns (empty dict when nothing staged)."""
        if not self._staged:
            return {}
        columns = {}
        for index, attr in enumerate(self.schema):
            raw = [row[index] for row in self._staged]
            columns[attr.name] = np.asarray(raw, dtype=attr.attr_type.numpy_dtype())
        return columns

    def merged_columns(self, existing: dict[str, np.ndarray]) -> dict[str, np.ndarray]:
        """Live rows of the rebuilt table: base minus deletes, then staged.

        ``existing`` must hold the base snapshot's columns (length
        ``base_rows``).  No sort is applied — this is the order the
        hybrid read path presents, and the order :meth:`rebuild` starts
        from before any sort-key reclustering.
        """
        for name, column in existing.items():
            if len(column) != self._base_rows:
                raise StorageError(
                    f"base column {name!r} has {len(column)} rows; store is "
                    f"attached to a {self._base_rows}-row base"
                )
        staged = self.staged_columns()
        names = self.schema.attribute_names
        if staged:
            merged = {
                name: np.concatenate([existing[name], staged[name]])
                for name in names
            }
        else:
            merged = {name: existing[name] for name in names}
        if not self._deletes.is_empty:
            live = ~self._deletes.mask()
            merged = {name: column[live] for name, column in merged.items()}
        return merged

    # --- merge ------------------------------------------------------------

    def _refreshed_schema(
        self, schema: TableSchema, columns: dict[str, np.ndarray]
    ) -> TableSchema:
        """Re-fit every declared codec to the merged data.

        Staged values may fall outside the base columns' dictionaries
        or packed widths; each codec keeps its *kind* but re-derives
        its parameters.  A kind the merged data can no longer support
        (e.g. a dictionary overflowing its code space) downgrades to
        identity rather than failing the merge.
        """
        specs = {}
        for attr in schema:
            if attr.codec_spec is None:
                continue
            try:
                specs[attr.name] = build_codec_for_values(
                    attr.codec_spec.kind, attr.attr_type, columns[attr.name]
                ).spec
            except CompressionError:
                from repro.compression.identity import IdentityCodec

                specs[attr.name] = IdentityCodec.spec_for_type(attr.attr_type)
        if not specs:
            return schema
        return schema.with_codecs(specs)

    def _sync_base(self, num_rows: int) -> None:
        """Adopt a base of ``num_rows`` when the store was never attached."""
        if self._base_rows == num_rows:
            return
        if self._base_rows == 0 and self._deletes.is_empty:
            # Legacy unattached use: staged rows shift up to follow the
            # adopted base; no deletes exist, so positions stay valid.
            self._base_rows = num_rows
            self._deletes = DeleteVector(self.total_rows)
            return
        raise StorageError(
            f"store is attached to a {self._base_rows}-row base but the "
            f"base data has {num_rows} rows"
        )

    def merged_data(
        self, schema: TableSchema, base_columns: dict[str, np.ndarray], governance=None
    ) -> GeneratedTable:
        """The rebuilt table's data: edits applied, reclustered, re-coded.

        Base-minus-deletes plus the staged tuples appended in insertion
        order; with a ``sort_key`` the combined data is re-clustered on
        it with a *stable* sort, so rows with duplicate keys keep that
        order.  Codec parameters are refreshed for the merged data.
        ``governance`` (a :class:`~repro.engine.governance.QueryContext`)
        is checkpointed at each phase so a merge honors deadlines and
        cancellation.
        """
        if schema.attribute_names != self.schema.attribute_names:
            raise StorageError(
                f"cannot merge {self.schema.name!r} staging into "
                f"{schema.name!r}: schemas differ"
            )
        self._sync_base(len(next(iter(base_columns.values()))) if base_columns else 0)
        if governance is not None:
            governance.check("merge.read_base")
        merged = self.merged_columns(base_columns)
        if governance is not None:
            governance.check("merge.recluster")
        if self.sort_key is not None:
            # Stable, so duplicate-key rows keep insertion order (the
            # regression pinned by test_merge_stable_sort_keeps_ties).
            order = np.argsort(merged[self.sort_key], kind="stable")
            merged = {name: col[order] for name, col in merged.items()}
        return GeneratedTable(
            schema=self._refreshed_schema(schema, merged), columns=merged
        )

    def rebuild(
        self,
        table: Table,
        loader: BulkLoader | None = None,
        verify: bool = False,
        governance=None,
    ) -> Table:
        """Build the merged read store; staging is left untouched.

        Layout and page size follow ``table``.  With ``verify=True``
        the rebuilt table is integrity-swept before it is returned, so
        a merge can never install corrupt pages.
        """
        loader = loader or BulkLoader(page_size=table.page_size, verify=verify)
        data = self.merged_data(table.schema, table.columns_dict(), governance)
        if governance is not None:
            governance.check("merge.load")
        return loader.load(data, table.layout)

    def merge_into(
        self,
        table: Table,
        loader: BulkLoader | None = None,
        verify: bool = False,
        governance=None,
    ) -> Table:
        """Rebuild the read store with the staged edits merged in.

        Returns a new table of the same layout; the staging area and
        delete vector are cleared only on success.
        """
        started = time.perf_counter()
        staged = len(self._staged)
        reclaimed = self._deletes.count()
        new_table = self.rebuild(table, loader, verify, governance)
        self.reset(new_table.num_rows)
        if obs_metrics.enabled():
            obs_metrics.WRITE_MERGES.inc()
            obs_metrics.WRITE_MERGE_SECONDS.observe(time.perf_counter() - started)
            obs_metrics.WRITE_MERGED_ROWS.inc(staged)
            obs_metrics.WRITE_RECLAIMED_ROWS.inc(reclaimed)
        return new_table


# --- durable versioned merge (crash-safe manifest flip) --------------------


def read_current_version(root: str | pathlib.Path) -> str | None:
    """The version directory name ``CURRENT`` points at, or ``None``."""
    path = pathlib.Path(root) / _CURRENT_NAME
    if not path.exists():
        return None
    name = path.read_text(encoding="utf-8").strip()
    if not name or "/" in name or name.startswith("."):
        raise StorageError(f"corrupt CURRENT manifest in {root}: {name!r}")
    return name


def _flip_current(root: pathlib.Path, name: str) -> None:
    """Durably point ``CURRENT`` at a version directory (atomic rename)."""
    tmp = root / f".{_CURRENT_NAME}.tmp"
    _write_file_durably(tmp, (name + "\n").encode("utf-8"))
    tmp.rename(root / _CURRENT_NAME)
    _fsync_directory(root)


def open_current(
    root: str | pathlib.Path, salvage=None, retry_policy=None
) -> Table:
    """Open the table the ``CURRENT`` manifest points at."""
    root = pathlib.Path(root)
    name = read_current_version(root)
    if name is None:
        raise StorageError(f"no {_CURRENT_NAME} manifest in {root}")
    target = root / name
    if not target.exists():
        raise StorageError(
            f"{_CURRENT_NAME} points at missing version {name!r} in {root}"
        )
    return open_table(target, salvage=salvage, retry_policy=retry_policy)


def merge_into_directory(
    store: WriteOptimizedStore,
    table: Table,
    root: str | pathlib.Path,
    *,
    loader: BulkLoader | None = None,
    verify: bool = False,
    crash_hook=None,
    governance=None,
) -> tuple[Table, pathlib.Path]:
    """Crash-safe merge: rebuild, save a new version, flip ``CURRENT``.

    Layout on disk::

        root/
          CURRENT      <- "v0002\\n", flipped durably via tmp+rename
          v0002/       <- a save_table directory (pages + meta.json)

    The new snapshot is written into the *next* version directory with
    :func:`~repro.storage.persist.save_table` (temp dir, fsync, rename,
    meta last), then ``CURRENT`` is flipped.  Readers resolve through
    :func:`open_current`, so until the flip they see the old version —
    a crash at any point in :data:`MERGE_FAULT_POINTS` (exercise it via
    ``crash_hook``) leaves exactly old-or-new, never a mixture.

    On abort the staging area is untouched (the merge can be retried)
    and, when the flight recorder is on, exactly one black box is
    dumped for the failure.  On success the store resets to the new
    base and superseded version directories are retired.
    """
    root = pathlib.Path(root)
    root.mkdir(parents=True, exist_ok=True)
    current = read_current_version(root)
    next_index = int(current[1:]) + 1 if current else 1
    version = f"v{next_index:04d}"
    label = governance.label if governance is not None else None
    flight.record(
        "write.merge.begin",
        label,
        table=table.schema.name,
        staged=len(store),
        deleted=store.deletes.count(),
        version=version,
    )
    started = time.perf_counter()
    store.begin_merge()
    flipped = False
    try:
        new_table = store.rebuild(table, loader, verify, governance)
        target = root / version
        if target.exists():
            shutil.rmtree(target)  # leftover from a crashed attempt
        save_table(new_table, target, crash_hook=crash_hook)
        _flip_current(root, version)
        flipped = True
        if crash_hook is not None:
            crash_hook("current.written")
    except BaseException as exc:
        store.end_merge()
        if flipped:
            # The manifest flip is the commit point: the merge IS
            # durable, so a surviving process must not retry it —
            # align the in-memory store with the new on-disk base.
            store.reset(new_table.num_rows)
        flight.record(
            "write.merge.abort", label, version=version, error=type(exc).__name__
        )
        if flight.enabled():
            flight.RECORDER.dump_blackbox(
                f"merge {table.schema.name} -> {version}", error=exc
            )
        if obs_metrics.enabled():
            obs_metrics.WRITE_MERGE_ABORTS.inc()
        raise
    store.end_merge()
    store.reset(new_table.num_rows)
    flight.record(
        "write.merge.commit", label, version=version, rows=new_table.num_rows
    )
    if obs_metrics.enabled():
        obs_metrics.WRITE_MERGES.inc()
        obs_metrics.WRITE_MERGE_SECONDS.observe(time.perf_counter() - started)
    for child in root.iterdir():
        if child.is_dir() and child.name != version and not child.name.startswith("."):
            shutil.rmtree(child, ignore_errors=True)
    return new_table, root / version
