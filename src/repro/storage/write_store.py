"""Write-optimized staging store and merge (the Figure 1 left-hand box).

The paper assumes updates land in a *write-optimized store* and are
periodically moved in bulk into the read-optimized store (the design
C-Store uses).  The paper itself only measures the read store; this
component is included so the library is usable end to end: inserts
accumulate in row-major order in memory, and ``merge_into`` rebuilds the
read store with the staged tuples appended, preserving each table's sort
order when a sort key is declared.
"""

from __future__ import annotations

import numpy as np

from repro.data.generator import GeneratedTable
from repro.errors import SchemaError, StorageError
from repro.storage.layout import Layout
from repro.storage.loader import BulkLoader
from repro.storage.table import Table
from repro.types.schema import TableSchema


class WriteOptimizedStore:
    """In-memory staging area for inserts into one table."""

    def __init__(self, schema: TableSchema, sort_key: str | None = None):
        self.schema = schema
        if sort_key is not None:
            schema.attribute(sort_key)  # validates
        self.sort_key = sort_key
        self._staged: list[tuple] = []

    def __len__(self) -> int:
        return len(self._staged)

    @property
    def is_empty(self) -> bool:
        return not self._staged

    def insert(self, row: tuple) -> None:
        """Stage one tuple (in schema attribute order)."""
        if len(row) != len(self.schema):
            raise SchemaError(
                f"tuple of {len(row)} values for {len(self.schema)}-attribute "
                f"table {self.schema.name!r}"
            )
        self._staged.append(tuple(row))

    def insert_many(self, rows: list[tuple]) -> None:
        """Stage a batch of tuples."""
        for row in rows:
            self.insert(row)

    def staged_columns(self) -> dict[str, np.ndarray]:
        """The staged tuples as columns (empty dict when nothing staged)."""
        if not self._staged:
            return {}
        columns = {}
        for index, attr in enumerate(self.schema):
            raw = [row[index] for row in self._staged]
            columns[attr.name] = np.asarray(raw, dtype=attr.attr_type.numpy_dtype())
        return columns

    def merge_into(
        self,
        table: Table,
        loader: BulkLoader | None = None,
        verify: bool = False,
    ) -> Table:
        """Rebuild the read store with the staged tuples merged in.

        Returns a new table of the same layout; the staging area is
        cleared.  With a ``sort_key``, the combined data is re-sorted on
        it (stable), matching the read store's clustering.  With
        ``verify=True`` the rebuilt table is integrity-swept before it
        replaces the old one, so a merge can never install corrupt
        pages.
        """
        if table.schema.attribute_names != self.schema.attribute_names:
            raise StorageError(
                f"cannot merge {self.schema.name!r} staging into table "
                f"{table.schema.name!r}: schemas differ"
            )
        loader = loader or BulkLoader(page_size=table.page_size, verify=verify)
        existing = table.columns_dict()
        staged = self.staged_columns()
        if staged:
            merged = {
                name: np.concatenate([existing[name], staged[name]])
                for name in self.schema.attribute_names
            }
        else:
            merged = existing
        if self.sort_key is not None:
            order = np.argsort(merged[self.sort_key], kind="stable")
            merged = {name: col[order] for name, col in merged.items()}
        data = GeneratedTable(schema=table.schema, columns=merged)
        layout = Layout.ROW if table.layout is Layout.ROW else Layout.COLUMN
        self._staged.clear()
        return loader.load(data, layout)
