"""Table 1 — expected performance trends, verified empirically.

The paper's Table 1 states, per parameter, whether disk, memory, and
CPU time go up or down.  This experiment measures each pair of
configurations and checks the observed direction of every arrow.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.engine.query import ScanQuery
from repro.experiments.config import (
    DEFAULT_EXECUTED_ROWS,
    CompetingTraffic,
    ExperimentConfig,
)
from repro.experiments.report import ExperimentOutput, FigureResult
from repro.experiments.runner import ScanMeasurement, measure_scan
from repro.experiments.workloads import prepare_lineitem, prepare_orders


@dataclass(frozen=True)
class TrendCheck:
    """One Table 1 row: a parameter change and its observed effect."""

    parameter: str
    expectation: str
    disk_before: float
    disk_after: float
    mem_before: float
    mem_after: float
    cpu_before: float
    cpu_after: float
    holds: bool


def _mem_lines(measurement: ScanMeasurement) -> float:
    events = measurement.events
    return float(events.mem_seq_lines + events.mem_rand_lines)


def run(
    num_rows: int = DEFAULT_EXECUTED_ROWS,
    config: ExperimentConfig | None = None,
) -> ExperimentOutput:
    """Regenerate Table 1's trend directions."""
    config = config or ExperimentConfig()
    orders = prepare_orders(num_rows)
    orders_z = prepare_orders(num_rows, compressed=True)
    lineitem = prepare_lineitem(num_rows)
    pred10 = orders.predicate("O_ORDERDATE", 0.10)
    pred01 = orders.predicate("O_ORDERDATE", 0.001)

    def orders_query(k: int, predicate) -> ScanQuery:
        return ScanQuery(
            "ORDERS", select=orders.attrs_prefix(k), predicates=(predicate,)
        )

    checks: list[TrendCheck] = []

    def record(parameter, expectation, before, after, holds_fn):
        checks.append(
            TrendCheck(
                parameter=parameter,
                expectation=expectation,
                disk_before=before.io_elapsed,
                disk_after=after.io_elapsed,
                mem_before=_mem_lines(before),
                mem_after=_mem_lines(after),
                cpu_before=before.cpu.user,
                cpu_after=after.cpu.user,
                holds=holds_fn(before, after),
            )
        )

    # 1. Selecting more attributes (column store only): everything up.
    few = measure_scan(orders.column, orders_query(2, pred10), config)
    many = measure_scan(orders.column, orders_query(7, pred10), config)
    record(
        "selecting more attributes (column)",
        "disk up, mem up, cpu up",
        few,
        many,
        lambda b, a: a.io_elapsed > b.io_elapsed
        and _mem_lines(a) > _mem_lines(b)
        and a.cpu.user > b.cpu.user,
    )

    # 2. Decreased selectivity: CPU down (column store).
    sel_hi = measure_scan(orders.column, orders_query(7, pred10), config)
    sel_lo = measure_scan(orders.column, orders_query(7, pred01), config)
    record(
        "decreased selectivity (column)",
        "cpu down, disk unchanged",
        sel_hi,
        sel_lo,
        lambda b, a: a.cpu.user < b.cpu.user
        and abs(a.io_elapsed - b.io_elapsed) < 1e-9,
    )

    # 3. Narrower tuples: disk, mem, and sys down (row store, full scan).
    li_pred = lineitem.predicate("L_PARTKEY", 0.10)
    wide = measure_scan(
        lineitem.row,
        ScanQuery(
            "LINEITEM",
            select=lineitem.attrs_prefix(len(lineitem.schema)),
            predicates=(li_pred,),
        ),
        config,
    )
    narrow = measure_scan(orders.row, orders_query(7, pred10), config)
    record(
        "narrower tuples (row)",
        "disk down, mem down, cpu(sys) down",
        wide,
        narrow,
        lambda b, a: a.io_elapsed < b.io_elapsed
        and _mem_lines(a) < _mem_lines(b)
        and a.cpu.sys < b.cpu.sys,
    )

    # 4. Compression: disk and mem down, user CPU up (column store).
    plain = measure_scan(orders.column, orders_query(7, pred10), config)
    packed = measure_scan(
        orders_z.column,
        ScanQuery(
            orders_z.schema.name,
            select=orders_z.attrs_prefix(7),
            predicates=(orders_z.predicate("O_ORDERDATE", 0.10),),
        ),
        config,
    )
    record(
        "compression (column)",
        "disk down, mem down, cpu(user compute) up",
        plain,
        packed,
        lambda b, a: a.io_elapsed < b.io_elapsed
        and _mem_lines(a) < _mem_lines(b)
        and (a.cpu.usr_uop + a.cpu.usr_rest) > (b.cpu.usr_uop + b.cpu.usr_rest),
    )

    # 5. Larger prefetch: disk down (column store, multi-file scan).
    small_pf = measure_scan(
        orders.column, orders_query(7, pred10), config.with_(prefetch_depth=2)
    )
    large_pf = measure_scan(
        orders.column, orders_query(7, pred10), config.with_(prefetch_depth=48)
    )
    record(
        "larger prefetch (column)",
        "disk down",
        small_pf,
        large_pf,
        lambda b, a: a.io_elapsed < b.io_elapsed,
    )

    # 6. More disk traffic: disk up.
    competitor_bytes = sum(
        lineitem.row.file_sizes_for([], cardinality=config.cardinality).values()
    )
    busy = measure_scan(
        orders.column,
        orders_query(7, pred10),
        config.with_(competing=CompetingTraffic(file_bytes=competitor_bytes)),
    )
    record(
        "more disk traffic",
        "disk up",
        plain,
        busy,
        lambda b, a: a.io_elapsed > b.io_elapsed,
    )

    table = FigureResult(
        title="Table 1: expected trends vs observed measurements",
        headers=[
            "parameter",
            "expected",
            "disk (s)",
            "mem (lines)",
            "cpu-user (s)",
            "holds",
        ],
    )
    for check in checks:
        table.add_row(
            check.parameter,
            check.expectation,
            f"{check.disk_before:.2f} -> {check.disk_after:.2f}",
            f"{check.mem_before:.3g} -> {check.mem_after:.3g}",
            f"{check.cpu_before:.2f} -> {check.cpu_after:.2f}",
            "yes" if check.holds else "NO",
        )
    return ExperimentOutput(
        name="Table 1: performance-trend verification",
        tables=[table],
        series={"holds": [1.0 if c.holds else 0.0 for c in checks]},
    )
