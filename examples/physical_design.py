#!/usr/bin/env python3
"""Physical design: compression advisor, MV advisor, layout advisor.

The Figure 1 architecture surrounds the read-optimized store with
design-time advisors.  This example runs all three against a workload:

1. the **compression advisor** picks a light-weight scheme per column
   and reports the achieved tuple width (compare with Figure 5's
   ORDERS-Z: 12 bytes);
2. the **MV advisor** proposes vertical partitions from the queries'
   attribute co-occurrence;
3. the **layout advisor** uses the Section 5 analytical model to
   recommend row vs column storage for the workload on two machines
   (the paper's 18-cpdb testbed and a CPU-starved 9-cpdb box).

Run with::

    python examples/physical_design.py
"""

from repro import ScanQuery, generate_orders, predicate_for_selectivity
from repro.compression import CompressionAdvisor
from repro.design import LayoutAdvisor, MaterializedViewAdvisor
from repro.units import bits_to_bytes


def main() -> None:
    orders = generate_orders(8_000, seed=3)
    schema = orders.schema

    # --- 1. compression advisor -------------------------------------------
    advisor = CompressionAdvisor(prefer_cheap_decode=False)
    attr_types = {attr.name: attr.attr_type for attr in schema}
    specs = advisor.advise(attr_types, orders.columns)
    compressed = schema.with_codecs(specs)
    print("compression advisor choices:")
    for attr in compressed:
        print(f"  {attr.describe()}")
    print(
        f"tuple: {schema.tuple_width} bytes -> "
        f"{bits_to_bytes(compressed.packed_tuple_bits)} bytes packed "
        f"({compressed.packed_tuple_bits} bits; Figure 5's ORDERS-Z is 12 bytes)\n"
    )

    # --- 2. the workload ------------------------------------------------------
    recent = predicate_for_selectivity(
        "O_ORDERDATE", orders.column("O_ORDERDATE"), 0.10
    )
    workload = [
        ScanQuery("ORDERS", select=("O_ORDERDATE", "O_TOTALPRICE"),
                  predicates=(recent,)),
        ScanQuery("ORDERS", select=("O_ORDERDATE", "O_ORDERPRIORITY",
                                    "O_TOTALPRICE"), predicates=(recent,)),
        ScanQuery("ORDERS", select=("O_ORDERKEY", "O_CUSTKEY")),
    ]
    print("workload:")
    for query in workload:
        print(f"  {query.describe()}")
    print()

    # --- 3. MV advisor ---------------------------------------------------------
    mv_advisor = MaterializedViewAdvisor(schema)
    print("materialized-view candidates (vertical partitions):")
    for view in mv_advisor.advise(workload):
        print(
            f"  {view.attributes}  covers {view.coverage:.0%} of scans, "
            f"stores {view.view_width}/{view.base_width} bytes per tuple "
            f"(saves {view.bytes_saved_fraction:.0%} of I/O)"
        )
    print()

    # --- 4. layout advisor -------------------------------------------------------
    layout_advisor = LayoutAdvisor()
    selectivities = [0.10, 0.10, 1.00]
    pairs = list(zip(workload, selectivities))
    for cpdb, label in ((18.0, "paper testbed, 18 cpdb"),
                        (9.0, "CPU-starved box, 9 cpdb"),
                        (108.0, "modern desktop, 108 cpdb")):
        recommendation = layout_advisor.recommend(schema, pairs, cpdb=cpdb)
        print(f"[{label}]")
        print(recommendation.describe())
        print()


if __name__ == "__main__":
    main()
