"""Deterministic TPC-H-like data generation (the dbgen substitute).

The paper populates its two tables with the official TPC-H toolkit; this
package generates synthetic data with the same per-column domains and
cardinalities, so the Figure 5 compressed widths — and therefore every
bandwidth-related result — are reproduced.  Generation is fully
deterministic given a seed.
"""

from repro.data.generator import GeneratedTable
from repro.data.synthetic import synthetic_table, tuple_width_table
from repro.data.tpch import (
    apply_fig5_compression,
    generate_lineitem,
    generate_orders,
    generate_tpch_pair,
    lineitem_schema,
    orders_schema,
)

__all__ = [
    "GeneratedTable",
    "synthetic_table",
    "tuple_width_table",
    "lineitem_schema",
    "orders_schema",
    "generate_lineitem",
    "generate_orders",
    "generate_tpch_pair",
    "apply_fig5_compression",
]
