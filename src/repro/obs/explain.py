"""EXPLAIN ANALYZE rendering: a span tree as an annotated plan.

Turns the :class:`~repro.obs.trace.SpanTracer` output into the familiar
text shape::

    EXPLAIN ANALYZE  (wall 2.41 ms, 3 operators)
    SortAggregate  [sum(L_QUANTITY) group by L_SHIPMODE]
    |  wall 2.41 ms (self 0.43 ms) | next() x2 | blocks 1 | rows 7
    |  events: agg_updates=400 group_lookups=400 ...
    '- SortOperator  [key=L_SHIPMODE]
       |  ...

Wall times are inclusive (like PostgreSQL's ``actual time``); the
``events:`` line is the node's **exclusive** work, so the event lines
over the whole tree sum to the query total.
"""

from __future__ import annotations

from repro.obs.trace import OperatorSpan, SpanTracer

__all__ = ["render_explain", "format_ns"]


def format_ns(ns: int | float) -> str:
    """A duration with a unit that keeps 3-4 significant digits."""
    ns = float(ns)
    if abs(ns) < 1_000:
        return f"{ns:.0f} ns"
    if abs(ns) < 1_000_000:
        return f"{ns / 1_000:.2f} us"
    if abs(ns) < 1_000_000_000:
        return f"{ns / 1_000_000:.2f} ms"
    return f"{ns / 1_000_000_000:.3f} s"


def _events_line(span: OperatorSpan) -> str:
    items = [
        (name, value)
        for name, value in span.events.as_dict().items()
        if value
    ]
    if not items:
        return "events: (none)"
    items.sort(key=lambda pair: (-abs(pair[1]), pair[0]))
    return "events: " + " ".join(f"{name}={value:,}" for name, value in items)


def _span_lines(span: OperatorSpan) -> list[str]:
    header = f"{span.name}"
    if span.detail:
        header += f"  [{span.detail}]"
    timing = (
        f"wall {format_ns(span.wall_ns)} (self {format_ns(span.self_ns)})"
        f" | next() x{span.next_calls}"
        f" | blocks {span.blocks} | rows {span.rows:,}"
    )
    return [header, f"|  {timing}", f"|  {_events_line(span)}"]


def _render_tree(span: OperatorSpan, prefix: str, connector: str, out: list[str]) -> None:
    lines = _span_lines(span)
    out.append(prefix + connector + lines[0])
    if connector == "+- ":
        body = prefix + "|  "
    elif connector == "'- ":
        body = prefix + "   "
    else:
        body = prefix
    for line in lines[1:]:
        out.append(body + line)
    for index, child in enumerate(span.children):
        last = index == len(span.children) - 1
        _render_tree(child, body, "'- " if last else "+- ", out)


def render_explain(source: SpanTracer | OperatorSpan | list[OperatorSpan]) -> str:
    """EXPLAIN ANALYZE text for a tracer or a (list of) root span(s)."""
    if isinstance(source, SpanTracer):
        roots = source.roots
        total_ns = source.total_wall_ns
    elif isinstance(source, OperatorSpan):
        roots = [source]
        total_ns = source.wall_ns
    else:
        roots = list(source)
        total_ns = sum(root.wall_ns for root in roots)
    if not roots:
        return "EXPLAIN ANALYZE  (no spans recorded)"
    count = sum(1 for root in roots for _ in root.walk())
    out = [
        f"EXPLAIN ANALYZE  (wall {format_ns(total_ns)}, "
        f"{count} operator{'s' if count != 1 else ''})"
    ]
    for root in roots:
        _render_tree(root, "", "", out)
    return "\n".join(out)
