"""Micro-benchmarks of the real Python engine (wall-clock).

Unlike the figure benches (which time one regeneration of a simulated
experiment), these measure the actual data path repeatedly: codec
throughput and scanner throughput on materialized pages.  Useful for
tracking regressions in the engine implementation itself.
"""

import numpy as np
import pytest

from repro.compression.base import CodecKind
from repro.compression.registry import build_codec_for_values
from repro.data.tpch import generate_lineitem
from repro.engine.executor import run_scan
from repro.engine.plan import ColumnScannerKind
from repro.engine.predicate import predicate_for_selectivity
from repro.engine.query import ScanQuery
from repro.storage.layout import Layout
from repro.storage.loader import load_table
from repro.types.datatypes import IntType

ROWS = 4_000


@pytest.fixture(scope="module")
def data():
    return generate_lineitem(ROWS, seed=5)


@pytest.fixture(scope="module")
def row_table(data):
    return load_table(data, Layout.ROW)


@pytest.fixture(scope="module")
def column_table(data):
    return load_table(data, Layout.COLUMN)


@pytest.fixture(scope="module")
def scan_query(data):
    predicate = predicate_for_selectivity(
        "L_PARTKEY", data.column("L_PARTKEY"), 0.10
    )
    return ScanQuery(
        "LINEITEM",
        select=("L_PARTKEY", "L_ORDERKEY", "L_QUANTITY", "L_SHIPMODE"),
        predicates=(predicate,),
    )


@pytest.mark.parametrize(
    "kind",
    [CodecKind.PACK, CodecKind.DICT, CodecKind.FOR, CodecKind.FOR_DELTA],
    ids=lambda kind: kind.value,
)
def bench_codec_roundtrip(benchmark, kind):
    values = np.cumsum(np.ones(4_000, dtype=np.int64)) % 1_000 + 1
    codec = build_codec_for_values(kind, IntType(), values, page_capacity_hint=4_000)

    def roundtrip():
        payload, state = codec.encode_page(values)
        return codec.decode_page(payload, len(values), state)

    out = benchmark(roundtrip)
    np.testing.assert_array_equal(out, values)


def bench_row_scan(benchmark, row_table, scan_query):
    result = benchmark(lambda: run_scan(row_table, scan_query))
    assert result.num_tuples > 0


def bench_column_scan_pipelined(benchmark, column_table, scan_query):
    result = benchmark(lambda: run_scan(column_table, scan_query))
    assert result.num_tuples > 0


def bench_column_scan_fused(benchmark, column_table, scan_query):
    result = benchmark(
        lambda: run_scan(
            column_table, scan_query, column_scanner=ColumnScannerKind.FUSED
        )
    )
    assert result.num_tuples > 0


def bench_bulk_load_column(benchmark, data):
    table = benchmark(lambda: load_table(data, Layout.COLUMN))
    assert table.num_rows == ROWS
