"""Parallel execution must be byte-identical to serial — and the oracle.

The full matrix: every scanner architecture (row, PAX, column
pipelined, column fused) x workers {1, 2, 4} x partition counts
{1, 3, 7} (7 does not divide the row count, so splits are uneven), for
plain scans, aggregates (hash and sort-based, every function,
multi-key group-by), multi-key sorted output, LIMIT, and top-N with
duplicate keys.  Each parallel answer is compared against the serial
engine *and* against the pure-Python oracle from the differential
suite, so a bug shared by both engine paths still gets caught.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.data.tpch import generate_orders
from repro.engine.context import ExecutionContext
from repro.engine.executor import execute_plan, run_scan
from repro.engine.operators.limit import Limit, TopN
from repro.engine.operators.sort import SortOperator
from repro.engine.parallel import parallel_query
from repro.engine.plan import ColumnScannerKind, aggregate_plan, scan_plan
from repro.engine.predicate import predicate_for_selectivity
from repro.engine.query import AggregateFunction, AggregateSpec, ScanQuery
from repro.errors import PlanError
from repro.storage.layout import Layout
from repro.storage.loader import load_table
from repro.storage.partition import PartitionedTable
from repro.testing.oracle import oracle_aggregate, oracle_scan, pyvalue

ROWS = 900  # not divisible by 7: the uneven-partition case is real

ARCHITECTURES = (
    ("row", Layout.ROW, ColumnScannerKind.PIPELINED),
    ("pax", Layout.PAX, ColumnScannerKind.PIPELINED),
    ("column", Layout.COLUMN, ColumnScannerKind.PIPELINED),
    ("fused", Layout.COLUMN, ColumnScannerKind.FUSED),
)

# CI pins the matrix to one worker count (REPRO_TEST_WORKERS=2) so the
# pool size is deterministic on shared runners; locally all three run.
_PINNED = os.environ.get("REPRO_TEST_WORKERS")
WORKER_COUNTS = (int(_PINNED),) if _PINNED else (1, 2, 4)
PARTITION_COUNTS = (1, 3, 7)


@pytest.fixture(scope="module")
def data():
    return generate_orders(ROWS, seed=23)


@pytest.fixture(scope="module")
def tables(data):
    return {
        name: load_table(data, layout)
        for name, layout, _kind in ARCHITECTURES
        if name != "fused"
    } | {"fused": None}  # fused shares the column table


def _table(tables, name):
    return tables["column"] if name == "fused" else tables[name]


@pytest.fixture(scope="module")
def query(data):
    predicate = predicate_for_selectivity(
        "O_TOTALPRICE", data.column("O_TOTALPRICE"), 0.35
    )
    return ScanQuery(
        "ORDERS",
        select=("O_ORDERKEY", "O_TOTALPRICE", "O_ORDERSTATUS"),
        predicates=(predicate,),
    )


def assert_results_equal(got, want, label=""):
    assert np.array_equal(got.positions, want.positions), label
    assert set(got.columns) == set(want.columns), label
    for name in want.columns:
        assert got.columns[name].dtype == want.columns[name].dtype, (label, name)
        assert np.array_equal(got.columns[name], want.columns[name]), (label, name)


def assert_matches_oracle(result, expected):
    assert result.positions.tolist() == expected.positions
    got = [
        tuple(pyvalue(v) for v in row)
        for row in zip(*(result.columns[n].tolist() for n in expected.names))
    ] if expected.names else []
    assert got == expected.rows


class TestScanMatrix:
    @pytest.mark.parametrize("arch,layout,kind", ARCHITECTURES)
    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    @pytest.mark.parametrize("partitions", PARTITION_COUNTS)
    def test_parallel_equals_serial_and_oracle(
        self, data, tables, query, arch, layout, kind, workers, partitions
    ):
        table = _table(tables, arch)
        serial = run_scan(table, query, column_scanner=kind)
        parallel = parallel_query(
            table, query, workers=workers, partitions=partitions, column_scanner=kind
        )
        assert_results_equal(parallel, serial, (arch, workers, partitions))
        assert_matches_oracle(parallel, oracle_scan(data, query))


class TestEdgeCases:
    @pytest.mark.parametrize("arch,layout,kind", ARCHITECTURES)
    def test_empty_table(self, arch, layout, kind):
        from repro.data.generator import GeneratedTable
        from repro.types.datatypes import IntType
        from repro.types.schema import Attribute, TableSchema

        schema = TableSchema(
            name="ORDERS", attributes=(Attribute("O_ORDERKEY", IntType()),)
        )
        data = GeneratedTable(
            schema=schema, columns={"O_ORDERKEY": np.zeros(0, dtype=np.int64)}
        )
        table = load_table(data, layout)
        query = ScanQuery("ORDERS", select=("O_ORDERKEY",))
        serial = run_scan(table, query, column_scanner=kind)
        parallel = parallel_query(
            table, query, workers=2, partitions=3, column_scanner=kind
        )
        assert parallel.num_tuples == 0
        # Output schema survives through the gather of empty partitions.
        assert set(parallel.columns) == set(serial.columns) == {"O_ORDERKEY"}

    @pytest.mark.parametrize("arch,layout,kind", ARCHITECTURES)
    def test_single_row_table_with_empty_partitions(self, arch, layout, kind):
        data = generate_orders(1, seed=2)
        table = load_table(data, layout)
        query = ScanQuery("ORDERS", select=("O_ORDERKEY", "O_TOTALPRICE"))
        serial = run_scan(table, query, column_scanner=kind)
        # 4 partitions over 1 row: three of them are empty.
        parallel = parallel_query(
            table, query, workers=2, partitions=4, column_scanner=kind
        )
        assert_results_equal(parallel, serial, arch)

    def test_more_partitions_than_rows(self, tables, query):
        table = tables["row"]
        serial = run_scan(table, query)
        parallel = parallel_query(table, query, workers=2, partitions=ROWS + 13)
        assert_results_equal(parallel, serial)

    @pytest.mark.parametrize("arch,layout,kind", ARCHITECTURES)
    def test_zero_selectivity(self, data, tables, arch, layout, kind):
        table = _table(tables, arch)
        predicate = predicate_for_selectivity(
            "O_TOTALPRICE", data.column("O_TOTALPRICE"), 0.0
        )
        query = ScanQuery(
            "ORDERS", select=("O_ORDERKEY",), predicates=(predicate,)
        )
        serial = run_scan(table, query, column_scanner=kind)
        parallel = parallel_query(
            table, query, workers=2, partitions=3, column_scanner=kind
        )
        assert parallel.num_tuples == serial.num_tuples == 0
        assert set(parallel.columns) == set(serial.columns)


class TestLimit:
    @pytest.mark.parametrize("arch,layout,kind", ARCHITECTURES)
    @pytest.mark.parametrize("count", (0, 1, 37, ROWS + 5))
    def test_limit_spans_partition_boundaries(
        self, tables, query, arch, layout, kind, count
    ):
        table = _table(tables, arch)
        context = ExecutionContext()
        serial = execute_plan(
            Limit(context, scan_plan(context, table, query, kind), count)
        )
        parallel = parallel_query(
            table, query, workers=2, partitions=3, column_scanner=kind, limit=count
        )
        assert_results_equal(parallel, serial, (arch, count))


class TestSortedOutput:
    @pytest.mark.parametrize("arch,layout,kind", ARCHITECTURES)
    @pytest.mark.parametrize("partitions", PARTITION_COUNTS)
    def test_multi_key_sort_merges_identically(
        self, tables, query, arch, layout, kind, partitions
    ):
        # O_ORDERSTATUS has few distinct values: plenty of ties whose
        # order must survive the k-way merge.
        keys = ("O_ORDERSTATUS", "O_TOTALPRICE")
        table = _table(tables, arch)
        context = ExecutionContext()
        plan = scan_plan(context, table, query, kind)
        for key in reversed(keys):
            plan = SortOperator(context, plan, key=key)
        serial = execute_plan(plan)
        parallel = parallel_query(
            table,
            query,
            workers=2,
            partitions=partitions,
            column_scanner=kind,
            order_by=keys,
        )
        assert_results_equal(parallel, serial, (arch, partitions))

    def test_sorted_with_limit(self, tables, query):
        table = tables["column"]
        context = ExecutionContext()
        plan = SortOperator(
            context, scan_plan(context, table, query, ColumnScannerKind.PIPELINED),
            key="O_TOTALPRICE",
        )
        serial = execute_plan(Limit(context, plan, 19))
        parallel = parallel_query(
            table, query, workers=2, partitions=3,
            order_by=("O_TOTALPRICE",), limit=19,
        )
        assert_results_equal(parallel, serial)


class TestTopN:
    @pytest.mark.parametrize("arch,layout,kind", ARCHITECTURES)
    @pytest.mark.parametrize("descending", (False, True))
    def test_topn_tie_breaking_matches_serial(
        self, tables, query, arch, layout, kind, descending
    ):
        # The key is the low-cardinality status column, so the top-17
        # is decided almost entirely by tie-breaking on row order.
        table = _table(tables, arch)
        context = ExecutionContext()
        serial = execute_plan(
            TopN(
                context,
                scan_plan(context, table, query, kind),
                key="O_ORDERSTATUS",
                count=17,
                descending=descending,
            )
        )
        parallel = parallel_query(
            table,
            query,
            workers=2,
            partitions=4,
            column_scanner=kind,
            topn=("O_ORDERSTATUS", 17, descending),
        )
        assert_results_equal(parallel, serial, (arch, descending))


class TestAggregates:
    FUNCTIONS = (
        (AggregateFunction.COUNT, None),
        (AggregateFunction.SUM, "O_TOTALPRICE"),
        (AggregateFunction.MIN, "O_TOTALPRICE"),
        (AggregateFunction.MAX, "O_TOTALPRICE"),
        (AggregateFunction.AVG, "O_TOTALPRICE"),
    )

    @pytest.mark.parametrize("arch,layout,kind", ARCHITECTURES)
    @pytest.mark.parametrize("function,argument", FUNCTIONS)
    @pytest.mark.parametrize("partitions", PARTITION_COUNTS)
    def test_grouped_aggregate_matrix(
        self, data, tables, query, arch, layout, kind, function, argument, partitions
    ):
        spec = AggregateSpec(("O_ORDERSTATUS",), function, argument)
        table = _table(tables, arch)
        context = ExecutionContext()
        serial = execute_plan(
            aggregate_plan(context, table, query, spec, column_scanner=kind)
        )
        parallel = parallel_query(
            table,
            query,
            workers=2,
            partitions=partitions,
            column_scanner=kind,
            aggregate=spec,
        )
        assert_results_equal(parallel, serial, (arch, function, partitions))
        # And against the oracle (sorted multisets — group order is an
        # engine implementation detail the oracle does not model).
        expected = oracle_aggregate(data, query, spec)
        got = sorted(
            tuple(pyvalue(v) for v in row)
            for row in zip(*(parallel.columns[n].tolist() for n in expected.names))
        )
        want = sorted(expected.rows)
        assert len(got) == len(want)
        for g, w in zip(got, want):
            assert g[:-1] == w[:-1]
            assert g[-1] == pytest.approx(w[-1])

    @pytest.mark.parametrize("arch,layout,kind", ARCHITECTURES)
    def test_multi_key_group_by(self, tables, arch, layout, kind):
        query = ScanQuery(
            "ORDERS",
            select=("O_ORDERSTATUS", "O_ORDERPRIORITY", "O_TOTALPRICE"),
        )
        spec = AggregateSpec(
            ("O_ORDERSTATUS", "O_ORDERPRIORITY"),
            AggregateFunction.SUM,
            "O_TOTALPRICE",
        )
        table = _table(tables, arch)
        context = ExecutionContext()
        serial = execute_plan(
            aggregate_plan(context, table, query, spec, column_scanner=kind)
        )
        parallel = parallel_query(
            table, query, workers=2, partitions=3, column_scanner=kind, aggregate=spec
        )
        assert_results_equal(parallel, serial, arch)

    def test_sort_based_aggregate(self, tables, query):
        spec = AggregateSpec(
            ("O_ORDERSTATUS",), AggregateFunction.AVG, "O_TOTALPRICE"
        )
        table = tables["row"]
        context = ExecutionContext()
        serial = execute_plan(
            aggregate_plan(context, table, query, spec, sort_based=True)
        )
        parallel = parallel_query(
            table, query, workers=2, partitions=3, aggregate=spec, sort_based=True
        )
        assert_results_equal(parallel, serial)

    def test_ungrouped_aggregate(self, tables, query):
        spec = AggregateSpec((), AggregateFunction.SUM, "O_TOTALPRICE")
        table = tables["row"]
        context = ExecutionContext()
        serial = execute_plan(aggregate_plan(context, table, query, spec))
        parallel = parallel_query(
            table, query, workers=2, partitions=7, aggregate=spec
        )
        assert_results_equal(parallel, serial)


class TestPhysicalPartitions:
    @pytest.mark.parametrize("layout", (Layout.ROW, Layout.COLUMN))
    def test_partitioned_table_equals_monolithic(self, data, query, layout):
        ptable = PartitionedTable.from_data(data, layout, 3)
        mono = load_table(data, layout)
        serial = run_scan(mono, query)
        parallel = parallel_query(ptable, query, workers=2)
        assert_results_equal(parallel, serial, layout)

    def test_saved_partitioned_table_round_trips(self, tmp_path, data, query):
        from repro.storage.persist import (
            open_partitioned_table,
            save_partitioned_table,
        )

        ptable = PartitionedTable.from_data(data, Layout.ROW, 4)
        save_partitioned_table(ptable, tmp_path / "orders")
        reopened = open_partitioned_table(tmp_path / "orders")
        serial = run_scan(load_table(data, Layout.ROW), query)
        parallel = parallel_query(reopened, query, workers=2)
        assert_results_equal(parallel, serial)


class TestApiConstraints:
    def test_conflicting_shapes_rejected(self, tables, query):
        table = tables["row"]
        spec = AggregateSpec((), AggregateFunction.COUNT, None)
        with pytest.raises(PlanError):
            parallel_query(table, query, aggregate=spec, order_by=("O_ORDERKEY",))
        with pytest.raises(PlanError):
            parallel_query(table, query, aggregate=spec, topn=("O_ORDERKEY", 3, False))
        with pytest.raises(PlanError):
            parallel_query(
                table, query, order_by=("O_ORDERKEY",), topn=("O_ORDERKEY", 3, False)
            )
        with pytest.raises(PlanError):
            parallel_query(table, query, aggregate=spec, limit=5)
        with pytest.raises(PlanError):
            parallel_query(table, query, workers=0)

    def test_database_facade_routes_workers(self, data):
        from repro.database import Database

        db = Database()
        db.create_table(data)
        serial = db.query("ORDERS", select=("O_ORDERKEY", "O_TOTALPRICE"))
        parallel = db.query(
            "ORDERS", select=("O_ORDERKEY", "O_TOTALPRICE"), workers=2, partitions=3
        )
        assert_results_equal(parallel, serial)

    def test_info_reports_mode(self, tables, query):
        info = {}
        parallel_query(tables["row"], query, workers=2, partitions=3, info=info)
        assert info["mode"] == "parallel"
        assert info["partitions"] == 3
        info = {}
        parallel_query(tables["row"], query, workers=1, partitions=3, info=info)
        assert info["mode"] == "inline"


class TestMergeStability:
    """MergeSortedRuns must be stable on duplicate keys — regression.

    The merge used to tie-break by run index, which is only correct
    when runs arrive in partition order; a shared-scan or out-of-order
    delivery would silently reorder equal keys.  Ties now break by
    global position (Record ID), so the merged order is a property of
    the data alone.
    """

    @staticmethod
    def _run(positions, keys, payload):
        from repro.engine.blocks import Block

        return Block(
            columns={
                "K": np.asarray(keys, dtype=np.int64),
                "V": np.asarray(payload, dtype=np.int64),
            },
            positions=np.asarray(positions, dtype=np.int64),
        )

    def _merge(self, runs):
        from repro.engine.operators.gather import MergeSortedRuns

        op = MergeSortedRuns(ExecutionContext(), runs, keys=("K",))
        blocks = op.drain()
        from repro.engine.blocks import concat_blocks

        return concat_blocks(blocks)

    def test_duplicate_keys_come_out_in_record_id_order(self):
        # Two runs, all keys equal: output must be position order.
        a = self._run([0, 2, 4], [7, 7, 7], [10, 12, 14])
        b = self._run([1, 3, 5], [7, 7, 7], [11, 13, 15])
        merged = self._merge([a, b])
        assert merged.positions.tolist() == [0, 1, 2, 3, 4, 5]
        assert merged.column("V").tolist() == [10, 11, 12, 13, 14, 15]

    def test_order_independent_of_run_arrival(self):
        # Delivering the runs in the opposite order must not change
        # anything — the old run-index tie-break failed exactly here.
        a = self._run([0, 2, 4], [3, 7, 7], [10, 12, 14])
        b = self._run([1, 3, 5], [3, 3, 7], [11, 13, 15])
        forward = self._merge([a, b])
        backward = self._merge([b, a])
        assert forward.positions.tolist() == backward.positions.tolist()
        assert forward.column("V").tolist() == backward.column("V").tolist()
        # And both equal the stable sort of the concatenation.
        assert forward.positions.tolist() == [0, 1, 3, 2, 4, 5]

    def test_end_to_end_low_cardinality_order_by(self, tables, query):
        # O_SHIPPRIORITY has very few distinct values: the parallel
        # order-by is all ties, so stability is the whole answer.
        table = tables["column"]
        scan = ScanQuery(
            "ORDERS", select=("O_ORDERKEY", "O_SHIPPRIORITY"), predicates=()
        )
        context = ExecutionContext()
        plan = SortOperator(
            context,
            scan_plan(context, table, scan, ColumnScannerKind.PIPELINED),
            key="O_SHIPPRIORITY",
        )
        serial = execute_plan(plan)
        for partitions in PARTITION_COUNTS:
            parallel = parallel_query(
                table,
                scan,
                workers=2,
                partitions=partitions,
                order_by=("O_SHIPPRIORITY",),
            )
            assert_results_equal(parallel, serial, partitions)
