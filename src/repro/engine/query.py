"""Declarative query specs (the paper uses precompiled queries).

The experiments all instantiate one template::

    select A1, A2 ... from TABLE
    where predicate(A1) yields a chosen selectivity

plus optional aggregation on top.  :class:`ScanQuery` captures the
template; the plan builders in :mod:`repro.engine.plan` turn it into an
operator tree for either layout.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.engine.predicate import Predicate
from repro.errors import PlanError
from repro.types.schema import TableSchema


@dataclass(frozen=True)
class ScanQuery:
    """A projection + conjunctive SARGable selection over one table."""

    table: str
    select: tuple[str, ...]
    predicates: tuple[Predicate, ...] = field(default=())

    def __post_init__(self) -> None:
        if not self.select:
            raise PlanError("a query must select at least one attribute")
        if len(set(self.select)) != len(self.select):
            raise PlanError(f"duplicate attributes in select list: {self.select}")

    def validate_against(self, schema: TableSchema) -> None:
        """Check every referenced attribute exists."""
        for name in self.select:
            schema.attribute(name)
        for predicate in self.predicates:
            schema.attribute(predicate.attr)

    def scan_attributes(self) -> tuple[str, ...]:
        """Attributes the scan must read: selected plus predicate attrs.

        Predicate attributes are pushed to the front (the paper pushes
        selective scan nodes as deep as possible).
        """
        ordered = [p.attr for p in self.predicates if p.attr in self.select]
        ordered += [p.attr for p in self.predicates if p.attr not in self.select]
        ordered += [name for name in self.select if name not in ordered]
        # Preserve first occurrence only.
        seen: set[str] = set()
        unique = []
        for name in ordered:
            if name not in seen:
                seen.add(name)
                unique.append(name)
        return tuple(unique)

    def predicates_on(self, attr: str) -> tuple[Predicate, ...]:
        """The predicates bound to one attribute."""
        return tuple(p for p in self.predicates if p.attr == attr)

    def selected_width(self, schema: TableSchema) -> int:
        """Uncompressed bytes per tuple the query projects."""
        return sum(schema.attribute(name).width for name in self.select)

    def describe(self) -> str:
        where = " and ".join(p.describe() for p in self.predicates) or "true"
        return f"select {', '.join(self.select)} from {self.table} where {where}"


class AggregateFunction(enum.Enum):
    """Supported aggregate functions."""

    COUNT = "count"
    SUM = "sum"
    MIN = "min"
    MAX = "max"
    AVG = "avg"


@dataclass(frozen=True)
class AggregateSpec:
    """A grouped aggregation over a scan's output."""

    group_by: tuple[str, ...]
    function: AggregateFunction
    argument: str | None = None

    def __post_init__(self) -> None:
        needs_arg = self.function is not AggregateFunction.COUNT
        if needs_arg and self.argument is None:
            raise PlanError(f"{self.function.value} needs an argument attribute")

    def output_name(self) -> str:
        """The result column's name (``count`` / ``sum_X`` / ...)."""
        if self.function is AggregateFunction.COUNT:
            return "count"
        return f"{self.function.value}_{self.argument}"
