"""The FIFO disk-array controller event loop.

The array serves one I/O unit at a time in submission (FIFO) order.
A unit that is not contiguous with the previously served one — a
different file, a different offset, or another stream's data in
between — costs a head repositioning (seek) before the transfer.
Streams submit windows of units and refill when a window completes,
per their :class:`~repro.iosim.streams.SubmissionPolicy`.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field

from repro.cpusim.calibration import Calibration, DEFAULT_CALIBRATION
from repro.errors import SimulationError
from repro.iosim.request import IoRequest
from repro.iosim.streams import ScanStream
from repro.obs import metrics as obs_metrics


@dataclass(frozen=True)
class IoSlice:
    """One served I/O unit on the simulated clock (for trace export).

    Feed a list of these to :func:`repro.obs.export.chrome_trace` via
    ``io_slices=`` to see per-stream disk activity in Perfetto.
    """

    stream: str
    file: str
    start: float          #: simulated seconds (seek included)
    finish: float
    size_bytes: int
    seek_seconds: float   #: 0.0 when the unit was contiguous


@dataclass
class StreamStats:
    """Per-stream outcome of one simulation run."""

    name: str
    bytes_read: int = 0
    units: int = 0
    windows: int = 0
    switches: int = 0          #: served units that required a seek
    seek_seconds: float = 0.0
    transfer_seconds: float = 0.0
    start_time: float = 0.0
    finish_time: float = 0.0

    @property
    def elapsed(self) -> float:
        """Wall time from stream start to its last completed unit."""
        return self.finish_time - self.start_time

    @property
    def io_seconds(self) -> float:
        """Disk time spent on this stream's own requests."""
        return self.seek_seconds + self.transfer_seconds


@dataclass
class _StreamState:
    stream: ScanStream
    stats: StreamStats
    pending_windows: list = field(default_factory=list)  # reversed stack
    next_window_id: int = 0
    open_windows: dict[int, int] = field(default_factory=dict)  # id -> units left


class DiskArraySim:
    """Simulates one run of concurrent scan streams over the array."""

    def __init__(self, calibration: Calibration = DEFAULT_CALIBRATION):
        self.calibration = calibration

    @property
    def unit_bytes(self) -> int:
        """Array-wide transfer size of one I/O unit (striped)."""
        return self.calibration.io_unit_bytes * self.calibration.num_disks

    def transfer_seconds(self, size_bytes: int) -> float:
        return size_bytes / self.calibration.total_disk_bandwidth

    def run(
        self, streams: list[ScanStream], trace: list | None = None
    ) -> dict[str, StreamStats]:
        """Run all streams to completion; returns stats per stream.

        When ``trace`` is a list, one :class:`IoSlice` per served unit
        is appended to it (per-stream I/O spans on the simulated
        clock).
        """
        names = [s.name for s in streams]
        if len(set(names)) != len(names):
            raise SimulationError(f"duplicate stream names: {names}")
        states = {
            s.name: _StreamState(
                stream=s,
                stats=StreamStats(name=s.name, start_time=s.start_time),
                pending_windows=list(reversed(s.windows())),
            )
            for s in streams
        }

        seq = itertools.count()
        queue: list[tuple[float, int, IoRequest]] = []

        def submit_window(state: _StreamState, now: float) -> None:
            if not state.pending_windows:
                return
            window = state.pending_windows.pop()
            window_id = state.next_window_id
            state.next_window_id += 1
            units = window.unit_extents()
            state.open_windows[window_id] = len(units)
            state.stats.windows += 1
            for offset, size in units:
                request = IoRequest(
                    stream_name=state.stream.name,
                    file_name=window.file_name,
                    offset=offset,
                    size_bytes=size,
                    submit_time=now,
                    seq=next(seq),
                    window_id=window_id,
                )
                heapq.heappush(queue, (request.submit_time, request.seq, request))

        for state in states.values():
            for _ in range(state.stream.policy.windows_in_flight):
                submit_window(state, state.stream.start_time)

        server_time = 0.0
        last_file: str | None = None
        last_end_offset = -1

        while queue:
            _submit, _seq, request = heapq.heappop(queue)
            state = states[request.stream_name]
            start = max(server_time, request.submit_time)
            contiguous = (
                request.file_name == last_file
                and request.offset == last_end_offset
            )
            seek = 0.0 if contiguous else self.calibration.seek_seconds
            transfer = self.transfer_seconds(request.size_bytes)
            finish = start + seek + transfer
            request.start_time = start
            request.finish_time = finish

            stats = state.stats
            stats.bytes_read += request.size_bytes
            stats.units += 1
            if not contiguous:
                stats.switches += 1
            stats.seek_seconds += seek
            stats.transfer_seconds += transfer
            stats.finish_time = max(stats.finish_time, finish)

            if obs_metrics.enabled():
                obs_metrics.IO_UNITS.inc()
                obs_metrics.IO_BYTES.inc(request.size_bytes)
                if not contiguous:
                    obs_metrics.IO_SEEKS.inc()
            if trace is not None:
                trace.append(
                    IoSlice(
                        stream=request.stream_name,
                        file=request.file_name,
                        start=start,
                        finish=finish,
                        size_bytes=request.size_bytes,
                        seek_seconds=seek,
                    )
                )

            server_time = finish
            last_file = request.file_name
            last_end_offset = request.end_offset

            remaining = state.open_windows[request.window_id] - 1
            state.open_windows[request.window_id] = remaining
            if remaining == 0:
                del state.open_windows[request.window_id]
                submit_window(state, finish)

        return {name: state.stats for name, state in states.items()}

    def solo_scan_seconds(self, stream: ScanStream) -> float:
        """Convenience: elapsed time of one stream running alone."""
        return self.run([stream])[stream.name].elapsed
