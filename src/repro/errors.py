"""Exception hierarchy for the ``repro`` library.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still being able to distinguish the subsystem that failed.

Storage-integrity errors
------------------------

The storage layer distinguishes *permanent* corruption from *transient*
I/O failures; only the latter is retryable:

``StorageError``
    Anything structurally wrong with a page, file, or table.  Not
    retryable: the bytes themselves are bad or the API was misused.

    ``PageFormatError``
        A page's bytes do not match the declared layout (impossible
        entry count, wrong length).  Not retryable.

    ``ChecksumError``
        A page (or ``meta.json``) failed CRC verification: the stored
        checksum does not match the stored bytes, so the content cannot
        be trusted.  Not retryable — rereading the same bytes yields
        the same mismatch.  Salvage-mode scans and
        :func:`repro.storage.scrub.scrub_table` convert these into
        :class:`~repro.storage.scrub.CorruptionReport` entries instead
        of aborting.

    ``TransientIOError``
        A read failed for a reason that may not recur (injected fault,
        flaky device).  **Retryable**: :class:`repro.storage.retry`
        retries these with bounded exponential backoff before giving
        up; an exhausted retry budget re-raises the last
        ``TransientIOError``.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class SchemaError(ReproError):
    """A table schema is malformed or an attribute reference is invalid."""


class StorageError(ReproError):
    """A page, file, or table is malformed or used inconsistently."""


class PageFormatError(StorageError):
    """Raised when decoding a page whose bytes do not match the layout."""


class PageOverflowError(StorageError):
    """Raised when appending a value to a page that has no room left."""


class ChecksumError(StorageError):
    """A page or metadata blob failed CRC verification (not retryable)."""


class TransientIOError(StorageError):
    """A read failed transiently; retried with backoff before surfacing."""


class CompressionError(ReproError):
    """A codec cannot encode the given values or decode the given bytes."""


class EngineError(ReproError):
    """A query plan is malformed or an operator is misused."""


class PlanError(EngineError):
    """A query references attributes or tables that do not exist."""


class GovernanceError(EngineError):
    """A query was stopped by its lifecycle policy, not by bad data.

    Raised only when the caller opted into governance (a deadline, a
    cancellation token, or a memory budget on the
    :class:`~repro.engine.governance.QueryContext`).  Every governed
    query either completes, degrades gracefully, or fails fast with one
    of the subclasses below — it never hangs and never returns a
    partial result.
    """


class QueryTimeout(GovernanceError):
    """The query's wall-clock deadline passed before it finished."""


class QueryCancelled(GovernanceError):
    """The query's cancellation token was triggered mid-execution."""


class MemoryBudgetExceeded(GovernanceError):
    """A materializing operator would exceed the query's memory budget.

    Raised *after* the operator attempted a reduced-width retry
    (narrowing accumulated int64 columns and positions to the smallest
    dtype that holds their values); the abort is spill-free — nothing
    was written to disk and no partial result escapes.
    """


class SimulationError(ReproError):
    """The I/O or CPU simulator was configured or driven inconsistently."""


class CalibrationError(ReproError):
    """Analytical-model calibration was given unusable measurements."""
