"""Remaining-surface tests: breakdown rendering, stream edge cases,
contour bands, encode_prefix defaults, calibration hardware knobs."""

import numpy as np
import pytest

from repro.compression.base import CodecKind, CodecSpec
from repro.compression.registry import build_codec
from repro.cpusim.breakdown import ZERO_BREAKDOWN, CpuBreakdown
from repro.cpusim.calibration import DEFAULT_CALIBRATION
from repro.iosim.request import FileExtent, IoRequest
from repro.iosim.sim import DiskArraySim
from repro.iosim.streams import ScanStream, SubmissionPolicy
from repro.model.contour import FIG2_BANDS, SpeedupGrid
from repro.types.datatypes import IntType


class TestBreakdownRendering:
    def test_zero_breakdown(self):
        assert ZERO_BREAKDOWN.total == 0.0
        assert ZERO_BREAKDOWN.user == 0.0

    def test_describe_lists_components(self):
        breakdown = CpuBreakdown(
            sys=1.0, usr_uop=0.5, usr_l2=0.25, usr_l1=0.1, usr_rest=0.15
        )
        text = breakdown.describe()
        for key in ("sys", "usr-uop", "usr-L2", "usr-L1", "usr-rest"):
            assert key in text

    def test_as_dict_round_numbers(self):
        breakdown = CpuBreakdown(
            sys=1.0, usr_uop=2.0, usr_l2=3.0, usr_l1=4.0, usr_rest=5.0
        )
        assert breakdown.as_dict() == {
            "sys": 1.0,
            "usr-uop": 2.0,
            "usr-L2": 3.0,
            "usr-L1": 4.0,
            "usr-rest": 5.0,
        }


class TestContourBands:
    def test_band_labels(self):
        grid = SpeedupGrid(
            widths=np.array([4.0]),
            cpdbs=np.array([9.0]),
            values=np.array([[1.0]]),
        )
        assert grid.band(1.9) == "1.8-2.0+"
        assert grid.band(1.7) == "1.6-1.8"
        assert grid.band(1.3) == "1.2-1.6"
        assert grid.band(1.0) == "0.8-1.2"
        assert grid.band(0.5) == "0.4-0.8"

    def test_bands_cover_positive_reals(self):
        lowers = [low for low, _label in FIG2_BANDS]
        assert min(lowers) == 0.0


class TestStreamEdges:
    def test_odd_file_size_final_unit_smaller(self):
        sim = DiskArraySim()
        size = sim.unit_bytes * 3 + 1000
        stream = ScanStream(
            "s",
            [FileExtent("T", size)],
            sim.unit_bytes,
            48,
            SubmissionPolicy.ROW,
        )
        stats = sim.run([stream])["s"]
        assert stats.bytes_read == size
        assert stats.units == 4

    def test_request_sort_key_orders_by_submission(self):
        a = IoRequest("s", "f", 0, 10, submit_time=1.0, seq=2, window_id=0)
        b = IoRequest("s", "f", 10, 10, submit_time=1.0, seq=3, window_id=0)
        c = IoRequest("s", "f", 20, 10, submit_time=0.5, seq=9, window_id=0)
        assert sorted([a, b, c], key=lambda r: r.sort_key())[0] is c

    def test_tiny_file_single_window(self):
        sim = DiskArraySim()
        stream = ScanStream(
            "s", [FileExtent("T", 100)], sim.unit_bytes, 48, SubmissionPolicy.ROW
        )
        assert stream.num_windows() == 1
        assert stream.total_units == 1


class TestEncodePrefixDefaults:
    def test_fixed_codec_prefix_consumes_capacity(self):
        codec = build_codec(CodecSpec(kind=CodecKind.PACK, bits=8), IntType())
        values = np.arange(200)
        payload, _state, consumed = codec.encode_prefix(values, 64)
        assert consumed == 64 * 8 // 8  # 64 bytes of 8-bit values
        np.testing.assert_array_equal(
            codec.decode_page(payload, consumed, _state), values[:consumed]
        )

    def test_prefix_shorter_than_capacity(self):
        codec = build_codec(CodecSpec(kind=CodecKind.PACK, bits=8), IntType())
        values = np.arange(5)
        _payload, _state, consumed = codec.encode_prefix(values, 64)
        assert consumed == 5


class TestHardwareKnobs:
    def test_more_cpus_raise_cpdb(self):
        base = DEFAULT_CALIBRATION
        dual = base.with_overrides(num_cpus=2)
        assert dual.cpdb == pytest.approx(2 * base.cpdb)
        assert dual.aggregate_clock_hz == pytest.approx(2 * base.clock_hz)

    def test_more_cpus_halve_cpu_time(self):
        from repro.cpusim.costmodel import CpuModel
        from repro.cpusim.events import CostEvents

        events = CostEvents(predicate_evals=10_000_000, mem_rand_lines=1_000)
        single = CpuModel(DEFAULT_CALIBRATION).cpu_seconds(events)
        dual = CpuModel(
            DEFAULT_CALIBRATION.with_overrides(num_cpus=2)
        ).cpu_seconds(events)
        assert dual == pytest.approx(single / 2)

    def test_cpdb_reference_points(self):
        # §5: the paper's machine is 18 cpdb; one disk makes it 54.
        assert DEFAULT_CALIBRATION.cpdb == pytest.approx(17.8, abs=0.2)
        one_disk = DEFAULT_CALIBRATION.with_overrides(num_disks=1)
        assert one_disk.cpdb == pytest.approx(53.3, abs=0.5)


class TestPagedFileRepr:
    def test_repr_mentions_name_and_size(self):
        from repro.storage.pagefile import PagedFile

        file = PagedFile("ORDERS.O_CUSTKEY", page_size=64)
        file.append_page(b"\x00" * 64)
        text = repr(file)
        assert "ORDERS.O_CUSTKEY" in text
        assert "pages=1" in text
