"""Figure 6 — baseline experiment.

``select L1, L2 ... from LINEITEM where predicate(L1) yields 10 %``:
total elapsed and CPU time versus the number of selected attributes
(left graph) and the CPU-time breakdowns (right graph).

Expected shapes: the row store is flat in projectivity; the column
store reads less and wins until it selects more than ~85 % of the tuple
bytes, where disk seeks between columns erase the advantage; column CPU
grows with every attribute and jumps when the string attributes
(#9-#11) join the selection list.
"""

from __future__ import annotations

from repro.engine.query import ScanQuery
from repro.experiments.config import DEFAULT_EXECUTED_ROWS, ExperimentConfig
from repro.experiments.report import ExperimentOutput, FigureResult
from repro.experiments.runner import ScanMeasurement, measure_scan
from repro.experiments.workloads import PreparedTable, prepare_lineitem

SELECTIVITY = 0.10
PREDICATE_ATTR = "L_PARTKEY"


def sweep(
    prepared: PreparedTable,
    config: ExperimentConfig,
    selectivity: float = SELECTIVITY,
    predicate_attr: str = PREDICATE_ATTR,
) -> list[tuple[int, ScanMeasurement, ScanMeasurement]]:
    """(k, row measurement, column measurement) for k = 1..all attrs."""
    predicate = prepared.predicate(predicate_attr, selectivity)
    out = []
    for k in range(1, len(prepared.schema) + 1):
        query = ScanQuery(
            prepared.schema.name,
            select=prepared.attrs_prefix(k),
            predicates=(predicate,),
        )
        row = measure_scan(prepared.row, query, config)
        column = measure_scan(prepared.column, query, config)
        out.append((k, row, column))
    return out


def build_output(
    name: str,
    points: list[tuple[int, ScanMeasurement, ScanMeasurement]],
) -> ExperimentOutput:
    """Format a projectivity sweep the way Figure 6/8 present it."""
    elapsed = FigureResult(
        title="Total elapsed and CPU time vs. selected attributes",
        headers=[
            "attrs",
            "sel bytes",
            "row elapsed (s)",
            "col elapsed (s)",
            "row CPU (s)",
            "col CPU (s)",
        ],
    )
    breakdown = FigureResult(
        title="Column-store CPU time breakdown (seconds)",
        headers=["attrs", "sys", "usr-uop", "usr-L2", "usr-L1", "usr-rest", "total"],
    )
    series: dict[str, list[float]] = {
        "selected_bytes": [],
        "row_elapsed": [],
        "col_elapsed": [],
        "row_cpu": [],
        "col_cpu": [],
        "col_l2": [],
    }
    for k, row, column in points:
        elapsed.add_row(
            k,
            column.selected_bytes,
            round(row.elapsed, 2),
            round(column.elapsed, 2),
            round(row.cpu.total, 2),
            round(column.cpu.total, 2),
        )
        bd = column.cpu
        breakdown.add_row(
            k,
            round(bd.sys, 2),
            round(bd.usr_uop, 2),
            round(bd.usr_l2, 2),
            round(bd.usr_l1, 2),
            round(bd.usr_rest, 2),
            round(bd.total, 2),
        )
        series["selected_bytes"].append(column.selected_bytes)
        series["row_elapsed"].append(row.elapsed)
        series["col_elapsed"].append(column.elapsed)
        series["row_cpu"].append(row.cpu.total)
        series["col_cpu"].append(column.cpu.total)
        series["col_l2"].append(bd.usr_l2)

    first_row = points[0][1]
    last_row = points[-1][1]
    row_breakdown = FigureResult(
        title="Row-store CPU time breakdown (1 and all attributes)",
        headers=["attrs", "sys", "usr-uop", "usr-L2", "usr-L1", "usr-rest", "total"],
    )
    for k, measurement in ((points[0][0], first_row), (points[-1][0], last_row)):
        bd = measurement.cpu
        row_breakdown.add_row(
            k,
            round(bd.sys, 2),
            round(bd.usr_uop, 2),
            round(bd.usr_l2, 2),
            round(bd.usr_l1, 2),
            round(bd.usr_rest, 2),
            round(bd.total, 2),
        )
    return ExperimentOutput(
        name=name,
        tables=[elapsed, row_breakdown, breakdown],
        series=series,
    )


def run(
    num_rows: int = DEFAULT_EXECUTED_ROWS,
    config: ExperimentConfig | None = None,
) -> ExperimentOutput:
    """Regenerate Figure 6."""
    config = config or ExperimentConfig()
    prepared = prepare_lineitem(num_rows)
    points = sweep(prepared, config)
    return build_output("Figure 6: baseline (LINEITEM, 10% selectivity)", points)
