"""Property-based codec tests: every scheme round-trips any data it
accepts, at any page split, and selective decode equals full decode."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression.base import CodecKind
from repro.compression.registry import build_codec_for_values
from repro.types.datatypes import FixedTextType, IntType

int_columns = st.lists(
    st.integers(min_value=-(2**31), max_value=2**31 - 1),
    min_size=1,
    max_size=300,
)

nonneg_columns = st.lists(
    st.integers(min_value=0, max_value=2**31 - 1), min_size=1, max_size=300
)

text_columns = st.lists(
    st.binary(min_size=0, max_size=8).filter(lambda b: b"\x00" not in b),
    min_size=1,
    max_size=200,
)


def roundtrip(kind, attr_type, values):
    codec = build_codec_for_values(kind, attr_type, values, page_capacity_hint=len(values))
    payload, state = codec.encode_page(values)
    decoded = codec.decode_page(payload, len(values), state)
    np.testing.assert_array_equal(decoded, values)
    return codec, payload, state


@settings(max_examples=60, deadline=None)
@given(nonneg_columns)
def test_bitpack_roundtrip(raw):
    roundtrip(CodecKind.PACK, IntType(), np.array(raw, dtype=np.int64))


@settings(max_examples=60, deadline=None)
@given(int_columns)
def test_for_roundtrip_any_ints(raw):
    roundtrip(CodecKind.FOR, IntType(), np.array(raw, dtype=np.int64))


@settings(max_examples=60, deadline=None)
@given(int_columns)
def test_for_delta_roundtrip_any_ints(raw):
    roundtrip(CodecKind.FOR_DELTA, IntType(), np.array(raw, dtype=np.int64))


@settings(max_examples=60, deadline=None)
@given(int_columns)
def test_dictionary_roundtrip_ints(raw):
    roundtrip(CodecKind.DICT, IntType(), np.array(raw, dtype=np.int64))


@settings(max_examples=60, deadline=None)
@given(text_columns)
def test_dictionary_roundtrip_text(raw):
    values = np.array(raw, dtype="S8")
    roundtrip(CodecKind.DICT, FixedTextType(8), values)


@settings(max_examples=60, deadline=None)
@given(text_columns)
def test_textpack_roundtrip(raw):
    values = np.array(raw, dtype="S8")
    roundtrip(CodecKind.PACK, FixedTextType(8), values)


@settings(max_examples=40, deadline=None)
@given(
    int_columns,
    st.data(),
)
def test_selective_decode_matches_full_decode(raw, data):
    values = np.array(raw, dtype=np.int64)
    kind = data.draw(
        st.sampled_from(
            [CodecKind.NONE, CodecKind.DICT, CodecKind.FOR, CodecKind.FOR_DELTA]
        )
    )
    codec = build_codec_for_values(kind, IntType(), values, page_capacity_hint=len(values))
    payload, state = codec.encode_page(values)
    positions = data.draw(
        st.lists(
            st.integers(min_value=0, max_value=len(values) - 1),
            min_size=0,
            max_size=len(values),
            unique=True,
        ).map(sorted)
    )
    positions = np.array(positions, dtype=np.int64)
    selected, decoded = codec.decode_positions(payload, len(values), state, positions)
    np.testing.assert_array_equal(selected, values[positions])
    if codec.decodes_whole_page:
        assert decoded == len(values)
    else:
        assert decoded == len(positions)


# --- RLE (variable capacity, int-only) ---------------------------------------

runs_columns = st.lists(
    st.tuples(
        st.integers(min_value=-(2**31), max_value=2**31 - 1),
        st.integers(min_value=1, max_value=50),
    ),
    min_size=1,
    max_size=40,
).map(lambda pairs: [v for value, length in pairs for v in [value] * length])


@settings(max_examples=60, deadline=None)
@given(int_columns)
def test_rle_roundtrip_any_ints(raw):
    roundtrip(CodecKind.RLE, IntType(), np.array(raw, dtype=np.int64))


@settings(max_examples=60, deadline=None)
@given(runs_columns)
def test_rle_roundtrip_runs_heavy(raw):
    roundtrip(CodecKind.RLE, IntType(), np.array(raw, dtype=np.int64))


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=-(2**31), max_value=2**31 - 1), st.integers(1, 500))
def test_rle_single_run(value, length):
    values = np.full(length, value, dtype=np.int64)
    codec, payload, _state = roundtrip(CodecKind.RLE, IntType(), values)
    # A single run stores one (value, run-length) pair regardless of
    # length; each stream is packed separately and byte-rounded.
    assert len(payload) == 4 + (codec.spec.bits + 7) // 8 + (codec.spec.run_bits + 7) // 8


def test_rle_empty_page_roundtrips():
    # Spec sized from real data, then an empty page encoded under it
    # (the loader never writes one, but decode must not crash).
    sized_from = np.array([7, 7, 7, 3], dtype=np.int64)
    codec = build_codec_for_values(CodecKind.RLE, IntType(), sized_from)
    payload, state = codec.encode_page(np.zeros(0, dtype=np.int64))
    decoded = codec.decode_page(payload, 0, state)
    assert decoded.size == 0


@settings(max_examples=40, deadline=None)
@given(runs_columns, st.integers(min_value=16, max_value=256))
def test_rle_encode_prefix_consumes_whole_runs(raw, payload_bytes):
    values = np.array(raw, dtype=np.int64)
    codec = build_codec_for_values(CodecKind.RLE, IntType(), values)
    try:
        payload, state, consumed = codec.encode_prefix(values, payload_bytes)
    except Exception:
        # Payload too small for even one pair: a legitimate refusal.
        assert codec.pair_bits > payload_bytes * 8 - 32
        return
    assert 1 <= consumed <= len(values)
    decoded = codec.decode_page(payload, consumed, state)
    np.testing.assert_array_equal(decoded, values[:consumed])
    # Page boundaries fall on run boundaries (or a cap split).
    if consumed < len(values):
        assert values[consumed] != values[consumed - 1] or consumed % (1 << 16) == 0


# --- textpack adversarial cases -----------------------------------------------


@settings(max_examples=60, deadline=None)
@given(st.data())
def test_textpack_roundtrip_random_widths(data):
    width = data.draw(st.integers(min_value=1, max_value=12))
    raw = data.draw(
        st.lists(
            st.binary(min_size=0, max_size=width).filter(lambda b: b"\x00" not in b),
            min_size=1,
            max_size=100,
        )
    )
    values = np.array(raw, dtype=f"S{width}")
    codec, payload, _state = roundtrip(CodecKind.PACK, FixedTextType(width), values)
    longest = max((len(v) for v in raw), default=0)
    assert len(payload) == max(1, longest) * len(values)


def test_textpack_max_width_values():
    # Values at the full field width: packing must not drop a byte.
    values = np.array([b"abcdefgh", b"zzzzzzzz", b"a"], dtype="S8")
    codec, payload, _state = roundtrip(CodecKind.PACK, FixedTextType(8), values)
    assert codec.packed_width == 8
    assert len(payload) == 8 * 3


def test_textpack_all_empty_strings():
    values = np.array([b"", b"", b""], dtype="S8")
    codec, _payload, _state = roundtrip(CodecKind.PACK, FixedTextType(8), values)
    assert codec.packed_width == 1  # floor of one stored byte per value


def test_textpack_empty_page_roundtrips():
    sized_from = np.array([b"abc", b"de"], dtype="S8")
    codec = build_codec_for_values(CodecKind.PACK, FixedTextType(8), sized_from)
    payload, state = codec.encode_page(np.zeros(0, dtype="S8"))
    decoded = codec.decode_page(payload, 0, state)
    assert decoded.size == 0


@settings(max_examples=40, deadline=None)
@given(nonneg_columns)
def test_compression_never_negative_sized(raw):
    values = np.array(raw, dtype=np.int64)
    for kind in (CodecKind.PACK, CodecKind.FOR, CodecKind.FOR_DELTA):
        codec = build_codec_for_values(kind, IntType(), values, page_capacity_hint=len(values))
        payload, _state = codec.encode_page(values)
        expected_bits = codec.bits_per_value * len(values)
        assert len(payload) == (expected_bits + 7) // 8
