"""Salvage-mode differential tests.

With seeded fault injection (:mod:`repro.storage.faults`) corrupting
specific pages, a salvage scan must return *exactly* the oracle's answer
minus the rows covered by the corrupt pages — no extra loss, no silent
survivors — and ``QueryResult.corruption`` must account for precisely
the injected pages.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.generator import GeneratedTable
from repro.engine.executor import run_scan
from repro.engine.plan import ColumnScannerKind
from repro.engine.predicate import ComparisonOp, Predicate
from repro.engine.query import ScanQuery
from repro.errors import ChecksumError
from repro.storage.faults import FaultPlan
from repro.storage.layout import Layout
from repro.storage.loader import load_table
from repro.testing.oracle import oracle_scan
from repro.types.datatypes import IntType
from repro.types.schema import Attribute, TableSchema

ROWS = 400
PAGE_SIZE = 512


@pytest.fixture(scope="module")
def data():
    rng = np.random.default_rng(20060615)
    return GeneratedTable(
        schema=TableSchema(
            "S",
            attributes=(
                Attribute("a", IntType()),
                Attribute("b", IntType()),
                Attribute("c", IntType()),
            ),
        ),
        columns={
            "a": rng.integers(0, 1000, size=ROWS),
            "b": rng.integers(0, 50, size=ROWS),
            "c": np.arange(ROWS),
        },
    )


QUERY = ScanQuery("S", select=("a", "c"), predicates=(Predicate("b", ComparisonOp.LT, 40),))


def _dropped_span(table, layout, attr: str, page_id: int) -> range:
    """The global row range one corrupt page takes down."""
    if layout is Layout.COLUMN:
        column_file = table.column_files[attr]
        start = column_file.first_row_of_page(page_id)
        return range(start, start + column_file.row_span_of_page(page_id, table.num_rows))
    capacity = table.page_codec.tuples_per_page
    return range(
        page_id * capacity, page_id * capacity + table.row_span_of_page(page_id)
    )


def _expected_lost(data, table, layout, faults, column_scanner) -> int:
    """Replicate each scanner's ``rows_lost`` accounting.

    Row, PAX, and fused scans charge a corrupt page its full nominal
    row span.  The pipelined column scan charges the full span only at
    the first (dense) node; inner nodes are position-driven and charge
    exactly the pipeline positions they dropped.
    """
    if layout is not Layout.COLUMN or column_scanner is ColumnScannerKind.FUSED:
        return sum(
            len(_dropped_span(table, layout, attr, page)) for attr, page in faults
        )
    surviving = set(oracle_scan(data, QUERY).positions)
    lost = 0
    for attr in QUERY.scan_attributes():
        node_faults = [(a, p) for a, p in faults if a == attr]
        first_node = attr == QUERY.scan_attributes()[0]
        for _attr, page in node_faults:
            span = set(_dropped_span(table, layout, attr, page))
            lost += len(span) if first_node else len(surviving & span)
            surviving -= span
    return lost


def _check_salvage(data, table, layout, faults, column_scanner=ColumnScannerKind.PIPELINED):
    """Inject ``faults`` as ``(attr, page_id)`` pairs and diff vs oracle."""
    plan = FaultPlan(seed=7)
    dropped: set[int] = set()
    expected_lost = _expected_lost(data, table, layout, faults, column_scanner)
    for attr, page_id in faults:
        if layout is Layout.COLUMN:
            file_name = table.column_files[attr].file.name
        else:
            file_name = table.file.name
        plan.schedule_bit_flip(page_id, file=file_name, byte=11, bit=3)
        dropped.update(_dropped_span(table, layout, attr, page_id))
    plan.wrap_table(table)

    # Strict mode: the first corrupt page aborts the query.
    with pytest.raises(ChecksumError):
        run_scan(table, QUERY, column_scanner=column_scanner)

    result = run_scan(table, QUERY, column_scanner=column_scanner, salvage=True)

    oracle = oracle_scan(data, QUERY)
    survivors = [
        (pos, row)
        for pos, row in zip(oracle.positions, oracle.rows)
        if pos not in dropped
    ]
    assert result.positions.tolist() == [pos for pos, _row in survivors]
    got_rows = list(
        zip(result.column("a").tolist(), result.column("c").tolist())
    )
    assert got_rows == [row for _pos, row in survivors]

    # Accounting matches the injected plan exactly.
    assert not result.is_complete
    assert result.corruption.pages_skipped == len(faults)
    assert result.corruption.estimated_rows_lost == expected_lost
    injected = set()
    for attr, page_id in faults:
        if layout is Layout.COLUMN:
            injected.add((table.column_files[attr].file.name, page_id))
        else:
            injected.add((table.file.name, page_id))
    assert {(f.file, f.page) for f in result.corruption.faults} == injected


@pytest.mark.parametrize("layout", [Layout.ROW, Layout.PAX])
def test_salvage_exactness_row_and_pax(data, layout):
    table = load_table(data, layout, page_size=PAGE_SIZE)
    # Two interior pages plus the (possibly short) final page.
    last = table.file.num_pages - 1
    _check_salvage(data, table, layout, [("", 1), ("", 3), ("", last)])


@pytest.mark.parametrize(
    "scanner", [ColumnScannerKind.PIPELINED, ColumnScannerKind.FUSED]
)
def test_salvage_exactness_column_predicate_file(data, scanner):
    # Corrupt pages of the predicate column: the first scan node drops
    # those spans before any position list exists.
    table = load_table(data, Layout.COLUMN, page_size=PAGE_SIZE)
    _check_salvage(data, table, Layout.COLUMN, [("b", 0), ("b", 2)], scanner)


@pytest.mark.parametrize(
    "scanner", [ColumnScannerKind.PIPELINED, ColumnScannerKind.FUSED]
)
def test_salvage_exactness_column_value_file(data, scanner):
    # Corrupt a page of a projected (non-predicate) column: positions
    # arriving from upstream must be dropped consistently so the output
    # columns stay aligned.
    table = load_table(data, Layout.COLUMN, page_size=PAGE_SIZE)
    _check_salvage(data, table, Layout.COLUMN, [("a", 1)], scanner)


@pytest.mark.parametrize(
    "scanner", [ColumnScannerKind.PIPELINED, ColumnScannerKind.FUSED]
)
def test_salvage_faults_across_files_compose(data, scanner):
    # One corrupt page in each of three different column files: the
    # dropped row set is the union of their spans.
    table = load_table(data, Layout.COLUMN, page_size=PAGE_SIZE)
    _check_salvage(
        data, table, Layout.COLUMN, [("b", 1), ("a", 2), ("c", 0)], scanner
    )


def test_salvage_with_compressed_columns(data):
    # Codecs change page capacities (more values per page); spans and
    # accounting must follow the compressed geometry.
    from repro.compression.base import CodecKind
    from repro.compression.registry import build_codec_for_values

    specs = {
        "b": build_codec_for_values(
            CodecKind.PACK, IntType(), data.column("b")
        ).spec,
        "c": build_codec_for_values(CodecKind.DICT, IntType(), data.column("c")).spec,
    }
    bound = data.with_schema(data.schema.with_codecs(specs))
    # A small page keeps even the packed columns multi-page, so spans
    # follow the compressed geometry rather than one page per column.
    table = load_table(bound, Layout.COLUMN, page_size=128)
    assert table.column_files["b"].file.num_pages > 2
    assert table.column_files["c"].file.num_pages > 3
    # b page 1 drops rows 144..287; c page 3 (rows 288..383) lies outside
    # that span, so the scan still reaches it and must report it too.
    _check_salvage(data, table, Layout.COLUMN, [("b", 1), ("c", 3)])
