#!/usr/bin/env python3
"""Capacity planning with the Section 5 analytical model.

A DBA's what-if session: for a fixed query (50 % projection, 10 %
selectivity over a 32-byte fact table), how does the column store's
advantage move as the machine changes?  The model folds CPUs, disks,
and competing traffic into the single cpdb knob (cycles per
sequentially delivered disk byte):

* more disks  → fewer cycles pass per byte → cpdb drops,
* more CPUs   → more cycles per byte      → cpdb grows,
* competing CPU traffic lowers cpdb; competing disk traffic raises it.

Run with::

    python examples/capacity_planning.py
"""

from repro import QueryShape, SpeedupModel
from repro.model.contour import speedup_grid
from repro.model.speedup import crossover_projectivity

CONFIGURATIONS = (
    # (description, cpdb)
    ("1995 desktop (1 CPU / 1 disk)", 10.0),
    ("paper testbed (1 CPU / 3 disks)", 18.0),
    ("2005 desktop (1 CPU / 1 disk)", 30.0),
    ("paper testbed on one disk", 54.0),
    ("modern dual-CPU single-disk box", 108.0),
    ("big SMP over a saturated SAN", 400.0),
)


def main() -> None:
    model = SpeedupModel()
    shape = QueryShape(
        tuple_width=32.0,
        selected_bytes=16.0,
        selectivity=0.10,
        num_attributes=8,
        selected_attributes=4,
    )
    print("query: 50% projection, 10% selectivity, 32-byte tuples\n")
    print(f"{'configuration':38s} {'cpdb':>6s} {'speedup':>8s}  bound")
    for label, cpdb in CONFIGURATIONS:
        value = model.predict(shape, cpdb=cpdb)
        rates = model.rates(shape, cpdb=cpdb)
        column_bound = (
            "I/O" if rates["disk_column"] <= rates["cpu_column"] else "CPU"
        )
        print(f"{label:38s} {cpdb:6.0f} {value:8.2f}  column store is "
              f"{column_bound}-bound")

    print("\nwhere does the row store start winning? "
          "(crossover projectivity, 10% selectivity)")
    for width, attrs in ((8, 2), (16, 4), (32, 8), (150, 16)):
        for cpdb in (9.0, 18.0, 54.0):
            crossover = crossover_projectivity(
                model, float(width), attrs, 0.10, cpdb=cpdb
            )
            verdict = (
                f"rows win from {crossover:.0%} projection"
                if crossover is not None
                else "columns win at every projection"
            )
            print(f"  width {width:3d}B, cpdb {cpdb:3.0f}: {verdict}")

    print("\nthe full Figure 2 contour:")
    print(speedup_grid(model).render())


if __name__ == "__main__":
    main()
