"""Plan execution and result collection."""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.cpusim.events import CostEvents
from repro.engine.blocks import Block, concat_blocks
from repro.engine.context import ExecutionContext
from repro.engine.operators.base import Operator
from repro.engine.plan import ColumnScannerKind, scan_plan
from repro.engine.query import ScanQuery
from repro.obs import metrics as obs_metrics
from repro.storage.scrub import CorruptionReport
from repro.storage.table import Table


@dataclass
class QueryResult:
    """Materialized output of one plan execution plus its cost events."""

    columns: dict[str, np.ndarray]
    positions: np.ndarray
    events: CostEvents
    #: Pages skipped while producing this result (salvage-mode scans);
    #: empty/clean under strict integrity, where corruption aborts.
    corruption: CorruptionReport = field(default_factory=CorruptionReport)

    @property
    def num_tuples(self) -> int:
        return len(self.positions)

    @property
    def is_complete(self) -> bool:
        """True when no page was skipped to produce this result."""
        return self.corruption.is_clean

    def column(self, name: str) -> np.ndarray:
        return self.columns[name]

    def rows(self) -> list[tuple]:
        """Tuples in column order, materialized as Python objects.

        Testing convenience only — the engine itself never pivots
        columns back into tuples.  One ``zip(*columns)`` pass over
        columns converted via ``ndarray.tolist()`` (a single C-level
        conversion per column) instead of per-cell numpy indexing,
        which was O(tuples x columns) Python-level work.
        """
        if not self.columns:
            return [() for _ in range(self.num_tuples)]
        return list(zip(*(self.columns[name].tolist() for name in self.columns)))

    def as_block(self) -> Block:
        return Block(columns=self.columns, positions=self.positions)


def execute_plan(plan: Operator) -> QueryResult:
    """Drain a plan and return its materialized output."""
    blocks = plan.drain()
    merged = concat_blocks(blocks)
    return QueryResult(
        columns=merged.columns,
        positions=merged.positions,
        events=plan.context.events,
        corruption=plan.context.corruption,
    )


def run_scan(
    table: Table,
    query: ScanQuery,
    context: ExecutionContext | None = None,
    column_scanner: ColumnScannerKind = ColumnScannerKind.PIPELINED,
    salvage: bool = False,
) -> QueryResult:
    """Plan and execute one scan query against a table.

    With ``salvage=True`` the scan degrades instead of aborting on
    corrupt pages: their rows are skipped consistently across scan
    nodes and tallied in :attr:`QueryResult.corruption`.
    """
    context = context or ExecutionContext()
    if salvage:
        context.strict_integrity = False
    plan = scan_plan(context, table, query, column_scanner)
    if not obs_metrics.enabled():
        return execute_plan(plan)
    started = time.perf_counter()
    result = execute_plan(plan)
    obs_metrics.QUERIES.inc()
    obs_metrics.QUERY_SECONDS.observe(time.perf_counter() - started)
    return result
