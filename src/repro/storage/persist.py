"""Persisting tables to real files on disk.

The simulator never needs real files — sizes and access patterns are
enough — but a usable library should survive a process restart.  This
module serializes a loaded table (any layout) into a directory:

* ``meta.json`` — schema, per-column codec specs (including the
  dictionary values), layout, row count, page size, page directories,
  and a CRC32 of the metadata itself;
* one binary page file per storage file, byte-for-byte the same pages
  the in-memory :class:`~repro.storage.pagefile.PagedFile` holds.

``save_table`` / ``open_table`` round-trip every layout and codec.

Durability and integrity
------------------------

``save_table`` is crash-safe: everything is written into a hidden
sibling temp directory, fsynced, and atomically renamed into place, with
``meta.json`` written last — so a crash mid-save leaves either the old
table or no table, never a half-written one that parses.

On-disk format versions:

* **v1** (legacy): no page checksums, no metadata checksum.  Read
  transparently — each page's trailer is upgraded in memory
  (:func:`repro.storage.page.upgrade_page_v1`) so the rest of the
  system sees only checksummed v2 pages.  Note the fresh checksums
  attest to the bytes *as read*; v1 files carry no protection against
  corruption that happened before the upgrade.
* **v2** (current): every page trailer carries a CRC32, verified on
  every decode, and ``meta.json`` carries ``meta_crc32`` over its own
  canonical JSON, verified on open.

``open_table`` by default is strict: torn writes (trailing partial
pages), truncated files, and metadata damage raise
:class:`~repro.errors.StorageError` /
:class:`~repro.errors.ChecksumError`.  Passing a
:class:`~repro.storage.scrub.CorruptionReport` as ``salvage`` instead
records the damage (with estimated rows lost) and returns a table over
the surviving pages.
"""

from __future__ import annotations

import base64
import json
import math
import os
import pathlib
import shutil
import zlib

import numpy as np

from repro.compression.base import CodecKind, CodecSpec
from repro.errors import ChecksumError, StorageError
from repro.storage.layout import Layout
from repro.storage.page import upgrade_page_v1
from repro.storage.pagefile import PagedFile
from repro.storage.retry import RetryPolicy, retry_io
from repro.storage.scrub import CorruptionReport
from repro.storage.table import (
    ColumnFile,
    ColumnTable,
    PaxTable,
    RowTable,
    Table,
    build_column_file,
)
from repro.types.datatypes import AttributeType, FixedTextType, IntType
from repro.types.schema import Attribute, TableSchema

_META_NAME = "meta.json"
_META_CRC_KEY = "meta_crc32"
_MANIFEST_NAME = "manifest.json"
_FORMAT_VERSION = 2
_SUPPORTED_VERSIONS = (1, 2)


# --- schema (de)serialization ------------------------------------------------


def _type_to_json(attr_type: AttributeType) -> dict:
    if isinstance(attr_type, IntType):
        return {"kind": "int"}
    if isinstance(attr_type, FixedTextType):
        return {"kind": "text", "width": attr_type.width}
    raise StorageError(f"unknown attribute type: {attr_type!r}")


def _type_from_json(payload: dict) -> AttributeType:
    if payload["kind"] == "int":
        return IntType()
    if payload["kind"] == "text":
        return FixedTextType(payload["width"])
    raise StorageError(f"unknown attribute type in metadata: {payload}")


def _dictionary_to_json(dictionary: tuple) -> list:
    out = []
    for value in dictionary:
        if isinstance(value, (bytes, np.bytes_)):
            out.append({"b64": base64.b64encode(bytes(value)).decode("ascii")})
        else:
            out.append({"int": int(value)})
    return out


def _dictionary_from_json(payload: list) -> tuple:
    out = []
    for entry in payload:
        if "b64" in entry:
            out.append(base64.b64decode(entry["b64"]))
        else:
            out.append(int(entry["int"]))
    return tuple(out)


def _spec_to_json(spec: CodecSpec) -> dict:
    return {
        "kind": spec.kind.value,
        "bits": spec.bits,
        "zigzag": spec.zigzag,
        "run_bits": spec.run_bits,
        "dictionary": _dictionary_to_json(spec.dictionary),
    }


def _spec_from_json(payload: dict) -> CodecSpec:
    return CodecSpec(
        kind=CodecKind(payload["kind"]),
        bits=payload["bits"],
        zigzag=payload["zigzag"],
        run_bits=payload["run_bits"],
        dictionary=_dictionary_from_json(payload["dictionary"]),
    )


def _schema_to_json(schema: TableSchema) -> dict:
    return {
        "name": schema.name,
        "attributes": [
            {
                "name": attr.name,
                "type": _type_to_json(attr.attr_type),
                "codec": (
                    _spec_to_json(attr.codec_spec)
                    if attr.codec_spec is not None
                    else None
                ),
            }
            for attr in schema
        ],
    }


def _schema_from_json(payload: dict) -> TableSchema:
    attributes = tuple(
        Attribute(
            name=entry["name"],
            attr_type=_type_from_json(entry["type"]),
            codec_spec=(
                _spec_from_json(entry["codec"]) if entry["codec"] else None
            ),
        )
        for entry in payload["attributes"]
    )
    return TableSchema(name=payload["name"], attributes=attributes)


def _meta_checksum(meta: dict) -> int:
    """CRC32 over the canonical JSON of ``meta`` minus the CRC key."""
    core = {key: value for key, value in meta.items() if key != _META_CRC_KEY}
    return zlib.crc32(json.dumps(core, sort_keys=True).encode("utf-8"))


# --- durable file writes ---------------------------------------------------------


def _write_file_durably(path: pathlib.Path, data: bytes) -> None:
    with open(path, "wb") as handle:
        handle.write(data)
        handle.flush()
        os.fsync(handle.fileno())


def _fsync_directory(path: pathlib.Path) -> None:
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - platform-dependent
        pass
    finally:
        os.close(fd)


def _write_paged_file(file: PagedFile, path: pathlib.Path) -> None:
    _write_file_durably(path, b"".join(file.iter_pages()))


def _read_paged_file(
    path: pathlib.Path,
    name: str,
    page_size: int,
    *,
    version: int = _FORMAT_VERSION,
    salvage: CorruptionReport | None = None,
    retry_policy: RetryPolicy | None = None,
) -> PagedFile:
    try:
        data = retry_io(path.read_bytes, retry_policy)
    except FileNotFoundError:
        if salvage is None:
            raise StorageError(f"missing page file {path}") from None
        salvage.record(name, -1, 0, f"page file missing: {path.name}")
        return PagedFile(name, page_size=page_size, retry_policy=retry_policy)
    extra = len(data) % page_size
    if extra:
        if salvage is None:
            raise StorageError(
                f"{path} has {len(data)} bytes, not a multiple of page size "
                f"{page_size}: trailing partial page (torn write or truncation)"
            )
        # A torn write left a partial tail page; keep the whole pages.
        # The missing rows are accounted by the page-count check below.
        data = data[: len(data) - extra]
    if version == 1:
        data = b"".join(
            upgrade_page_v1(data[start : start + page_size])
            for start in range(0, len(data), page_size)
        )
    return PagedFile.from_bytes(name, data, page_size, retry_policy=retry_policy)


def _check_page_count(
    file: PagedFile,
    expected: int,
    span_of,
    salvage: CorruptionReport | None,
) -> None:
    """Compare a file's page count against what the metadata implies."""
    actual = file.num_pages
    if actual > expected:
        raise StorageError(
            f"{file.name!r} has {actual} pages but metadata implies {expected}: "
            f"metadata and pages disagree"
        )
    if actual == expected:
        return
    if salvage is None:
        raise StorageError(
            f"{file.name!r} has {actual} pages, expected {expected}: "
            f"file truncated or torn"
        )
    for page_id in range(actual, expected):
        salvage.record(
            file.name, page_id, span_of(page_id), "page missing (truncated/torn file)"
        )


# --- public API -----------------------------------------------------------------


def save_table(
    table: Table, directory: str | pathlib.Path, crash_hook=None
) -> pathlib.Path:
    """Persist a loaded table into ``directory``, atomically.

    The table is written into a hidden temp directory next to the
    target, fsynced, and renamed into place — ``meta.json`` last, so an
    interrupted save can never produce a directory that opens.
    Overwriting an existing table swaps the directories; the old table
    remains openable until the swap.

    ``crash_hook``, when given, is called with a fault-point name after
    each durability step (``staging.created``, ``pages.written``,
    ``meta.written``, ``staging.fsynced``, ``table.renamed``); a hook
    that raises simulates a crash at exactly that point, which the
    merge crash matrix uses to prove old-or-new atomicity.
    """
    directory = pathlib.Path(directory)
    directory.parent.mkdir(parents=True, exist_ok=True)
    staging = directory.parent / f".{directory.name}.saving"
    if staging.exists():
        shutil.rmtree(staging)
    staging.mkdir()
    if crash_hook is not None:
        crash_hook("staging.created")
    meta: dict = {
        "format_version": _FORMAT_VERSION,
        "layout": table.layout.value,
        "num_rows": table.num_rows,
        "page_size": table.page_size,
        "schema": _schema_to_json(table.schema),
    }
    if isinstance(table, (RowTable, PaxTable)):
        _write_paged_file(table.file, staging / "table.pages")
    elif isinstance(table, ColumnTable):
        columns_meta = {}
        for name, column_file in table.column_files.items():
            _write_paged_file(column_file.file, staging / f"{name}.pages")
            columns_meta[name] = {
                "first_rows": (
                    column_file.first_rows.tolist()
                    if column_file.first_rows is not None
                    else None
                ),
                "effective_bits": column_file.effective_bits,
            }
        meta["columns"] = columns_meta
    else:
        raise StorageError(f"unsupported table type: {type(table).__name__}")
    if crash_hook is not None:
        crash_hook("pages.written")
    meta[_META_CRC_KEY] = _meta_checksum(meta)
    _write_file_durably(
        staging / _META_NAME, json.dumps(meta, indent=2).encode("utf-8")
    )
    if crash_hook is not None:
        crash_hook("meta.written")
    _fsync_directory(staging)
    if crash_hook is not None:
        crash_hook("staging.fsynced")
    if directory.exists():
        retired = directory.parent / f".{directory.name}.old"
        if retired.exists():
            shutil.rmtree(retired)
        directory.rename(retired)
        staging.rename(directory)
        shutil.rmtree(retired)
    else:
        staging.rename(directory)
    _fsync_directory(directory.parent)
    if crash_hook is not None:
        crash_hook("table.renamed")
    return directory


def _load_meta(directory: pathlib.Path) -> dict:
    meta_path = directory / _META_NAME
    if not meta_path.exists():
        raise StorageError(f"no {_META_NAME} in {directory}")
    try:
        meta = json.loads(meta_path.read_text(encoding="utf-8"))
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise StorageError(
            f"{meta_path} is corrupt or half-written: {exc}"
        ) from exc
    version = meta.get("format_version")
    if version not in _SUPPORTED_VERSIONS:
        raise StorageError(f"unsupported on-disk format version: {version}")
    if version >= 2:
        stored = meta.get(_META_CRC_KEY)
        if stored is None:
            raise ChecksumError(f"{meta_path} is v{version} but has no checksum")
        actual = _meta_checksum(meta)
        if stored != actual:
            raise ChecksumError(
                f"{meta_path} checksum mismatch: stored {stored:#010x}, "
                f"computed {actual:#010x}"
            )
    return meta


def open_table(
    directory: str | pathlib.Path,
    salvage: CorruptionReport | None = None,
    retry_policy: RetryPolicy | None = None,
) -> Table:
    """Load a table previously written by :func:`save_table`.

    Strict by default: damaged files raise.  With ``salvage``, torn and
    truncated page files are tolerated — surviving whole pages load, and
    each missing page is recorded in the report with the rows it
    covered.  ``retry_policy`` governs transient-read backoff for the
    initial file reads and all later page reads.
    """
    directory = pathlib.Path(directory)
    meta = _load_meta(directory)
    version = meta["format_version"]
    schema = _schema_from_json(meta["schema"])
    layout = Layout(meta["layout"])
    page_size = meta["page_size"]
    num_rows = meta["num_rows"]

    if layout in (Layout.ROW, Layout.PAX):
        file = _read_paged_file(
            directory / "table.pages",
            schema.name,
            page_size,
            version=version,
            salvage=salvage,
            retry_policy=retry_policy,
        )
        table_cls = RowTable if layout is Layout.ROW else PaxTable
        table = table_cls(schema, file, num_rows, page_size=page_size)
        _check_page_count(
            file, table.pages_for_rows(num_rows), table.row_span_of_page, salvage
        )
        return table

    column_files: dict[str, ColumnFile] = {}
    for attr in schema:
        column_file = build_column_file(schema, attr.name, page_size)
        column_file.file = _read_paged_file(
            directory / f"{attr.name}.pages",
            f"{schema.name}.{attr.name}",
            page_size,
            version=version,
            salvage=salvage,
            retry_policy=retry_policy,
        )
        column_meta = meta["columns"][attr.name]
        if column_meta["first_rows"] is not None:
            column_file.first_rows = np.asarray(
                column_meta["first_rows"], dtype=np.int64
            )
        column_file.effective_bits = column_meta["effective_bits"]
        expected = (
            len(column_file.first_rows)
            if column_file.first_rows is not None
            else math.ceil(num_rows / column_file.values_per_page)
        )
        _check_page_count(
            column_file.file,
            expected,
            lambda page_id, cf=column_file: cf.row_span_of_page(page_id, num_rows),
            salvage,
        )
        column_files[attr.name] = column_file
    return ColumnTable(schema, column_files, num_rows, page_size=page_size)


# --- partitioned tables ----------------------------------------------------------


def _partition_dirname(index: int) -> str:
    return f"p{index:04d}"


def save_partitioned_table(
    ptable, directory: str | pathlib.Path
) -> pathlib.Path:
    """Persist a :class:`~repro.storage.partition.PartitionedTable`.

    Layout on disk: one :func:`save_table` directory per partition
    (``p0000/``, ``p0001/``, ...) plus a checksummed ``manifest.json``
    describing the row ranges.  The whole tree is staged and renamed
    into place like :func:`save_table`, manifest last, so a crash
    mid-save never leaves a directory that opens.
    """
    directory = pathlib.Path(directory)
    directory.parent.mkdir(parents=True, exist_ok=True)
    staging = directory.parent / f".{directory.name}.saving"
    if staging.exists():
        shutil.rmtree(staging)
    staging.mkdir()
    for partition in ptable.partitions:
        save_table(partition.table, staging / _partition_dirname(partition.index))
    manifest = ptable.manifest()
    manifest["format_version"] = _FORMAT_VERSION
    manifest[_META_CRC_KEY] = _meta_checksum(manifest)
    _write_file_durably(
        staging / _MANIFEST_NAME, json.dumps(manifest, indent=2).encode("utf-8")
    )
    _fsync_directory(staging)
    if directory.exists():
        retired = directory.parent / f".{directory.name}.old"
        if retired.exists():
            shutil.rmtree(retired)
        directory.rename(retired)
        staging.rename(directory)
        shutil.rmtree(retired)
    else:
        staging.rename(directory)
    _fsync_directory(directory.parent)
    return directory


def load_partition_manifest(directory: str | pathlib.Path) -> dict:
    """Read and checksum-verify a partitioned table's manifest."""
    directory = pathlib.Path(directory)
    manifest_path = directory / _MANIFEST_NAME
    if not manifest_path.exists():
        raise StorageError(f"no {_MANIFEST_NAME} in {directory}")
    try:
        manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise StorageError(
            f"{manifest_path} is corrupt or half-written: {exc}"
        ) from exc
    stored = manifest.get(_META_CRC_KEY)
    if stored is None:
        raise ChecksumError(f"{manifest_path} has no checksum")
    actual = _meta_checksum(manifest)
    if stored != actual:
        raise ChecksumError(
            f"{manifest_path} checksum mismatch: stored {stored:#010x}, "
            f"computed {actual:#010x}"
        )
    return manifest


def is_partitioned_directory(directory: str | pathlib.Path) -> bool:
    """True when ``directory`` holds a partitioned table (has a manifest)."""
    return (pathlib.Path(directory) / _MANIFEST_NAME).exists()


def open_partitioned_table(
    directory: str | pathlib.Path,
    salvage: CorruptionReport | None = None,
    retry_policy: RetryPolicy | None = None,
):
    """Load a partitioned table written by :func:`save_partitioned_table`.

    Per-partition page damage follows the same strict/salvage policy as
    :func:`open_table`; manifest damage always raises, since without the
    row ranges the global Record IDs cannot be reconstructed.
    """
    from repro.storage.partition import PartitionedTable, TablePartition

    directory = pathlib.Path(directory)
    manifest = load_partition_manifest(directory)
    layout = Layout(manifest["layout"])
    partitions = []
    for entry in manifest["partitions"]:
        table = open_table(
            directory / _partition_dirname(entry["index"]),
            salvage=salvage,
            retry_policy=retry_policy,
        )
        partitions.append(
            TablePartition(
                index=entry["index"],
                row_start=entry["row_start"],
                row_end=entry["row_end"],
                table=table,
            )
        )
    return PartitionedTable(partitions, layout, page_size=manifest["page_size"])
