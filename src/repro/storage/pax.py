"""PAX page layout (Ailamaki et al. [4], discussed in Section 6).

PAX keeps a page's *contents* identical to a row page — the same tuples
live on the same page — but groups each attribute's values into a
*minipage*, column-major within the page.  I/O behaviour is therefore
identical to a row store (whole pages, one file), while the CPU touches
only the minipages of the attributes a query accesses, giving
column-store cache behaviour.  The paper cites this as the middle point
between NSM and DSM; implementing it lets the ablation benches separate
the cache effect from the I/O effect.

Layout of a PAX page::

    +--------+-----------+-----------+-     -+----------+-------+
    | count  | minipage  | minipage  |  ...  | FOR bases| info  |
    | uint32 | attr 1    | attr 2    |       | 8B each  | 16 B  |
    +--------+-----------+-----------+-------+----------+-------+

Each minipage holds ``tuples_per_page`` packed values of one attribute
(the per-attribute codecs apply, as in compressed row pages).
"""

from __future__ import annotations

import struct

import numpy as np

from repro.compression.base import Codec, CodecKind, PageCodecState
from repro.compression.registry import build_codec
from repro.errors import PageFormatError, StorageError
from repro.storage.page import _assemble, _disassemble, page_payload_bytes
from repro.storage.page import DEFAULT_PAGE_SIZE
from repro.types.schema import TableSchema

_BASE_SLOT = struct.Struct("<q")
_FRAME_KINDS = (CodecKind.FOR, CodecKind.FOR_DELTA)


class PaxPageCodec:
    """Encodes/decodes PAX pages: per-attribute minipages."""

    def __init__(self, schema: TableSchema, page_size: int = DEFAULT_PAGE_SIZE):
        self.schema = schema
        self.page_size = page_size
        self._codecs: list[Codec] = [
            build_codec(attr.spec, attr.attr_type) for attr in schema
        ]
        self._bits = [codec.bits_per_value for codec in self._codecs]
        self._frame_attrs = [
            index
            for index, attr in enumerate(schema)
            if attr.spec.kind in _FRAME_KINDS
        ]
        base_area = _BASE_SLOT.size * len(self._frame_attrs)
        payload = page_payload_bytes(page_size) - base_area
        if payload <= 0:
            raise StorageError(
                f"page size {page_size} cannot hold {len(self._frame_attrs)} "
                "frame base slots"
            )
        self._payload_bytes = payload
        # Capacity: each tuple needs packed_tuple_bits, but minipages are
        # byte-aligned, so solve for the largest count whose minipage
        # byte sizes fit.
        self.tuples_per_page = self._solve_capacity(payload)
        if self.tuples_per_page <= 0:
            raise StorageError("PAX tuple does not fit in one page")
        self._minipage_bytes = [
            self._minipage_size(bits, self.tuples_per_page) for bits in self._bits
        ]
        self._minipage_offsets = np.cumsum([0] + self._minipage_bytes[:-1]).tolist()

    @staticmethod
    def _minipage_size(bits: int, count: int) -> int:
        return (bits * count + 7) // 8

    def _solve_capacity(self, payload: int) -> int:
        total_bits = sum(self._bits)
        count = (payload * 8) // total_bits
        while count > 0:
            needed = sum(self._minipage_size(bits, count) for bits in self._bits)
            if needed <= payload:
                return count
            count -= 1
        return 0

    @property
    def stride(self) -> int:
        """Average stored bytes per tuple (for reporting)."""
        return (sum(self._bits) + 7) // 8

    def minipage_extent(self, attr_index: int) -> tuple[int, int]:
        """(byte offset within payload, byte length) of one minipage."""
        return self._minipage_offsets[attr_index], self._minipage_bytes[attr_index]

    def encode(self, page_id: int, columns: dict[str, np.ndarray]) -> bytes:
        """Build one PAX page from column slices (same length each)."""
        counts = {len(col) for col in columns.values()}
        if len(counts) != 1:
            raise PageFormatError(f"ragged column slices: {sorted(counts)}")
        count = counts.pop()
        if count > self.tuples_per_page:
            raise PageFormatError(
                f"{count} tuples exceed page capacity {self.tuples_per_page}"
            )
        parts = []
        bases = []
        for index, attr in enumerate(self.schema):
            codec = self._codecs[index]
            payload, state = codec.encode_page(columns[attr.name])
            if index in self._frame_attrs:
                bases.append(state.base)
            parts.append(payload.ljust(self._minipage_bytes[index], b"\x00"))
        body = b"".join(parts)
        base_area = b"".join(_BASE_SLOT.pack(base) for base in bases)
        payload_area = body.ljust(self._payload_bytes, b"\x00") + base_area
        return _assemble(self.page_size, count, payload_area, page_id, 0)

    def _split(self, page: bytes) -> tuple[int, int, bytes, list[int]]:
        count, payload, page_id, _base = _disassemble(page, self.page_size)
        if count > self.tuples_per_page:
            raise PageFormatError(
                f"page claims {count} tuples, capacity is {self.tuples_per_page}"
            )
        base_area = payload[self._payload_bytes :]
        bases = [
            _BASE_SLOT.unpack_from(base_area, i * _BASE_SLOT.size)[0]
            for i in range(len(self._frame_attrs))
        ]
        return page_id, count, payload[: self._payload_bytes], bases

    def decode_attribute(self, page: bytes, name: str) -> tuple[int, int, np.ndarray]:
        """Decode one attribute's minipage: ``(page_id, count, values)``.

        This is the PAX payoff: other attributes' minipages are never
        touched.
        """
        index = self.schema.index_of(name)
        page_id, count, payload, bases = self._split(page)
        offset, length = self.minipage_extent(index)
        minipage = payload[offset : offset + length]
        state = PageCodecState(base=self._base_for(index, bases))
        values = self._codecs[index].decode_page(minipage, count, state)
        return page_id, count, values

    def decode_columns(self, page: bytes) -> tuple[int, int, dict[str, np.ndarray]]:
        """Decode every attribute (row-page-compatible interface)."""
        page_id, count, payload, bases = self._split(page)
        columns = {}
        for index, attr in enumerate(self.schema):
            offset, length = self.minipage_extent(index)
            state = PageCodecState(base=self._base_for(index, bases))
            columns[attr.name] = self._codecs[index].decode_page(
                payload[offset : offset + length], count, state
            )
        return page_id, count, columns

    def _base_for(self, attr_index: int, bases: list[int]) -> int:
        if attr_index in self._frame_attrs:
            return bases[self._frame_attrs.index(attr_index)]
        return 0

    def attribute_bits(self, name: str) -> int:
        """Packed width of one attribute's values."""
        return self._bits[self.schema.index_of(name)]

    def codec_for(self, name: str) -> Codec:
        """The runtime codec of one attribute."""
        return self._codecs[self.schema.index_of(name)]
