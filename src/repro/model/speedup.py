"""The column-over-row speedup formula and its helpers.

The paper fills the formula's per-operator instruction counts "from our
experimental section"; :func:`analytic_scanner_params` derives the same
counts from the engine's calibration constants, and
:mod:`repro.model.calibrate` can instead extract them from a measured
run.
"""

from __future__ import annotations

from repro.cpusim.calibration import Calibration, DEFAULT_CALIBRATION
from repro.engine.blocks import DEFAULT_BLOCK_SIZE
from repro.errors import CalibrationError
from repro.model.params import HardwareParams, QueryShape, ScannerParams
from repro.model.rates import (
    cpu_rate,
    disk_rate_column,
    disk_rate_row,
    query_rate,
)
from repro.storage.layout import Layout
from repro.storage.page import DEFAULT_PAGE_SIZE


def analytic_scanner_params(
    shape: QueryShape,
    layout: Layout,
    calibration: Calibration = DEFAULT_CALIBRATION,
    page_size: int = DEFAULT_PAGE_SIZE,
    block_size: int = DEFAULT_BLOCK_SIZE,
) -> ScannerParams:
    """Per-tuple scanner costs implied by the engine's cost constants."""
    c = calibration
    sel = shape.selectivity
    k = shape.selected_attributes
    avg_width = shape.selected_bytes / k

    if layout is Layout.ROW:
        i_user = (
            c.inst_tuple_iter_row
            + c.inst_predicate
            + avg_width * c.inst_predicate_byte
            + sel * k * c.inst_copy_value
            + sel * shape.selected_bytes * c.inst_copy_byte
            + c.inst_page_overhead * shape.tuple_width / page_size
            + c.inst_block_overhead * sel / block_size
        )
        i_system = (
            c.sys_cycles_per_byte * shape.tuple_width
            + c.sys_cycles_per_request
            * shape.tuple_width
            / (c.io_unit_bytes * c.num_disks)
        )
        mem_bytes = shape.tuple_width
    elif layout is Layout.COLUMN:
        first_width = avg_width
        i_user = (
            c.inst_value_iter_col
            + c.inst_predicate
            + first_width * c.inst_predicate_byte
            + sel * (c.inst_copy_value + (first_width + 4) * c.inst_copy_byte)
            + (k - 1)
            * sel
            * (c.inst_position + c.inst_copy_value + avg_width * c.inst_copy_byte)
            + c.inst_page_overhead * shape.selected_bytes / page_size
            + c.inst_block_overhead * k * sel / block_size
        )
        i_system = (
            c.sys_cycles_per_byte * shape.selected_bytes
            + c.sys_cycles_per_request
            * shape.selected_bytes
            / (c.io_unit_bytes * c.num_disks)
        )
        # The first column streams densely; later columns stream in
        # full only when the position list is dense enough for the
        # prefetcher (the engine's 50 % line-coverage rule, which an
        # average-width column crosses at roughly line/width the
        # selectivity).
        touched_fraction = min(
            1.0, sel * calibration.l2_line_bytes / max(avg_width, 1e-9)
        )
        mem_bytes = first_width + (shape.selected_bytes - first_width) * touched_fraction
    else:
        raise CalibrationError(f"no analytic params for layout {layout}")
    return ScannerParams(
        i_user=i_user, i_system=i_system, mem_bytes_per_tuple=mem_bytes
    )


def speedup(
    hardware: HardwareParams,
    shape: QueryShape,
    row_scanner: ScannerParams,
    column_scanner: ScannerParams,
    operator_instructions: list[float] = (),
) -> float:
    """The Section 5 speedup of columns over rows for one query."""
    n = 1_000_000  # cancels out; any cardinality works
    disk_row = disk_rate_row(hardware, [(n, shape.tuple_width)])
    disk_col = disk_rate_column(
        hardware, [(n, shape.tuple_width, shape.projection_factor)]
    )
    cpu_row = cpu_rate(hardware, [row_scanner], operator_instructions)
    cpu_col = cpu_rate(hardware, [column_scanner], operator_instructions)
    rate_row = query_rate(disk_row, cpu_row)
    rate_col = query_rate(disk_col, cpu_col)
    if rate_row <= 0:
        raise CalibrationError("row rate is zero; check scanner parameters")
    return rate_col / rate_row


class SpeedupModel:
    """Convenience wrapper: calibration constants → speedup predictions."""

    def __init__(
        self,
        calibration: Calibration = DEFAULT_CALIBRATION,
        operator_instructions: list[float] = (),
    ):
        self.calibration = calibration
        self.operator_instructions = list(operator_instructions)

    def predict(self, shape: QueryShape, cpdb: float | None = None) -> float:
        """Predicted column-over-row speedup for one query shape."""
        hardware = HardwareParams(
            cpdb=cpdb if cpdb is not None else self.calibration.cpdb,
            mem_bytes_per_cycle=(
                self.calibration.l2_line_bytes / self.calibration.seq_line_cycles
            ),
            clock_hz=self.calibration.clock_hz,
        )
        row_params = analytic_scanner_params(shape, Layout.ROW, self.calibration)
        col_params = analytic_scanner_params(shape, Layout.COLUMN, self.calibration)
        return speedup(
            hardware, shape, row_params, col_params, self.operator_instructions
        )

    def rates(self, shape: QueryShape, cpdb: float | None = None) -> dict[str, float]:
        """Disk and CPU rates per layout (tuples/sec), for diagnostics."""
        hardware = HardwareParams(
            cpdb=cpdb if cpdb is not None else self.calibration.cpdb,
            mem_bytes_per_cycle=(
                self.calibration.l2_line_bytes / self.calibration.seq_line_cycles
            ),
            clock_hz=self.calibration.clock_hz,
        )
        n = 1_000_000
        row_params = analytic_scanner_params(shape, Layout.ROW, self.calibration)
        col_params = analytic_scanner_params(shape, Layout.COLUMN, self.calibration)
        return {
            "disk_row": disk_rate_row(hardware, [(n, shape.tuple_width)]),
            "disk_column": disk_rate_column(
                hardware, [(n, shape.tuple_width, shape.projection_factor)]
            ),
            "cpu_row": cpu_rate(hardware, [row_params], self.operator_instructions),
            "cpu_column": cpu_rate(
                hardware, [col_params], self.operator_instructions
            ),
        }


def crossover_projectivity(
    model: SpeedupModel,
    tuple_width: float,
    num_attributes: int,
    selectivity: float,
    cpdb: float | None = None,
) -> float | None:
    """Smallest projected fraction where rows beat columns, or ``None``.

    Sweeps the number of selected attributes (equal-width columns) and
    returns ``selected_bytes / tuple_width`` at the first point where the
    predicted speedup drops below 1.
    """
    for k in range(1, num_attributes + 1):
        selected = tuple_width * k / num_attributes
        shape = QueryShape(
            tuple_width=tuple_width,
            selected_bytes=selected,
            selectivity=selectivity,
            num_attributes=num_attributes,
            selected_attributes=k,
        )
        if model.predict(shape, cpdb=cpdb) < 1.0:
            return selected / tuple_width
    return None
