"""Parallel-scan speedup benchmark (serial vs 2 and 4 workers).

Runs the Figure 6 baseline workload — a LINEITEM selection at 10%
selectivity projecting four attributes — through the partitioned
parallel executor and reports three things:

1. **correctness (hard gate)** — every parallel configuration must be
   byte-identical to the serial scan; any mismatch fails the run;
2. **wall-clock speedup** — median of repeated timed runs, serial vs
   workers = 2 and 4.  The >= 1.5x-at-4-workers expectation is only
   enforced when the machine actually has >= 4 cores (CI runners and
   containers are often 1-2 cores, where forked workers just contend);
   override the threshold with ``REPRO_PARALLEL_SPEEDUP``;
3. **paper-scale model speedup** — :func:`measure_parallel_scan`'s
   deterministic ``max(slowest partition stream, CPU / workers)``
   estimate, which is machine-independent and always reported.

Emits a provenance-stamped ``bench_parallel_scan.json`` under ``--out``
for the CI artifact upload.

Usage::

    python benchmarks/bench_parallel_scan.py --out parallel-artifacts
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import statistics
import sys
import time

import numpy as np

from repro.data.tpch import generate_lineitem
from repro.engine.executor import run_scan
from repro.engine.parallel import parallel_query, shutdown_pools
from repro.engine.predicate import predicate_for_selectivity
from repro.engine.query import ScanQuery
from repro.experiments.runner import measure_parallel_scan
from repro.obs.provenance import provenance
from repro.storage.layout import Layout
from repro.storage.loader import load_table

#: Enough rows that a scan takes real work — well past the executor's
#: fork-share threshold (workers inherit the table copy-on-write) and
#: big enough that per-query pool setup is noise, not signal.
ROWS = 400_000
SELECTIVITY = 0.10
SELECT = ("L_PARTKEY", "L_ORDERKEY", "L_QUANTITY", "L_SHIPMODE")
WORKER_COUNTS = (2, 4)


def _workload():
    data = generate_lineitem(ROWS, seed=5)
    table = load_table(data, Layout.COLUMN)
    predicate = predicate_for_selectivity(
        "L_PARTKEY", data.column("L_PARTKEY"), SELECTIVITY
    )
    query = ScanQuery("LINEITEM", select=SELECT, predicates=(predicate,))
    return table, query


def _assert_identical(parallel, serial, label: str) -> None:
    assert np.array_equal(parallel.positions, serial.positions), label
    assert set(parallel.columns) == set(serial.columns), label
    for name in serial.columns:
        assert np.array_equal(parallel.columns[name], serial.columns[name]), (
            label,
            name,
        )


def _median_time(fn, repeats: int) -> float:
    samples = []
    for _ in range(repeats):
        started = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - started)
    return statistics.median(samples)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--repeats", type=int, default=5, help="timed runs per arm")
    parser.add_argument(
        "--out",
        default="parallel-artifacts",
        help="directory for bench_parallel_scan.json",
    )
    args = parser.parse_args(argv)
    threshold = float(os.environ.get("REPRO_PARALLEL_SPEEDUP", "1.5"))
    cores = os.cpu_count() or 1

    out_dir = pathlib.Path(args.out)
    out_dir.mkdir(parents=True, exist_ok=True)

    table, query = _workload()
    serial = run_scan(table, query)
    print(
        f"workload: {ROWS} LINEITEM rows, {SELECTIVITY:.0%} selectivity, "
        f"{serial.num_tuples} qualifying tuples, {cores} core(s)"
    )

    # 1. Correctness gate (also warms both code paths).
    for workers in WORKER_COUNTS:
        result = parallel_query(table, query, workers=workers)
        _assert_identical(result, serial, f"workers={workers}")
    print("correctness: parallel output byte-identical to serial for "
          + ", ".join(f"{w} workers" for w in WORKER_COUNTS))

    # 2. Wall-clock timing.
    serial_time = _median_time(lambda: run_scan(table, query), args.repeats)
    wall = {}
    for workers in WORKER_COUNTS:
        elapsed = _median_time(
            lambda w=workers: parallel_query(table, query, workers=w), args.repeats
        )
        wall[workers] = {
            "elapsed": elapsed,
            "speedup": serial_time / elapsed if elapsed else float("inf"),
        }
    print(f"wall clock: serial {serial_time * 1e3:.1f} ms")
    for workers, numbers in wall.items():
        print(
            f"  {workers} workers: {numbers['elapsed'] * 1e3:.1f} ms "
            f"({numbers['speedup']:.2f}x)"
        )

    # 3. Paper-scale model estimate (deterministic, machine-independent).
    model = {}
    for workers in WORKER_COUNTS:
        estimate = measure_parallel_scan(table, query, workers=workers)
        model[workers] = {
            "elapsed": estimate.elapsed,
            "serial_elapsed": estimate.serial.elapsed,
            "io_elapsed": estimate.io_elapsed,
            "cpu_total": estimate.cpu.total,
            "speedup": estimate.speedup,
        }
        print(
            f"model: {workers} workers -> {estimate.elapsed:.2f}s "
            f"vs serial {estimate.serial.elapsed:.2f}s ({estimate.speedup:.2f}x)"
        )

    enforced = cores >= 4
    speedup4 = wall[4]["speedup"]
    ok = speedup4 >= threshold if enforced else True
    if enforced:
        print(
            f"speedup gate (>= {threshold:.2f}x at 4 workers on {cores} cores): "
            f"{speedup4:.2f}x -> {'OK' if ok else 'FAIL'}"
        )
    else:
        print(
            f"speedup gate skipped: only {cores} core(s); "
            f"reporting {speedup4:.2f}x informationally"
        )

    (out_dir / "bench_parallel_scan.json").write_text(
        json.dumps(
            {
                "rows": ROWS,
                "selectivity": SELECTIVITY,
                "cores": cores,
                "serial_wall_seconds": serial_time,
                "wall": {str(k): v for k, v in wall.items()},
                "model": {str(k): v for k, v in model.items()},
                "threshold": threshold,
                "gate_enforced": enforced,
                "ok": ok,
                "provenance": provenance(),
            },
            indent=2,
        )
        + "\n"
    )
    shutdown_pools()
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
