"""Delete vectors: a bitmap over global row positions.

The C-Store design the paper assumes (Figure 1) never updates the
read-optimized store in place: deletes are *marked* in a small
side-structure and physically reclaimed at the next bulk merge.  This
module is that side-structure — one bit per global Record ID, spanning
both the immutable base table (positions ``[0, base_rows)``) and the
write store's staged rows (positions ``[base_rows, total_rows)``), so
a single vector describes the whole hybrid table.

The in-memory form is a packed ``uint8`` numpy bitmap with vectorized
membership (:meth:`DeleteVector.is_deleted`) and prefix counts
(:meth:`DeleteVector.cumulative`) — exactly the two primitives the
hybrid scan layer needs to filter deleted rows out of a base scan and
remap the survivors' positions to rebuilt-table coordinates.

The serialized form (:meth:`DeleteVector.to_bytes`) is paged and
checksummed like every other on-disk structure in the storage layer: a
fixed header (magic, version, logical size, page payload size, page
count) protected by its own CRC32, followed by fixed-size payload pages
each carrying a CRC32 trailer.  ``tests/test_property_codecs.py``
property-tests the codec: roundtrip, set/clear idempotence, popcount
against a pure-Python oracle, and empty/full/boundary pages.
"""

from __future__ import annotations

import struct
import zlib

import numpy as np

from repro.errors import ChecksumError, StorageError

#: Serialized-form magic + version (bumped on incompatible change).
_MAGIC = b"RDV1"
_FORMAT_VERSION = 1
#: Header: magic, version, logical size (bits), page payload bytes,
#: page count, then a CRC32 over everything before it.
_HEADER = struct.Struct("<4sIQII")
_CRC = struct.Struct("<I")

#: Default payload bytes per serialized page (8192 deleted-row bits).
DEFAULT_PAGE_BYTES = 1024


class DeleteVector:
    """A growable bitmap over global row positions.

    ``size`` is the number of addressable positions; bits default to
    zero (live).  Setting a bit marks the row deleted; the structure is
    idempotent in both directions (re-deleting or re-clearing a row is
    a no-op and reports so).
    """

    __slots__ = ("_size", "_bits")

    def __init__(self, size: int = 0):
        if size < 0:
            raise StorageError(f"delete vector size must be >= 0: {size}")
        self._size = int(size)
        self._bits = np.zeros((self._size + 7) // 8, dtype=np.uint8)

    # --- shape ------------------------------------------------------------

    @property
    def size(self) -> int:
        """Number of addressable positions (live + deleted)."""
        return self._size

    def __len__(self) -> int:
        return self._size

    def grow(self, new_size: int) -> None:
        """Extend the addressable range; new positions start live."""
        if new_size < self._size:
            raise StorageError(
                f"delete vector cannot shrink: {self._size} -> {new_size}"
            )
        self._size = int(new_size)
        needed = (self._size + 7) // 8
        if needed > len(self._bits):
            grown = np.zeros(needed, dtype=np.uint8)
            grown[: len(self._bits)] = self._bits
            self._bits = grown

    def copy(self) -> "DeleteVector":
        dup = DeleteVector(0)
        dup._size = self._size
        dup._bits = self._bits.copy()
        return dup

    # --- bit operations ---------------------------------------------------

    def _check(self, position: int) -> int:
        position = int(position)
        if not 0 <= position < self._size:
            raise StorageError(
                f"position {position} outside delete vector [0, {self._size})"
            )
        return position

    def set(self, position: int) -> bool:
        """Mark one position deleted; True when it was live before."""
        position = self._check(position)
        byte, bit = divmod(position, 8)
        mask = np.uint8(1 << bit)
        was_live = not (self._bits[byte] & mask)
        self._bits[byte] |= mask
        return bool(was_live)

    def clear(self, position: int) -> bool:
        """Mark one position live again; True when it was deleted."""
        position = self._check(position)
        byte, bit = divmod(position, 8)
        mask = np.uint8(1 << bit)
        was_deleted = bool(self._bits[byte] & mask)
        self._bits[byte] &= np.uint8(~mask & 0xFF)
        return was_deleted

    def test(self, position: int) -> bool:
        """Whether one position is deleted."""
        position = self._check(position)
        byte, bit = divmod(position, 8)
        return bool(self._bits[byte] & np.uint8(1 << bit))

    def set_many(self, positions) -> int:
        """Mark a batch of positions deleted; returns how many were live."""
        newly = 0
        for position in np.asarray(positions, dtype=np.int64).tolist():
            if self.set(position):
                newly += 1
        return newly

    # --- vectorized views -------------------------------------------------

    def mask(self) -> np.ndarray:
        """Boolean deleted-mask over all ``size`` positions."""
        if self._size == 0:
            return np.zeros(0, dtype=bool)
        return np.unpackbits(self._bits, count=self._size, bitorder="little").astype(
            bool
        )

    def is_deleted(self, positions: np.ndarray) -> np.ndarray:
        """Vectorized membership test for an array of positions."""
        positions = np.asarray(positions, dtype=np.int64)
        if positions.size and (
            int(positions.min()) < 0 or int(positions.max()) >= self._size
        ):
            raise StorageError(
                f"positions outside delete vector [0, {self._size})"
            )
        bits = self._bits[positions >> 3] >> (positions & 7).astype(np.uint8)
        return (bits & 1).astype(bool)

    def count(self) -> int:
        """Popcount: how many positions are deleted."""
        if self._size == 0:
            return 0
        return int(self.mask().sum())

    @property
    def is_empty(self) -> bool:
        """True when no position is deleted."""
        return not self._bits.any()

    def deleted_positions(self) -> np.ndarray:
        """The deleted positions, ascending."""
        return np.flatnonzero(self.mask()).astype(np.int64)

    def cumulative(self) -> np.ndarray:
        """Prefix counts: ``cum[p]`` = deleted positions strictly before p.

        Length ``size + 1`` (``cum[size]`` is the total popcount), so a
        surviving row at global position ``p`` lands at rebuilt-table
        position ``p - cum[p]``.
        """
        out = np.zeros(self._size + 1, dtype=np.int64)
        if self._size:
            np.cumsum(self.mask(), out=out[1:])
        return out

    # --- paged checksummed codec -----------------------------------------

    def to_bytes(self, page_bytes: int = DEFAULT_PAGE_BYTES) -> bytes:
        """Serialize: CRC-protected header + fixed-size CRC-trailed pages.

        Every page carries exactly ``page_bytes`` of bitmap payload
        (the last page zero-padded to the boundary), so damage is
        localizable to one page and the decoder can verify lengths
        before touching payloads.
        """
        if page_bytes <= 0:
            raise StorageError(f"page_bytes must be positive: {page_bytes}")
        payload = self._bits[: (self._size + 7) // 8].tobytes()
        num_pages = (len(payload) + page_bytes - 1) // page_bytes
        head = _HEADER.pack(
            _MAGIC, _FORMAT_VERSION, self._size, page_bytes, num_pages
        )
        parts = [head, _CRC.pack(zlib.crc32(head))]
        for index in range(num_pages):
            chunk = payload[index * page_bytes : (index + 1) * page_bytes]
            chunk = chunk.ljust(page_bytes, b"\x00")
            parts.append(chunk)
            parts.append(_CRC.pack(zlib.crc32(chunk)))
        return b"".join(parts)

    @classmethod
    def from_bytes(cls, data: bytes) -> "DeleteVector":
        """Decode :meth:`to_bytes` output, verifying every checksum."""
        if len(data) < _HEADER.size + _CRC.size:
            raise StorageError(
                f"delete vector blob too short: {len(data)} bytes"
            )
        head = data[: _HEADER.size]
        magic, version, size, page_bytes, num_pages = _HEADER.unpack(head)
        if magic != _MAGIC:
            raise StorageError(f"bad delete vector magic: {magic!r}")
        if version != _FORMAT_VERSION:
            raise StorageError(f"unsupported delete vector version: {version}")
        (stored_crc,) = _CRC.unpack_from(data, _HEADER.size)
        if stored_crc != zlib.crc32(head):
            raise ChecksumError("delete vector header checksum mismatch")
        payload_bytes = (size + 7) // 8
        expected_pages = (payload_bytes + page_bytes - 1) // page_bytes
        if num_pages != expected_pages:
            raise StorageError(
                f"delete vector page count {num_pages} inconsistent with "
                f"size {size} at {page_bytes} bytes/page"
            )
        expected_len = (
            _HEADER.size + _CRC.size + num_pages * (page_bytes + _CRC.size)
        )
        if len(data) != expected_len:
            raise StorageError(
                f"delete vector blob is {len(data)} bytes, expected "
                f"{expected_len} (torn write or truncation)"
            )
        chunks = []
        offset = _HEADER.size + _CRC.size
        for index in range(num_pages):
            chunk = data[offset : offset + page_bytes]
            offset += page_bytes
            (page_crc,) = _CRC.unpack_from(data, offset)
            offset += _CRC.size
            if page_crc != zlib.crc32(chunk):
                raise ChecksumError(
                    f"delete vector page {index} checksum mismatch"
                )
            chunks.append(chunk)
        vector = cls(size)
        if payload_bytes:
            payload = b"".join(chunks)[:payload_bytes]
            vector._bits = np.frombuffer(payload, dtype=np.uint8).copy()
            # Bits past the logical size must be zero (they are never
            # addressable, so accepting garbage there would let two
            # unequal blobs decode to equal vectors).
            tail_bits = size & 7
            if tail_bits and (vector._bits[-1] >> tail_bits):
                raise StorageError(
                    "delete vector has set bits past its logical size"
                )
        return vector

    def __eq__(self, other) -> bool:
        if not isinstance(other, DeleteVector):
            return NotImplemented
        return self._size == other._size and np.array_equal(
            self.mask(), other.mask()
        )

    def __repr__(self) -> str:
        return f"DeleteVector(size={self._size}, deleted={self.count()})"
