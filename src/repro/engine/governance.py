"""Per-query lifecycle governance: deadlines, cancellation, memory budgets.

The engine's run-to-completion scanners (the paper's Section 4 design)
have no notion of "stop": a slow partition, a runaway sort, or a dead
worker can hang or OOM the whole query.  This module adds the three
cooperative controls every governed query carries in one
:class:`QueryContext` hung off
:attr:`~repro.engine.context.ExecutionContext.governance`:

* a wall-clock **deadline** — checked in every ``Operator.next()`` and
  in the page loops of all four scanner architectures; expiry raises
  :class:`~repro.errors.QueryTimeout`;
* a **cancellation token** — an out-of-band flag (another thread, a
  signal handler, a supervisor) checked at the same points; raises
  :class:`~repro.errors.QueryCancelled`;
* a **memory budget** — accounted at block granularity by the
  materializing operators (sort, hash- and sort-based aggregation)
  through :class:`GovernedAccumulator`.  A reservation that would blow
  the budget first triggers a *reduced-width retry* (accumulated int64
  columns and positions are narrowed to the smallest dtype holding
  their values); only if the narrowed working set still does not fit
  does the operator abort, spill-free, with
  :class:`~repro.errors.MemoryBudgetExceeded`.

Every control is cooperative and raises *out* of the plan: a governed
query either completes, degrades, or fails fast with a typed
:class:`~repro.errors.GovernanceError` — partial results are never
observable.  With ``governance is None`` (the default) the operator
layer pays one attribute load and a branch per check site.

:class:`CircuitBreaker` and :class:`SupervisionPolicy` configure the
parallel executor's supervision ladder (see
:mod:`repro.engine.parallel`): per-worker heartbeats and deadlines,
kill-and-retry of single partitions, worker-count degradation, and
breaker-directed salvage routing for partitions that fail repeatedly.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.engine.blocks import Block, concat_blocks
from repro.errors import (
    GovernanceError,  # noqa: F401  (re-exported for callers)
    MemoryBudgetExceeded,
    QueryCancelled,
    QueryTimeout,
)
from repro.obs import metrics as obs_metrics
from repro.obs import recorder as flight

__all__ = [
    "CancellationToken",
    "CircuitBreaker",
    "GovernanceError",
    "GovernedAccumulator",
    "QueryContext",
    "SupervisionPolicy",
    "block_nbytes",
    "narrow_block",
]


class CancellationToken:
    """A one-way flag that asks a running query to stop.

    Cooperative: the engine polls the token at block granularity, so a
    cancel lands at the next check site, not instantly.  Tokens are
    single-use per logical request but may be shared by several queries
    (cancel a whole session at once).
    """

    __slots__ = ("_cancelled", "_reason")

    def __init__(self) -> None:
        self._cancelled = False
        self._reason = ""

    def cancel(self, reason: str = "") -> None:
        """Trip the token; later checks raise ``QueryCancelled``."""
        self._cancelled = True
        if reason and not self._reason:
            self._reason = reason

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    @property
    def reason(self) -> str:
        return self._reason


@dataclass
class QueryContext:
    """Lifecycle policy and accounting for one query execution.

    Build one with :meth:`start` (relative timeout) or directly with an
    absolute ``deadline`` (``time.monotonic()`` seconds — valid across
    forked workers, which share the monotonic clock).
    """

    #: Absolute ``time.monotonic()`` second the query must finish by.
    deadline: float | None = None
    #: Working-set budget in bytes for materializing operators.
    memory_budget: int | None = None
    token: CancellationToken = field(default_factory=CancellationToken)
    #: Where the policy came from (annotates errors and EXPLAIN output).
    label: str = "query"

    # --- accounting (mutated during execution) ---------------------------
    memory_used: int = 0
    memory_peak: int = 0
    ticks: int = 0
    narrow_retries: int = 0
    #: Human-readable governance outcomes, in order of occurrence
    #: (degradations, retries, narrowing, breaker trips, aborts).
    outcomes: list[str] = field(default_factory=list)
    #: Called with this context on every check — heartbeat writers and
    #: the chaos harness hook in here.  Never pickled.
    on_tick: Callable[["QueryContext"], None] | None = field(
        default=None, repr=False, compare=False
    )

    @classmethod
    def start(
        cls,
        timeout: float | None = None,
        memory_budget: int | None = None,
        token: CancellationToken | None = None,
        label: str = "query",
    ) -> "QueryContext":
        """A context whose deadline is ``timeout`` seconds from now."""
        if timeout is not None and timeout < 0:
            raise GovernanceError(f"negative query timeout: {timeout}")
        if memory_budget is not None and memory_budget <= 0:
            raise GovernanceError(f"non-positive memory budget: {memory_budget}")
        return cls(
            deadline=None if timeout is None else time.monotonic() + timeout,
            memory_budget=memory_budget,
            token=token or CancellationToken(),
            label=label,
        )

    # --- deadline / cancellation ----------------------------------------

    def remaining(self) -> float | None:
        """Seconds until the deadline (may be negative), or ``None``."""
        if self.deadline is None:
            return None
        return self.deadline - time.monotonic()

    @property
    def expired(self) -> bool:
        return self.deadline is not None and time.monotonic() > self.deadline

    def check(self, where: str = "") -> None:
        """One cooperative checkpoint; raises the typed error when due.

        Called per ``Operator.next()`` and per scanner page — cheap
        (a counter bump, a flag test, one ``monotonic()`` read) relative
        to decoding a page.
        """
        self.ticks += 1
        hook = self.on_tick
        if hook is not None:
            hook(self)
        if self.token.cancelled:
            obs_metrics.GOVERNANCE_CANCELLATIONS.inc()
            detail = self.token.reason or "cancellation token tripped"
            self.note(f"cancelled in {where or 'plan'}: {detail}")
            flight.record(
                "governance.cancel",
                self.label,
                where=where or "plan",
                reason=detail,
            )
            raise QueryCancelled(f"{self.label} cancelled ({detail})")
        if self.deadline is not None and time.monotonic() > self.deadline:
            obs_metrics.GOVERNANCE_TIMEOUTS.inc()
            self.note(f"deadline exceeded in {where or 'plan'}")
            flight.record(
                "governance.timeout",
                self.label,
                where=where or "plan",
                overdue_s=round(-self.remaining(), 6),
            )
            raise QueryTimeout(
                f"{self.label} exceeded its deadline "
                f"(overdue by {-self.remaining():.3f}s at {where or 'plan'})"
            )

    # --- memory budget ----------------------------------------------------

    def try_reserve(self, nbytes: int) -> bool:
        """Commit ``nbytes`` if it fits the budget; False if it would not."""
        if nbytes < 0:
            raise GovernanceError(f"negative memory reservation: {nbytes}")
        if (
            self.memory_budget is not None
            and self.memory_used + nbytes > self.memory_budget
        ):
            return False
        self.memory_used += nbytes
        if self.memory_used > self.memory_peak:
            self.memory_peak = self.memory_used
        return True

    def release(self, nbytes: int) -> None:
        self.memory_used = max(0, self.memory_used - nbytes)

    def budget_abort(self, what: str, needed: int) -> None:
        """Record and raise the spill-free typed abort."""
        obs_metrics.GOVERNANCE_BUDGET_ABORTS.inc()
        flight.record(
            "governance.budget_abort", self.label, what=what, needed=needed
        )
        self.note(
            f"memory budget exceeded in {what}: needed {needed:,} B "
            f"(+{self.memory_used:,} B held) of {self.memory_budget:,} B"
        )
        raise MemoryBudgetExceeded(
            f"{self.label}: {what} needs {needed:,} B beyond the "
            f"{self.memory_budget:,} B budget ({self.memory_used:,} B held) "
            "even after a reduced-width retry"
        )

    # --- reporting --------------------------------------------------------

    def note(self, event: str) -> None:
        """Append one governance outcome (kept short; feeds EXPLAIN)."""
        self.outcomes.append(event)

    def snapshot(self) -> dict:
        """Serializable summary for ``info`` dicts and profiles."""
        return {
            "deadline_remaining_s": self.remaining(),
            "memory_budget": self.memory_budget,
            "memory_peak": self.memory_peak,
            "ticks": self.ticks,
            "narrow_retries": self.narrow_retries,
            "cancelled": self.token.cancelled,
            "outcomes": list(self.outcomes),
        }


# --- block-granular memory accounting --------------------------------------


def block_nbytes(block: Block) -> int:
    """The working-set bytes one block pins: columns plus positions."""
    return int(block.positions.nbytes) + sum(
        int(column.nbytes) for column in block.columns.values()
    )


def _narrow_dtype(values: np.ndarray) -> np.dtype | None:
    """The smallest signed dtype holding ``values``, if narrower."""
    if values.dtype.kind != "i" or values.dtype.itemsize <= 2 or not values.size:
        return None
    lo, hi = int(values.min()), int(values.max())
    for candidate in (np.int16, np.int32):
        info = np.iinfo(candidate)
        if info.min <= lo and hi <= info.max:
            if np.dtype(candidate).itemsize < values.dtype.itemsize:
                return np.dtype(candidate)
            return None
    return None


def narrow_block(block: Block) -> Block:
    """The reduced-width image of one block (value-preserving).

    Integer columns and the positions array are downcast to the
    smallest dtype that holds their actual values; comparisons, stable
    sorts, group detection, and aggregation arithmetic all commute with
    the narrowing, and :class:`GovernedAccumulator` widens the merged
    result back to the original dtypes before it leaves the operator.
    """
    columns = {}
    changed = False
    for name, values in block.columns.items():
        dtype = _narrow_dtype(values)
        if dtype is not None:
            columns[name] = values.astype(dtype)
            changed = True
        else:
            columns[name] = values
    positions = block.positions
    dtype = _narrow_dtype(positions)
    if dtype is not None:
        positions = positions.astype(dtype)
        changed = True
    if not changed:
        return block
    return Block(columns=columns, positions=positions)


class GovernedAccumulator:
    """Accumulate child blocks under the query's memory budget.

    The materializing operators (sort, hash/sort aggregation) drain
    their child through one of these: each incoming block reserves its
    bytes against the :class:`QueryContext` budget.  On the first
    reservation that does not fit, the accumulator attempts the
    *reduced-width retry* — every held block (and the incoming one) is
    narrowed via :func:`narrow_block` and the reservation re-measured.
    If the narrow working set fits, accumulation continues at reduced
    width (later blocks are narrowed on arrival); if not, the operator
    aborts spill-free with :class:`~repro.errors.MemoryBudgetExceeded`.

    :meth:`finish` concatenates, widens back to the original dtypes,
    and releases the reservation — the budget bounds the *working set*
    of in-flight materialization, not the final result handed
    downstream.
    """

    def __init__(self, governance: QueryContext | None, what: str):
        self.governance = governance
        self.what = what
        self.blocks: list[Block] = []
        self.reserved = 0
        self.narrowed = False
        self._dtypes: dict[str, np.dtype] = {}
        self._positions_dtype: np.dtype | None = None

    def add(self, block: Block) -> None:
        """Account and hold one child block."""
        if not len(block):
            return
        for name, values in block.columns.items():
            self._dtypes.setdefault(name, values.dtype)
        if self._positions_dtype is None:
            self._positions_dtype = block.positions.dtype
        governance = self.governance
        if governance is None or governance.memory_budget is None:
            self.blocks.append(block)
            return
        if self.narrowed:
            block = narrow_block(block)
        nbytes = block_nbytes(block)
        if governance.try_reserve(nbytes):
            self.blocks.append(block)
            self.reserved += nbytes
            return
        # Reduced-width retry: narrow the whole working set once.
        if not self.narrowed:
            narrow = [narrow_block(held) for held in self.blocks]
            incoming = narrow_block(block)
            total = sum(block_nbytes(b) for b in narrow) + block_nbytes(incoming)
            governance.release(self.reserved)
            if governance.try_reserve(total):
                obs_metrics.GOVERNANCE_NARROW_RETRIES.inc()
                governance.narrow_retries += 1
                governance.note(
                    f"{self.what}: reduced-width retry kept the working set "
                    f"at {total:,} B (was {self.reserved + nbytes:,} B)"
                )
                self.blocks = narrow
                self.blocks.append(incoming)
                self.reserved = total
                self.narrowed = True
                return
            # Re-hold the original reservation so the abort message (and
            # any outer accounting) reflects what the operator pinned.
            self.reserved = 0
            governance.budget_abort(self.what, needed=total)
        governance.budget_abort(self.what, needed=self.reserved + nbytes)

    def finish(self) -> Block:
        """The merged input at original dtypes; releases the reservation."""
        merged = concat_blocks(self.blocks)
        if self.narrowed:
            columns = {
                name: values.astype(self._dtypes[name])
                if values.dtype != self._dtypes[name]
                else values
                for name, values in merged.columns.items()
            }
            positions = merged.positions
            if (
                self._positions_dtype is not None
                and positions.dtype != self._positions_dtype
            ):
                positions = positions.astype(self._positions_dtype)
            merged = Block(columns=columns, positions=positions)
        if self.governance is not None and self.reserved:
            self.governance.release(self.reserved)
            self.reserved = 0
        self.blocks = []
        return merged


# --- parallel supervision configuration ------------------------------------


@dataclass(frozen=True)
class SupervisionPolicy:
    """Knobs of the parallel executor's supervision ladder."""

    #: Workers write a heartbeat at most this often (seconds).
    heartbeat_interval: float = 0.05
    #: Silence from a dispatched-but-unfinished worker for this long
    #: marks its partition stalled (killed, wedged, or starved).
    stall_timeout: float = 15.0
    #: Parent poll cadence while supervising outstanding partitions.
    poll_interval: float = 0.02
    #: Overall dispatch guard when the query has no deadline of its own.
    max_dispatch_seconds: float = 120.0

    def effective_stall_timeout(self, governance: QueryContext | None) -> float:
        """Stall budget, never extending past the query deadline."""
        budget = self.stall_timeout
        if governance is not None:
            remaining = governance.remaining()
            if remaining is not None:
                budget = min(budget, max(remaining, 0.0) + self.poll_interval)
        return budget


class CircuitBreaker:
    """Per-:class:`~repro.database.Database` memory of failing partitions.

    Keys are ``(table, partition index, row range)`` tuples.  After
    ``threshold`` recorded failures the breaker *opens* for that
    partition and the parallel executor routes it straight to a
    salvage-mode serial scan (skip-don't-crash) instead of burning
    another worker on it; a later clean non-salvage success closes it.
    """

    def __init__(self, threshold: int = 2):
        if threshold < 1:
            raise GovernanceError(f"breaker threshold must be >= 1: {threshold}")
        self.threshold = threshold
        self.failures: dict[tuple, int] = {}
        self.trips = 0

    def record_failure(self, key: tuple) -> bool:
        """Count one failure; True when this trip just opened the breaker."""
        count = self.failures.get(key, 0) + 1
        self.failures[key] = count
        if count == self.threshold:
            self.trips += 1
            obs_metrics.GOVERNANCE_BREAKER_TRIPS.inc()
            flight.record("governance.breaker_trip", key=str(key))
            return True
        return False

    def record_success(self, key: tuple) -> None:
        """A clean (non-salvage) success closes the breaker for this key."""
        self.failures.pop(key, None)

    def is_open(self, key: tuple) -> bool:
        return self.failures.get(key, 0) >= self.threshold

    def open_keys(self) -> list[tuple]:
        return sorted(k for k in self.failures if self.is_open(k))
