#!/usr/bin/env python3
"""Regenerate EXPERIMENTS.md from freshly-run experiments.

Runs every experiment (paper + extensions), embeds the regenerated
tables, and records the paper-vs-measured comparison for each.  Run
from the repository root::

    python benchmarks/generate_experiments_md.py
"""

from __future__ import annotations

import pathlib
import sys

from repro.experiments.figures import ALL_EXPERIMENTS

ROWS = 4_000
ROOT = pathlib.Path(__file__).resolve().parent.parent

#: Per-experiment commentary: what the paper reports vs what to look
#: for in the regenerated table.
COMMENTARY = {
    "figure-2": """\
**Paper:** contour of average column-over-row speedup at 50 % projection and
10 % selectivity; row stores hold an advantage only for tuples leaner than
~20 bytes in CPU-constrained (low-cpdb) configurations.
**Measured:** same shape — speedup < 1 only in the low-cpdb/lean-tuple corner
(0.75 at 4 B / 9 cpdb), saturating at the disk-bound bound of 2.0 elsewhere.""",
    "figure-2-measured": """\
**Paper:** Figure 2 is drawn from the Section 5 formula.  **Measured:** a
coarse version of the same grid re-derived by *simulation* on synthetic
tables (widths 8-32 B, four hardware points spanning cpdb 9-160) agrees
with the formula cell by cell.""",
    "figure-6": """\
**Paper:** row store flat at ~55 s (9.5 GB over ~180 MB/s) and insensitive to
projectivity; column store grows with selected bytes and crosses over above
~85 % of the tuple; column CPU exceeds row CPU as attributes accumulate, with
an L2/L1 jump when the string attributes (#9-#11) join.
**Measured:** row flat at 52.5 s; crossover at ~95 % of tuple bytes (within
the paper's ">85 %" region — the exact point depends on seek costs); column
CPU 2.1 → 13 s vs row ~6.7 s; usr-L2 jumps 0.3 → 1.2 s at attribute #11.""",
    "figure-7": """\
**Paper:** at 0.1 % selectivity I/O is unchanged; later scan nodes process one
in a thousand values, so extra attributes add negligible CPU and the string
columns' memory delays disappear.
**Measured:** identical elapsed times to Figure 6; column CPU growth over 16
attributes drops ~4× versus the 10 % case; usr-L2 stays ≤ 0.11 s.""",
    "figure-8": """\
**Paper:** ORDERS (32 B): smaller sys share, no visible memory delays in
either layout (the bus outruns the CPU on narrow tuples), and in a
memory-resident setting columns would lose at 10 % selectivity.
**Measured:** row flat at 10.8 s (1.9 GB); usr-L2 = 0 throughout; column CPU
(5.2 s at 7 attrs) exceeds row CPU (3.2 s).""",
    "figure-9": """\
**Paper:** ORDERS-Z (12 B packed): the column store turns CPU-bound and the
crossover moves left; FOR-delta shows a CPU jump at the second attribute
(whole-page decodes) where plain FOR (wider but random-access) does not; the
row store shows its first decompression-driven CPU rise.
**Measured:** all three effects reproduce — column elapsed = column CPU, the
FOR-delta jump at attribute 2 exceeds plain FOR's, and the column store loses
to the (I/O-bound) row store from ~24 selected bytes.""",
    "figure-10": """\
**Paper:** prefetch depth does not affect a single row scan; the column store
degrades steadily as depth shrinks (seeks dominate reading).
**Measured:** row flat at every depth; column at full projectivity 11.4 s
(depth 48) → 26.1 s (depth 2).""",
    "figure-11": """\
**Paper:** with a competing scan, the column system outperforms the row system
in *all* configurations — being one step ahead in its request submissions gets
it favored by the controller; the "slow" variant (wait for each column's
request) falls back to the expected behaviour.
**Measured:** column < row at every depth and projectivity; the slow variant
matches the row store at full projectivity (within 15 %).""",
    "table-1": """\
**Paper:** qualitative trend arrows per parameter (disk/memory/CPU time).
**Measured:** all six measurable trend directions hold.""",
    "model-validation": """\
**Paper:** the Section 5 formula predicts relative performance across
configurations (used to draw Figure 2).
**Measured:** predicted vs simulator-measured speedups agree within ≤ 10 %
across ORDERS and LINEITEM shapes.""",
    "index-breakeven": """\
**Paper (§2.1.1):** a secondary unclustered index pays off only below ~0.008 %
selectivity (5 ms seeks, 300 MB/s, 128-byte tuples).
**Measured:** closed form reproduces 0.0085 % for the paper's reference
configuration; the simulated sweep flips from index to sequential scan in the
0.01-0.03 % band on this testbed.""",
    "scan-sharing": """\
**Paper (§2.1.1):** concurrent queries on one table are often served off a
single reading stream (Teradata/RedBrick/SQL Server/QPipe); not studied
further.  **Measured (extension):** sharing turns N competing scans into one
pass — ~N× makespan improvement, and a staggered arrival still wins.""",
    "pax-comparison": """\
**Paper (§6):** PAX improves cache behaviour like a column store but "I/O
performance is identical to that of a row-store."
**Measured (extension):** PAX elapsed is projection-independent and within
10 % of the row store, while its memory traffic scales with the projection
like the column store's.""",
    "rle-projection": """\
**Paper (§2.2.1):** "We refrain from using techniques that are better suited
for column data (such as run length encoding) to keep our performance study
unbiased."  **Measured (extension):** the excluded benefit — RLE halves the
sorted key column vs Figure 5's FOR-delta and collapses a
projection-sort-key column by ~40×.""",
    "join-analysis": """\
**Paper (§5):** the disk rate of a multi-file query weights each file by its
size (the merge-join example).  **Measured (extension):** ORDERS ⋈ LINEITEM
on both layouts — columns win ~6× at narrow fact projections and lose at full
projection; eq. 2's predicted tuples/sec matches the simulator within ~5 %.""",
    "capacity-sweep": """\
**Paper (Table 1 / §5):** different CPU-per-disk ratios shift the bottleneck;
cpdb folds both into one knob.  **Measured (extension):** the measured and
model-predicted speedups move together across 1-4 CPUs and 1-6 disks — more
disks push the column store toward CPU-bound parity, more CPUs widen its
lead.""",
    "sensitivity": """\
**Reproduction hygiene:** the per-event instruction counts are this
reproduction's only free parameters.  Perturbing each load-bearing constant
by ×0.5 / ×2 leaves both headline claims standing — the column store still
wins 50 % projections of LINEITEM, and the Figure 2 corner ordering holds —
so the conclusions come from the architecture, not the tuning.""",
    "operator-cost": """\
**Paper (§5):** "a high-cost relational operator lowers the CPU rate, and
the difference between columns and rows in a CPU-bound system becomes less
noticeable."  **Measured (extension):** stacking increasingly expensive
aggregation above a CPU-bound ORDERS-Z scan pulls the layout ratio
monotonically toward 1.""",
    "compressed-execution": """\
**Paper (conclusion):** column stores gain further from "the ability to
operate directly on compressed data".
**Measured (extension):** evaluating predicates on dictionary codes saves
CPU whenever the predicate column is not also projected; with projection the
saving shrinks toward a wash at high selectivity.""",
}

HEADER = """\
# EXPERIMENTS — paper vs measured

Every table and figure of *Performance Tradeoffs in Read-Optimized
Databases* (VLDB 2006), regenerated by this reproduction, plus the
extension experiments.  Absolute numbers come from the simulated
substrate (see DESIGN.md): the paper's 3×60 MB/s array and 3.2 GHz
Pentium 4-class cost model at 60 M-row cardinality.  The claims checked
are the *shapes* — who wins, by what factor, where crossovers fall.

Regenerate everything with::

    python benchmarks/generate_experiments_md.py
    # or, per experiment:
    python -m repro.experiments figure-6

The benchmark harness (``pytest benchmarks/ --benchmark-only``) asserts
each shape programmatically.
"""


def main() -> int:
    sections = [HEADER]
    for name, runner in ALL_EXPERIMENTS.items():
        output = runner(num_rows=ROWS)
        sections.append(f"## {name}: {output.name}\n")
        sections.append(COMMENTARY.get(name, "").rstrip() + "\n")
        body = "\n\n".join(table.render() for table in output.tables)
        sections.append("```text\n" + body + "\n```\n")
    (ROOT / "EXPERIMENTS.md").write_text("\n".join(sections), encoding="utf-8")
    print(f"wrote {ROOT / 'EXPERIMENTS.md'}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
