"""Fault handling under parallel execution: determinism and degradation.

Two guarantees from the parallel executor's failure policy:

* deterministic corruption accounting — a fixed, seeded bit flip
  surfaces the *same* ``CorruptionReport`` fault set whether the
  salvage scan runs serially or split across worker processes (boundary
  pages decoded by two adjacent workers are deduplicated, not
  double-reported);
* graceful degradation — a crashing worker never hangs the pool; the
  query is retried in-process and still returns the correct answer,
  with cost events counted exactly once.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.tpch import generate_orders
from repro.engine.context import ExecutionContext
from repro.engine.executor import run_scan
from repro.engine.parallel import parallel_query
from repro.engine.plan import ColumnScannerKind
from repro.engine.predicate import predicate_for_selectivity
from repro.engine.query import ScanQuery
from repro.errors import ChecksumError
from repro.storage.faults import FaultPlan
from repro.storage.layout import Layout
from repro.storage.loader import load_table

ROWS = 2_000

ARCHITECTURES = (
    ("row", Layout.ROW, ColumnScannerKind.PIPELINED),
    ("pax", Layout.PAX, ColumnScannerKind.PIPELINED),
    ("column", Layout.COLUMN, ColumnScannerKind.PIPELINED),
    ("fused", Layout.COLUMN, ColumnScannerKind.FUSED),
)


@pytest.fixture(scope="module")
def data():
    return generate_orders(ROWS, seed=41)


@pytest.fixture(scope="module")
def query(data):
    predicate = predicate_for_selectivity(
        "O_TOTALPRICE", data.column("O_TOTALPRICE"), 0.5
    )
    return ScanQuery(
        "ORDERS",
        select=("O_ORDERKEY", "O_TOTALPRICE"),
        predicates=(predicate,),
    )


def _faulty_table(data, layout, pages=(1, 3)):
    """A freshly loaded table with fixed bit flips on ``pages``.

    Explicit byte/bit offsets make the flips independent of read order,
    so a pickled copy in a worker process corrupts identically.
    """
    table = load_table(data, layout)
    plan = FaultPlan(seed=99)
    for page in pages:
        plan.schedule_bit_flip(page=page, byte=80, bit=4)
    plan.wrap_table(table)
    return table


def _fault_set(report):
    return sorted((f.file, f.page, f.rows_lost) for f in report.faults)


class TestFaultDeterminism:
    @pytest.mark.parametrize("arch,layout,kind", ARCHITECTURES)
    def test_parallel_salvage_reports_same_faults_as_serial(
        self, data, query, arch, layout, kind
    ):
        serial = run_scan(
            _faulty_table(data, layout), query, column_scanner=kind, salvage=True
        )
        assert not serial.corruption.is_clean  # the flips actually landed
        parallel = parallel_query(
            _faulty_table(data, layout),
            query,
            workers=2,
            partitions=3,
            column_scanner=kind,
            salvage=True,
        )
        assert np.array_equal(parallel.positions, serial.positions)
        for name in serial.columns:
            assert np.array_equal(parallel.columns[name], serial.columns[name])
        assert _fault_set(parallel.corruption) == _fault_set(serial.corruption)

    def test_boundary_page_not_double_reported(self, data, query):
        # Many narrow partitions guarantee some partition boundary
        # falls inside a corrupt page, so two workers each decode (and
        # report) it; the merged report must still list it once.
        serial = run_scan(
            _faulty_table(data, Layout.ROW), query, salvage=True
        )
        parallel = parallel_query(
            _faulty_table(data, Layout.ROW),
            query,
            workers=2,
            partitions=16,
            salvage=True,
        )
        assert _fault_set(parallel.corruption) == _fault_set(serial.corruption)
        pages = [(f.file, f.page) for f in parallel.corruption.faults]
        assert len(pages) == len(set(pages))

    def test_strict_mode_still_raises(self, data, query):
        with pytest.raises(ChecksumError):
            parallel_query(
                _faulty_table(data, Layout.ROW), query, workers=2, partitions=3
            )


class TestCrashDegradation:
    def test_injected_crash_retries_only_that_partition(self, data, query):
        table = load_table(data, Layout.ROW)
        serial = run_scan(table, query)
        info = {}
        result = parallel_query(
            table, query, workers=2, partitions=4, inject_crash=2, info=info
        )
        # Supervision ladder: the healthy partitions' pool results are
        # kept and only the crashed one is re-run inline.
        assert info["mode"] == "parallel-degraded"
        assert "WorkerCrash" in info["fallback_reason"]
        assert any("partition 2" in note for note in info["governance"])
        assert np.array_equal(result.positions, serial.positions)
        for name in serial.columns:
            assert np.array_equal(result.columns[name], serial.columns[name])

    def test_crash_fallback_counts_events_exactly_once(self, data, query):
        table = load_table(data, Layout.ROW)
        baseline = ExecutionContext()
        parallel_query(
            table, query, workers=2, partitions=4, context=baseline
        )
        crashed = ExecutionContext()
        parallel_query(
            table, query, workers=2, partitions=4, context=crashed, inject_crash=1
        )
        # The discarded pool attempt must leave no residue: the retry's
        # totals equal a clean parallel run's.
        assert crashed.events.as_dict() == baseline.events.as_dict()

    def test_crash_of_every_worker_index_recovers(self, data, query):
        table = load_table(data, Layout.ROW)
        serial = run_scan(table, query)
        for index in range(3):
            result = parallel_query(
                table, query, workers=2, partitions=3, inject_crash=index
            )
            assert np.array_equal(result.positions, serial.positions)
